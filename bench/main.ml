(* Benchmark harness: regenerates every table and figure of the paper's
   analysis and evaluation sections (Figures 1-12 plus the Section-6.1
   overhead table), and runs Bechamel micro-benchmarks for the estimation
   hot paths.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig5 fig9 # a subset
     dune exec bench/main.exe -- quick     # reduced repetitions (CI)
   Every data series is printed as TSV with a FIGURE header line. *)

open Rq_analysis
open Rq_experiments

let quick = ref false

let header name description =
  Printf.printf "\n=== %s — %s ===\n" name description

let print_series ~x_label figure series_list =
  List.iter
    (fun { Figures.label; points } ->
      Printf.printf "# %s series: %s\n" figure label;
      Printf.printf "%s\tvalue\n" x_label;
      List.iter (fun (x, y) -> Printf.printf "%.6g\t%.6g\n" x y) points)
    series_list

(* ------------------------------------------------------------------ *)
(* Figures 1-8: analytical                                             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1" "execution cost of two hypothetical plans vs. selectivity";
  Printf.printf "crossover at selectivity where plans tie: ~26%%\n";
  print_series ~x_label:"selectivity" "fig1" (Figures.fig1_cost_vs_selectivity ())

let fig2 () =
  header "Figure 2" "probability density of execution cost (k=50 of n=200)";
  print_series ~x_label:"cost" "fig2" (Figures.fig2_cost_pdf ())

let fig3 () =
  header "Figure 3" "cumulative probability of execution cost";
  List.iter
    (fun t ->
      let confidence = Rq_core.Confidence.of_percent t in
      let plan = match Figures.fig3_preferred_plan confidence with
        | `Plan1 -> "Plan 1"
        | `Plan2 -> "Plan 2"
      in
      Printf.printf "preferred plan at T=%g%%: %s\n" t plan)
    [ 50.0; 60.0; 64.0; 66.0; 70.0; 80.0 ];
  print_series ~x_label:"cost" "fig3" (Figures.fig3_cost_cdf ())

let fig4 () =
  header "Figure 4" "sample size matters, prior doesn't (posterior densities)";
  print_series ~x_label:"selectivity" "fig4" (Figures.fig4_prior_comparison ())

let fig5 () =
  header "Figure 5" "effect of the confidence threshold (n=1000, analytical)";
  Printf.printf "crossover of the cost model: %.4f%%\n" (100.0 *. Model.crossover Model.paper_model);
  print_series ~x_label:"selectivity" "fig5" (Figures.fig5_confidence_sweep ())

let fig6 () =
  header "Figure 6" "performance vs. predictability trade-off (analytical)";
  Printf.printf "threshold%%\tavg_time\tstd_dev\n";
  List.iter
    (fun (t, summary) ->
      Printf.printf "%g\t%.3f\t%.3f\n" t summary.Rq_math.Summary.mean
        summary.Rq_math.Summary.std_dev)
    (Figures.fig6_tradeoff ())

let fig7 () =
  header "Figure 7" "effect of sample size (T=50%, analytical)";
  print_series ~x_label:"selectivity" "fig7" (Figures.fig7_sample_size_sweep ())

let fig8 () =
  header "Figure 8" "crossover at higher selectivity (~5.2%)";
  Printf.printf "crossover of the perturbed model: %.2f%%\n"
    (100.0 *. Model.crossover Model.high_crossover_model);
  print_series ~x_label:"selectivity" "fig8" (Figures.fig8_high_crossover ())

(* ------------------------------------------------------------------ *)
(* Figures 9-12: empirical                                             *)
(* ------------------------------------------------------------------ *)

let print_rows rows = print_string (Report.rows_table rows)
let print_plan_mix rows = print_string (Report.plan_mix rows)
let print_tradeoff tradeoff = print_string (Report.tradeoff_table tradeoff)

let fig9 () =
  header "Figure 9" "Experiment 1: two-predicate lineitem query (empirical)";
  let config =
    if !quick then
      { Exp_single_table.default_config with repetitions = 4; offsets = [ 30; 50; 65; 80; 90 ] }
    else Exp_single_table.default_config
  in
  let rows = Exp_single_table.run ~config () in
  Printf.printf "-- Figure 9(a): selectivity vs. time\n";
  print_rows rows;
  print_plan_mix rows;
  Printf.printf "-- Figure 9(b): performance vs. predictability\n";
  print_tradeoff (Exp_single_table.tradeoff rows)

let fig10 () =
  header "Figure 10" "Experiment 2: three-table join (empirical)";
  let config =
    if !quick then
      { Exp_three_join.default_config with repetitions = 4; buckets = [ 0; 700; 850; 950; 999 ] }
    else Exp_three_join.default_config
  in
  let rows = Exp_three_join.run ~config () in
  Printf.printf "-- Figure 10(a): selectivity vs. time\n";
  print_rows rows;
  print_plan_mix rows;
  Printf.printf "-- Figure 10(b): performance vs. predictability\n";
  print_tradeoff (Exp_three_join.tradeoff rows)

let fig11 () =
  header "Figure 11" "Experiment 3: four-table star join (empirical)";
  let config =
    if !quick then
      {
        Exp_star_join.default_config with
        repetitions = 4;
        join_fractions = [ 0.0; 0.01; 0.04; 0.1 ];
        fact_rows = 50_000;
      }
    else Exp_star_join.default_config
  in
  let rows = Exp_star_join.run ~config () in
  Printf.printf "-- Figure 11(a): selectivity vs. time\n";
  print_rows rows;
  print_plan_mix rows;
  Printf.printf "-- Figure 11(b): performance vs. predictability\n";
  print_tradeoff (Exp_star_join.tradeoff rows)

let fig12 () =
  header "Figure 12" "Experiment 4: effect of sample size (empirical, T=50%)";
  let config =
    if !quick then
      {
        Exp_sample_size.default_config with
        repetitions = 4;
        sample_sizes = [ 50; 250; 1000 ];
        offsets = [ 30; 50; 65; 80; 90 ];
      }
    else Exp_sample_size.default_config
  in
  let points = Exp_sample_size.run ~config () in
  print_string (Report.sample_size_table points)

(* ------------------------------------------------------------------ *)
(* Section 6.1: estimation overhead                                    *)
(* ------------------------------------------------------------------ *)

let overhead () =
  header "Table: estimation overhead (Sec. 6.1)"
    "optimization time, histogram vs. robust sampling";
  let config =
    if !quick then { Overhead.default_config with iterations = 10 }
    else Overhead.default_config
  in
  print_string (Report.overhead_table (Overhead.run ~config ()))

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices called out in DESIGN.md             *)
(* ------------------------------------------------------------------ *)

let ablation_prior () =
  header "Ablation: prior choice" "Jeffreys vs. uniform estimates at tiny samples";
  Printf.printf "k/n\tT%%\tJeffreys\tuniform\tdelta\n";
  List.iter
    (fun (k, n) ->
      List.iter
        (fun t ->
          let confidence = Rq_core.Confidence.of_percent t in
          let est prior =
            Rq_core.Robust_estimator.estimate
              (Rq_core.Robust_estimator.create ~prior ~confidence ())
              ~successes:k ~trials:n
          in
          let j = est Rq_core.Prior.Jeffreys and u = est Rq_core.Prior.Uniform in
          Printf.printf "%d/%d\t%g\t%.5f\t%.5f\t%.5f\n" k n t j u (Float.abs (j -. u)))
        [ 50.0; 80.0 ])
    [ (0, 10); (1, 10); (10, 100); (50, 500) ]

let ablation_cost_transfer () =
  header "Ablation: cost-transfer equivalence"
    "g(quantile T) vs. percentile of the explicit cost distribution";
  let posterior = Figures.example_posterior in
  Printf.printf "plan\tT%%\tfast_path\texplicit\tabs_diff\n";
  List.iter
    (fun (name, g) ->
      List.iter
        (fun t ->
          let confidence = Rq_core.Confidence.of_percent t in
          let fast = Rq_core.Cost_transfer.cost_percentile ~cost_of_selectivity:g posterior confidence in
          let explicit =
            Rq_core.Cost_transfer.cost_cdf_inverse ~cost_of_selectivity:g posterior (t /. 100.0)
          in
          Printf.printf "%s\t%g\t%.4f\t%.4f\t%.2e\n" name t fast explicit
            (Float.abs (fast -. explicit)))
        [ 20.0; 50.0; 80.0; 95.0 ])
    [ ("Plan1", Figures.example_plan_1); ("Plan2", Figures.example_plan_2) ]

let ablation_estimate_kind () =
  header "Ablation: percentile vs. posterior-mean vs. maximum-likelihood"
    "single-value estimates from the same evidence";
  Printf.printf "k/n\tML\tpost_mean\tT=50%%\tT=80%%\tT=95%%\n";
  List.iter
    (fun (k, n) ->
      let q t =
        Rq_core.Robust_estimator.estimate
          (Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent t) ())
          ~successes:k ~trials:n
      in
      Printf.printf "%d/%d\t%.5f\t%.5f\t%.5f\t%.5f\t%.5f\n" k n
        (Rq_core.Robust_estimator.maximum_likelihood_estimate ~successes:k ~trials:n)
        (Rq_core.Robust_estimator.expected_value_estimate ~successes:k ~trials:n ())
        (q 50.0) (q 80.0) (q 95.0))
    [ (0, 500); (1, 500); (5, 500); (50, 500) ]

let fig1_empirical () =
  header "Figure 1 (empirical)" "cost-vs-selectivity curves of the engine's own plans";
  let rng = Rq_math.Rng.create 13 in
  let catalog = Rq_workload.Tpch.generate (Rq_math.Rng.split rng) () in
  let scale = Rq_workload.Tpch.cost_scale catalog in
  let pred = Rq_workload.Tpch.exp1_query ~offset:60 in
  let refs = pred.Rq_optimizer.Logical.tables in
  let table_ref = List.hd refs in
  let plans =
    Rq_optimizer.Enumerate.access_paths catalog table_ref
  in
  let selectivities = List.init 21 (fun i -> float_of_int i /. 2000.0) in
  List.iter
    (fun plan ->
      Printf.printf "# plan: %s\n" (Rq_exec.Plan.describe plan);
      Printf.printf "selectivity\tcost\n";
      List.iter
        (fun (s, c) -> Printf.printf "%.5f\t%.3f\n" s c)
        (Rq_optimizer.Costing.cost_curve catalog ~scale ~selectivities plan))
    plans;
  let find_plan p = List.find_opt p plans in
  (match
     ( find_plan (function
         | Rq_exec.Plan.Scan { access = Rq_exec.Plan.Seq_scan; _ } -> true
         | _ -> false),
       find_plan (function
         | Rq_exec.Plan.Scan { access = Rq_exec.Plan.Index_intersect _; _ } -> true
         | _ -> false) )
   with
  | Some scan, Some isect ->
      let crossings = Rq_optimizer.Costing.crossover_points catalog ~scale ~grid:4000 scan isect in
      Printf.printf "crossover(s) between %s and %s: %s (analytical model: 0.143%%)\n"
        (Rq_exec.Plan.describe scan) (Rq_exec.Plan.describe isect)
        (String.concat ", " (List.map (fun s -> Printf.sprintf "%.4f%%" (100.0 *. s)) crossings))
  | _ -> ())

let ablation_lec () =
  header "Ablation: estimation rule vs. the Figure-6 frontier"
    "confidence thresholds vs. posterior-mean (least-expected-cost) vs. max-likelihood";
  let selectivities = Figures.default_workload_selectivities in
  let line label rule =
    let s =
      Model.cost_over_workload_rule Model.paper_model ~sample_size:1000 ~rule ~selectivities
    in
    Printf.printf "%-24s %10.3f %10.3f\n" label s.Rq_math.Summary.mean s.Rq_math.Summary.std_dev
  in
  Printf.printf "%-24s %10s %10s\n" "rule" "avg_time" "std_dev";
  List.iter
    (fun t -> line (Printf.sprintf "T=%g%%" t) (Model.At_confidence (Rq_core.Confidence.of_percent t)))
    [ 5.0; 20.0; 50.0; 80.0; 95.0 ];
  line "posterior-mean (LEC)" Model.Posterior_mean;
  line "maximum-likelihood" Model.Maximum_likelihood

let ablation_partial_stats () =
  header "Ablation: degraded statistics (Sec. 3.5)"
    "three-join estimates under full synopses / single-table samples / no statistics";
  let config =
    if !quick then { Exp_partial_stats.default_config with scale_factor = 0.003 }
    else Exp_partial_stats.default_config
  in
  print_string (Report.partial_stats_table (Exp_partial_stats.run ~config ()))

let ablation_synopses () =
  header "Ablation: join synopses vs. per-table samples with AVI"
    "three-join cardinality estimates against the truth (mean over 10 sample draws)";
  let rng = Rq_math.Rng.create 7 in
  let catalog = Rq_workload.Tpch.generate (Rq_math.Rng.split rng) () in
  let estimator =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()
  in
  let draws = 10 in
  let estimator_pairs =
    List.init draws (fun _ ->
        let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) catalog in
        ( Rq_optimizer.Cardinality.robust stats estimator,
          Rq_optimizer.Cardinality.sample_avi stats estimator,
          Rq_optimizer.Cardinality.histogram_avi stats ))
  in
  Printf.printf "p_bucket\ttrue_rows\trobust\tsample_avi\thistogram_avi\n";
  List.iter
    (fun bucket ->
      let refs = (Rq_workload.Tpch.exp2_query ~bucket).Rq_optimizer.Logical.tables in
      let truth = Rq_optimizer.Naive.cardinality catalog refs in
      let mean select =
        List.fold_left
          (fun acc triple ->
            acc +. (select triple).Rq_optimizer.Cardinality.expression_cardinality refs)
          0.0 estimator_pairs
        /. float_of_int draws
      in
      Printf.printf "%d\t%d\t%.1f\t%.1f\t%.1f\n" bucket truth
        (mean (fun (r, _, _) -> r))
        (mean (fun (_, a, _) -> a))
        (mean (fun (_, _, h) -> h)))
    [ 0; 700; 900; 975; 999 ]

let ablation_ml_empirical () =
  header "Ablation: Bayesian interpretation vs. maximum likelihood (empirical)"
    "Experiment-1 sweep with 50-tuple synopses: robust T=50% self-adjusts, k/n gambles";
  let rng = Rq_math.Rng.create 19 in
  let catalog = Rq_workload.Tpch.generate (Rq_math.Rng.split rng) () in
  let scale = Rq_workload.Tpch.cost_scale catalog in
  let cache = Exp_common.make_cache catalog ~scale in
  (* 50-tuple samples: the posterior is too wide to clear the crossover, so
     the robust estimator refuses the risky plan (the paper's Fig.-12
     anomaly); maximum likelihood sees k = 0 as certainty and gambles. *)
  let stats_of_draw = Exp_common.make_stats_of_draw rng ~sample_size:50 catalog in
  let repetitions = if !quick then 4 else 12 in
  let offsets = if !quick then [ 30; 65; 90 ] else [ 30; 50; 65; 75; 85; 90 ] in
  let rows =
    List.map
      (fun offset ->
        let query = Rq_workload.Tpch.exp1_query ~offset in
        let robust_series =
          Exp_common.run_robust_series ~cache ~stats_of_draw ~repetitions
            ~thresholds:[ 50.0 ] ~scale query
        in
        let ml_cell =
          Exp_common.run_estimator_series ~cache ~stats_of_draw ~repetitions ~label:"sample-ML"
            ~make:Rq_optimizer.Cardinality.sample_ml ~scale query
        in
        {
          Exp_common.parameter = float_of_int offset;
          selectivity = Rq_workload.Tpch.exp1_selectivity catalog ~offset;
          series = robust_series @ [ ml_cell ];
        })
      offsets
  in
  print_string (Report.rows_table rows);
  print_string (Report.tradeoff_table (Exp_common.summarize_series rows))

let ablation_staleness () =
  header "Ablation: statistics staleness (Sec. 3.2 maintenance)"
    "drifting part popularity under never-refresh vs. threshold-triggered refresh";
  let rng = Rq_math.Rng.create 17 in
  let params = { Rq_workload.Tpch.default_params with scale_factor = 0.005 } in
  let catalog = Rq_workload.Tpch.generate (Rq_math.Rng.split rng) ~params () in
  let maintained =
    Rq_stats.Maintenance.create ~refresh_fraction:0.15 (Rq_math.Rng.split rng) catalog
  in
  let stale_stats = Rq_stats.Maintenance.stats maintained in
  let estimator = Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median () in
  let refs = (Rq_workload.Tpch.exp2_query ~bucket:999).Rq_optimizer.Logical.tables in
  let estimate stats =
    (Rq_optimizer.Cardinality.robust stats estimator).Rq_optimizer.Cardinality.expression_cardinality
      refs
  in
  let buckets = Rq_workload.Tpch.default_params.Rq_workload.Tpch.part_buckets in
  let drift_rng = Rq_math.Rng.split rng in
  Printf.printf "batch\ttrue_rows\tnever_refreshed\tmaintained\trefreshed?\n";
  for batch = 1 to 6 do
    (* Each batch repoints 10%% of lineitems at bucket-999 parts: the hot
       set concentrates, drifting the joint distribution the initial
       sample captured. *)
    Rq_stats.Maintenance.apply_update maintained ~table:"lineitem" (fun rows ->
        Array.map
          (fun tup ->
            if Rq_math.Rng.float drift_rng 1.0 < 0.1 then begin
              let parts_per_bucket =
                Rq_storage.Relation.row_count (Rq_storage.Catalog.find_table catalog "part")
                / buckets
              in
              let hot = 999 + (buckets * Rq_math.Rng.int drift_rng parts_per_bucket) in
              let updated = Array.copy tup in
              updated.(2) <- Rq_storage.Value.Int hot;
              updated
            end
            else tup)
          rows);
    let refreshed = Rq_stats.Maintenance.maybe_refresh maintained in
    let truth = Rq_optimizer.Naive.cardinality catalog refs in
    Printf.printf "%d\t%d\t%.1f\t%.1f\t%s\n" batch truth (estimate stale_stats)
      (estimate (Rq_stats.Maintenance.stats maintained))
      (if refreshed then "yes" else "no")
  done

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks" "estimation hot paths (Bechamel, OLS ns/run)";
  let open Bechamel in
  let open Toolkit in
  let rng = Rq_math.Rng.create 11 in
  let catalog = Rq_workload.Tpch.generate (Rq_math.Rng.split rng) () in
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) catalog in
  let scale = Rq_workload.Tpch.cost_scale catalog in
  let robust_opt = Rq_optimizer.Optimizer.robust ~scale stats in
  let baseline_opt = Rq_optimizer.Optimizer.baseline ~scale stats in
  let query = Rq_workload.Tpch.exp1_query ~offset:60 in
  let join_query = Rq_workload.Tpch.exp2_query ~bucket:99 in
  let posterior_quantile () =
    Rq_core.Posterior.quantile (Rq_core.Posterior.infer ~successes:37 ~trials:500 ()) 0.8
  in
  let synopsis_evidence () =
    match Rq_stats.Stats_store.synopsis stats ~root:"lineitem" with
    | Some syn ->
        Rq_stats.Join_synopsis.evidence syn
          (Rq_exec.Pred.rename_columns (fun c -> "lineitem." ^ c)
             (Rq_workload.Tpch.exp1_query ~offset:60
              |> fun q -> (List.hd q.Rq_optimizer.Logical.tables).Rq_optimizer.Logical.pred))
    | None -> (0, 0)
  in
  let tests =
    Test.make_grouped ~name:"estimation"
      [
        Test.make ~name:"posterior-quantile" (Staged.stage posterior_quantile);
        Test.make ~name:"synopsis-evidence-500" (Staged.stage synopsis_evidence);
        Test.make ~name:"optimize-exp1-robust"
          (Staged.stage (fun () -> Rq_optimizer.Optimizer.optimize_exn robust_opt query));
        Test.make ~name:"optimize-exp1-histogram"
          (Staged.stage (fun () -> Rq_optimizer.Optimizer.optimize_exn baseline_opt query));
        Test.make ~name:"optimize-exp2-robust"
          (Staged.stage (fun () -> Rq_optimizer.Optimizer.optimize_exn robust_opt join_query));
        Test.make ~name:"optimize-exp2-histogram"
          (Staged.stage (fun () -> Rq_optimizer.Optimizer.optimize_exn baseline_opt join_query));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let quota = Time.second (if !quick then 0.25 else 1.0) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let all_benches =
  [
    ("fig1", fig1); ("fig1-empirical", fig1_empirical);
    ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("overhead", overhead);
    ("ablation-prior", ablation_prior);
    ("ablation-lec", ablation_lec);
    ("ablation-partial-stats", ablation_partial_stats);
    ("ablation-staleness", ablation_staleness);
    ("ablation-ml-empirical", ablation_ml_empirical);
    ("ablation-cost-transfer", ablation_cost_transfer);
    ("ablation-estimate-kind", ablation_estimate_kind);
    ("ablation-synopses", ablation_synopses);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] -> all_benches
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name all_benches with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown bench %S; available: %s\n" name
                  (String.concat ", " (List.map fst all_benches));
                exit 2)
          names
  in
  List.iter (fun (_, f) -> f ()) selected
