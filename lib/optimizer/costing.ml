open Rq_storage
open Rq_exec

type estimate = { cost : float; card : float }

let pred_of_probe { Plan.column; lo; hi } =
  match (lo, hi) with
  | Some l, Some h -> Pred.between (Expr.col column) (Expr.Const l) (Expr.Const h)
  | Some l, None -> Pred.ge (Expr.col column) (Expr.Const l)
  | None, Some h -> Pred.le (Expr.col column) (Expr.Const h)
  | None, None -> Pred.True

(* Logical table refs covered by a subplan, for expression-cardinality
   queries.  Filter conjuncts that mention a single table are folded into
   that table's predicate. *)
let rec refs_of plan : Logical.table_ref list =
  match plan with
  | Plan.Scan { table; pred; _ } | Plan.Scan_resume { table; pred; _ } ->
      [ { Logical.table; pred } ]
  | Plan.Append parts -> (
      (* All parts cover the same logical tables (the prefix and its
         resumption); the first part's refs stand for the whole. *)
      match parts with [] -> [] | part :: _ -> refs_of part)
  | Plan.Hash_join { build; probe; _ } -> refs_of build @ refs_of probe
  | Plan.Merge_join { left; right; _ } -> refs_of left @ refs_of right
  | Plan.Indexed_nl_join { outer; inner_table; inner_pred; _ } ->
      refs_of outer @ [ { Logical.table = inner_table; pred = inner_pred } ]
  | Plan.Star_semijoin { fact; fact_pred; dims } ->
      { Logical.table = fact; pred = fact_pred }
      :: List.map
           (fun { Plan.dim_table; dim_pred; _ } -> { Logical.table = dim_table; pred = dim_pred })
           dims
  | Plan.Filter (input, pred) ->
      let refs = refs_of input in
      let strip_prefix table c =
        let prefix = table ^ "." in
        let pl = String.length prefix in
        if String.length c > pl && String.sub c 0 pl = prefix then
          String.sub c pl (String.length c - pl)
        else c
      in
      let merge_conjunct refs conjunct =
        let cols = Pred.columns conjunct in
        let owner_of c = match String.index_opt c '.' with
          | Some i -> Some (String.sub c 0 i)
          | None -> None
        in
        match List.filter_map owner_of cols with
        | owner :: rest when List.for_all (String.equal owner) rest ->
            List.map
              (fun (r : Logical.table_ref) ->
                if String.equal r.Logical.table owner then
                  {
                    r with
                    Logical.pred =
                      Pred.conj
                        [ r.Logical.pred;
                          Pred.rename_columns (strip_prefix owner) conjunct ];
                  }
                else r)
              refs
        | _ -> refs
      in
      List.fold_left merge_conjunct refs (Pred.conjuncts pred)
  | Plan.Project (input, _) -> refs_of input
  | Plan.Sort { input; _ } | Plan.Limit (input, _) -> refs_of input
  | Plan.Aggregate { input; _ } -> refs_of input
  | Plan.Guard { input; _ } -> refs_of input
  | Plan.Materialized { refs; _ } ->
      List.map (fun (table, pred) -> { Logical.table; pred }) refs

let estimate catalog ?(constants = Cost.default_constants) ?(scale = 1.0) est plan =
  let c = constants in
  let card_of refs = Float.max 0.0 (est.Cardinality.expression_cardinality refs) in
  let table_sel table pred =
    Float.max 0.0 (Float.min 1.0 (est.Cardinality.table_selectivity ~table pred))
  in
  let seq_pages n = float_of_int n *. c.Cost.seq_page_read_s in
  let rand_fetch rows = rows *. (c.Cost.random_page_read_s +. c.Cost.cpu_tuple_s) in
  let leaf_pages_cost idx entries =
    let total = float_of_int (Index.entry_count idx) in
    if total <= 0.0 || entries <= 0.0 then 0.0
    else
      let pages = float_of_int (Index.leaf_page_count idx) in
      Float.max 1.0 (ceil (entries /. total *. pages)) *. c.Cost.seq_page_read_s
  in
  let index_of table column =
    match Catalog.find_index catalog ~table ~column with
    | Some idx -> idx
    | None -> invalid_arg (Printf.sprintf "Costing: no index on %s.%s" table column)
  in
  let probe_cost table probe =
    let idx = index_of table probe.Plan.column in
    let rel = Catalog.find_table catalog table in
    let entries =
      float_of_int (Relation.row_count rel) *. table_sel table (pred_of_probe probe)
    in
    let cost =
      c.Cost.index_probe_s
      +. (entries *. c.Cost.cpu_index_entry_s)
      +. leaf_pages_cost idx entries
    in
    (cost, entries)
  in
  let rec go plan =
    match plan with
    | Plan.Scan { table; access; pred } -> (
        let rel = Catalog.find_table catalog table in
        let rows = float_of_int (Relation.row_count rel) in
        let card = card_of [ { Logical.table; pred } ] in
        match access with
        | Plan.Seq_scan ->
            (* The scan cost reads zone-map prunability through the same
               task planner the engines execute: skipped chunks cost
               nothing, so the estimate and the meter agree exactly. *)
            let read_pages, _skipped, read_rows = Chunk_scan.totals rel pred in
            {
              cost =
                seq_pages read_pages +. (float_of_int read_rows *. c.Cost.cpu_tuple_s);
              card;
            }
        | Plan.Index_range probe ->
            let pcost, entries = probe_cost table probe in
            { cost = pcost +. rand_fetch entries; card }
        | Plan.Index_order { column; descending = _ } ->
            (* Full leaf-level walk plus a random fetch per row: expensive
               in isolation, but the pipeline streams in key order, so a
               LIMIT above pays only its surfaced fraction (see below). *)
            let idx = index_of table column in
            {
              cost =
                c.Cost.index_probe_s
                +. (float_of_int (Index.entry_count idx) *. c.Cost.cpu_index_entry_s)
                +. seq_pages (Index.leaf_page_count idx)
                +. rand_fetch rows;
              card;
            }
        | Plan.Index_intersect probes ->
            let pcosts = List.map (probe_cost table) probes in
            let probes_cost = List.fold_left (fun acc (pc, _) -> acc +. pc) 0.0 pcosts in
            let total_entries = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 pcosts in
            (* Joint selectivity of all probe conditions together: the
               estimate where AVI and sampling part ways. *)
            let joint = table_sel table (Pred.conj (List.map pred_of_probe probes)) in
            let surviving = rows *. joint in
            {
              cost =
                probes_cost
                +. (total_entries *. c.Cost.cpu_tuple_s)
                +. rand_fetch surviving;
              card;
            })
    | Plan.Scan_resume { table; pred; from_rid } ->
        let rel = Catalog.find_table catalog table in
        let n = Relation.row_count rel in
        let from = min (max 0 from_rid) n in
        (* The resumed tail scans (n - from) rows; its cardinality is the
           full scan's estimate scaled by the unscanned fraction. *)
        let frac = float_of_int (n - from) /. float_of_int (max 1 n) in
        let read_pages, read_rows =
          List.fold_left
            (fun (p, r) (t : Chunk_scan.task) ->
              if t.skip then (p, r) else (p + t.pages, r + (t.hi - t.lo)))
            (0, 0)
            (Chunk_scan.tasks ~from rel pred)
        in
        {
          cost =
            seq_pages read_pages +. (float_of_int read_rows *. c.Cost.cpu_tuple_s);
          card = card_of [ { Logical.table; pred } ] *. frac;
        }
    | Plan.Append parts ->
        List.fold_left
          (fun acc part ->
            let e = go part in
            { cost = acc.cost +. e.cost; card = acc.card +. e.card })
          { cost = 0.0; card = 0.0 } parts
    | Plan.Hash_join { build; probe; _ } ->
        let b = go build and p = go probe in
        let card = card_of (refs_of plan) in
        {
          cost =
            b.cost +. p.cost
            +. (b.card *. c.Cost.hash_build_s)
            +. (p.card *. c.Cost.hash_probe_s)
            +. (card *. c.Cost.output_tuple_s);
          card;
        }
    | Plan.Merge_join { left; right; left_key; right_key } ->
        let l = go left and r = go right in
        let rec sorted_on sub =
          match sub with
          | Plan.Scan { table; _ } -> (
              match Catalog.clustered_by catalog table with
              | Some col -> Some (table ^ "." ^ col)
              | None -> None)
          | Plan.Guard { input; _ } -> sorted_on input
          | _ -> None
        in
        let sort_cost sub (e : estimate) key =
          if sorted_on sub = Some key then 0.0
          else e.card *. (log (Float.max 2.0 e.card) /. log 2.0) *. c.Cost.sort_tuple_s
        in
        let card = card_of (refs_of plan) in
        {
          cost =
            l.cost +. r.cost
            +. sort_cost left l left_key
            +. sort_cost right r right_key
            +. ((l.card +. r.card) *. c.Cost.merge_tuple_s)
            +. (card *. c.Cost.output_tuple_s);
          card;
        }
    | Plan.Indexed_nl_join { outer; inner_table; inner_pred; _ } ->
        let o = go outer in
        let fetched =
          card_of (refs_of outer @ [ { Logical.table = inner_table; pred = Pred.True } ])
        in
        let card =
          card_of (refs_of outer @ [ { Logical.table = inner_table; pred = inner_pred } ])
        in
        {
          cost =
            o.cost
            +. (o.card *. c.Cost.index_probe_s)
            +. (fetched *. c.Cost.cpu_index_entry_s)
            +. rand_fetch fetched
            +. (card *. c.Cost.output_tuple_s);
          card;
        }
    | Plan.Star_semijoin { fact; fact_pred = _; dims } ->
        let dim_cost =
          List.fold_left
            (fun acc { Plan.dim_table; dim_pred; _ } ->
              let dim_rel = Catalog.find_table catalog dim_table in
              let dim_rows = float_of_int (Relation.row_count dim_rel) in
              let qualifying = dim_rows *. table_sel dim_table dim_pred in
              (* The per-dimension semijoin: probe the fact FK index once per
                 qualifying dimension key; total entries returned is the size
                 of fact >< dim_i. *)
              let semijoin_entries =
                card_of
                  [ { Logical.table = fact; pred = Pred.True };
                    { Logical.table = dim_table; pred = dim_pred } ]
              in
              let dim_read_pages, _, dim_read_rows =
                Chunk_scan.totals dim_rel dim_pred
              in
              acc
              +. seq_pages dim_read_pages
              +. (float_of_int dim_read_rows *. c.Cost.cpu_tuple_s)
              +. (qualifying *. c.Cost.hash_build_s)
              +. (qualifying *. c.Cost.index_probe_s)
              +. (semijoin_entries *. c.Cost.cpu_index_entry_s)
              +. (semijoin_entries *. c.Cost.cpu_tuple_s))
            0.0 dims
        in
        let fetched =
          card_of
            ({ Logical.table = fact; pred = Pred.True }
            :: List.map
                 (fun { Plan.dim_table; dim_pred; _ } ->
                   { Logical.table = dim_table; pred = dim_pred })
                 dims)
        in
        let card = card_of (refs_of plan) in
        {
          cost =
            dim_cost +. rand_fetch fetched
            +. (card *. float_of_int (List.length dims) *. c.Cost.hash_probe_s)
            +. (card *. c.Cost.output_tuple_s);
          card;
        }
    | Plan.Filter (input, _) ->
        let i = go input in
        let card = card_of (refs_of plan) in
        { cost = i.cost +. (i.card *. c.Cost.cpu_tuple_s); card }
    | Plan.Project (input, _) ->
        let i = go input in
        { cost = i.cost +. (i.card *. c.Cost.cpu_tuple_s); card = i.card }
    | Plan.Sort { input; _ } ->
        let i = go input in
        {
          cost =
            i.cost
            +. (i.card *. (log (Float.max 2.0 i.card) /. log 2.0) *. c.Cost.sort_tuple_s);
          card = i.card;
        }
    | Plan.Limit (input, n) ->
        let i = go input in
        let card = Float.min i.card (float_of_int n) in
        (* A pipeline of order-preserving operators over an ordered index
           scan streams without blocking, so a satisfied LIMIT stops
           pulling: only the surfaced fraction of the input is paid for.
           Any other input (sorts, joins, aggregates block; plain scans
           are cheap anyway) keeps the conservative full cost. *)
        let rec ordered_pipeline = function
          | Plan.Scan { access = Plan.Index_order _; _ } -> true
          | Plan.Filter (p, _) | Plan.Project (p, _) -> ordered_pipeline p
          | _ -> false
        in
        let input_cost =
          if ordered_pipeline input then
            i.cost *. Float.min 1.0 (float_of_int n /. Float.max 1.0 i.card)
          else i.cost
        in
        { cost = input_cost +. (card *. c.Cost.cpu_tuple_s); card }
    | Plan.Guard { input; _ } ->
        (* Guard cost model mirrors execution: one cpu-tuple inspection per
           materialized row. *)
        let i = go input in
        { cost = i.cost +. (i.card *. c.Cost.cpu_tuple_s); card = i.card }
    | Plan.Materialized { tuples; _ } ->
        { cost = 0.0; card = float_of_int (Array.length tuples) }
    | Plan.Aggregate { input; group_by; _ } ->
        let i = go input in
        let groups =
          if group_by = [] then 1.0
          else Float.max 1.0 (est.Cardinality.group_count (refs_of input) group_by)
        in
        {
          cost =
            i.cost +. (i.card *. c.Cost.hash_build_s) +. (groups *. c.Cost.output_tuple_s);
          card = groups;
        }
  in
  let e = go plan in
  { e with cost = e.cost *. scale }

let plan_cost catalog ?constants ?scale est plan =
  (estimate catalog ?constants ?scale est plan).cost

let cost_curve catalog ?constants ?scale ~selectivities plan =
  List.map
    (fun sel ->
      (sel, plan_cost catalog ?constants ?scale (Cardinality.fixed_selectivity catalog sel) plan))
    selectivities

let crossover_points catalog ?constants ?scale ?(grid = 400) plan_a plan_b =
  let point i = float_of_int i /. float_of_int grid in
  let sign i =
    let sel = point i in
    let est = Cardinality.fixed_selectivity catalog sel in
    compare
      (plan_cost catalog ?constants ?scale est plan_a)
      (plan_cost catalog ?constants ?scale est plan_b)
  in
  let crossings = ref [] in
  let previous = ref (sign 0) in
  for i = 1 to grid do
    let s = sign i in
    if s <> 0 && !previous <> 0 && s <> !previous then crossings := point i :: !crossings;
    if s <> 0 then previous := s
  done;
  List.rev !crossings
