open Rq_storage
open Rq_exec

let evaluate catalog (refs : Logical.table_ref list) =
  let names = List.map (fun (r : Logical.table_ref) -> r.Logical.table) refs in
  let root =
    match Rq_stats.Stats_store.root_of_expression catalog names with
    | Some root -> root
    | None -> (
        match names with
        | [ single ] -> single
        | _ -> invalid_arg "Naive.evaluate: expression has no unique root")
  in
  let pred_of table =
    match List.find_opt (fun (r : Logical.table_ref) -> String.equal r.Logical.table table) refs with
    | Some r -> r.Logical.pred
    | None -> Pred.True
  in
  (* Deterministic join order: BFS from the root along FK edges restricted to
     the query's tables. *)
  let order = ref [ root ] in
  let frontier = Queue.create () in
  Queue.add root frontier;
  while not (Queue.is_empty frontier) do
    let table = Queue.pop frontier in
    List.iter
      (fun (fk : Catalog.foreign_key) ->
        if List.mem fk.to_table names && not (List.mem fk.to_table !order) then begin
          order := !order @ [ fk.to_table ];
          Queue.add fk.to_table frontier
        end)
      (Catalog.foreign_keys_from catalog table)
  done;
  if List.length !order <> List.length names then
    invalid_arg "Naive.evaluate: tables not all reachable from the root";
  (* Per-table compiled predicates and pk lookup tables. *)
  let compiled = Hashtbl.create 8 in
  let lookups = Hashtbl.create 8 in
  List.iter
    (fun table ->
      let rel = Catalog.find_table catalog table in
      Hashtbl.replace compiled table (Pred.compile (Relation.schema rel) (pred_of table));
      if not (String.equal table root) then begin
        let pk =
          match Catalog.primary_key catalog table with
          | Some pk -> pk
          | None -> invalid_arg (Printf.sprintf "Naive.evaluate: %s has no primary key" table)
        in
        let pos = Schema.index_of (Relation.schema rel) pk in
        let lookup = Hashtbl.create (Relation.row_count rel) in
        Relation.iter (fun _ tup -> Hashtbl.replace lookup tup.(pos) tup) rel;
        Hashtbl.replace lookups table lookup
      end)
    !order;
  (* The FK edge used to reach each non-root table: (source table, source
     column). *)
  let incoming = Hashtbl.create 8 in
  List.iter
    (fun table ->
      List.iter
        (fun (fk : Catalog.foreign_key) ->
          if List.mem fk.to_table names && not (Hashtbl.mem incoming fk.to_table) then
            Hashtbl.replace incoming fk.to_table (fk.from_table, fk.from_column))
        (Catalog.foreign_keys_from catalog table))
    !order;
  let root_rel = Catalog.find_table catalog root in
  let root_check = Hashtbl.find compiled root in
  let out = ref [] in
  Relation.iter
    (fun _ root_tup ->
      if root_check root_tup then begin
        (* Extend the root tuple across every joined table; FK integrity
           means each step matches exactly one row or the row is dropped. *)
        let parts = Hashtbl.create 8 in
        Hashtbl.replace parts root root_tup;
        let ok = ref true in
        List.iter
          (fun table ->
            if !ok && not (String.equal table root) then begin
              let src_table, src_col = Hashtbl.find incoming table in
              match Hashtbl.find_opt parts src_table with
              | None -> ok := false
              | Some src_tup ->
                  let src_schema = Relation.schema (Catalog.find_table catalog src_table) in
                  let key = src_tup.(Schema.index_of src_schema src_col) in
                  (match Hashtbl.find_opt (Hashtbl.find lookups table) key with
                  | Some tup when Hashtbl.find compiled table tup ->
                      Hashtbl.replace parts table tup
                  | Some _ | None -> ok := false)
            end)
          !order;
        if !ok then
          out := Array.concat (List.map (fun table -> Hashtbl.find parts table) !order) :: !out
      end)
    root_rel;
  let schema =
    List.fold_left
      (fun acc table ->
        let s = Schema.qualify table (Relation.schema (Catalog.find_table catalog table)) in
        match acc with None -> Some s | Some a -> Some (Schema.concat a s))
      None !order
    |> Option.get
  in
  { Executor.schema; tuples = Array.of_list (List.rev !out) }

let cardinality catalog refs = Array.length (evaluate catalog refs).Executor.tuples

let selectivity catalog (refs : Logical.table_ref list) =
  let names = List.map (fun (r : Logical.table_ref) -> r.Logical.table) refs in
  let root =
    match Rq_stats.Stats_store.root_of_expression catalog names with
    | Some root -> root
    | None -> List.hd names
  in
  let root_rows = Relation.row_count (Catalog.find_table catalog root) in
  if root_rows = 0 then 0.0
  else float_of_int (cardinality catalog refs) /. float_of_int root_rows

let evaluate_query catalog (q : Logical.t) =
  let joined = evaluate catalog q.Logical.tables in
  let apply_projection (res : Executor.result) =
    match q.Logical.projection with
    | None -> res
    | Some cols ->
        let positions = List.map (Schema.index_of res.Executor.schema) cols in
        {
          Executor.schema = Schema.project res.Executor.schema cols;
          tuples =
            Array.map
              (fun tup -> Array.of_list (List.map (fun p -> tup.(p)) positions))
              res.Executor.tuples;
        }
  in
  let apply_order_limit (res : Executor.result) =
    let ordered =
      match q.Logical.order_by with
      | [] -> res
      | keys ->
          let positions =
            List.map
              (fun { Plan.sort_column; descending } ->
                (Schema.index_of res.Executor.schema sort_column, descending))
              keys
          in
          let indexed = Array.mapi (fun i tup -> (i, tup)) res.Executor.tuples in
          Array.sort
            (fun (i, a) (j, b) ->
              let rec go = function
                | [] -> Int.compare i j
                | (pos, descending) :: rest ->
                    let c = Value.compare a.(pos) b.(pos) in
                    if c <> 0 then if descending then -c else c else go rest
              in
              go positions)
            indexed;
          { res with Executor.tuples = Array.map snd indexed }
    in
    match q.Logical.limit with
    | Some n ->
        {
          ordered with
          Executor.tuples =
            Array.sub ordered.Executor.tuples 0
              (max 0 (min n (Array.length ordered.Executor.tuples)));
        }
    | None -> ordered
  in
  if q.Logical.aggs = [] && q.Logical.group_by = [] then
    apply_order_limit (apply_projection joined)
  else begin
    (* Delegate grouping to the executor over the materialized join: register
       it as a temporary table under a scratch catalog.  The temp table's
       columns are already qualified, so the scan must not re-qualify them —
       hence the identity-qualification via already-dotted names. *)
    let scratch = Catalog.create () in
    let temp = Executor.result_to_relation ~name:"naive_temp" joined in
    Catalog.add_table scratch temp;
    let meter = Cost.create () in
    let plan =
      Plan.Aggregate
        {
          input = Plan.Scan { table = "naive_temp"; access = Plan.Seq_scan; pred = Pred.True };
          group_by = q.Logical.group_by;
          aggs = q.Logical.aggs;
        }
    in
    apply_order_limit (Executor.run scratch meter plan)
  end
