open Rq_storage
open Rq_exec

type table_ref = { table : string; pred : Pred.t }

type semijoin = { outer_key : string; inner : table_ref; inner_key : string }

type scalar = {
  s_expr : Expr.t;
  s_cmp : Pred.cmp;
  s_agg : Plan.agg_fn;
  s_table : string;
  s_pred : Pred.t;
}

type t = {
  tables : table_ref list;
  residual : Pred.t;
  semijoins : semijoin list;
  scalars : scalar list;
  group_by : string list;
  aggs : Plan.agg list;
  projection : string list option;
  order_by : Plan.sort_key list;
  limit : int option;
  index_order : bool;
}

let scan ?(pred = Pred.True) table = { table; pred }

let query ?(residual = Pred.True) ?(semijoins = []) ?(scalars = []) ?(group_by = [])
    ?(aggs = []) ?projection ?(order_by = []) ?limit ?(index_order = false) tables =
  {
    tables;
    residual;
    semijoins;
    scalars;
    group_by;
    aggs;
    projection;
    order_by;
    limit;
    index_order;
  }

let table_names t = List.map (fun r -> r.table) t.tables

let join_edges catalog t =
  let names = table_names t in
  List.filter
    (fun (fk : Catalog.foreign_key) ->
      List.mem fk.from_table names && List.mem fk.to_table names)
    (Catalog.all_foreign_keys catalog)

let root catalog t =
  Rq_stats.Stats_store.root_of_expression catalog (table_names t)

let is_connected catalog names =
  match names with
  | [] -> false
  | first :: _ ->
      let edges =
        List.filter
          (fun (fk : Catalog.foreign_key) ->
            List.mem fk.from_table names && List.mem fk.to_table names)
          (Catalog.all_foreign_keys catalog)
      in
      let visited = Hashtbl.create 8 in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.add visited name ();
          List.iter
            (fun (fk : Catalog.foreign_key) ->
              if String.equal fk.from_table name then visit fk.to_table;
              if String.equal fk.to_table name then visit fk.from_table)
            edges
        end
      in
      visit first;
      List.for_all (Hashtbl.mem visited) names

let rec validate catalog t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.tables = [] then fail "query references no tables"
  else begin
    let names = table_names t in
    let dup =
      List.exists
        (fun n -> List.length (List.filter (String.equal n) names) > 1)
        names
    in
    if dup then fail "self-joins are not supported (duplicate table reference)"
    else begin
      let missing =
        List.find_opt (fun n -> Catalog.find_table_opt catalog n = None) names
      in
      match missing with
      | Some n -> fail "unknown table %s" n
      | None -> (
          let bad_pred =
            List.find_opt
              (fun { table; pred } ->
                let schema = Relation.schema (Catalog.find_table catalog table) in
                List.exists (fun c -> not (Schema.mem schema c)) (Pred.columns pred))
              t.tables
          in
          match bad_pred with
          | Some { table; _ } -> fail "predicate on %s references unknown columns" table
          | None ->
              if not (is_connected catalog names) then
                fail "join graph is not connected"
              else if List.length names > 1 && root catalog t = None then
                fail "join graph has no unique root relation"
              else validate_extensions catalog t)
    end
  end

(* Checks on the widened surface: the residual predicate, semijoins and
   scalar subqueries all reference base tables through qualified
   ["table.column"] names (residual/outer side) or a private inner table
   with unqualified names (semijoin/scalar inner side). *)
and validate_extensions catalog t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let names = table_names t in
  let qualified_ok c =
    match String.index_opt c '.' with
    | None -> false
    | Some i ->
        let table = String.sub c 0 i in
        let column = String.sub c (i + 1) (String.length c - i - 1) in
        List.mem table names
        && Schema.mem (Relation.schema (Catalog.find_table catalog table)) column
  in
  let inner_ok ({ table; pred } : table_ref) k =
    match Catalog.find_table_opt catalog table with
    | None -> fail "unknown table %s" table
    | Some rel ->
        let schema = Relation.schema rel in
        if List.exists (fun c -> not (Schema.mem schema c)) (Pred.columns pred) then
          fail "predicate on %s references unknown columns" table
        else k schema
  in
  match List.find_opt (fun c -> not (qualified_ok c)) (Pred.columns t.residual) with
  | Some c -> fail "residual predicate references unknown column %s" c
  | None -> (
      let bad_semijoin =
        List.find_map
          (fun { outer_key; inner; inner_key } ->
            if not (qualified_ok outer_key) then
              Some (Printf.sprintf "semijoin outer key %s is not a query column" outer_key)
            else if List.mem inner.table names then
              (* The lowered semijoin would re-scan a joined table and
                 collide on qualified column names (a disguised self-join). *)
              Some
                (Printf.sprintf "semijoin over %s, which is already joined in FROM"
                   inner.table)
            else
              match
                inner_ok inner (fun schema ->
                    if Schema.mem schema inner_key then Ok ()
                    else fail "semijoin inner key %s.%s does not exist" inner.table inner_key)
              with
              | Ok () -> None
              | Error e -> Some e)
          t.semijoins
      in
      match bad_semijoin with
      | Some e -> Error e
      | None -> (
          let agg_columns = function
            | Plan.Count_star -> []
            | Plan.Count e | Plan.Sum e | Plan.Avg e | Plan.Min e | Plan.Max e ->
                Expr.columns e
          in
          let bad_scalar =
            List.find_map
              (fun { s_expr; s_cmp = _; s_agg; s_table; s_pred } ->
                match
                  inner_ok { table = s_table; pred = s_pred } (fun schema ->
                      let inner_cols =
                        List.map (fun c -> s_table ^ "." ^ c)
                          (List.map (fun (col : Schema.column) -> col.Schema.name)
                             (Schema.columns schema))
                      in
                      match
                        List.find_opt
                          (fun c -> not (List.mem c inner_cols))
                          (agg_columns s_agg)
                      with
                      | Some c -> fail "scalar aggregate references %s outside %s" c s_table
                      | None -> (
                          match
                            List.find_opt (fun c -> not (qualified_ok c)) (Expr.columns s_expr)
                          with
                          | Some c -> fail "scalar comparison references unknown column %s" c
                          | None -> Ok ()))
                with
                | Ok () -> None
                | Error e -> Some e)
              t.scalars
          in
          match bad_scalar with Some e -> Error e | None -> Ok ()))

let combined_predicate t =
  Pred.conj
    (List.map
       (fun { table; pred } -> Pred.rename_columns (fun c -> table ^ "." ^ c) pred)
       t.tables)

let connected_subsets catalog t =
  let names = Array.of_list (table_names t) in
  let n = Array.length names in
  let subsets = ref [] in
  (* n is small (paper queries join at most 4 tables), so enumerate all
     bitmasks. *)
  for mask = 1 to (1 lsl n) - 1 do
    let subset = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := names.(i) :: !subset
    done;
    if is_connected catalog !subset then
      subsets := List.sort String.compare !subset :: !subsets
  done;
  List.sort
    (fun a b ->
      let c = Int.compare (List.length a) (List.length b) in
      if c <> 0 then c else compare a b)
    !subsets

let pp fmt t =
  Format.fprintf fmt "SPJ{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " JOIN ")
       (fun fmt { table; pred } -> Format.fprintf fmt "%s[%a]" table Pred.pp pred))
    t.tables
