open Rq_storage
open Rq_exec

type table_ref = { table : string; pred : Pred.t }

type t = {
  tables : table_ref list;
  group_by : string list;
  aggs : Plan.agg list;
  projection : string list option;
  order_by : Plan.sort_key list;
  limit : int option;
}

let scan ?(pred = Pred.True) table = { table; pred }

let query ?(group_by = []) ?(aggs = []) ?projection ?(order_by = []) ?limit tables =
  { tables; group_by; aggs; projection; order_by; limit }

let table_names t = List.map (fun r -> r.table) t.tables

let join_edges catalog t =
  let names = table_names t in
  List.filter
    (fun (fk : Catalog.foreign_key) ->
      List.mem fk.from_table names && List.mem fk.to_table names)
    (Catalog.all_foreign_keys catalog)

let root catalog t =
  Rq_stats.Stats_store.root_of_expression catalog (table_names t)

let is_connected catalog names =
  match names with
  | [] -> false
  | first :: _ ->
      let edges =
        List.filter
          (fun (fk : Catalog.foreign_key) ->
            List.mem fk.from_table names && List.mem fk.to_table names)
          (Catalog.all_foreign_keys catalog)
      in
      let visited = Hashtbl.create 8 in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.add visited name ();
          List.iter
            (fun (fk : Catalog.foreign_key) ->
              if String.equal fk.from_table name then visit fk.to_table;
              if String.equal fk.to_table name then visit fk.from_table)
            edges
        end
      in
      visit first;
      List.for_all (Hashtbl.mem visited) names

let validate catalog t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.tables = [] then fail "query references no tables"
  else begin
    let names = table_names t in
    let dup =
      List.exists
        (fun n -> List.length (List.filter (String.equal n) names) > 1)
        names
    in
    if dup then fail "self-joins are not supported (duplicate table reference)"
    else begin
      let missing =
        List.find_opt (fun n -> Catalog.find_table_opt catalog n = None) names
      in
      match missing with
      | Some n -> fail "unknown table %s" n
      | None -> (
          let bad_pred =
            List.find_opt
              (fun { table; pred } ->
                let schema = Relation.schema (Catalog.find_table catalog table) in
                List.exists (fun c -> not (Schema.mem schema c)) (Pred.columns pred))
              t.tables
          in
          match bad_pred with
          | Some { table; _ } -> fail "predicate on %s references unknown columns" table
          | None ->
              if not (is_connected catalog names) then
                fail "join graph is not connected"
              else if List.length names > 1 && root catalog t = None then
                fail "join graph has no unique root relation"
              else Ok ())
    end
  end

let combined_predicate t =
  Pred.conj
    (List.map
       (fun { table; pred } -> Pred.rename_columns (fun c -> table ^ "." ^ c) pred)
       t.tables)

let connected_subsets catalog t =
  let names = Array.of_list (table_names t) in
  let n = Array.length names in
  let subsets = ref [] in
  (* n is small (paper queries join at most 4 tables), so enumerate all
     bitmasks. *)
  for mask = 1 to (1 lsl n) - 1 do
    let subset = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := names.(i) :: !subset
    done;
    if is_connected catalog !subset then
      subsets := List.sort String.compare !subset :: !subsets
  done;
  List.sort
    (fun a b ->
      let c = Int.compare (List.length a) (List.length b) in
      if c <> 0 then c else compare a b)
    !subsets

let pp fmt t =
  Format.fprintf fmt "SPJ{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " JOIN ")
       (fun fmt { table; pred } -> Format.fprintf fmt "%s[%a]" table Pred.pp pred))
    t.tables
