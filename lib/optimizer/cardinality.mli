(** Pluggable cardinality estimation (the module boundary the paper keeps:
    everything else in the optimizer is estimator-agnostic).

    Two production estimators are provided — the paper's robust
    sampling-based procedure and the conventional histogram + attribute
    value independence baseline — plus an exact oracle for tests, and an
    AVI-over-samples hybrid for the ablation that isolates the value of
    join synopses. *)

open Rq_storage
open Rq_exec

type t = {
  name : string;
  expression_cardinality : Logical.table_ref list -> float;
      (** estimated row count of an SPJ expression *)
  table_selectivity : table:string -> Pred.t -> float;
      (** estimated selectivity of a predicate over one table (used to cost
          index probes and dimension filters) *)
  group_count : Logical.table_ref list -> string list -> float;
      (** estimated number of GROUP BY groups over qualified columns *)
}

val expression_selectivity : Catalog.t -> t -> Logical.table_ref list -> float
(** [expression_cardinality] divided by the root relation's size. *)

type memo
(** A shared evidence/quantile/group-count memo for the robust estimator.
    Evidence is keyed structurally — synopsis root, per-table statistics
    version, canonical predicate rendering — so a memo may safely outlive
    the store it first served: a statistics change ({!Rq_stats.Fault.apply},
    a maintenance refresh) moves the table version and keys past entries
    out, never serving stale counts.  Both the evidence and group caches
    are bounded LRUs. *)

val make_memo :
  ?obs:Rq_obs.Recorder.t -> ?capacity:int -> ?kernel:bool ->
  Rq_core.Robust_estimator.t -> memo
(** [capacity] bounds each LRU (default 512); evictions are recorded as
    [Cache_evicted] trace events on [obs].  [kernel] (default [true])
    selects the bitset evidence kernel; [false] forces the reference
    row-scan path (bit-identical answers, used by the differential oracle
    and the benchmark baseline). *)

val robust_with : memo:memo -> Rq_stats.Stats_store.t -> Rq_core.Robust_estimator.t -> t
(** {!robust} over an explicit (shareable) memo. *)

val robust : ?kernel:bool -> Rq_stats.Stats_store.t -> Rq_core.Robust_estimator.t -> t
(** The paper's estimator: evidence from the covering join synopsis,
    Bayesian posterior, quantile at the estimator's confidence threshold.
    Fallbacks (Sec. 3.5): per-table synopses combined under AVI when no
    covering synopsis exists; the magic distribution when a table has no
    statistics at all.  Group counts use GEE over the synopsis, streamed
    from the kernel's satisfaction bitmap.  [kernel] as in
    {!make_memo}. *)

val degrading :
  ?log:(Rq_stats.Fault.event -> unit) ->
  ?obs:Rq_obs.Recorder.t ->
  Rq_stats.Stats_store.t -> Rq_core.Robust_estimator.t -> t
(** The graceful-degradation chain: for each estimation request, use the
    best statistics tier that passes {!Rq_stats.Fault.verify_synopsis} —
    covering join synopsis (the robust estimator at full strength), then
    per-table samples combined under AVI, then histograms, then the magic
    constants.  Every tier transition emits one structured
    {!Rq_stats.Fault.event} through [log] (deduplicated per subsystem;
    mirrored as a [Degraded] trace event when [?obs] is given) instead of
    raising, so damaged statistics degrade estimates but never abort
    optimization.  Health verdicts are memoized per root, and tier-1
    answers share one evidence/quantile memo with the internal robust
    estimator, so healthy-stats requests cost the same as {!robust}'s. *)

val histogram_avi : Rq_stats.Stats_store.t -> t
(** The baseline: per-column equi-depth histograms combined under the AVI
    and containment assumptions (FK joins are cardinality-preserving, so an
    expression's cardinality is the root size times the product of
    per-table selectivities). *)

val sample_avi : Rq_stats.Stats_store.t -> Rq_core.Robust_estimator.t -> t
(** Ablation estimator: per-table samples interpreted robustly, but
    combined across tables with AVI (i.e. join synopses disabled). *)

val sample_ml : Rq_stats.Stats_store.t -> t
(** Ablation estimator: the same join synopses, interpreted with the
    maximum-likelihood k/n of Acharya et al. [1] instead of a posterior
    quantile — isolating the value of the Bayesian interpretation from
    the value of sampling.  At k = 0 it estimates exactly zero, so it
    always gambles on empty evidence. *)

val oracle : Catalog.t -> t
(** Exact answers via {!Naive}; for tests and error measurement only. *)

val fixed_selectivity : Catalog.t -> float -> t
(** An estimator that answers every selectivity question with the given
    constant.  Costing a plan under a sweep of these traces out its cost
    as a function of assumed selectivity — the engine-level analogue of
    the paper's Figure-1 curves, used to locate real plan crossover
    points (see {!Costing} and the [profile] CLI command). *)
