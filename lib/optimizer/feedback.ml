(* Observed-cardinality feedback cache: what guard violations teach the
   optimizer about the running query. *)

type t = { observations : (string list, float) Hashtbl.t }

let create () = { observations = Hashtbl.create 8 }

let key tables = List.sort_uniq String.compare tables

let record t ~tables rows = Hashtbl.replace t.observations (key tables) rows

let observed t ~tables = Hashtbl.find_opt t.observations (key tables)

let observations t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.observations []
  |> List.sort compare

let names_of refs = List.map (fun (r : Logical.table_ref) -> r.Logical.table) refs

let with_feedback t (base : Cardinality.t) =
  let expression_cardinality refs =
    let names = key (names_of refs) in
    match Hashtbl.find_opt t.observations names with
    | Some rows -> rows
    | None -> (
        (* No exact observation: anchor the base estimate to the largest
           observed sub-expression.  The correction ratio observed/estimated
           on the subset transfers multiplicatively to the superset — the
           classic feedback heuristic. *)
        let subset_of a b = List.for_all (fun x -> List.mem x b) a in
        let best =
          Hashtbl.fold
            (fun k v acc ->
              if subset_of k names && List.length k < List.length names then
                match acc with
                | Some (bk, _) when List.length bk >= List.length k -> acc
                | _ -> Some (k, v)
              else acc)
            t.observations None
        in
        match best with
        | None -> base.Cardinality.expression_cardinality refs
        | Some (sub_tables, observed_rows) ->
            let sub_refs =
              List.filter
                (fun (r : Logical.table_ref) -> List.mem r.Logical.table sub_tables)
                refs
            in
            let est_sub = base.Cardinality.expression_cardinality sub_refs in
            let est_full = base.Cardinality.expression_cardinality refs in
            if est_sub <= 0.0 then est_full
            else est_full *. (observed_rows /. est_sub))
  in
  {
    base with
    Cardinality.name = base.Cardinality.name ^ "+feedback";
    expression_cardinality;
    (* table_selectivity deliberately NOT overridden: costing passes partial
       per-probe predicates through it, which an expression-level observation
       cannot answer. *)
  }
