type stats = { hits : int; misses : int; invalidations : int; evictions : int }

let stats_to_json s =
  Rq_obs.Json.Obj
    [
      ("hits", Rq_obs.Json.Num (float_of_int s.hits));
      ("misses", Rq_obs.Json.Num (float_of_int s.misses));
      ("invalidations", Rq_obs.Json.Num (float_of_int s.invalidations));
      ("evictions", Rq_obs.Json.Num (float_of_int s.evictions));
    ]

let lookups s = s.hits + s.misses + s.invalidations

let hit_rate s =
  let total = lookups s in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

type entry = {
  decision : Optimizer.decision;
  table_versions : (string * int) list;  (* versions of the query's tables at plan time *)
  mutable last_used : int;               (* LRU clock tick of the last hit/insert *)
}

type t = {
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    entries = Hashtbl.create (min capacity 64);
    clock = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.entries

let stats t =
  { hits = t.hits; misses = t.misses; invalidations = t.invalidations; evictions = t.evictions }

let clear t = Hashtbl.reset t.entries

(* The stored key is the caller's fingerprint plus the estimator's name.
   [Fingerprint.of_logical ?estimator] already folds the identity in when
   the caller passes it; appending it here too means a caller that forgot
   cannot be served a plan chosen by a different estimator (confidence
   thresholds still rely on the fingerprint — the estimator object does
   not expose them). *)
let compose_key opt ~fingerprint =
  fingerprint ^ "\x00est:" ^ (Optimizer.estimator opt).Cardinality.name

let tick t =
  t.clock <- t.clock + 1;
  t.clock

type outcome = Hit | Miss | Invalidated

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Invalidated -> "invalidated"

let record ?obs ~version ~fingerprint outcome_label =
  match obs with
  | None -> ()
  | Some r ->
      Rq_obs.Recorder.record r
        (Rq_obs.Trace.Plan_cache { outcome = outcome_label; fingerprint; version })

let entry_valid store entry =
  List.for_all
    (fun (table, v) -> Rq_stats.Stats_store.table_version store table = v)
    entry.table_versions

let evict_lru ?obs t ~version =
  if Hashtbl.length t.entries >= t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (key, entry))
        t.entries None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove t.entries key;
        t.evictions <- t.evictions + 1;
        record ?obs ~version ~fingerprint:key "evicted"
  end

let insert ?obs t opt ~key ~version query decision =
  evict_lru ?obs t ~version;
  let store = Optimizer.stats opt in
  let table_versions =
    List.map
      (fun table -> (table, Rq_stats.Stats_store.table_version store table))
      (Logical.table_names query)
  in
  Hashtbl.replace t.entries key { decision; table_versions; last_used = tick t }

let find_or_optimize ?obs ?budget t opt ~fingerprint query =
  let key = compose_key opt ~fingerprint in
  let store = Optimizer.stats opt in
  let version = Rq_stats.Stats_store.version store in
  let optimize_and_insert outcome =
    match Optimizer.optimize ?budget opt query with
    | Error _ as e -> e
    | Ok decision ->
        insert ?obs t opt ~key ~version query decision;
        Ok (decision, outcome)
  in
  match Hashtbl.find_opt t.entries key with
  | Some entry when entry_valid store entry ->
      entry.last_used <- tick t;
      t.hits <- t.hits + 1;
      record ?obs ~version ~fingerprint:key "hit";
      Ok (entry.decision, Hit)
  | Some _ ->
      (* The statistics moved under the entry: serving it could replay a
         plan chosen against a world that no longer exists.  Drop it and
         re-optimize — the cache can delay work, never correctness. *)
      Hashtbl.remove t.entries key;
      t.invalidations <- t.invalidations + 1;
      record ?obs ~version ~fingerprint:key "invalidated";
      optimize_and_insert Invalidated
  | None ->
      t.misses <- t.misses + 1;
      record ?obs ~version ~fingerprint:key "miss";
      optimize_and_insert Miss

let mem t opt ~fingerprint = Hashtbl.mem t.entries (compose_key opt ~fingerprint)
