type stats = { hits : int; misses : int; invalidations : int; evictions : int }

let stats_to_json s =
  Rq_obs.Json.Obj
    [
      ("hits", Rq_obs.Json.Num (float_of_int s.hits));
      ("misses", Rq_obs.Json.Num (float_of_int s.misses));
      ("invalidations", Rq_obs.Json.Num (float_of_int s.invalidations));
      ("evictions", Rq_obs.Json.Num (float_of_int s.evictions));
    ]

let zero_stats = { hits = 0; misses = 0; invalidations = 0; evictions = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    invalidations = a.invalidations + b.invalidations;
    evictions = a.evictions + b.evictions;
  }

let lookups s = s.hits + s.misses + s.invalidations

let hit_rate s =
  let total = lookups s in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

type entry = {
  decision : Optimizer.decision;
  table_versions : (string * int) list;  (* versions of the query's tables at plan time *)
}

(* The entry store is an {!Rq_stats.Lru}: recency, capacity eviction and
   the eviction counter live there (O(1), no victim scan); this module
   adds the plan-cache semantics on top — stats-versioned invalidation and
   the hit/miss/invalidated outcome counters, which are not the LRU's own
   (a lookup that finds a version-stale entry is an invalidation, not a
   hit or a miss). *)
type t = {
  lru : entry Rq_stats.Lru.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  { lru = Rq_stats.Lru.create ~capacity (); hits = 0; misses = 0; invalidations = 0 }

let capacity t = Rq_stats.Lru.capacity t.lru
let length t = Rq_stats.Lru.length t.lru

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    evictions = Rq_stats.Lru.evictions t.lru;
  }

let clear t = Rq_stats.Lru.clear t.lru

(* The stored key is the caller's fingerprint plus the estimator's name.
   [Fingerprint.of_logical ?estimator] already folds the identity in when
   the caller passes it; appending it here too means a caller that forgot
   cannot be served a plan chosen by a different estimator (confidence
   thresholds still rely on the fingerprint — the estimator object does
   not expose them). *)
let compose_key opt ~fingerprint =
  fingerprint ^ "\x00est:" ^ (Optimizer.estimator opt).Cardinality.name

type outcome = Hit | Miss | Invalidated

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Invalidated -> "invalidated"

let record ?obs ~version ~fingerprint outcome_label =
  match obs with
  | None -> ()
  | Some r ->
      Rq_obs.Recorder.record r
        (Rq_obs.Trace.Plan_cache { outcome = outcome_label; fingerprint; version })

let entry_valid store entry =
  List.for_all
    (fun (table, v) -> Rq_stats.Stats_store.table_version store table = v)
    entry.table_versions

let insert ?obs t opt ~key ~version query decision =
  let store = Optimizer.stats opt in
  let table_versions =
    List.map
      (fun table -> (table, Rq_stats.Stats_store.table_version store table))
      (Logical.table_names query)
  in
  (* The LRU evicts only when [key] is absent at capacity; re-inserting a
     live key refreshes it in place, so no innocent victim is dropped.
     The eviction hook is armed just for this insert so the trace event
     carries this lookup's store version. *)
  Rq_stats.Lru.set_on_evict t.lru (fun victim ->
      record ?obs ~version ~fingerprint:victim "evicted");
  Fun.protect
    ~finally:(fun () -> Rq_stats.Lru.set_on_evict t.lru (fun _ -> ()))
    (fun () -> Rq_stats.Lru.insert t.lru key { decision; table_versions })

let find_or_optimize ?obs ?budget t opt ~fingerprint query =
  let key = compose_key opt ~fingerprint in
  let store = Optimizer.stats opt in
  let version = Rq_stats.Stats_store.version store in
  let optimize_and_insert outcome =
    match Optimizer.optimize ?budget opt query with
    | Error _ as e -> e
    | Ok decision ->
        insert ?obs t opt ~key ~version query decision;
        Ok (decision, outcome)
  in
  match Rq_stats.Lru.find t.lru key with
  | Some entry when entry_valid store entry ->
      t.hits <- t.hits + 1;
      record ?obs ~version ~fingerprint:key "hit";
      Ok (entry.decision, Hit)
  | Some _ ->
      (* The statistics moved under the entry: serving it could replay a
         plan chosen against a world that no longer exists.  Drop it and
         re-optimize — the cache can delay work, never correctness. *)
      Rq_stats.Lru.remove t.lru key;
      t.invalidations <- t.invalidations + 1;
      record ?obs ~version ~fingerprint:key "invalidated";
      optimize_and_insert Invalidated
  | None ->
      t.misses <- t.misses + 1;
      record ?obs ~version ~fingerprint:key "miss";
      optimize_and_insert Miss

let mem t opt ~fingerprint = Rq_stats.Lru.mem t.lru (compose_key opt ~fingerprint)

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)
(* ------------------------------------------------------------------ *)

module Sharded = struct
  type shard = t
  type nonrec t = { shards : shard array }

  let create ?(capacity = 256) ~shards () =
    if shards <= 0 then invalid_arg "Plan_cache.Sharded.create: shards must be positive";
    if capacity <= 0 then
      invalid_arg "Plan_cache.Sharded.create: capacity must be positive";
    let per_shard = max 1 (capacity / shards) in
    { shards = Array.init shards (fun _ -> create ~capacity:per_shard ()) }

  let shards t = Array.length t.shards

  let shard t i =
    let n = Array.length t.shards in
    t.shards.(((i mod n) + n) mod n)

  let length t = Array.fold_left (fun acc s -> acc + length s) 0 t.shards

  let stats t =
    Array.fold_left (fun acc s -> add_stats acc (stats s)) zero_stats t.shards

  let clear t = Array.iter clear t.shards
end
