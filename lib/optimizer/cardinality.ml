open Rq_storage
open Rq_exec
open Rq_stats
open Rq_core

type t = {
  name : string;
  expression_cardinality : Logical.table_ref list -> float;
  table_selectivity : table:string -> Pred.t -> float;
  group_count : Logical.table_ref list -> string list -> float;
}

let names_of refs = List.map (fun (r : Logical.table_ref) -> r.Logical.table) refs

let root_of catalog refs =
  match names_of refs with
  | [ single ] -> Some single
  | names -> Stats_store.root_of_expression catalog names

let root_size catalog refs =
  match root_of catalog refs with
  | Some root -> float_of_int (Relation.row_count (Catalog.find_table catalog root))
  | None ->
      (* Disconnected or rootless expressions do not arise from validated
         queries; degrade to the largest table. *)
      List.fold_left
        (fun acc name ->
          Float.max acc (float_of_int (Relation.row_count (Catalog.find_table catalog name))))
        0.0 (names_of refs)

let expression_selectivity catalog t refs =
  let size = root_size catalog refs in
  if size <= 0.0 then 0.0 else t.expression_cardinality refs /. size

let qualified_pred (r : Logical.table_ref) =
  Pred.rename_columns (fun c -> r.Logical.table ^ "." ^ c) r.Logical.pred

(* ------------------------------------------------------------------ *)
(* Robust (the paper's estimator)                                      *)
(* ------------------------------------------------------------------ *)

type memo = {
  memo_evidence : version:int -> Join_synopsis.t -> Pred.t -> int * int;
  memo_estimate : successes:int -> trials:int -> float;
  memo_groups :
    version:int -> Join_synopsis.t -> pred:Pred.t -> columns:string list ->
    population_size:int -> float;
}

let default_memo_capacity = 512

(* Optimization repeatedly asks for the same (synopsis, predicate)
   evidence — once per access path, once per DP subset visit.  The counts
   are memoized under a *structural* key: the synopsis root, the
   per-table statistics version, and the predicate's canonical rendering
   (the same normalization the plan-cache fingerprints use), so conjunct
   order and comparison commutation hit one entry, and any statistics
   change that touches the root — fault injection, maintenance refresh —
   keys differently and can never serve stale evidence, even when one
   memo outlives the store it first saw (Sec. 6.1 points at exactly this
   optimization).  Both caches are bounded LRUs so a long-lived memo
   under predicate churn stays small; evictions surface as
   [Cache_evicted] trace events when a recorder is attached.  One memo is
   shared by every path of an estimator that consults synopses —
   [degrading]'s tier-1 answers and its internal robust estimator hit the
   same entries. *)
let make_memo ?obs ?(capacity = default_memo_capacity) ?(kernel = true) estimator =
  let record_eviction cache key =
    match obs with
    | None -> ()
    | Some r -> Rq_obs.Recorder.record r (Rq_obs.Trace.Cache_evicted { cache; key })
  in
  let evidence_cache : (int * int) Lru.t =
    Lru.create ~on_evict:(record_eviction "evidence-memo") ~capacity ()
  in
  let groups_cache : float Lru.t =
    Lru.create ~on_evict:(record_eviction "group-memo") ~capacity ()
  in
  (* Quantile inversion costs microseconds; the distinct (k, n) pairs seen
     during one optimization are few. *)
  let quantile_cache : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  let memo_estimate ~successes ~trials =
    match Hashtbl.find_opt quantile_cache (successes, trials) with
    | Some s -> s
    | None ->
        let s = Robust_estimator.estimate estimator ~successes ~trials in
        Hashtbl.replace quantile_cache (successes, trials) s;
        s
  in
  let structural_key ~version syn pred =
    Join_synopsis.root syn ^ "@" ^ string_of_int version ^ "|" ^ Pred.render pred
  in
  let count_evidence syn pred =
    if kernel then Join_synopsis.evidence syn pred else Join_synopsis.evidence_scan syn pred
  in
  let memo_evidence ~version syn pred =
    Lru.find_or_add evidence_cache (structural_key ~version syn pred) (fun () ->
        count_evidence syn pred)
  in
  let memo_groups ~version syn ~pred ~columns ~population_size =
    let key =
      structural_key ~version syn pred
      ^ "|g:" ^ String.concat "," columns
      ^ "|N:" ^ string_of_int population_size
    in
    Lru.find_or_add groups_cache key (fun () ->
        let k, _ = memo_evidence ~version syn pred in
        if k = 0 then 1.0
        else begin
          let sample = Join_synopsis.sample syn in
          let matching =
            (* Streamed, never materialized: off the kernel's bitmap, or
               (scan mode) filtered with the sample's cached checker. *)
            if kernel then Join_synopsis.matching_rows syn pred
            else Seq.filter (Sample.checker sample pred) (Relation.to_seq (Sample.rows sample))
          in
          Distinct.estimate_groups_seq
            ~schema:(Relation.schema (Sample.rows sample))
            ~columns ~population_size matching
        end)
  in
  { memo_evidence; memo_estimate; memo_groups }

let robust_with ~memo stats estimator =
  let catalog = Stats_store.catalog stats in
  let cached_estimate = memo.memo_estimate in
  let cached_evidence = memo.memo_evidence in
  let version_of root = Stats_store.table_version stats root in
  let table_selectivity ~table pred =
    match Stats_store.synopsis stats ~root:table with
    | Some syn ->
        let qualified = Pred.rename_columns (fun c -> table ^ "." ^ c) pred in
        let k, n = cached_evidence ~version:(version_of table) syn qualified in
        cached_estimate ~successes:k ~trials:n
    | None -> Robust_estimator.estimate_no_statistics estimator
  in
  let expression_cardinality refs =
    let names = names_of refs in
    match Stats_store.synopsis_for stats names with
    | Some syn ->
        let pred = Pred.conj (List.map qualified_pred refs) in
        let k, n = cached_evidence ~version:(version_of (Join_synopsis.root syn)) syn pred in
        cached_estimate ~successes:k ~trials:n *. float_of_int (Join_synopsis.root_size syn)
    | None ->
        (* Sec.-3.5 fallback: no covering synopsis.  Estimate each table's
           predicate from its own sample (robustly) and combine under AVI +
           containment; the error is confined to this expression. *)
        let sel =
          List.fold_left
            (fun acc (r : Logical.table_ref) ->
              acc *. table_selectivity ~table:r.Logical.table r.Logical.pred)
            1.0 refs
        in
        sel *. root_size catalog refs
  in
  let group_count refs group_by =
    let names = names_of refs in
    match Stats_store.synopsis_for stats names with
    | Some syn ->
        let pred = Pred.conj (List.map qualified_pred refs) in
        let population = int_of_float (Float.max 1.0 (expression_cardinality refs)) in
        memo.memo_groups
          ~version:(version_of (Join_synopsis.root syn))
          syn ~pred ~columns:group_by ~population_size:population
    | None -> Float.max 1.0 (expression_cardinality refs *. 0.1)
  in
  { name = "robust-sampling"; expression_cardinality; table_selectivity; group_count }

let robust ?kernel stats estimator =
  robust_with ~memo:(make_memo ?kernel estimator) stats estimator

(* ------------------------------------------------------------------ *)
(* Histogram + AVI (the baseline)                                      *)
(* ------------------------------------------------------------------ *)

let histogram_avi stats =
  let catalog = Stats_store.catalog stats in
  let table_selectivity ~table pred = Stats_store.histogram_selectivity stats ~table pred in
  let expression_cardinality refs =
    let sel =
      List.fold_left
        (fun acc (r : Logical.table_ref) ->
          acc *. table_selectivity ~table:r.Logical.table r.Logical.pred)
        1.0 refs
    in
    sel *. root_size catalog refs
  in
  let group_count refs group_by =
    (* Product of per-column distinct counts, capped by the expression's
       own cardinality — the conventional estimate. *)
    let card = expression_cardinality refs in
    let distinct_product =
      List.fold_left
        (fun acc qualified_col ->
          match String.index_opt qualified_col '.' with
          | None -> acc
          | Some i ->
              let table = String.sub qualified_col 0 i in
              let column =
                String.sub qualified_col (i + 1) (String.length qualified_col - i - 1)
              in
              (match Stats_store.histogram stats ~table ~column with
              | Some h -> acc *. float_of_int (max 1 (Histogram.estimated_distinct h))
              | None -> acc *. 10.0))
        1.0 group_by
    in
    Float.max 1.0 (Float.min card distinct_product)
  in
  { name = "histogram-avi"; expression_cardinality; table_selectivity; group_count }

(* ------------------------------------------------------------------ *)
(* Graceful degradation: sample -> synopsis -> histogram -> magic      *)
(* ------------------------------------------------------------------ *)

let degrading ?(log = fun _ -> ()) ?obs stats estimator =
  let catalog = Stats_store.catalog stats in
  (* Health verdict per synopsis root, memoized: a broken synopsis is
     reported once per optimization, not once per cost_fn call. *)
  let health : (string, Join_synopsis.t option) Hashtbl.t = Hashtbl.create 8 in
  let logged : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let log_once (event : Fault.event) =
    let key = Fault.kind_to_string event.Fault.kind ^ "|" ^ event.Fault.subsystem in
    if not (Hashtbl.mem logged key) then begin
      Hashtbl.replace logged key ();
      log event;
      match obs with
      | None -> ()
      | Some r ->
          Rq_obs.Recorder.record r
            (Rq_obs.Trace.Degraded
               {
                 kind = Fault.kind_to_string event.Fault.kind;
                 subsystem = event.Fault.subsystem;
                 detail = event.Fault.detail;
               })
    end
  in
  let healthy_synopsis root =
    match Hashtbl.find_opt health root with
    | Some verdict -> verdict
    | None ->
        let verdict =
          match Stats_store.synopsis stats ~root with
          | None ->
              log_once
                {
                  Fault.kind = Fault.Missing;
                  subsystem = "synopsis:" ^ root;
                  detail = "no synopsis for root";
                };
              None
          | Some syn -> (
              match Fault.verify_synopsis catalog syn with
              | Ok () ->
                  (match obs with
                  | None -> ()
                  | Some r ->
                      Join_synopsis.set_on_evict syn (fun key ->
                          Rq_obs.Recorder.record r
                            (Rq_obs.Trace.Cache_evicted
                               { cache = "bitmap-index:" ^ root; key })));
                  Some syn
              | Error event ->
                  log_once event;
                  None)
        in
        Hashtbl.replace health root verdict;
        verdict
  in
  (* One memo serves both the tier-1 direct answers below and the internal
     robust estimator, so the degrading chain pays the same (cached)
     per-request cost as [robust] when statistics are healthy. *)
  let memo = make_memo ?obs estimator in
  let robust_est = robust_with ~memo stats estimator in
  let hist_est = histogram_avi stats in
  (* Tier 3->4 boundary: histogram_selectivity silently substitutes magic
     constants for missing histograms; detect and report that so the chain's
     last hop is visible in the event log. *)
  let histogram_tier ~table pred =
    let missing =
      List.filter
        (fun column -> Stats_store.histogram stats ~table ~column = None)
        (List.sort_uniq String.compare (Pred.columns pred))
    in
    (match missing with
    | [] -> ()
    | cols ->
        log_once
          {
            Fault.kind = Fault.Missing;
            subsystem = "histogram:" ^ table;
            detail =
              Printf.sprintf "no histogram for %s; using magic constants"
                (String.concat ", " cols);
          });
    hist_est.table_selectivity ~table pred
  in
  let table_selectivity ~table pred =
    match healthy_synopsis table with
    | Some syn ->
        let qualified = Pred.rename_columns (fun c -> table ^ "." ^ c) pred in
        let k, n =
          memo.memo_evidence ~version:(Stats_store.table_version stats table) syn qualified
        in
        memo.memo_estimate ~successes:k ~trials:n
    | None -> if pred = Pred.True then 1.0 else histogram_tier ~table pred
  in
  let expression_cardinality refs =
    let names = names_of refs in
    let covering =
      match root_of catalog refs with
      | Some root -> (
          match healthy_synopsis root with
          | Some syn when Join_synopsis.covers syn names -> Some syn
          | _ -> None)
      | None -> None
    in
    match covering with
    | Some syn ->
        (* Tier 1: evidence from the covering join synopsis — the paper's
           estimator at full strength, through the shared memo. *)
        let pred = Pred.conj (List.map qualified_pred refs) in
        let k, n =
          memo.memo_evidence
            ~version:(Stats_store.table_version stats (Join_synopsis.root syn))
            syn pred
        in
        memo.memo_estimate ~successes:k ~trials:n
        *. float_of_int (Join_synopsis.root_size syn)
    | None ->
        (* Tiers 2-4: per-table estimates (each table's own best tier)
           combined under AVI + containment. *)
        let sel =
          List.fold_left
            (fun acc (r : Logical.table_ref) ->
              acc *. table_selectivity ~table:r.Logical.table r.Logical.pred)
            1.0 refs
        in
        sel *. root_size catalog refs
  in
  let group_count refs group_by =
    let names = names_of refs in
    match root_of catalog refs with
    | Some root
      when (match healthy_synopsis root with
           | Some syn -> Join_synopsis.covers syn names
           | None -> false) ->
        robust_est.group_count refs group_by
    | _ -> hist_est.group_count refs group_by
  in
  { name = "degrading-chain"; expression_cardinality; table_selectivity; group_count }

(* ------------------------------------------------------------------ *)
(* Ablation: robust per-table samples, AVI across tables               *)
(* ------------------------------------------------------------------ *)

let sample_avi stats estimator =
  let catalog = Stats_store.catalog stats in
  let robust_est = robust stats estimator in
  let table_selectivity = robust_est.table_selectivity in
  let expression_cardinality refs =
    let sel =
      List.fold_left
        (fun acc (r : Logical.table_ref) ->
          acc *. table_selectivity ~table:r.Logical.table r.Logical.pred)
        1.0 refs
    in
    sel *. root_size catalog refs
  in
  {
    name = "sample-avi";
    expression_cardinality;
    table_selectivity;
    group_count = robust_est.group_count;
  }

(* ------------------------------------------------------------------ *)
(* Ablation: join synopses with maximum-likelihood interpretation      *)
(* ------------------------------------------------------------------ *)

let sample_ml stats =
  let catalog = Stats_store.catalog stats in
  let ml_of_evidence (k, n) =
    if n <= 0 then Robust_estimator.magic_selectivity
    else Robust_estimator.maximum_likelihood_estimate ~successes:k ~trials:n
  in
  let table_selectivity ~table pred =
    match Stats_store.synopsis stats ~root:table with
    | Some syn ->
        ml_of_evidence
          (Join_synopsis.evidence syn (Pred.rename_columns (fun c -> table ^ "." ^ c) pred))
    | None -> Robust_estimator.magic_selectivity
  in
  let expression_cardinality refs =
    let names = names_of refs in
    match Stats_store.synopsis_for stats names with
    | Some syn ->
        let pred = Pred.conj (List.map qualified_pred refs) in
        ml_of_evidence (Join_synopsis.evidence syn pred)
        *. float_of_int (Join_synopsis.root_size syn)
    | None ->
        List.fold_left
          (fun acc (r : Logical.table_ref) ->
            acc *. table_selectivity ~table:r.Logical.table r.Logical.pred)
          1.0 refs
        *. root_size catalog refs
  in
  let group_count refs _ = Float.max 1.0 (expression_cardinality refs *. 0.1) in
  { name = "sample-ml"; expression_cardinality; table_selectivity; group_count }

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let fixed_selectivity catalog sel =
  if sel < 0.0 || sel > 1.0 then invalid_arg "Cardinality.fixed_selectivity: outside [0,1]";
  let expression_cardinality refs =
    (* Unpredicated expressions keep their true size (FK joins preserve the
       root); the constant only stands in for predicate selectivity. *)
    let has_predicate =
      List.exists (fun (r : Logical.table_ref) -> r.Logical.pred <> Pred.True) refs
    in
    if has_predicate then sel *. root_size catalog refs else root_size catalog refs
  in
  {
    name = Printf.sprintf "fixed-selectivity(%g)" sel;
    expression_cardinality;
    table_selectivity = (fun ~table:_ pred -> if pred = Pred.True then 1.0 else sel);
    group_count = (fun refs _ -> Float.max 1.0 (0.1 *. expression_cardinality refs));
  }

let oracle catalog =
  let expression_cardinality refs = float_of_int (Naive.cardinality catalog refs) in
  let table_selectivity ~table pred =
    let rel = Catalog.find_table catalog table in
    let rows = Relation.row_count rel in
    if rows = 0 then 0.0
    else
      float_of_int (Relation.filter_count rel (Pred.compile (Relation.schema rel) pred))
      /. float_of_int rows
  in
  let group_count refs group_by =
    let result = Naive.evaluate catalog refs in
    let positions = List.map (Schema.index_of result.Executor.schema) group_by in
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun tup -> Hashtbl.replace seen (List.map (fun p -> tup.(p)) positions) ())
      result.Executor.tuples;
    float_of_int (max 1 (Hashtbl.length seen))
  in
  { name = "oracle"; expression_cardinality; table_selectivity; group_count }
