(** Mid-query re-optimization via cardinality guards (Kabra–DeWitt style,
    adapted to the full-materialization executor).

    [execute] optimizes the query, instruments the chosen plan with
    {!Rq_exec.Plan.Guard} checkpoints at every materialization point below
    the join-tree root, and runs it.  When a guard's q-error bound is
    exceeded the executor aborts the remaining pipeline; the observed row
    count is recorded in a {!Feedback} cache, a continuation plan is grown
    from the already-materialized intermediate under the feedback-corrected
    estimator, and execution resumes over it.  Every attempt charges the
    same cost meter, so the reported snapshot includes the wasted work — the
    rescue must genuinely beat the bad plan to show a lower metered cost. *)

open Rq_exec

type event = {
  label : string;          (** the fired guard's subplan shape *)
  expected_rows : float;
  actual_rows : int;
  q_error : float;
  replanned : bool;
      (** [true] = a continuation was found and executed; [false] = the
          original plan was completed guard-free (re-optimization budget
          exhausted or remainder not plannable) *)
}

type outcome = {
  result : Executor.result;
  snapshot : Cost.snapshot;   (** includes every aborted attempt's work *)
  initial_plan : Plan.t;      (** the optimizer's original choice *)
  final_plan : Plan.t;        (** what ultimately produced the result (guard-free) *)
  events : event list;        (** guard firings, in order *)
  reoptimizations : int;
}

val instrument : ?estimator:Cardinality.t -> threshold:float -> Optimizer.t -> Plan.t -> Plan.t
(** Add guards (max q-error [threshold]) at every scan and join output below
    the join-tree root; expected row counts come from [estimator] (default:
    the optimizer's).  Existing guards are replaced; [Materialized] leaves
    are never guarded. *)

val execute_plan :
  ?threshold:float -> ?max_reopts:int -> ?obs:Rq_obs.Recorder.t ->
  ?mode:Executor.mode ->
  Optimizer.t -> Logical.t -> Plan.t -> outcome
(** Instrument the given starting plan and run it with guard-driven
    re-optimization.  The starting plan need not be the optimizer's choice —
    experiments use this to force a known-bad plan and watch the guards
    rescue it.  [threshold] (default 4.0, must be >= 1.0) is the q-error a
    checkpoint tolerates before aborting; [max_reopts] (default 2) bounds
    replanning rounds, after which the current plan finishes guard-free.

    Under the default streaming [mode] an overflowing guard fires mid-stream
    with the input only partially consumed: the observed cardinality fed back
    to the estimator is extrapolated from the consumed fraction, and when the
    interrupted source is a resumable sequential scan the continuation is
    grown from [Append [Materialized prefix; Scan_resume tail]] — the pages
    already read are not re-charged.  Non-resumable partial prefixes trigger
    a full replan under the corrected estimator instead.

    With [?obs], each attempt executes under a root span
    (["attempt1"], ["attempt2"], ..., ["attemptN:final"] for a guard-free
    completion) so aborted prefixes' cost deltas stay attributed to the
    attempt that wasted them, and [Reopt_planned] / [Reopt_adopted] /
    [Reopt_abandoned] trace events narrate the replanning decisions. *)

val execute :
  ?threshold:float -> ?max_reopts:int -> ?obs:Rq_obs.Recorder.t ->
  ?mode:Executor.mode ->
  Optimizer.t -> Logical.t ->
  (outcome, string) result
(** [execute_plan] starting from the optimizer's own choice.  [Error] only
    for queries that fail validation/optimization. *)

val render_events : event list -> string
(** One line per guard firing, for CLI and experiment output. *)
