(** EXPLAIN ANALYZE: per-node estimated vs. actual cardinalities.

    Walks a physical plan, costing each sub-plan with the active estimator
    and executing it to get the true row count, and renders the tree with
    the q-error (max(est/actual, actual/est)) per node — the standard way
    to see exactly where an estimator's assumptions break.  Execution is
    re-run per node, which is fine at the scales this engine targets. *)

open Rq_storage
open Rq_exec

type node = {
  depth : int;
  label : string;           (** one-line operator description *)
  estimated_rows : float;
  actual_rows : int;
  q_error : float;          (** >= 1; 1 = perfect *)
}

val collect :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t ->
  Plan.t -> node list
(** Pre-order traversal. *)

val render :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t ->
  Plan.t -> string
(** The report, one line per node, plus total simulated execution time. *)
