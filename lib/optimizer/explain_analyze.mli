(** EXPLAIN ANALYZE: per-node estimated vs. actual cardinalities.

    Executes the (guard-stripped) plan exactly once under an
    {!Rq_obs.Recorder}, then walks the plan and the resulting span tree in
    parallel: each node's actual row count and cost delta come from its
    span, and its estimate from the active estimator, rendered with the
    q-error (max(est/actual, actual/est)) per node — the standard way to
    see exactly where an estimator's assumptions break. *)

open Rq_storage
open Rq_exec

type node = {
  depth : int;
  label : string;           (** one-line operator description *)
  estimated_rows : float;
  actual_rows : int;
  q_error : float;          (** >= 1; 1 = perfect *)
}

type report = {
  nodes : node list;        (** pre-order, guards transparent to execution *)
  snapshot : Cost.snapshot; (** the single execution's full meter *)
  spans : Rq_obs.Recorder.span list;
      (** the execution's span tree (one root); per-operator cost deltas *)
}

val analyze :
  Catalog.t ->
  ?constants:Cost.constants ->
  ?scale:float ->
  ?obs:Rq_obs.Recorder.t ->
  ?mode:Executor.mode ->
  Cardinality.t ->
  Plan.t ->
  report
(** One instrumented execution of [Plan.strip_guards plan] under [mode]
    (default streaming; both engines produce the same span tree shape on a
    guard-free full drain).  When [?obs] is supplied the execution's spans
    and events are also appended to it (for [--trace]/[--metrics-json]
    output sharing one recorder). *)

val collect :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t ->
  Plan.t -> node list
(** [(analyze ...).nodes] — pre-order traversal, single execution. *)

val render_report : report -> string
(** The table, one line per node, plus total simulated execution time —
    all from [report]'s single execution. *)

val render :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t ->
  Plan.t -> string
(** [render_report (analyze ...)]. *)
