(** The query optimizer: enumerate, estimate, pick the cheapest plan.

    The estimator is a plug-in ({!Cardinality.t}); everything else —
    enumeration, costing, search — is shared between the robust and
    baseline configurations, mirroring the paper's claim that the robust
    procedure drops into an existing optimizer by changing only the
    cardinality estimation module. *)

open Rq_exec

type t

val create :
  ?constants:Cost.constants -> ?scale:float -> Rq_stats.Stats_store.t ->
  Cardinality.t -> t

val robust :
  ?constants:Cost.constants -> ?scale:float ->
  ?confidence:Rq_core.Confidence.t -> ?prior:Rq_core.Prior.t ->
  Rq_stats.Stats_store.t -> t
(** Robust-sampling configuration; confidence defaults to the system-wide
    moderate (80%) setting. *)

val baseline :
  ?constants:Cost.constants -> ?scale:float -> Rq_stats.Stats_store.t -> t
(** Histogram + AVI configuration. *)

val estimator : t -> Cardinality.t
val stats : t -> Rq_stats.Stats_store.t
val scale : t -> float
val constants : t -> Cost.constants

type decision = {
  plan : Plan.t;          (** the chosen complete plan (incl. aggregation) *)
  estimated_cost : float; (** simulated seconds, at the active estimator *)
  estimated_card : float; (** estimated output rows *)
  alternatives : (string * float) list;
      (** every top-level join-plan candidate with its estimated cost,
          cheapest first ([Plan.describe] labels) *)
  degraded : Rq_stats.Fault.event list;
      (** degradations hit during this optimization; currently the
          budget-exhaustion event (estimator-tier events flow through the
          [log] callback of {!Cardinality.degrading}) *)
  rewrites : (string * int) list;
      (** rewrite rules applied before enumeration (rule name ->
          application count); empty when [rewrite:false] *)
}

val optimize :
  ?budget:int ->
  ?rewrite:bool ->
  ?record:(Rq_obs.Trace.event -> unit) ->
  t ->
  Logical.t ->
  (decision, string) result
(** Validates, rewrites ({!Rewrite.rewrite}, on by default — pass
    [~rewrite:false] to skip), enumerates, costs, picks.  [Error] reports
    validation failures, and queries still carrying scalar subqueries when
    the rewrite pass is disabled.  [record] receives the
    [Rewrite_applied] trace events.  [budget] caps the number of
    candidate-cost evaluations the enumeration may spend; when exceeded,
    the search is abandoned and the deterministic left-deep fallback plan
    ({!Enumerate.left_deep_plan}) is returned instead, with a
    [Budget_exceeded] event in [degraded] — an optimizer that is late is a
    failure mode, not an excuse to not answer. *)

val optimize_exn :
  ?budget:int ->
  ?rewrite:bool ->
  ?record:(Rq_obs.Trace.event -> unit) ->
  t ->
  Logical.t ->
  decision

val explain : t -> Logical.t -> (string, string) result
(** Human-readable report: chosen plan tree, estimated cost/cardinality,
    and the rejected alternatives. *)
