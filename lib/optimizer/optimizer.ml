open Rq_exec

type t = {
  stats : Rq_stats.Stats_store.t;
  estimator : Cardinality.t;
  constants : Cost.constants;
  scale : float;
}

let create ?(constants = Cost.default_constants) ?(scale = 1.0) stats estimator =
  { stats; estimator; constants; scale }

let robust ?constants ?scale ?confidence ?prior stats =
  let confidence =
    match confidence with
    | Some c -> c
    | None -> Rq_core.Confidence.(resolve default_setting)
  in
  let est = Rq_core.Robust_estimator.create ?prior ~confidence () in
  create ?constants ?scale stats (Cardinality.robust stats est)

let baseline ?constants ?scale stats =
  create ?constants ?scale stats (Cardinality.histogram_avi stats)

let estimator t = t.estimator
let scale t = t.scale
let constants t = t.constants

type decision = {
  plan : Plan.t;
  estimated_cost : float;
  estimated_card : float;
  alternatives : (string * float) list;
}

let optimize t query =
  let catalog = Rq_stats.Stats_store.catalog t.stats in
  match Logical.validate catalog query with
  | Error _ as e -> e
  | Ok () ->
      let cost_fn plan =
        Costing.plan_cost catalog ~constants:t.constants ~scale:t.scale t.estimator plan
      in
      (* Candidates are complete join plans; aggregation cost is identical
         across them (same input cardinality), so ranking before or after
         wrapping agrees — we rank the wrapped plans to keep the invariant
         obvious. *)
      let wrapped =
        List.map (Enumerate.wrap_top query) (Enumerate.join_plans catalog ~cost_fn query)
      in
      (match wrapped with
      | [] -> Error "no candidate plans (missing indexes or disconnected join graph?)"
      | first :: rest ->
          let best =
            List.fold_left (fun acc p -> if cost_fn p < cost_fn acc then p else acc) first rest
          in
          let estimate =
            Costing.estimate catalog ~constants:t.constants ~scale:t.scale t.estimator best
          in
          let alternatives =
            List.map (fun p -> (Plan.describe p, cost_fn p)) wrapped
            |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
          in
          Ok
            {
              plan = best;
              estimated_cost = estimate.Costing.cost;
              estimated_card = estimate.Costing.card;
              alternatives;
            })

let optimize_exn t query =
  match optimize t query with
  | Ok d -> d
  | Error msg -> invalid_arg ("Optimizer.optimize_exn: " ^ msg)

let explain t query =
  match optimize t query with
  | Error _ as e -> e
  | Ok d ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Format.fprintf fmt "estimator: %s@." t.estimator.Cardinality.name;
      Format.fprintf fmt "estimated cost: %.3f s, estimated rows: %.1f@." d.estimated_cost
        d.estimated_card;
      Format.fprintf fmt "plan:@.%a" Plan.pp d.plan;
      Format.fprintf fmt "alternatives:@.";
      List.iter
        (fun (label, cost) -> Format.fprintf fmt "  %-40s %.3f s@." label cost)
        d.alternatives;
      Format.pp_print_flush fmt ();
      Ok (Buffer.contents buf)
