open Rq_exec

type t = {
  stats : Rq_stats.Stats_store.t;
  estimator : Cardinality.t;
  constants : Cost.constants;
  scale : float;
}

let create ?(constants = Cost.default_constants) ?(scale = 1.0) stats estimator =
  { stats; estimator; constants; scale }

let robust ?constants ?scale ?confidence ?prior stats =
  let confidence =
    match confidence with
    | Some c -> c
    | None -> Rq_core.Confidence.(resolve default_setting)
  in
  let est = Rq_core.Robust_estimator.create ?prior ~confidence () in
  create ?constants ?scale stats (Cardinality.robust stats est)

let baseline ?constants ?scale stats =
  create ?constants ?scale stats (Cardinality.histogram_avi stats)

let estimator t = t.estimator
let stats t = t.stats
let scale t = t.scale
let constants t = t.constants

type decision = {
  plan : Plan.t;
  estimated_cost : float;
  estimated_card : float;
  alternatives : (string * float) list;
  degraded : Rq_stats.Fault.event list;
  rewrites : (string * int) list;
}

(* Internal: unwound when the enumeration budget runs out. *)
exception Budget_hit

let optimize ?budget ?(rewrite = true) ?record t query =
  let catalog = Rq_stats.Stats_store.catalog t.stats in
  match Logical.validate catalog query with
  | Error _ as e -> e
  | Ok () ->
      let query, rewrites =
        if rewrite then
          let q, report = Rewrite.rewrite ?record catalog query in
          (q, report.Rewrite.applied)
        else (query, [])
      in
      if query.Logical.scalars <> [] then
        Error "scalar subqueries require the rewrite pass (rewrite:false given)"
      else
      let raw_cost_fn plan =
        Costing.plan_cost catalog ~constants:t.constants ~scale:t.scale t.estimator plan
      in
      (* The budget is counted in cost_fn invocations — the unit of
         enumeration work (every candidate inspected costs exactly one). *)
      let calls = ref 0 in
      let cost_fn plan =
        incr calls;
        (match budget with Some b when !calls > b -> raise Budget_hit | _ -> ());
        raw_cost_fn plan
      in
      let degraded = ref [] in
      (* Candidates are complete join plans; aggregation cost is identical
         across them (same input cardinality), so ranking before or after
         wrapping agrees — we rank the wrapped plans to keep the invariant
         obvious. *)
      let wrapped =
        try
          List.map (Enumerate.wrap_top catalog query)
            (Enumerate.join_plans catalog ~cost_fn query)
        with Budget_hit -> (
          degraded :=
            [
              {
                Rq_stats.Fault.kind = Rq_stats.Fault.Budget_exceeded;
                subsystem = "optimizer";
                detail =
                  Printf.sprintf
                    "enumeration stopped after %d cost evaluations; using left-deep fallback"
                    (Option.value budget ~default:0);
              };
            ];
          match Enumerate.left_deep_plan catalog query with
          | Some p -> [ Enumerate.wrap_top catalog query p ]
          | None -> [])
      in
      (match wrapped with
      | [] -> Error "no candidate plans (missing indexes or disconnected join graph?)"
      | first :: rest ->
          (* Ranking uses the raw cost function: the fallback plan must still
             be costable after the budget is spent. *)
          let best =
            List.fold_left
              (fun acc p -> if raw_cost_fn p < raw_cost_fn acc then p else acc)
              first rest
          in
          let estimate =
            Costing.estimate catalog ~constants:t.constants ~scale:t.scale t.estimator best
          in
          let alternatives =
            List.map (fun p -> (Plan.describe p, raw_cost_fn p)) wrapped
            |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
          in
          Ok
            {
              plan = best;
              estimated_cost = estimate.Costing.cost;
              estimated_card = estimate.Costing.card;
              alternatives;
              degraded = !degraded;
              rewrites;
            })

let optimize_exn ?budget ?rewrite ?record t query =
  match optimize ?budget ?rewrite ?record t query with
  | Ok d -> d
  | Error msg -> invalid_arg ("Optimizer.optimize_exn: " ^ msg)

let explain t query =
  match optimize t query with
  | Error _ as e -> e
  | Ok d ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Format.fprintf fmt "estimator: %s@." t.estimator.Cardinality.name;
      Format.fprintf fmt "estimated cost: %.3f s, estimated rows: %.1f@." d.estimated_cost
        d.estimated_card;
      Format.fprintf fmt "plan:@.%a" Plan.pp d.plan;
      Format.fprintf fmt "alternatives:@.";
      List.iter
        (fun (label, cost) -> Format.fprintf fmt "  %-40s %.3f s@." label cost)
        d.alternatives;
      Format.pp_print_flush fmt ();
      Ok (Buffer.contents buf)
