(** Plan cost estimation.

    Mirrors the executor's cost accounting, with estimated cardinalities in
    place of observed ones.  Every operator's estimated cost is monotone
    non-decreasing in the cardinalities of its inputs — the assumption
    (paper Sec. 3.1.1, footnote 2) under which percentile-of-selectivity
    transfers to percentile-of-cost.

    Costing consults the cardinality estimator for three kinds of numbers:
    per-table predicate selectivities (access-path sizing), SPJ expression
    cardinalities (join sizing — where AVI and robust estimates diverge),
    and group counts. *)

open Rq_storage
open Rq_exec

type estimate = { cost : float; card : float }
(** Simulated seconds and output rows. *)

val refs_of : Plan.t -> Logical.table_ref list
(** The logical table refs a subplan covers, with single-table filter
    conjuncts folded into the owning table's predicate.  [Materialized]
    leaves report the refs they were built from; guards are transparent.
    Used by the re-optimizer to key observed cardinalities. *)

val estimate :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t -> Plan.t ->
  estimate
(** [scale] is the same logical-size multiplier the executor uses. *)

val plan_cost :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Cardinality.t -> Plan.t ->
  float

val cost_curve :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float ->
  selectivities:float list -> Plan.t -> (float * float) list
(** [(assumed selectivity, estimated cost)] points for one plan, using
    {!Cardinality.fixed_selectivity} — the engine-level Figure-1 curve. *)

val crossover_points :
  Catalog.t -> ?constants:Cost.constants -> ?scale:float -> ?grid:int ->
  Plan.t -> Plan.t -> float list
(** Assumed selectivities (on a uniform grid of [grid] cells over [0,1],
    default 400) at which the cheaper of the two plans flips — the
    engine's own crossover points, the quantities the confidence
    threshold is calibrated against. *)
