(** Brute-force reference evaluation of logical queries.

    Joins are computed by primary-key lookup from the root outward, with no
    indexes, no cost model and no cleverness — the oracle that executor and
    optimizer tests compare against, and the source of exact cardinalities
    for estimation-error measurements. *)

open Rq_storage
open Rq_exec

val evaluate : Catalog.t -> Logical.table_ref list -> Executor.result
(** The SPJ join of the given tables with their predicates applied; output
    columns are qualified.  The tables must form a connected FK subgraph
    with a unique root. *)

val cardinality : Catalog.t -> Logical.table_ref list -> int

val selectivity : Catalog.t -> Logical.table_ref list -> float
(** Cardinality over root-relation size: the true selectivity the
    estimators are trying to recover. *)

val evaluate_query : Catalog.t -> Logical.t -> Executor.result
(** Full query evaluation including grouping, aggregation and projection
    (aggregation is delegated to the executor over the materialized join,
    which the aggregate-specific unit tests cover independently). *)
