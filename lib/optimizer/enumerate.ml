open Rq_storage
open Rq_exec

(* ------------------------------------------------------------------ *)
(* Sargable predicate analysis                                         *)
(* ------------------------------------------------------------------ *)

let range_of_conjunct = function
  | Pred.Between (Expr.Col c, lo_e, hi_e) -> (
      match (Expr.const_value lo_e, Expr.const_value hi_e) with
      | Some lo, Some hi -> Some (c, Some lo, Some hi)
      | _ -> None)
  | Pred.Cmp (op, Expr.Col c, e) -> (
      match Expr.const_value e with
      | None -> None
      | Some v -> (
          match op with
          | Pred.Eq -> Some (c, Some v, Some v)
          | Pred.Le | Pred.Lt -> Some (c, None, Some v)
          | Pred.Ge | Pred.Gt -> Some (c, Some v, None)
          | Pred.Ne -> None))
  | Pred.Cmp (op, e, Expr.Col c) -> (
      match Expr.const_value e with
      | None -> None
      | Some v -> (
          match op with
          | Pred.Eq -> Some (c, Some v, Some v)
          | Pred.Le | Pred.Lt -> Some (c, Some v, None)
          | Pred.Ge | Pred.Gt -> Some (c, None, Some v)
          | Pred.Ne -> None))
  | _ -> None

let tighten (lo1, hi1) (lo2, hi2) =
  let max_lo =
    match (lo1, lo2) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (if Value.compare a b >= 0 then a else b)
  in
  let min_hi =
    match (hi1, hi2) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (if Value.compare a b <= 0 then a else b)
  in
  (max_lo, min_hi)

let sargable_ranges pred =
  let ranges = List.filter_map range_of_conjunct (Pred.conjuncts pred) in
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (c, lo, hi) ->
      match Hashtbl.find_opt merged c with
      | None ->
          Hashtbl.replace merged c (lo, hi);
          order := c :: !order
      | Some existing -> Hashtbl.replace merged c (tighten existing (lo, hi)))
    ranges;
  List.rev_map (fun c -> let lo, hi = Hashtbl.find merged c in (c, lo, hi)) !order

(* ------------------------------------------------------------------ *)
(* Access paths                                                        *)
(* ------------------------------------------------------------------ *)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let without = subsets rest in
      without @ List.map (fun s -> x :: s) without

let access_paths ?ordered catalog ({ Logical.table; pred } : Logical.table_ref) =
  let scan access = Plan.Scan { table; access; pred } in
  let indexed_ranges =
    List.filter
      (fun (c, _, _) -> Catalog.find_index catalog ~table ~column:c <> None)
      (sargable_ranges pred)
  in
  let probes =
    List.map (fun (column, lo, hi) -> { Plan.column; lo; hi }) indexed_ranges
  in
  let singles = List.map (fun p -> scan (Plan.Index_range p)) probes in
  let intersections =
    subsets probes
    |> List.filter (fun s -> List.length s >= 2)
    |> List.map (fun s -> scan (Plan.Index_intersect s))
  in
  let ordered_scans =
    match ordered with
    | Some (column, descending) when Catalog.find_index catalog ~table ~column <> None ->
        [ scan (Plan.Index_order { column; descending }) ]
    | _ -> []
  in
  (scan Plan.Seq_scan :: (singles @ intersections)) @ ordered_scans

(* ------------------------------------------------------------------ *)
(* Join enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let ref_of query table =
  match
    List.find_opt
      (fun (r : Logical.table_ref) -> String.equal r.Logical.table table)
      query.Logical.tables
  with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Enumerate: table %s not in query" table)

(* FK edges crossing between two disjoint table sets, oriented as stored
   (from = FK side, to = PK side). *)
let crossing_edges catalog left right =
  List.filter
    (fun (fk : Catalog.foreign_key) ->
      (List.mem fk.from_table left && List.mem fk.to_table right)
      || (List.mem fk.from_table right && List.mem fk.to_table left))
    (Catalog.all_foreign_keys catalog)

let join_candidates catalog query ~left_tables ~left_plan ~right_tables ~right_plan =
  let edges = crossing_edges catalog left_tables right_tables in
  List.concat_map
    (fun (fk : Catalog.foreign_key) ->
      let fk_key = fk.from_table ^ "." ^ fk.from_column in
      let pk_key = fk.to_table ^ "." ^ fk.to_column in
      let left_key, right_key =
        if List.mem fk.from_table left_tables then (fk_key, pk_key) else (pk_key, fk_key)
      in
      let hash_both =
        [ Plan.Hash_join
            { build = left_plan; probe = right_plan; build_key = left_key; probe_key = right_key };
          Plan.Hash_join
            { build = right_plan; probe = left_plan; build_key = right_key; probe_key = left_key };
        ]
      in
      let merge =
        [ Plan.Merge_join { left = left_plan; right = right_plan; left_key; right_key } ]
      in
      let inl_into tables key plan other_plan other_key =
        (* Indexed NL join with a base table as the probed inner side. *)
        match tables with
        | [ table ] -> (
            let column =
              let prefix = table ^ "." in
              String.sub key (String.length prefix) (String.length key - String.length prefix)
            in
            match Catalog.find_index catalog ~table ~column with
            | Some _ ->
                ignore plan;
                [ Plan.Indexed_nl_join
                    {
                      outer = other_plan;
                      outer_key = other_key;
                      inner_table = table;
                      inner_key = column;
                      inner_pred = (ref_of query table).Logical.pred;
                    } ]
            | None -> [])
        | _ -> []
      in
      hash_both @ merge
      @ inl_into left_tables left_key left_plan right_plan right_key
      @ inl_into right_tables right_key right_plan left_plan left_key)
    edges

(* The naive plan of last resort: seq-scan leaves, hash joins, tables taken
   in query order following FK connectivity.  No cost function consulted, so
   it is constructible even when the optimization budget is exhausted. *)
let left_deep_plan catalog (query : Logical.t) =
  let scan (r : Logical.table_ref) =
    Plan.Scan { table = r.Logical.table; access = Plan.Seq_scan; pred = r.Logical.pred }
  in
  match query.Logical.tables with
  | [] -> None
  | [ single ] -> Some (scan single)
  | first :: rest ->
      let rec grow plan covered remaining =
        match remaining with
        | [] -> Some plan
        | _ -> (
            let joinable r =
              match crossing_edges catalog covered [ r.Logical.table ] with
              | [] -> None
              | fk :: _ -> Some (r, fk)
            in
            match List.find_map joinable remaining with
            | None -> None (* disconnected join graph *)
            | Some (r, fk) ->
                let fk_key = fk.Catalog.from_table ^ "." ^ fk.Catalog.from_column in
                let pk_key = fk.Catalog.to_table ^ "." ^ fk.Catalog.to_column in
                let probe_key, build_key =
                  if List.mem fk.Catalog.from_table covered then (fk_key, pk_key)
                  else (pk_key, fk_key)
                in
                let plan =
                  Plan.Hash_join { build = scan r; probe = plan; build_key; probe_key }
                in
                grow plan (r.Logical.table :: covered)
                  (List.filter
                     (fun (x : Logical.table_ref) ->
                       not (String.equal x.Logical.table r.Logical.table))
                     remaining))
      in
      grow (scan first) [ first.Logical.table ] rest

(* Splits of a sorted table list into two non-empty disjoint parts; the DP
   tries every split and keeps connected ones implicitly (unconnected parts
   have no crossing edge and produce no candidates). *)
let splits tables =
  let arr = Array.of_list tables in
  let n = Array.length arr in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    (* Avoid double-counting (S, S') and (S', S): keep masks containing the
       first element. *)
    if mask land 1 = 1 then begin
      let left = ref [] and right = ref [] in
      for i = n - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then left := arr.(i) :: !left
        else right := arr.(i) :: !right
      done;
      out := (!left, !right) :: !out
    end
  done;
  !out

let star_shape catalog query =
  let names = Logical.table_names query in
  match Rq_stats.Stats_store.root_of_expression catalog names with
  | None -> None
  | Some root ->
      let dims = List.filter (fun t -> not (String.equal t root)) names in
      let direct_child dim =
        match Catalog.fk_edge catalog ~from_table:root ~to_table:dim with
        | Some fk -> Catalog.find_index catalog ~table:root ~column:fk.from_column <> None
        | None -> false
      in
      if List.length dims >= 2 && List.for_all direct_child dims then Some (root, dims)
      else None

let star_plans catalog query ~cost_fn ~best_single =
  match star_shape catalog query with
  | None -> []
  | Some (root, dims) ->
      let fact_pred = (ref_of query root).Logical.pred in
      let star_dim dim =
        let fk = Option.get (Catalog.fk_edge catalog ~from_table:root ~to_table:dim) in
        { Plan.dim_table = dim; dim_pred = (ref_of query dim).Logical.pred; fact_fk = fk.from_column }
      in
      subsets dims
      |> List.filter (fun chosen -> chosen <> [])
      |> List.map (fun chosen ->
             let base =
               Plan.Star_semijoin { fact = root; fact_pred; dims = List.map star_dim chosen }
             in
             (* Hash-join the dimensions not covered by the semijoin on top
                (the Experiment-3 "hybrid" plans). *)
             let remaining = List.filter (fun d -> not (List.mem d chosen)) dims in
             List.fold_left
               (fun plan dim ->
                 let fk = Option.get (Catalog.fk_edge catalog ~from_table:root ~to_table:dim) in
                 let pk = Option.get (Catalog.primary_key catalog dim) in
                 Plan.Hash_join
                   {
                     build = best_single dim;
                     probe = plan;
                     build_key = dim ^ "." ^ pk;
                     probe_key = root ^ "." ^ fk.from_column;
                   })
               base remaining)
      |> List.sort (fun a b -> Float.compare (cost_fn a) (cost_fn b))

(* When the rewrite layer marked the query [index_order], offer an ordered
   index scan over the (single) table's ORDER BY column; [wrap_top] elides
   the Sort when this access path wins the costing race. *)
let ordered_access query =
  if not query.Logical.index_order then None
  else
    match (query.Logical.tables, query.Logical.order_by) with
    | [ { Logical.table; _ } ], [ { Plan.sort_column; descending } ] ->
        let prefix = table ^ "." in
        let pl = String.length prefix in
        if String.length sort_column > pl && String.sub sort_column 0 pl = prefix then
          Some (String.sub sort_column pl (String.length sort_column - pl), descending)
        else None
    | _ -> None

let join_plans catalog ~cost_fn query =
  let ordered = ordered_access query in
  let subsets_list = Logical.connected_subsets catalog query in
  let all_tables = List.sort String.compare (Logical.table_names query) in
  (* Canonical table-set encoding for the DP table: bit i = i-th table in
     sorted name order.  Subset keys become single ints, so the hot inner
     loop (one lookup per split side per subset) does integer hashing
     instead of allocating and structurally hashing string lists. *)
  let bit_of = Hashtbl.create 8 in
  List.iteri (fun i table -> Hashtbl.replace bit_of table (1 lsl i)) all_tables;
  let mask_of tables =
    List.fold_left (fun mask table -> mask lor Hashtbl.find bit_of table) 0 tables
  in
  let best : (int, Plan.t) Hashtbl.t = Hashtbl.create 16 in
  let pick_best plans =
    match plans with
    | [] -> None
    | _ ->
        Some
          (List.fold_left
             (fun acc p -> if cost_fn p < cost_fn acc then p else acc)
             (List.hd plans) (List.tl plans))
  in
  List.iter
    (fun tables ->
      let candidates =
        match tables with
        | [ single ] -> access_paths ?ordered catalog (ref_of query single)
        | _ ->
            List.concat_map
              (fun (left, right) ->
                match
                  (Hashtbl.find_opt best (mask_of left), Hashtbl.find_opt best (mask_of right))
                with
                | Some left_plan, Some right_plan ->
                    join_candidates catalog query ~left_tables:left ~left_plan
                      ~right_tables:right ~right_plan
                | _ -> [])
              (splits tables)
      in
      match pick_best candidates with
      | Some plan -> Hashtbl.replace best (mask_of tables) plan
      | None -> ())
    subsets_list;
  match all_tables with
  | [ single ] -> access_paths ?ordered catalog (ref_of query single)
  | _ -> (
      let dp_best = Hashtbl.find_opt best (mask_of all_tables) in
      let best_single table =
        match Hashtbl.find_opt best (Hashtbl.find bit_of table) with
        | Some plan -> plan
        | None ->
            Plan.Scan { table; access = Plan.Seq_scan; pred = (ref_of query table).Logical.pred }
      in
      let stars = star_plans catalog query ~cost_fn ~best_single in
      match dp_best with
      | Some plan -> plan :: stars
      | None -> stars)

let qualified_columns catalog table =
  List.map
    (fun (c : Schema.column) -> table ^ "." ^ c.Schema.name)
    (Schema.columns (Relation.schema (Catalog.find_table catalog table)))

(* A semijoin lowers onto existing plan nodes: the inner side becomes a
   distinct-key build (Aggregate with no aggregate functions), the outer
   plan probes it, and a Project restores the outer schema that the
   hash join widened.  Hash-join null-key skipping gives exactly the
   IN/EXISTS row-dropping semantics, and the distinct build keeps outer
   multiplicity. *)
let lower_semijoin plan outer_columns (sj : Logical.semijoin) =
  let inner_key = sj.Logical.inner.Logical.table ^ "." ^ sj.Logical.inner_key in
  let build =
    Plan.Aggregate
      {
        input =
          Plan.Scan
            {
              table = sj.Logical.inner.Logical.table;
              access = Plan.Seq_scan;
              pred = sj.Logical.inner.Logical.pred;
            };
        group_by = [ inner_key ];
        aggs = [];
      }
  in
  Plan.Project
    ( Plan.Hash_join
        { build; probe = plan; build_key = inner_key; probe_key = sj.Logical.outer_key },
      outer_columns )

let wrap_top catalog (query : Logical.t) plan =
  let with_residual =
    match query.Logical.residual with
    | Pred.True -> plan
    | residual -> Plan.Filter (plan, residual)
  in
  let with_semijoins =
    match query.Logical.semijoins with
    | [] -> with_residual
    | sjs ->
        let outer_columns =
          List.concat_map
            (fun (r : Logical.table_ref) -> qualified_columns catalog r.Logical.table)
            query.Logical.tables
        in
        List.fold_left (fun p sj -> lower_semijoin p outer_columns sj) with_residual sjs
  in
  let with_agg =
    if query.Logical.aggs = [] && query.Logical.group_by = [] then with_semijoins
    else
      Plan.Aggregate
        { input = with_semijoins; group_by = query.Logical.group_by; aggs = query.Logical.aggs }
  in
  let with_projection =
    match query.Logical.projection with
    | Some cols when query.Logical.aggs = [] && query.Logical.group_by = [] ->
        Plan.Project (with_agg, cols)
    | _ -> with_agg
  in
  (* The Sort is elided when the plan below already delivers the requested
     order: an ordered index scan matching the single sort key, with only
     order-preserving operators (Filter, Project) above it.  [Index.ordered_rids]
     tie-breaks identically to the stable Sort, so the outputs are equal,
     not merely equivalent. *)
  let sort_elided =
    query.Logical.semijoins = []
    &&
    match (query.Logical.order_by, plan) with
    | ( [ { Plan.sort_column; descending } ],
        Plan.Scan
          { table; access = Plan.Index_order { column = o_col; descending = o_desc }; _ } ) ->
        o_desc = descending && String.equal sort_column (table ^ "." ^ o_col)
    | _ -> false
  in
  let with_order =
    match query.Logical.order_by with
    | [] -> with_projection
    | _ when sort_elided -> with_projection
    | keys -> Plan.Sort { input = with_projection; keys }
  in
  match query.Logical.limit with
  | Some n -> Plan.Limit (with_order, n)
  | None -> with_order
