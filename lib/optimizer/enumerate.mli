(** Candidate physical-plan generation.

    Single tables get every access path the physical design supports (seq
    scan, single-index range, index intersection).  Joins are enumerated
    with a System-R-style dynamic program over connected subsets of the FK
    join graph, combining hash, merge and indexed-nested-loop joins; pure
    star queries additionally get the semijoin-intersection strategies of
    Experiment 3, including hybrids that semijoin a subset of the
    dimensions and hash-join the rest.

    The DP keeps the cheapest plan per subset under the supplied cost
    function, so the estimator being evaluated drives every choice — which
    is precisely the paper's experimental setup. *)

open Rq_storage
open Rq_exec

val sargable_ranges : Pred.t -> (string * Value.t option * Value.t option) list
(** Per-column closed ranges implied by the predicate's top-level
    conjuncts (equality becomes a degenerate range); multiple conjuncts on
    one column are intersected.  Only constant-foldable bounds qualify. *)

val access_paths :
  ?ordered:string * bool -> Catalog.t -> Logical.table_ref -> Plan.t list
(** All access paths for one table: always a seq scan; an index-range scan
    per indexed sargable column; an index intersection per subset (size >=
    2) of indexed sargable columns.  [?ordered:(column, descending)] adds
    an ordered index scan candidate when that column is indexed (used for
    ORDER BY/LIMIT pushdown). *)

val join_candidates :
  Catalog.t -> Logical.t ->
  left_tables:string list -> left_plan:Plan.t ->
  right_tables:string list -> right_plan:Plan.t -> Plan.t list
(** All join operators applicable between two disjoint subplans: hash joins
    both ways and a merge join per crossing FK edge, plus indexed NL joins
    when one side is a single indexed base table.  Exposed so the mid-query
    re-optimizer can grow a continuation plan from a materialized
    intermediate. *)

val left_deep_plan : Catalog.t -> Logical.t -> Plan.t option
(** The deterministic plan of last resort: seq-scan every table and hash-join
    them left-deep following FK connectivity in query order.  Consults no
    cost function and no statistics, so it is available when the
    optimization budget is exhausted.  [None] only for empty or disconnected
    queries. *)

val join_plans :
  Catalog.t -> cost_fn:(Plan.t -> float) -> Logical.t -> Plan.t list
(** Complete join plans (no aggregation/projection on top): the DP winner
    plus, for star-shaped queries, every semijoin/hybrid alternative.
    Singleton queries return all access paths. *)

val wrap_top : Catalog.t -> Logical.t -> Plan.t -> Plan.t
(** Adds everything above the join: residual filter, semijoin lowering
    (distinct-build hash joins plus a schema-restoring projection),
    aggregation, projection, ORDER BY and LIMIT.  The Sort is elided when
    the underlying plan is an ordered index scan that already delivers the
    single requested sort key. *)
