(** Candidate physical-plan generation.

    Single tables get every access path the physical design supports (seq
    scan, single-index range, index intersection).  Joins are enumerated
    with a System-R-style dynamic program over connected subsets of the FK
    join graph, combining hash, merge and indexed-nested-loop joins; pure
    star queries additionally get the semijoin-intersection strategies of
    Experiment 3, including hybrids that semijoin a subset of the
    dimensions and hash-join the rest.

    The DP keeps the cheapest plan per subset under the supplied cost
    function, so the estimator being evaluated drives every choice — which
    is precisely the paper's experimental setup. *)

open Rq_storage
open Rq_exec

val sargable_ranges : Pred.t -> (string * Value.t option * Value.t option) list
(** Per-column closed ranges implied by the predicate's top-level
    conjuncts (equality becomes a degenerate range); multiple conjuncts on
    one column are intersected.  Only constant-foldable bounds qualify. *)

val access_paths : Catalog.t -> Logical.table_ref -> Plan.t list
(** All access paths for one table: always a seq scan; an index-range scan
    per indexed sargable column; an index intersection per subset (size >=
    2) of indexed sargable columns. *)

val join_plans :
  Catalog.t -> cost_fn:(Plan.t -> float) -> Logical.t -> Plan.t list
(** Complete join plans (no aggregation/projection on top): the DP winner
    plus, for star-shaped queries, every semijoin/hybrid alternative.
    Singleton queries return all access paths. *)

val wrap_top : Logical.t -> Plan.t -> Plan.t
(** Adds the query's aggregation and projection above a join plan. *)
