(* The degradation-tier transition digest the fuzzer steers on: a compact
   token per robustness-relevant trace event, concatenated in stream order.
   Two runs that walked the same tier chain (synopsis -> histogram -> magic
   constants), fired the same guards and made the same reopt decisions get
   the same digest even when row counts and q-errors differ — those carry
   no *structural* information, so folding them in would make every mutant
   look novel and destroy the coverage signal. *)

open Rq_obs

let token = function
  | Trace.Degraded { kind; subsystem; _ } -> Some ("d:" ^ kind ^ ":" ^ subsystem)
  | Trace.Guard_ok _ -> Some "g+"
  | Trace.Guard_fired _ -> Some "g!"
  | Trace.Reopt_planned _ -> Some "r?"
  | Trace.Reopt_adopted _ -> Some "r+"
  | Trace.Reopt_abandoned _ -> Some "r-"
  | Trace.Plan_cache { outcome; _ } -> Some ("c:" ^ outcome)
  | Trace.Stats_refresh _ -> Some "s"
  | Trace.Rewrite_applied { rule; _ } -> Some ("w:" ^ rule)
  (* estimator-side cache pressure depends on memo capacity and visit
     order, not on the scenario under test: pure noise for coverage *)
  | Trace.Cache_evicted _ -> None

let of_events events = String.concat ";" (List.filter_map token events)

let of_recorder recorder = of_events (Recorder.events recorder)
