open Rq_exec

type node = {
  depth : int;
  label : string;
  estimated_rows : float;
  actual_rows : int;
  q_error : float;
}

type report = {
  nodes : node list;
  snapshot : Cost.snapshot;
  spans : Rq_obs.Recorder.span list;
}

let children = function
  | Plan.Scan _ | Plan.Scan_resume _ | Plan.Star_semijoin _ | Plan.Materialized _ -> []
  | Plan.Append parts -> parts
  | Plan.Hash_join { build; probe; _ } -> [ build; probe ]
  | Plan.Merge_join { left; right; _ } -> [ left; right ]
  | Plan.Indexed_nl_join { outer; _ } -> [ outer ]
  | Plan.Filter (input, _)
  | Plan.Project (input, _)
  | Plan.Sort { input; _ }
  | Plan.Limit (input, _)
  | Plan.Aggregate { input; _ } -> [ input ]
  | Plan.Guard { input; _ } -> [ input ]

let analyze catalog ?constants ?scale ?obs ?mode estimator plan =
  let recorder =
    match obs with Some r -> r | None -> Rq_obs.Recorder.create ()
  in
  let meter = Cost.create ?constants ?scale () in
  (* One instrumented, guard-free execution: the span tree supplies every
     node's actual row count and cost delta, so nothing re-runs per node and
     the report never aborts mid-analysis.  Whether each guard *would* fire
     is derived from the q-error below. *)
  ignore (Executor.run ~obs:recorder ?mode catalog meter (Plan.strip_guards plan));
  let root =
    match List.rev (Rq_obs.Recorder.roots recorder) with
    | span :: _ -> span
    | [] -> invalid_arg "Explain_analyze.analyze: execution produced no span"
  in
  let estimate plan =
    match plan with
    (* A guard's row of the report compares its *instrumentation-time*
       expectation against reality — that is the check it performs. *)
    | Plan.Guard { expected_rows; _ } -> expected_rows
    | _ -> (Costing.estimate catalog ?constants ?scale estimator plan).Costing.card
  in
  (* Walk the original plan and the span tree in parallel.  Guards are
     invisible to the stripped execution, so a guard row reuses its input's
     span; every other node's plan children pair positionally with its
     span's children (the executor spans each node in execution order, which
     matches [children] order). *)
  let rec walk depth plan (span : Rq_obs.Recorder.span) =
    let estimated = estimate plan in
    let actual = span.rows in
    let q = Plan.q_error ~expected:estimated ~actual in
    let label =
      match plan with
      | Plan.Guard { max_q_error; _ } when q > max_q_error ->
          Plan.node_label plan ^ " [FIRES]"
      | Plan.Guard _ -> Plan.node_label plan ^ " [pass]"
      | _ -> Plan.node_label plan
    in
    let node = { depth; label; estimated_rows = estimated; actual_rows = actual; q_error = q } in
    match plan with
    | Plan.Guard { input; _ } -> node :: walk (depth + 1) input span
    | _ ->
        node
        :: List.concat
             (List.map2 (walk (depth + 1)) (children plan) span.children)
  in
  {
    nodes = walk 0 plan root;
    snapshot = Cost.snapshot meter;
    spans = [ root ];
  }

let collect catalog ?constants ?scale estimator plan =
  (analyze catalog ?constants ?scale estimator plan).nodes

let render_report report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-52s %12s %12s %8s\n" "operator" "est_rows" "actual_rows" "q_error");
  List.iter
    (fun n ->
      let indent = String.make (2 * n.depth) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%-52s %12.1f %12d %8.2f\n" (indent ^ n.label) n.estimated_rows
           n.actual_rows n.q_error))
    report.nodes;
  Buffer.add_string buf
    (Printf.sprintf "total simulated execution: %.3f s\n" report.snapshot.Cost.seconds);
  Buffer.contents buf

let render catalog ?constants ?scale estimator plan =
  render_report (analyze catalog ?constants ?scale estimator plan)
