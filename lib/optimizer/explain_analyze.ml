open Rq_exec

type node = {
  depth : int;
  label : string;
  estimated_rows : float;
  actual_rows : int;
  q_error : float;
}

let node_label = function
  | Plan.Scan { table; access; _ } -> (
      match access with
      | Plan.Seq_scan -> Printf.sprintf "SeqScan(%s)" table
      | Plan.Index_range p -> Printf.sprintf "IndexRange(%s.%s)" table p.Plan.column
      | Plan.Index_intersect ps ->
          Printf.sprintf "IndexIntersect(%s: %s)" table
            (String.concat "," (List.map (fun p -> p.Plan.column) ps)))
  | Plan.Hash_join { build_key; probe_key; _ } ->
      Printf.sprintf "HashJoin(%s = %s)" build_key probe_key
  | Plan.Merge_join { left_key; right_key; _ } ->
      Printf.sprintf "MergeJoin(%s = %s)" left_key right_key
  | Plan.Indexed_nl_join { outer_key; inner_table; inner_key; _ } ->
      Printf.sprintf "IndexedNLJoin(%s = %s.%s)" outer_key inner_table inner_key
  | Plan.Star_semijoin { fact; dims; _ } ->
      Printf.sprintf "StarSemijoin(%s; %s)" fact
        (String.concat "," (List.map (fun d -> d.Plan.dim_table) dims))
  | Plan.Filter _ -> "Filter"
  | Plan.Project _ -> "Project"
  | Plan.Sort _ -> "Sort"
  | Plan.Limit (_, n) -> Printf.sprintf "Limit(%d)" n
  | Plan.Aggregate _ -> "Aggregate"
  | Plan.Guard { max_q_error; _ } -> Printf.sprintf "Guard(max q-error %.1f)" max_q_error
  | Plan.Materialized { name; _ } -> Printf.sprintf "Materialized(%s)" name

let children = function
  | Plan.Scan _ | Plan.Star_semijoin _ | Plan.Materialized _ -> []
  | Plan.Hash_join { build; probe; _ } -> [ build; probe ]
  | Plan.Merge_join { left; right; _ } -> [ left; right ]
  | Plan.Indexed_nl_join { outer; _ } -> [ outer ]
  | Plan.Filter (input, _)
  | Plan.Project (input, _)
  | Plan.Sort { input; _ }
  | Plan.Limit (input, _)
  | Plan.Aggregate { input; _ } -> [ input ]
  | Plan.Guard { input; _ } -> [ input ]

let q_error ~estimated ~actual =
  let est = Float.max estimated 0.5 and act = Float.max (float_of_int actual) 0.5 in
  Float.max (est /. act) (act /. est)

let collect catalog ?constants ?scale estimator plan =
  let rec go depth plan =
    let estimated =
      match plan with
      (* A guard's row of the report compares its *instrumentation-time*
         expectation against reality — that is the check it performs. *)
      | Plan.Guard { expected_rows; _ } -> expected_rows
      | _ -> (Costing.estimate catalog ?constants ?scale estimator plan).Costing.card
    in
    let meter = Cost.create ?constants ?scale () in
    (* Run guard-free so the report never aborts mid-analysis; whether each
       guard *would* fire is derived from the q-error below. *)
    let actual =
      Array.length
        (Executor.run catalog meter (Plan.strip_guards plan)).Executor.tuples
    in
    let q = q_error ~estimated ~actual in
    let label =
      match plan with
      | Plan.Guard { max_q_error; _ } when q > max_q_error ->
          node_label plan ^ " [FIRES]"
      | Plan.Guard _ -> node_label plan ^ " [pass]"
      | _ -> node_label plan
    in
    { depth; label; estimated_rows = estimated; actual_rows = actual; q_error = q }
    :: List.concat_map (go (depth + 1)) (children plan)
  in
  go 0 plan

let render catalog ?constants ?scale estimator plan =
  let nodes = collect catalog ?constants ?scale estimator plan in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-52s %12s %12s %8s\n" "operator" "est_rows" "actual_rows" "q_error");
  List.iter
    (fun n ->
      let indent = String.make (2 * n.depth) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%-52s %12.1f %12d %8.2f\n" (indent ^ n.label) n.estimated_rows
           n.actual_rows n.q_error))
    nodes;
  let meter = Cost.create ?constants ?scale () in
  ignore (Executor.run catalog meter (Plan.strip_guards plan));
  Buffer.add_string buf
    (Printf.sprintf "total simulated execution: %.3f s\n" (Cost.snapshot meter).Cost.seconds);
  Buffer.contents buf
