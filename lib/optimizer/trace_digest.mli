(** Degradation-tier transition digests over typed trace events.

    The differential fuzzer's second coverage axis (next to the structural
    plan fingerprint): a semicolon-joined token sequence recording, in
    stream order, which estimation tiers failed their health checks
    ([d:kind:subsystem]), which guards passed or fired ([g+] / [g!]),
    how mid-query re-optimization resolved ([r?] / [r+] / [r-]), plan-cache
    outcomes ([c:outcome]) and statistics refreshes ([s]).  Numeric payloads
    (row counts, q-errors) are deliberately dropped so the digest captures
    the *shape* of a run's robustness behaviour, not its noise; estimator
    cache evictions are skipped entirely. *)

val token : Rq_obs.Trace.event -> string option
(** [None] for events that carry no tier-transition information. *)

val of_events : Rq_obs.Trace.event list -> string

val of_recorder : Rq_obs.Recorder.t -> string
(** Digest of the recorder's event stream so far. *)
