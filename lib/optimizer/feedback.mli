(** Observed-cardinality feedback from guard violations.

    When a {!Rq_exec.Plan.Guard} fires, the actual row count of its subplan
    is recorded here, keyed by the set of base tables the subplan covers.
    Re-optimization then runs with {!with_feedback}, which answers
    expression-cardinality queries from observations when it can — exactly,
    for the recorded table sets; scaled by the observed/estimated correction
    ratio of the largest recorded subset otherwise. *)

type t

val create : unit -> t

val record : t -> tables:string list -> float -> unit
(** Record the observed row count of an expression over the given tables
    (order-insensitive; later observations on the same set overwrite). *)

val observed : t -> tables:string list -> float option

val observations : t -> (string list * float) list
(** All recorded observations, sorted; for reports. *)

val with_feedback : t -> Cardinality.t -> Cardinality.t
(** Wrap an estimator so expression cardinalities are corrected by the
    recorded observations.  [table_selectivity] and [group_count] pass
    through to the base estimator. *)
