(** Logical queries: select-project-join expressions over foreign-key joins,
    optionally topped by a GROUP BY aggregate — the query class the paper's
    estimator covers (Sec. 3.2).

    Per-table predicates use the table's own (unqualified) column names;
    grouping/projection columns and aggregate expressions use qualified
    ["table.column"] names. *)

open Rq_storage
open Rq_exec

type table_ref = { table : string; pred : Pred.t }

type t = {
  tables : table_ref list;
      (** joined pairwise along the catalog's FK edges; must be connected *)
  group_by : string list;
  aggs : Plan.agg list;   (** empty = no aggregation *)
  projection : string list option;  (** [None] = all columns *)
  order_by : Plan.sort_key list;    (** applied to the final output *)
  limit : int option;
}

val scan : ?pred:Pred.t -> string -> table_ref

val query :
  ?group_by:string list -> ?aggs:Plan.agg list -> ?projection:string list ->
  ?order_by:Plan.sort_key list -> ?limit:int ->
  table_ref list -> t

val table_names : t -> string list

val validate : Catalog.t -> t -> (unit, string) result
(** Tables exist, predicates reference existing columns, the join graph
    restricted to the query's tables is connected and has a unique root. *)

val root : Catalog.t -> t -> string option
(** The root relation: the table whose primary key is not joined to by
    another query table (paper Sec. 3.2). *)

val join_edges : Catalog.t -> t -> Catalog.foreign_key list
(** FK edges with both endpoints in the query. *)

val combined_predicate : t -> Pred.t
(** Conjunction of all per-table predicates with columns qualified — the
    predicate evaluated against a join synopsis. *)

val connected_subsets : Catalog.t -> t -> string list list
(** All non-empty subsets of the query's tables that are connected in the
    join graph, sorted by size (the DP enumeration order).  Table lists are
    sorted lexicographically. *)

val pp : Format.formatter -> t -> unit
