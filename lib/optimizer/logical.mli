(** Logical queries: select-project-join expressions over foreign-key joins,
    optionally topped by a GROUP BY aggregate — the query class the paper's
    estimator covers (Sec. 3.2).

    Per-table predicates use the table's own (unqualified) column names;
    grouping/projection columns and aggregate expressions use qualified
    ["table.column"] names. *)

open Rq_storage
open Rq_exec

type table_ref = { table : string; pred : Pred.t }

type semijoin = { outer_key : string; inner : table_ref; inner_key : string }
(** [outer_key IN (SELECT inner_key FROM inner.table WHERE inner.pred)]:
    keep outer rows with at least one inner match (IN and EXISTS both
    normalize to this form at bind time).  [outer_key] is qualified; the
    inner side uses the inner table's own unqualified names.  The inner
    table must not also appear in FROM (a disguised self-join). *)

type scalar = {
  s_expr : Expr.t;     (** qualified outer-side expression *)
  s_cmp : Pred.cmp;
  s_agg : Plan.agg_fn; (** over [s_table]-qualified columns *)
  s_table : string;
  s_pred : Pred.t;     (** on [s_table]'s base schema, unqualified *)
}
(** [s_expr s_cmp (SELECT s_agg FROM s_table WHERE s_pred)]: an
    uncorrelated single-aggregate scalar subquery comparison.  The
    rewrite pass folds it to a constant; enumeration refuses queries that
    still carry one. *)

type t = {
  tables : table_ref list;
      (** joined pairwise along the catalog's FK edges; must be connected *)
  residual : Pred.t;
      (** conjuncts over qualified columns of several tables, applied
          above the join (the binder parks multi-table and redundant
          FK-equality conjuncts here; rewrite pushes what it can down) *)
  semijoins : semijoin list;
  scalars : scalar list;
  group_by : string list;
  aggs : Plan.agg list;   (** empty = no aggregation *)
  projection : string list option;  (** [None] = all columns *)
  order_by : Plan.sort_key list;    (** applied to the final output *)
  limit : int option;
  index_order : bool;
      (** set by the ORDER BY/LIMIT pushdown rule: [order_by] is a single
          indexed key of a single-table query, so enumeration offers an
          ordered index scan and the top-level Sort is elided when that
          access path wins *)
}

val scan : ?pred:Pred.t -> string -> table_ref

val query :
  ?residual:Pred.t -> ?semijoins:semijoin list -> ?scalars:scalar list ->
  ?group_by:string list -> ?aggs:Plan.agg list -> ?projection:string list ->
  ?order_by:Plan.sort_key list -> ?limit:int -> ?index_order:bool ->
  table_ref list -> t

val table_names : t -> string list

val validate : Catalog.t -> t -> (unit, string) result
(** Tables exist, predicates reference existing columns, the join graph
    restricted to the query's tables is connected and has a unique root. *)

val root : Catalog.t -> t -> string option
(** The root relation: the table whose primary key is not joined to by
    another query table (paper Sec. 3.2). *)

val join_edges : Catalog.t -> t -> Catalog.foreign_key list
(** FK edges with both endpoints in the query. *)

val combined_predicate : t -> Pred.t
(** Conjunction of all per-table predicates with columns qualified — the
    predicate evaluated against a join synopsis. *)

val connected_subsets : Catalog.t -> t -> string list list
(** All non-empty subsets of the query's tables that are connected in the
    join graph, sorted by size (the DP enumeration order).  Table lists are
    sorted lexicographically. *)

val pp : Format.formatter -> t -> unit
