(** An LRU plan cache with statistics-versioned invalidation.

    The paper's design makes {!Optimizer.optimize} the single entry point
    and the optimizer the hot path once the engine serves many queries;
    recurring queries re-derive the same plan from the same statistics.
    This cache memoizes whole optimizer decisions, keyed by:

    - a canonical query fingerprint (produced by [Rq_sql.Fingerprint],
      passed in as a string so this module stays below the SQL layer), and
    - the active estimator's identity (appended here from the optimizer;
      the confidence threshold travels inside the fingerprint).

    {b Invalidation rule.}  At insert time an entry records the
    {!Rq_stats.Stats_store.table_version} of every table in the query; a
    lookup is a hit only if all of them still match the live store.  Every
    maintenance refresh rebuilds statistics (fresh store, all versions
    advanced) and every fault injection derives a bumped store, so a stale
    plan can never be served — the cache can delay re-optimization work,
    never correctness.  Granularity: per-table for targeted copy-on-write
    swaps (an injection against one root leaves other tables' entries
    servable), but a full refresh redraws every sample and therefore
    invalidates everything (see {!Rq_stats.Stats_store.table_version}).

    Lookups, insertions and evictions emit [Plan_cache] trace events when
    given a recorder, so [--trace]/[--metrics-json] expose cache behavior
    alongside spans and the other event streams. *)

type t

val create : ?capacity:int -> unit -> t
(** LRU capacity defaults to 256 entries; raises [Invalid_argument] when
    not positive. *)

val capacity : t -> int

val length : t -> int
(** Live entries; always [<= capacity t]. *)

val clear : t -> unit
(** Drop every entry (counters are kept). *)

type outcome =
  | Hit           (** served from cache, no optimization ran *)
  | Miss          (** first sighting; optimized and inserted *)
  | Invalidated   (** entry existed but its statistics versions moved;
                      re-optimized and re-inserted *)

val outcome_to_string : outcome -> string

val find_or_optimize :
  ?obs:Rq_obs.Recorder.t ->
  ?budget:int ->
  t ->
  Optimizer.t ->
  fingerprint:string ->
  Logical.t ->
  (Optimizer.decision * outcome, string) result
(** The cache-through entry point: serve a valid entry, otherwise run
    {!Optimizer.optimize} and cache the decision.  [Error]s (validation
    failures) are never cached.  [budget] applies to the underlying
    optimization only. *)

val mem : t -> Optimizer.t -> fingerprint:string -> bool
(** Whether an entry exists for this key — valid or not (no version check,
    no LRU touch); for tests pinning eviction order. *)

(** {2 Counters} *)

type stats = { hits : int; misses : int; invalidations : int; evictions : int }

val stats : t -> stats

val zero_stats : stats
val add_stats : stats -> stats -> stats

val lookups : stats -> int
(** [hits + misses + invalidations]. *)

val hit_rate : stats -> float
(** [hits / lookups], 0 when no lookups. *)

val stats_to_json : stats -> Rq_obs.Json.t

(** {2 Per-domain sharding}

    The multicore replay driver gives each domain its own shard
    (shared-nothing: no locks on the lookup path, no torn counters); the
    merged statistics are the per-shard sums.  Shard [i] serves domain
    [i mod shards]. *)

module Sharded : sig
  type shard = t
  type t

  val create : ?capacity:int -> shards:int -> unit -> t
  (** [capacity] (default 256) is the total budget, split evenly with a
      floor of one entry per shard.  Raises [Invalid_argument] unless both
      are positive. *)

  val shards : t -> int

  val shard : t -> int -> shard
  (** The shard owning domain [i] ([i mod shards]); use the plain
      single-shard API on it from that domain only. *)

  val length : t -> int
  val stats : t -> stats
  (** Summed over shards; reconciles exactly with per-shard sums. *)

  val clear : t -> unit
end
