(* The logical rewrite layer: a fixed, ordered list of OptimizerRule-style
   passes over {!Logical.t}, driven to a fixpoint between binding and DP
   enumeration.  Every rule is semantics-preserving (each has a qcheck
   equivalence law in [test_rewrite]); the driver emits one typed
   {!Rq_obs.Trace.Rewrite_applied} event per application and enforces a
   per-rule application budget so a cyclic pair of rules cannot hang the
   optimizer. *)

open Rq_storage
open Rq_exec

(* ------------------------------------------------------------------ *)
(* Predicate transforms shared by the pure rules                       *)
(* ------------------------------------------------------------------ *)

let rec fold_expr e =
  match e with
  | Expr.Const _ | Expr.Col _ -> e
  | _ -> (
      match Expr.const_value e with
      | Some v -> Expr.Const v
      | None -> (
          match e with
          | Expr.Add (a, b) -> Expr.Add (fold_expr a, fold_expr b)
          | Expr.Sub (a, b) -> Expr.Sub (fold_expr a, fold_expr b)
          | Expr.Mul (a, b) -> Expr.Mul (fold_expr a, fold_expr b)
          | Expr.Div (a, b) -> Expr.Div (fold_expr a, fold_expr b)
          | Expr.Add_days (a, d) -> Expr.Add_days (fold_expr a, d)
          | (Expr.Const _ | Expr.Col _) as e -> e))

let cmp_holds op c =
  match op with
  | Pred.Eq -> c = 0
  | Pred.Ne -> c <> 0
  | Pred.Lt -> c < 0
  | Pred.Le -> c <= 0
  | Pred.Gt -> c > 0
  | Pred.Ge -> c >= 0

(* Comparisons are null-safe (any NULL operand makes the predicate false,
   never unknown-propagating), so a constant NULL side decides the whole
   conjunct regardless of the other one. *)
let rec fold_pred p =
  match p with
  | Pred.True | Pred.False -> p
  | Pred.Cmp (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (a, b) with
      | Expr.Const Value.Null, _ | _, Expr.Const Value.Null -> Pred.False
      | Expr.Const va, Expr.Const vb ->
          if cmp_holds op (Value.compare va vb) then Pred.True else Pred.False
      | _ -> Pred.Cmp (op, a, b))
  | Pred.Between (e, lo, hi) -> (
      let e = fold_expr e and lo = fold_expr lo and hi = fold_expr hi in
      match (e, lo, hi) with
      | Expr.Const Value.Null, _, _ | _, Expr.Const Value.Null, _ | _, _, Expr.Const Value.Null
        ->
          Pred.False
      | _, Expr.Const l, Expr.Const h when Value.compare l h > 0 -> Pred.False
      | Expr.Const v, Expr.Const l, Expr.Const h ->
          if Value.compare l v <= 0 && Value.compare v h <= 0 then Pred.True else Pred.False
      | _ -> Pred.Between (e, lo, hi))
  | Pred.Contains (e, s) -> Pred.Contains (fold_expr e, s)
  | Pred.And ps -> Pred.And (List.map fold_pred ps)
  | Pred.Or ps -> Pred.Or (List.map fold_pred ps)
  | Pred.Not p -> Pred.Not (fold_pred p)

let dedupe_by_render ps =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun p ->
      let key = Pred.render p in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ps

let rec simplify_pred p =
  match p with
  | Pred.True | Pred.False | Pred.Cmp _ | Pred.Between _ | Pred.Contains _ -> p
  | Pred.Not q -> (
      match simplify_pred q with
      | Pred.True -> Pred.False
      | Pred.False -> Pred.True
      | Pred.Not r -> r
      | q -> Pred.Not q)
  | Pred.And ps -> (
      let flat =
        List.concat_map
          (fun q -> match simplify_pred q with Pred.And qs -> qs | q -> [ q ])
          ps
      in
      let flat = List.filter (fun q -> q <> Pred.True) flat in
      if List.mem Pred.False flat then Pred.False
      else
        match dedupe_by_render flat with
        | [] -> Pred.True
        | [ q ] -> q
        | qs -> Pred.And qs)
  | Pred.Or ps -> (
      let flat =
        List.concat_map
          (fun q -> match simplify_pred q with Pred.Or qs -> qs | q -> [ q ])
          ps
      in
      let flat = List.filter (fun q -> q <> Pred.False) flat in
      if List.mem Pred.True flat then Pred.True
      else
        match dedupe_by_render flat with
        | [] -> Pred.False
        | [ q ] -> q
        | qs -> Pred.Or qs)

let map_preds f (q : Logical.t) =
  {
    q with
    Logical.tables =
      List.map (fun (r : Logical.table_ref) -> { r with Logical.pred = f r.Logical.pred }) q.Logical.tables;
    residual = f q.Logical.residual;
    semijoins =
      List.map
        (fun (sj : Logical.semijoin) ->
          { sj with Logical.inner = { sj.Logical.inner with Logical.pred = f sj.Logical.inner.Logical.pred } })
        q.Logical.semijoins;
    scalars =
      List.map (fun (s : Logical.scalar) -> { s with Logical.s_pred = f s.Logical.s_pred }) q.Logical.scalars;
  }

let owner_of column =
  match String.index_opt column '.' with
  | Some i -> Some (String.sub column 0 i, String.sub column (i + 1) (String.length column - i - 1))
  | None -> None

let strip_owner table column =
  let prefix = table ^ "." in
  let pl = String.length prefix in
  if String.length column > pl && String.sub column 0 pl = prefix then
    String.sub column pl (String.length column - pl)
  else column

(* ------------------------------------------------------------------ *)
(* The rules                                                           *)
(* ------------------------------------------------------------------ *)

(* Every rule maps a query to [Some (rewritten, detail)] when it fires and
   [None] at its own fixpoint.  Pure rules never look at the catalog; they
   double as the catalog-free canonicalization {!canonical} that
   [Rq_sql.Fingerprint] keys the plan cache with. *)

let r_const_fold q =
  let q' =
    let q' = map_preds fold_pred q in
    { q' with Logical.scalars = List.map (fun (s : Logical.scalar) -> { s with Logical.s_expr = fold_expr s.Logical.s_expr }) q'.Logical.scalars }
  in
  if q' = q then None else Some (q', "folded constant subexpressions")

let r_simplify q =
  let q' = map_preds simplify_pred q in
  if q' = q then None else Some (q', "simplified predicates")

let r_filter_pushdown q =
  let names = Logical.table_names q in
  let push (moved, residual) conjunct =
    match List.filter_map owner_of (Pred.columns conjunct) with
    | (owner, _) :: rest
      when List.mem owner names && List.for_all (fun (o, _) -> String.equal o owner) rest ->
        ((owner, Pred.rename_columns (strip_owner owner) conjunct) :: moved, residual)
    | _ -> (moved, conjunct :: residual)
  in
  match q.Logical.residual with
  | Pred.True -> None
  | residual -> (
      let conjuncts = Pred.conjuncts residual in
      let moved, kept = List.fold_left push ([], []) conjuncts in
      match moved with
      | [] -> None
      | _ ->
          let tables =
            List.map
              (fun (r : Logical.table_ref) ->
                let mine =
                  List.rev_map snd
                    (List.filter (fun (o, _) -> String.equal o r.Logical.table) moved)
                in
                if mine = [] then r
                else { r with Logical.pred = Pred.conj (r.Logical.pred :: mine) })
              q.Logical.tables
          in
          Some
            ( { q with Logical.tables; residual = Pred.conj (List.rev kept) },
              Printf.sprintf "pushed %d single-table conjunct(s) below the join"
                (List.length moved) ))

let qualified_columns catalog table =
  List.map
    (fun (c : Schema.column) -> table ^ "." ^ c.Schema.name)
    (Schema.columns (Relation.schema (Catalog.find_table catalog table)))

let r_project_prune catalog q =
  match q.Logical.projection with
  | None -> None
  | Some cols ->
      if q.Logical.aggs <> [] || q.Logical.group_by <> [] then
        Some
          ( { q with Logical.projection = None },
            "dropped projection shadowed by aggregation" )
      else
        let full =
          List.concat_map (fun (r : Logical.table_ref) -> qualified_columns catalog r.Logical.table) q.Logical.tables
        in
        if cols = full then
          Some ({ q with Logical.projection = None }, "projection covers the full schema")
        else None

(* A residual equality that coincides with an FK edge between two query
   tables is implied by the join itself (enumeration only ever joins along
   FK edges), so it is a redundant re-check of every joined row — and the
   reason the binder no longer rejects explicit join conditions. *)
let r_cross_product_avoid catalog q =
  let names = Logical.table_names q in
  let is_fk_equality conjunct =
    match conjunct with
    | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) -> (
        match (owner_of a, owner_of b) with
        | Some (ta, ca), Some (tb, cb) when List.mem ta names && List.mem tb names -> (
            let edge from_t from_c to_t to_c =
              match Catalog.fk_edge catalog ~from_table:from_t ~to_table:to_t with
              | Some fk -> fk.Catalog.from_column = from_c && fk.Catalog.to_column = to_c
              | None -> false
            in
            edge ta ca tb cb || edge tb cb ta ca)
        | _ -> false)
    | _ -> false
  in
  match q.Logical.residual with
  | Pred.True -> None
  | residual -> (
      let conjuncts = Pred.conjuncts residual in
      let dropped, kept = List.partition is_fk_equality conjuncts in
      match dropped with
      | [] -> None
      | _ ->
          Some
            ( { q with Logical.residual = Pred.conj kept },
              Printf.sprintf "dropped %d join conjunct(s) implied by FK edges"
                (List.length dropped) ))

(* IN/EXISTS decorrelation: when the semijoin key pair is exactly a
   declared FK edge (outer FK -> inner PK) and the inner table is not
   already joined, the semijoin *is* an FK join — PK uniqueness keeps
   multiplicity, and unmatched or NULL FKs drop the row under both forms.
   The merge widens the schema, so a missing projection is pinned to the
   outer columns first. *)
let r_decorrelate catalog q =
  let names = Logical.table_names q in
  let mergeable (sj : Logical.semijoin) =
    match owner_of sj.Logical.outer_key with
    | None -> false
    | Some (ot, oc) -> (
        (not (List.mem sj.Logical.inner.Logical.table names))
        &&
        match Catalog.fk_edge catalog ~from_table:ot ~to_table:sj.Logical.inner.Logical.table with
        | Some fk -> fk.Catalog.from_column = oc && fk.Catalog.to_column = sj.Logical.inner_key
        | None -> false)
  in
  match List.partition mergeable q.Logical.semijoins with
  | [], _ -> None
  | sj :: _, _ ->
      let remaining = List.filter (fun s -> s <> sj) q.Logical.semijoins in
      let projection =
        match q.Logical.projection with
        | Some _ as p -> p
        | None ->
            if q.Logical.aggs = [] && q.Logical.group_by = [] then
              Some
                (List.concat_map
                   (fun (r : Logical.table_ref) -> qualified_columns catalog r.Logical.table)
                   q.Logical.tables)
            else None
      in
      let q' =
        {
          q with
          Logical.tables = q.Logical.tables @ [ sj.Logical.inner ];
          semijoins = remaining;
          projection;
        }
      in
      (* Only fire if the merged join graph is still a valid query (it
         must stay connected with a unique root); otherwise leave the
         semijoin for plan-time lowering. *)
      (match Logical.validate catalog q' with
      | Ok () ->
          Some
            ( q',
              Printf.sprintf "merged semijoin on %s into the join graph"
                sj.Logical.inner.Logical.table )
      | Error _ -> None)

let r_sort_limit_pushdown catalog q =
  if q.Logical.index_order then None
  else
    match (q.Logical.tables, q.Logical.order_by) with
    | [ { Logical.table; _ } ], [ { Plan.sort_column; descending = _ } ]
      when q.Logical.aggs = [] && q.Logical.group_by = [] && q.Logical.semijoins = [] ->
        let column = strip_owner table sort_column in
        if
          (not (String.equal column sort_column))
          && Catalog.find_index catalog ~table ~column <> None
        then
          Some
            ( { q with Logical.index_order = true },
              Printf.sprintf "ORDER BY %s served by the index on %s.%s" sort_column table
                column )
        else None
    | _ -> None

(* Uncorrelated scalar subqueries fold to constants at rewrite time: the
   aggregate is executed once on a throwaway meter (optimization-time
   work, like sampling) and the comparison joins the residual, where
   filter pushdown can carry it into a table predicate. *)
let r_scalar_fold catalog q =
  match q.Logical.scalars with
  | [] -> None
  | ({ Logical.s_expr; s_cmp; s_agg; s_table; s_pred } as s) :: _ ->
      let plan =
        Plan.Aggregate
          {
            input = Plan.Scan { table = s_table; access = Plan.Seq_scan; pred = s_pred };
            group_by = [];
            aggs = [ { Plan.fn = s_agg; output_name = "scalar" } ];
          }
      in
      let meter = Cost.create () in
      let result = Executor.run catalog meter plan in
      let v =
        if Array.length result.Executor.tuples = 1 then result.Executor.tuples.(0).(0)
        else Value.Null
      in
      let conjunct =
        if Value.is_null v then Pred.False else Pred.Cmp (s_cmp, s_expr, Expr.Const v)
      in
      let q' =
        {
          q with
          Logical.scalars = List.filter (fun x -> x <> s) q.Logical.scalars;
          residual = Pred.conj [ q.Logical.residual; conjunct ];
        }
      in
      Some
        ( q',
          Printf.sprintf "folded scalar subquery over %s to %s" s_table (Value.to_string v) )

(* ------------------------------------------------------------------ *)
(* The pass list and fixpoint driver                                   *)
(* ------------------------------------------------------------------ *)

type rule = { name : string; apply : Catalog.t -> Logical.t -> (Logical.t * string) option }

let pure r = fun _catalog q -> r q

let rules =
  [
    { name = "const-fold"; apply = pure r_const_fold };
    { name = "simplify"; apply = pure r_simplify };
    { name = "scalar-fold"; apply = r_scalar_fold };
    { name = "filter-pushdown"; apply = pure r_filter_pushdown };
    { name = "decorrelate"; apply = r_decorrelate };
    { name = "cross-product-avoid"; apply = r_cross_product_avoid };
    { name = "project-prune"; apply = r_project_prune };
    { name = "sort-limit-pushdown"; apply = r_sort_limit_pushdown };
  ]

let rule_names = List.map (fun r -> r.name) rules

let apply_rule catalog name q =
  match List.find_opt (fun r -> r.name = name) rules with
  | None -> invalid_arg (Printf.sprintf "Rewrite.apply_rule: unknown rule %s" name)
  | Some r -> r.apply catalog q

type report = { applied : (string * int) list; fixpoint : bool }

let default_rule_budget = 32

let rewrite ?(record = fun (_ : Rq_obs.Trace.event) -> ()) ?(rule_budget = default_rule_budget)
    catalog query =
  let counts = Hashtbl.create 8 in
  let count name = Option.value ~default:0 (Hashtbl.find_opt counts name) in
  (* One sweep: the first non-exhausted rule that fires wins; restarting
     from the head keeps cheap normalization (fold/simplify) ahead of the
     structural rules that feed on its output. *)
  let fire_one q =
    List.find_map
      (fun r ->
        if count r.name >= rule_budget then None
        else
          match r.apply catalog q with
          | None -> None
          | Some (q', detail) ->
              Hashtbl.replace counts r.name (count r.name + 1);
              record (Rq_obs.Trace.Rewrite_applied { rule = r.name; detail });
              Some q')
      rules
  in
  let rec loop q =
    match fire_one q with Some q' -> loop q' | None -> q
  in
  let q = loop query in
  (* Fixpoint means no rule wants to fire — including any whose budget ran
     out mid-stream. *)
  let starving =
    List.exists (fun r -> count r.name >= rule_budget && r.apply catalog q <> None) rules
  in
  let applied =
    List.filter_map
      (fun r -> match count r.name with 0 -> None | n -> Some (r.name, n))
      rules
  in
  (q, { applied; fixpoint = not starving })

(* Catalog-free canonicalization for plan-cache fingerprints: the pure
   subset of the pass list (constant folding, predicate simplification,
   filter pushdown, aggregation-shadowed projection pruning) run to their
   own fixpoint.  Two spellings of the same query normalize to the same
   key; structural rules that need the catalog (decorrelation, ordered
   scans) never change fingerprint semantics because the cache keys
   queries *before* the optimizer rewrites them. *)
let canonical query =
  let drop_shadowed_projection q =
    match q.Logical.projection with
    | Some _ when q.Logical.aggs <> [] || q.Logical.group_by <> [] ->
        Some ({ q with Logical.projection = None }, "")
    | _ -> None
  in
  let steps = [ r_const_fold; r_simplify; r_filter_pushdown; drop_shadowed_projection ] in
  let rec loop q n =
    if n > 64 then q
    else
      match List.find_map (fun step -> step q) steps with
      | Some (q', _) -> loop q' (n + 1)
      | None -> q
  in
  loop query 0

(* Deliberately unsound: drops the first real filter it finds.  The
   fuzzer's --self-test-rewrite mode plants this on the rewritten arm and
   must catch the divergence and shrink it — proving the equivalence
   harness would notice a genuinely broken rule. *)
let unsound_for_tests q =
  let drop_first_conjunct p =
    match Pred.conjuncts p with [] -> None | _ :: rest -> Some (Pred.conj rest)
  in
  let rec drop_table = function
    | [] -> None
    | (r : Logical.table_ref) :: rest -> (
        match drop_first_conjunct r.Logical.pred with
        | Some pred when pred <> r.Logical.pred ->
            Some ({ r with Logical.pred } :: rest)
        | _ -> Option.map (fun rest' -> r :: rest') (drop_table rest))
  in
  match drop_table q.Logical.tables with
  | Some tables -> { q with Logical.tables = tables }
  | None -> (
      match drop_first_conjunct q.Logical.residual with
      | Some residual when residual <> q.Logical.residual -> { q with Logical.residual = residual }
      | _ -> q)
