(** The logical rewrite layer: an ordered list of semantics-preserving
    rules over {!Logical.t}, driven to a fixpoint between binding and DP
    enumeration.

    The pass list, in order:
    - ["const-fold"] — fold constant subexpressions; comparisons between
      constants (including a constant NULL on either side, which the
      null-safe evaluator makes false) collapse to [True]/[False].
    - ["simplify"] — flatten nested [And]/[Or], absorb [True]/[False],
      cancel double negation, dedupe conjuncts by canonical rendering.
    - ["scalar-fold"] — execute each uncorrelated scalar subquery once on
      a throwaway meter and replace it with a constant comparison.
    - ["filter-pushdown"] — move residual conjuncts that mention a single
      table below the join into that table's predicate.
    - ["decorrelate"] — merge an [IN]/[EXISTS] semijoin whose key pair is
      a declared FK edge into the join graph (sound because PK uniqueness
      preserves multiplicity and NULL/dangling FKs drop rows either way).
    - ["cross-product-avoid"] — drop residual equality conjuncts that
      restate an FK edge the enumerator already joins along.
    - ["project-prune"] — drop projections shadowed by aggregation or
      equal to the full output schema.
    - ["sort-limit-pushdown"] — mark single-table queries whose ORDER BY
      is a single indexed key so enumeration can offer an ordered index
      scan and elide the Sort (composing with streaming LIMIT early
      exit).

    Every rule application emits a {!Rq_obs.Trace.Rewrite_applied} event.
    Each rule has a qcheck equivalence law in [test_rewrite]. *)

open Rq_storage

type report = {
  applied : (string * int) list;  (** rule name -> application count, pass order *)
  fixpoint : bool;
      (** false only if some rule exhausted its budget and still wants to
          fire — the result is still sound, just not fully normalized *)
}

val rule_names : string list
(** Names of all rules in pass order. *)

val apply_rule : Catalog.t -> string -> Logical.t -> (Logical.t * string) option
(** Apply one named rule once.  [None] means the rule is at its own
    fixpoint on this query.  Raises [Invalid_argument] on unknown names.
    Exposed so the qcheck laws can test each rule in isolation. *)

val default_rule_budget : int

val rewrite :
  ?record:(Rq_obs.Trace.event -> unit) ->
  ?rule_budget:int ->
  Catalog.t ->
  Logical.t ->
  Logical.t * report
(** Drive the pass list to fixpoint: repeatedly apply the first
    non-exhausted rule that fires, at most [rule_budget] (default
    {!default_rule_budget}) applications per rule. *)

val canonical : Logical.t -> Logical.t
(** Catalog-free fixpoint of the pure rules (const-fold, simplify,
    filter-pushdown, aggregation-shadowed projection pruning) — the
    normalization {!Rq_sql.Fingerprint} applies so differently spelled
    but identical queries share a plan-cache key. *)

val unsound_for_tests : Logical.t -> Logical.t
(** Deliberately broken "rewrite" that drops the first filter conjunct it
    finds (identity when there is none).  Used by the fuzzer's
    [--self-test-rewrite] mode to prove the equivalence harness catches a
    bad rule. *)
