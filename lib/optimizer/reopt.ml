open Rq_exec

type event = {
  label : string;
  expected_rows : float;
  actual_rows : int;
  q_error : float;
  replanned : bool;
}

type outcome = {
  result : Executor.result;
  snapshot : Cost.snapshot;
  initial_plan : Plan.t;
  final_plan : Plan.t;
  events : event list;
  reoptimizations : int;
}

(* ------------------------------------------------------------------ *)
(* Guard placement                                                     *)
(* ------------------------------------------------------------------ *)

(* Guard every materialization checkpoint strictly below the top of the join
   tree: scans and join outputs.  The join-tree root itself is not guarded
   (nothing left to replan above it), and [Materialized] leaves are never
   guarded (their cardinality is a fact, not an estimate). *)
let instrument_with catalog ~constants ~scale est ~threshold plan =
  let guard sub =
    let expected = (Costing.estimate catalog ~constants ~scale est sub).Costing.card in
    Plan.Guard
      { input = sub; expected_rows = expected; max_q_error = threshold; label = Plan.describe sub }
  in
  let rec instr ~root plan =
    match plan with
    | Plan.Scan _ -> if root then plan else guard plan
    | Plan.Materialized _ -> plan
    (* Recovery leaves from an earlier mid-stream firing: the prefix's
       cardinality is a fact and the resumed tail is already feedback-sized,
       so neither gets a fresh guard. *)
    | Plan.Scan_resume _ -> plan
    | Plan.Append _ -> plan
    | Plan.Guard { input; _ } -> instr ~root input (* re-instrument from scratch *)
    | Plan.Hash_join { build; probe; build_key; probe_key } ->
        let node =
          Plan.Hash_join
            { build = instr ~root:false build; probe = instr ~root:false probe; build_key; probe_key }
        in
        if root then node else guard node
    | Plan.Merge_join { left; right; left_key; right_key } ->
        let node =
          Plan.Merge_join
            { left = instr ~root:false left; right = instr ~root:false right; left_key; right_key }
        in
        if root then node else guard node
    | Plan.Indexed_nl_join j ->
        let node = Plan.Indexed_nl_join { j with outer = instr ~root:false j.outer } in
        if root then node else guard node
    | Plan.Star_semijoin _ -> if root then plan else guard plan
    | Plan.Filter (input, pred) -> Plan.Filter (instr ~root input, pred)
    | Plan.Project (input, cols) -> Plan.Project (instr ~root input, cols)
    | Plan.Aggregate { input; group_by; aggs } ->
        Plan.Aggregate { input = instr ~root input; group_by; aggs }
    | Plan.Sort { input; keys } -> Plan.Sort { input = instr ~root input; keys }
    | Plan.Limit (input, n) -> Plan.Limit (instr ~root input, n)
  in
  instr ~root:true plan

let instrument ?estimator ~threshold opt plan =
  let catalog = Rq_stats.Stats_store.catalog (Optimizer.stats opt) in
  let est = Option.value estimator ~default:(Optimizer.estimator opt) in
  instrument_with catalog ~constants:(Optimizer.constants opt) ~scale:(Optimizer.scale opt) est
    ~threshold plan

(* ------------------------------------------------------------------ *)
(* Continuation planning                                                *)
(* ------------------------------------------------------------------ *)

(* Greedily joins the remaining tables onto the materialized intermediate,
   picking the cheapest (feedback-aware) candidate at each step.  Greedy
   rather than full DP: the intermediate is fixed as the left input, so the
   search space is the remaining-table order times the join operators — small
   enough that greedy matches DP on the experiment schemas and cheap enough
   to run mid-query. *)
let continuation catalog (query : Logical.t) ~cost_fn ~mat_plan ~covered =
  let remaining =
    List.filter
      (fun (r : Logical.table_ref) -> not (List.mem r.Logical.table covered))
      query.Logical.tables
  in
  let rec grow plan covered remaining =
    match remaining with
    | [] -> Some plan
    | _ -> (
        let candidates =
          List.concat_map
            (fun (r : Logical.table_ref) ->
              List.concat_map
                (fun right_plan ->
                  Enumerate.join_candidates catalog query ~left_tables:covered ~left_plan:plan
                    ~right_tables:[ r.Logical.table ] ~right_plan)
                (Enumerate.access_paths catalog r))
            remaining
        in
        match candidates with
        | [] -> None (* no crossing FK edge: disconnected remainder *)
        | first :: rest ->
            let best =
              List.fold_left (fun acc p -> if cost_fn p < cost_fn acc then p else acc) first rest
            in
            let covered' = Plan.base_tables best in
            grow best covered'
              (List.filter
                 (fun (r : Logical.table_ref) -> not (List.mem r.Logical.table covered'))
                 remaining))
  in
  grow mat_plan covered remaining

(* ------------------------------------------------------------------ *)
(* Execution loop                                                      *)
(* ------------------------------------------------------------------ *)

let execute_plan ?(threshold = 4.0) ?(max_reopts = 2) ?obs ?mode opt query start_plan =
  if threshold < 1.0 then invalid_arg "Reopt.execute_plan: threshold must be >= 1.0";
  let stats = Optimizer.stats opt in
  let catalog = Rq_stats.Stats_store.catalog stats in
  let constants = Optimizer.constants opt and scale = Optimizer.scale opt in
  (* One meter across every attempt: work wasted by an aborted pipeline
     stays on the bill, so re-optimization pays for itself only when the
     rescue genuinely beats the bad plan. *)
  let meter = Cost.create ~constants ~scale () in
  let trace ev =
    match obs with None -> () | Some r -> Rq_obs.Recorder.record r ev
  in
  (* Each attempt gets its own root span, so span deltas attribute the cost
     of every aborted prefix to the attempt that wasted it. *)
  let with_attempt_span label f =
    match obs with
    | None -> f ()
    | Some r -> (
        let m () = Cost.to_metrics (Cost.snapshot meter) in
        let h = Rq_obs.Recorder.open_span r ~label ~metrics:(m ()) in
        match f () with
        | res ->
            Rq_obs.Recorder.close_span r h
              ~rows:(Array.length res.Executor.tuples) ~metrics:(m ());
            res
        | exception e ->
            Rq_obs.Recorder.abort_span r h ~metrics:(m ());
            raise e)
  in
  let fb = Feedback.create () in
  let events = ref [] in
  let base_est = Optimizer.estimator opt in
  let initial = instrument_with catalog ~constants ~scale base_est ~threshold start_plan in
  let rec attempt plan reopts =
    let run_attempt () =
      with_attempt_span
        (Printf.sprintf "attempt%d" (reopts + 1))
        (fun () -> Executor.run ?obs ?mode catalog meter plan)
    in
    match run_attempt () with
    | res -> (res, plan, reopts)
    | exception
        Executor.Guard_violation
          {
            label;
            expected_rows;
            actual_rows;
            q_error;
            result;
            subplan;
            complete;
            progress;
            resume;
          } ->
        let sub_refs = Costing.refs_of subplan in
        let covered = List.map (fun (r : Logical.table_ref) -> r.Logical.table) sub_refs in
        (* A mid-stream overflow only saw part of the input: extrapolate the
           final count from the consumed fraction so the feedback cache holds
           the best guess at the true cardinality, not the truncated one. *)
        let observed =
          if complete || progress <= 0.0 then float_of_int actual_rows
          else Float.max (float_of_int actual_rows) (float_of_int actual_rows /. progress)
        in
        Feedback.record fb ~tables:covered observed;
        let finish_plain ~replanned ~reason plan =
          events := { label; expected_rows; actual_rows; q_error; replanned } :: !events;
          trace (Rq_obs.Trace.Reopt_abandoned { attempt = reopts + 1; reason });
          let plain = Plan.strip_guards plan in
          let res =
            with_attempt_span
              (Printf.sprintf "attempt%d:final" (reopts + 1))
              (fun () -> Executor.run ?obs ?mode catalog meter plain)
          in
          (res, plain, reopts)
        in
        (* A guard inside a semijoin (or scalar-subquery) build fires over a
           table that is not a FROM-list leaf.  Its checkpoint must not seed
           the join-tree continuation: re-joining the inner table would both
           change multiplicity (IN/EXISTS drops duplicates, a join keeps
           them) and duplicate the inner columns once [wrap_top] lowers the
           semijoin again on top.  The feedback observation is still
           recorded, so a full replan below re-costs the build accurately. *)
        let in_from t =
          List.exists
            (fun (r : Logical.table_ref) -> String.equal r.Logical.table t)
            query.Logical.tables
        in
        let checkpointable = covered <> [] && List.for_all in_from covered in
        if reopts >= max_reopts then
          finish_plain ~replanned:false ~reason:"re-optimization budget exhausted" plan
        else begin
          trace (Rq_obs.Trace.Reopt_planned { attempt = reopts + 1; label });
          let fb_est = Feedback.with_feedback fb base_est in
          let cost_fn p = Costing.plan_cost catalog ~constants ~scale fb_est p in
          let adopt joined =
            events :=
              { label; expected_rows; actual_rows; q_error; replanned = true } :: !events;
            let full = Enumerate.wrap_top catalog query joined in
            trace
              (Rq_obs.Trace.Reopt_adopted
                 { attempt = reopts + 1; plan = Plan.describe full });
            let guarded = instrument_with catalog ~constants ~scale fb_est ~threshold full in
            attempt guarded (reopts + 1)
          in
          let mat_leaf =
            Plan.Materialized
              {
                name = Printf.sprintf "checkpoint%d[%s]" (reopts + 1) label;
                schema = result.Executor.schema;
                tuples = result.Executor.tuples;
                refs =
                  List.map
                    (fun (r : Logical.table_ref) -> (r.Logical.table, r.Logical.pred))
                    sub_refs;
              }
          in
          let replan_full () =
            match Enumerate.join_plans catalog ~cost_fn query with
            | [] -> finish_plain ~replanned:false ~reason:"no full replan available" plan
            | first :: rest_plans ->
                let best =
                  List.fold_left
                    (fun acc p -> if cost_fn p < cost_fn acc then p else acc)
                    first rest_plans
                in
                adopt best
          in
          if not checkpointable then replan_full ()
          else
          match (complete, resume) with
          | true, _ -> (
              (* The whole subplan output is in hand: continue from it. *)
              match continuation catalog query ~cost_fn ~mat_plan:mat_leaf ~covered with
              | None ->
                  finish_plain ~replanned:false
                    ~reason:"no continuation (disconnected remainder)" plan
              | Some joined -> adopt joined)
          | false, Some rest -> (
              (* Mid-stream firing over a resumable scan: keep the partial
                 prefix (its pages are already paid for) and append the
                 resumed tail, then continue from their union. *)
              let mat_plan = Plan.Append [ mat_leaf; rest ] in
              match continuation catalog query ~cost_fn ~mat_plan ~covered with
              | None ->
                  finish_plain ~replanned:false
                    ~reason:"no continuation (disconnected remainder)" plan
              | Some joined -> adopt joined)
          | false, None ->
              (* Mid-stream firing with a non-resumable prefix (index fetch,
                 join output): the partial rows cannot be completed, so
                 replan the whole query under the corrected estimator. *)
              replan_full ()
        end
  in
  let result, final_plan, reoptimizations = attempt initial 0 in
  {
    result;
    snapshot = Cost.snapshot meter;
    initial_plan = start_plan;
    final_plan = Plan.strip_guards final_plan;
    events = List.rev !events;
    reoptimizations;
  }

let execute ?threshold ?max_reopts ?obs ?mode opt query =
  match Optimizer.optimize opt query with
  | Error _ as e -> e
  | Ok d -> Ok (execute_plan ?threshold ?max_reopts ?obs ?mode opt query d.Optimizer.plan)

let render_events events =
  match events with
  | [] -> "no guard fired\n"
  | _ ->
      let buf = Buffer.create 128 in
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "guard %s: expected ~%.1f rows, saw %d (q-error %.1f) -> %s\n"
               e.label e.expected_rows e.actual_rows e.q_error
               (if e.replanned then "re-optimized continuation" else "completed original plan")))
        events;
      Buffer.contents buf
