(** Statistics maintenance: keeping samples and histograms fresh as the
    data changes.

    The paper's precomputation phase runs "periodically whenever a
    sufficient number of database modifications have occurred" (Sec. 3.2).
    This module implements that policy: it owns the current statistics
    store, counts modified rows per table (via the batched
    {!apply_update} mutation path), and rebuilds statistics when the
    accumulated modifications exceed a configurable fraction of the
    database — the same trigger rule commercial systems use. *)

open Rq_storage

type t

val create :
  ?config:Stats_store.config ->
  ?refresh_fraction:float ->
  ?obs:Rq_obs.Recorder.t ->
  Rq_math.Rng.t ->
  Catalog.t ->
  t
(** [refresh_fraction] (default 0.2) is the fraction of a table's rows
    that must change before its statistics are considered stale.  With
    [?obs], every rebuild records a [Stats_refresh] trace event naming the
    tables whose modifications triggered it. *)

val catalog : t -> Catalog.t

val stats : t -> Stats_store.t
(** The current statistics — possibly stale, exactly as an optimizer would
    see them. *)

val modifications_since_refresh : t -> table:string -> int

val is_stale : t -> bool
(** Whether any table has crossed the refresh threshold. *)

val apply_update :
  t -> table:string -> (Relation.tuple array -> Relation.tuple array) -> unit
(** Batched mutation: replaces the table's rows with the function's output
    (same schema), rebuilds its indexes, and counts one modification per
    positionally-changed row (physical inequality: an updated row is a
    fresh tuple array) plus net growth or shrinkage.  Callers applying
    reorderings or out-of-band changes can use {!record_modifications}
    directly. *)

val record_modifications : t -> table:string -> int -> unit
(** Count externally-applied modifications toward staleness. *)

val refresh : t -> unit
(** Force an immediate statistics rebuild and reset the counters. *)

val maybe_refresh : t -> bool
(** Rebuild iff stale; returns whether a rebuild happened.  The normal
    call after each batch of updates. *)
