open Rq_storage

type bucket = { lo : Value.t; hi : Value.t; rows : int; distinct : int }

type t = {
  table : string;
  column : string;
  buckets : bucket array;
  total_rows : int;
  null_rows : int;
}

let default_bucket_count = 250

let build ?(buckets = default_bucket_count) rel column =
  if buckets <= 0 then invalid_arg "Histogram.build: bucket count must be positive";
  let pos = Schema.index_of (Relation.schema rel) column in
  let total_rows = Relation.row_count rel in
  let values =
    Relation.fold
      (fun acc _ tup -> if Value.is_null tup.(pos) then acc else tup.(pos) :: acc)
      [] rel
  in
  let values = Array.of_list values in
  Array.sort Value.compare values;
  let n = Array.length values in
  let null_rows = total_rows - n in
  let bucket_array =
    if n = 0 then [||]
    else begin
      (* Equi-depth cuts, with each boundary pushed to the end of the run of
         equal values so a value never straddles buckets — keeping the
         per-bucket distinct counts (and hence equality estimates) honest. *)
      let bucket_count = min buckets n in
      let depth = max 1 (n / bucket_count) in
      let out = ref [] in
      let start = ref 0 in
      while !start < n do
        let stop = ref (min n (!start + depth)) in
        while !stop < n && Value.compare values.(!stop) values.(!stop - 1) = 0 do
          incr stop
        done;
        let rows = !stop - !start in
        let distinct = ref 1 in
        for i = !start + 1 to !stop - 1 do
          if Value.compare values.(i) values.(i - 1) <> 0 then incr distinct
        done;
        out :=
          { lo = values.(!start); hi = values.(!stop - 1); rows; distinct = !distinct }
          :: !out;
        start := !stop
      done;
      Array.of_list (List.rev !out)
    end
  in
  { table = Relation.name rel; column; buckets = bucket_array; total_rows; null_rows }

let table t = t.table
let column t = t.column
let buckets t = Array.to_list t.buckets
let total_rows t = t.total_rows
let null_rows t = t.null_rows

(* Fraction of bucket [blo, bhi] covered by query range [lo, hi], assuming
   values spread uniformly over the bucket's span.  Non-numeric bounds fall
   back to half coverage. *)
let coverage ~blo ~bhi ~lo ~hi =
  let clamp x = Float.max 0.0 (Float.min 1.0 x) in
  match (Value.to_float blo, Value.to_float bhi) with
  | exception Invalid_argument _ -> 0.5
  | b0, b1 ->
      let q0 =
        match lo with
        | None -> neg_infinity
        | Some v -> ( try Value.to_float v with Invalid_argument _ -> b0)
      in
      let q1 =
        match hi with
        | None -> infinity
        | Some v -> ( try Value.to_float v with Invalid_argument _ -> b1)
      in
      if q1 < b0 || q0 > b1 then 0.0
      else if b1 = b0 then 1.0
      else clamp ((Float.min q1 b1 -. Float.max q0 b0) /. (b1 -. b0))

let selectivity_range t ~lo ~hi =
  if t.total_rows = 0 then 0.0
  else begin
    let matched = ref 0.0 in
    Array.iter
      (fun b ->
        let below_lo = match lo with Some v -> Value.compare b.hi v < 0 | None -> false in
        let above_hi = match hi with Some v -> Value.compare b.lo v > 0 | None -> false in
        if not (below_lo || above_hi) then begin
          let fully_in =
            (match lo with Some v -> Value.compare b.lo v >= 0 | None -> true)
            && match hi with Some v -> Value.compare b.hi v <= 0 | None -> true
          in
          if fully_in then matched := !matched +. float_of_int b.rows
          else
            matched :=
              !matched +. (float_of_int b.rows *. coverage ~blo:b.lo ~bhi:b.hi ~lo ~hi)
        end)
      t.buckets;
    !matched /. float_of_int t.total_rows
  end

let selectivity_eq t v =
  if t.total_rows = 0 || Value.is_null v then 0.0
  else
    let containing =
      Array.to_seq t.buckets
      |> Seq.filter (fun b -> Value.compare b.lo v <= 0 && Value.compare v b.hi <= 0)
      |> List.of_seq
    in
    match containing with
    | [] -> 0.0
    | bs ->
        List.fold_left
          (fun acc b -> acc +. (float_of_int b.rows /. float_of_int (max 1 b.distinct)))
          0.0 bs
        /. float_of_int t.total_rows

let estimated_distinct t = Array.fold_left (fun acc b -> acc + b.distinct) 0 t.buckets
