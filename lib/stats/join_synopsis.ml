open Rq_storage

type t = {
  root : string;
  tables : string list;
  sample : Sample.t;
  root_size : int;
  (* The bitset evidence kernel over this synopsis's rows.  Lazy so that
     synopses built but never probed (e.g. covering tables a workload
     never touches) pay nothing; forced on the first evidence query. *)
  kernel : Pred_index.t Lazy.t;
}

let make ~root ~tables ~sample ~root_size =
  { root; tables; sample; root_size; kernel = lazy (Pred_index.create (Sample.rows sample)) }

(* Traversal order and the FK edge used to reach each non-root table.  The
   paper assumes acyclic FK graphs; we additionally require tree-shaped
   closures (each table reachable by exactly one FK path), which covers the
   TPC-H and star schemas and keeps the maximal join well-defined. *)
let closure catalog root =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit table =
    Hashtbl.add visited table ();
    order := table :: !order;
    List.iter
      (fun (fk : Catalog.foreign_key) ->
        if Hashtbl.mem visited fk.to_table then
          invalid_arg
            (Printf.sprintf
               "Join_synopsis.build: table %s reachable via multiple FK paths from %s"
               fk.to_table root)
        else visit fk.to_table)
      (Catalog.foreign_keys_from catalog table)
  in
  visit root;
  List.rev !order

exception Dangling of string

let build ?(with_replacement = true) ?(follow_fks = true) ?(lenient = false) rng catalog ~size
    ~root =
  let root_rel =
    match Catalog.find_table_opt catalog root with
    | Some rel -> rel
    | None -> invalid_arg (Printf.sprintf "Join_synopsis.build: unknown table %s" root)
  in
  let tables = if follow_fks then closure catalog root else [ root ] in
  (* Primary-key lookup per referenced table. *)
  let pk_lookup = Hashtbl.create 8 in
  List.iter
    (fun table ->
      if not (String.equal table root) then begin
        let rel = Catalog.find_table catalog table in
        let pk =
          match Catalog.primary_key catalog table with
          | Some pk -> pk
          | None ->
              invalid_arg
                (Printf.sprintf "Join_synopsis.build: referenced table %s has no primary key"
                   table)
        in
        let pos = Schema.index_of (Relation.schema rel) pk in
        let lookup = Hashtbl.create (Relation.row_count rel) in
        Relation.iter (fun _ tup -> Hashtbl.replace lookup tup.(pos) tup) rel;
        Hashtbl.replace pk_lookup table (rel, lookup)
      end)
    tables;
  let base_sample = Sample.of_relation rng ~with_replacement ~size root_rel in
  (* Expand one root-sample tuple into the full joined row by following every
     FK edge in traversal order. *)
  let joined_schema =
    List.fold_left
      (fun acc table ->
        let s = Schema.qualify table (Relation.schema (Catalog.find_table catalog table)) in
        match acc with None -> Some s | Some a -> Some (Schema.concat a s))
      None tables
    |> Option.get
  in
  let expand root_tuple =
    let parts = Hashtbl.create 8 in
    Hashtbl.replace parts root root_tuple;
    let rec follow table tuple =
      let schema = Relation.schema (Catalog.find_table catalog table) in
      List.iter
        (fun (fk : Catalog.foreign_key) ->
          let key = tuple.(Schema.index_of schema fk.from_column) in
          let _, lookup = Hashtbl.find pk_lookup fk.to_table in
          match Hashtbl.find_opt lookup key with
          | Some child ->
              Hashtbl.replace parts fk.to_table child;
              follow fk.to_table child
          | None ->
              let detail =
                Printf.sprintf
                  "Join_synopsis.build: dangling FK %s.%s = %s (no match in %s)" table
                  fk.from_column (Value.to_string key) fk.to_table
              in
              (* A dangling root row is not part of the maximal join, so in
                 lenient mode it simply contributes nothing to the sample —
                 this is how a referenced table that became empty degrades
                 to an empty synopsis instead of aborting the rebuild. *)
              if lenient then raise (Dangling detail) else invalid_arg detail)
        (Catalog.foreign_keys_from catalog table)
    in
    if follow_fks then follow root root_tuple;
    Array.concat (List.map (fun table -> Hashtbl.find parts table) tables)
  in
  let rows =
    Array.of_seq (Relation.to_seq (Sample.rows base_sample))
    |> Array.to_list
    |> List.filter_map (fun tuple ->
           match expand tuple with
           | joined -> Some joined
           | exception Dangling _ -> None)
    |> Array.of_list
  in
  let sample =
    Sample.of_rows ~rows ~schema:joined_schema
      ~population_size:(Relation.row_count root_rel)
      ~name:(root ^ "__synopsis")
  in
  make ~root ~tables ~sample ~root_size:(Relation.row_count root_rel)

let root t = t.root
let tables t = t.tables

(* Tamper hooks for the fault-injection harness: same synopsis metadata,
   altered contents.  Production code never calls these. *)
let with_rows t rows =
  let sample =
    Sample.of_rows ~rows
      ~schema:(Relation.schema (Sample.rows t.sample))
      ~population_size:(Sample.population_size t.sample)
      ~name:(t.root ^ "__synopsis")
  in
  (* [make], not [{ t with sample }]: the tampered synopsis must carry a
     fresh kernel, never bitmaps built over the original rows. *)
  make ~root:t.root ~tables:t.tables ~sample ~root_size:t.root_size

let truncate t n =
  let rows = Array.of_seq (Relation.to_seq (Sample.rows t.sample)) in
  let keep = max 0 (min n (Array.length rows)) in
  with_rows t (Array.sub rows 0 keep)

(* Sample rows unchanged, so sharing the kernel (and its bitmaps) is
   sound. *)
let with_root_size t n = { t with root_size = n }
let covers t needed = List.for_all (fun table -> List.mem table t.tables) needed
let sample t = t.sample
let size t = Sample.size t.sample
let root_size t = t.root_size

let evidence t pred = (Pred_index.count (Lazy.force t.kernel) pred, Sample.size t.sample)
let evidence_scan t pred = Sample.evidence t.sample pred

let matching_rows t pred =
  let idx = Lazy.force t.kernel in
  let bitmap = Pred_index.eval idx pred in
  let rows = Sample.rows t.sample in
  let n = Relation.row_count rows in
  (* Lazily walk the bitmap: downstream consumers (GEE) are single-pass,
     so the matching rows are never materialized. *)
  let rec from i () =
    if i >= n then Seq.Nil
    else if Bitset.get bitmap i then Seq.Cons (Relation.get rows i, from (i + 1))
    else from (i + 1) ()
  in
  from 0

let kernel_stats t =
  if Lazy.is_val t.kernel then Pred_index.stats (Lazy.force t.kernel)
  else Rq_obs.Metrics.kernel_zero

let set_on_evict t f = Pred_index.set_on_evict (Lazy.force t.kernel) f
let clear_kernel t = if Lazy.is_val t.kernel then Pred_index.clear (Lazy.force t.kernel)
