(** The bitset evidence kernel: cached per-atom bitmaps over one sample.

    Evaluates each atomic predicate exactly once over the sample into a
    {!Bitset}; evidence for any boolean combination is then bitwise
    AND/OR/NOT plus popcount.  Counts are bit-identical to compiling the
    whole predicate and scanning ({!Sample.count_matching}): a bitmap
    records exactly where the compiled atom holds, and the boolean
    connectives are pointwise.  Atoms are keyed by their canonical
    structural rendering ({!Rq_exec.Pred.render}) in a bounded LRU. *)

open Rq_storage
open Rq_exec

type t

val create : ?capacity:int -> Relation.t -> t
(** An index over the given (immutable) sample relation with no bitmaps
    built yet; [capacity] bounds the atom cache (default 256). *)

val rows : t -> Relation.t
val size : t -> int

val eval : t -> Pred.t -> Bitset.t
(** The exact satisfaction bitmap of the predicate, building and caching
    bitmaps for any atoms not yet indexed. *)

val count : t -> Pred.t -> int
(** [popcount (eval t pred)] — the evidence count [k]. *)

val clear : t -> unit
(** Drop all cached bitmaps (the bench's "cold" state); counters remain. *)

val set_on_evict : t -> (string -> unit) -> unit
(** Called with the canonical atom key whenever the LRU drops a bitmap —
    surfaced as a [Cache_evicted] trace event by estimator owners. *)

val stats : t -> Rq_obs.Metrics.kernel
(** Cumulative kernel counters for this index. *)
