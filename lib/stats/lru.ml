include Rq_storage.Lru
