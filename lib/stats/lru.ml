(* A small string-keyed LRU, the shape Plan_cache uses: a hashtable plus a
   logical clock, evicting the least-recently-used entry at capacity.  The
   evidence and bitmap caches are bounded with this so long throughput runs
   cannot grow memory without bound; [on_evict] lets the owner surface each
   eviction as a trace event. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  entries : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable on_evict : string -> unit;
}

let create ?(on_evict = fun _ -> ()) ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be non-negative";
  {
    capacity;
    entries = Hashtbl.create (min (max capacity 1) 64);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    on_evict;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let set_on_evict t f = t.on_evict <- f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
      entry.last_used <- tick t;
      t.hits <- t.hits + 1;
      Some entry.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.entries key

let evict_lru t =
  if Hashtbl.length t.entries >= t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (key, entry))
        t.entries None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove t.entries key;
        t.evictions <- t.evictions + 1;
        t.on_evict key
  end

let insert t key value =
  if t.capacity = 0 then begin
    (* A zero-capacity cache holds nothing: the insert itself is the
       eviction, so the counters and callback still tell the truth. *)
    ignore value;
    t.evictions <- t.evictions + 1;
    t.on_evict key
  end
  else begin
    if not (Hashtbl.mem t.entries key) then evict_lru t;
    Hashtbl.replace t.entries key { value; last_used = tick t }
  end

let find_or_add t key make =
  match find t key with
  | Some v -> v
  | None ->
      let v = make () in
      insert t key v;
      v

let clear t = Hashtbl.reset t.entries
