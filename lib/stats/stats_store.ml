open Rq_storage
open Rq_exec

type config = {
  sample_size : int;
  histogram_buckets : int;
  with_replacement : bool;
  synopsis_roots : string list option;
  follow_foreign_keys : bool;
}

let default_config =
  {
    sample_size = 500;
    histogram_buckets = Histogram.default_bucket_count;
    with_replacement = true;
    synopsis_roots = None;
    follow_foreign_keys = true;
  }

type chunk_stats = {
  chunks : int;
  rows : int;
  pages : int;
  clustered_columns : string list;
}

type t = {
  catalog : Catalog.t;
  config : config;
  histograms : (string * string, Histogram.t) Hashtbl.t;
  synopses : (string, Join_synopsis.t) Hashtbl.t;
  chunk_profiles : (string, chunk_stats) Hashtbl.t;
  version : int;
  table_versions : (string, int) Hashtbl.t;
}

(* Process-wide monotonic clock for statistics versions.  Every store built
   or derived (copy-on-write) within one process gets a strictly larger
   version than anything before it, so a plan cached against version [v]
   can trust that *any* statistics change — a maintenance rebuild, a fault
   injection, a manual synopsis swap — is visible as [version > v].  The
   counter never resets; it is an ordering device, not an identifier. *)
let version_clock = ref 0

let next_version () =
  incr version_clock;
  !version_clock

(* A column is zone-clustered when its per-chunk [min, max] ranges are
   pairwise disjoint in chunk order (all-null chunks are unconstrained):
   a range predicate over such a column zone-map-prunes to a contiguous
   band of chunks.  This is the chunk-level physical-design fact the
   paper's UPDATE STATISTICS precomputation phase records — it is derived
   from the always-resident zone maps, never by scanning chunk data. *)
let column_is_zone_clustered rel col =
  let n = Relation.chunk_count rel in
  let prev_hi = ref Value.Null in
  let ok = ref true in
  for ci = 0 to n - 1 do
    let { Zone_map.lo; hi; _ } = Zone_map.column (Relation.zone_map rel ci) col in
    match (lo, hi) with
    | Value.Null, Value.Null -> ()
    | lo, hi ->
        if !prev_hi <> Value.Null && Value.compare lo !prev_hi < 0 then ok := false;
        if Value.compare hi !prev_hi > 0 then prev_hi := hi
  done;
  !ok

let chunk_profile rel =
  let schema = Relation.schema rel in
  let clustered_columns =
    if Relation.chunk_count rel = 0 then []
    else
      List.filteri
        (fun i _ -> column_is_zone_clustered rel i)
        (Schema.columns schema)
      |> List.map (fun c -> c.Schema.name)
  in
  {
    chunks = Relation.chunk_count rel;
    rows = Relation.row_count rel;
    pages = Relation.page_count rel;
    clustered_columns;
  }

let update_statistics rng ?(config = default_config) catalog =
  let histograms = Hashtbl.create 64 in
  let synopses = Hashtbl.create 16 in
  let chunk_profiles = Hashtbl.create 16 in
  let roots =
    match config.synopsis_roots with
    | Some roots -> roots
    | None -> Catalog.table_names catalog
  in
  List.iter
    (fun table ->
      let rel = Catalog.find_table catalog table in
      Hashtbl.replace chunk_profiles table (chunk_profile rel);
      List.iter
        (fun { Schema.name = column; _ } ->
          Hashtbl.replace histograms (table, column)
            (Histogram.build ~buckets:config.histogram_buckets rel column))
        (Schema.columns (Relation.schema rel)))
    (Catalog.table_names catalog);
  List.iter
    (fun root ->
      (* Empty tables get an empty synopsis (evidence (0, 0)): the
         degradation chain flags it as Missing and falls through to magic
         constants, instead of the build raising on an empty sample. *)
      Hashtbl.replace synopses root
        (Join_synopsis.build (Rq_math.Rng.split rng) catalog ~lenient:true
           ~with_replacement:config.with_replacement
           ~follow_fks:config.follow_foreign_keys ~size:config.sample_size ~root))
    roots;
  let version = next_version () in
  let table_versions = Hashtbl.create 16 in
  List.iter
    (fun table -> Hashtbl.replace table_versions table version)
    (Catalog.table_names catalog);
  { catalog; config; histograms; synopses; chunk_profiles; version; table_versions }

let catalog t = t.catalog
let config t = t.config
let version t = t.version
let chunk_stats t table = Hashtbl.find_opt t.chunk_profiles table

let table_version t table =
  (* Unknown tables report the store version: a cache that asks about a
     table the store has never seen must stay conservative. *)
  Option.value ~default:t.version (Hashtbl.find_opt t.table_versions table)
let histogram t ~table ~column = Hashtbl.find_opt t.histograms (table, column)
let synopsis t ~root = Hashtbl.find_opt t.synopses root

(* Copy-on-write setters: the fault harness derives damaged stores without
   mutating the store under test.  Each derivation advances the store
   version and the touched table's version, so cached plans against the
   original cannot be served from the derived store (or vice versa). *)
let bump t ~table =
  let table_versions = Hashtbl.copy t.table_versions in
  let version = next_version () in
  Hashtbl.replace table_versions table version;
  (version, table_versions)

let with_synopsis t ~root replacement =
  let synopses = Hashtbl.copy t.synopses in
  (match replacement with
  | Some syn -> Hashtbl.replace synopses root syn
  | None -> Hashtbl.remove synopses root);
  let version, table_versions = bump t ~table:root in
  { t with synopses; version; table_versions }

let with_histogram t ~table ~column replacement =
  let histograms = Hashtbl.copy t.histograms in
  (match replacement with
  | Some h -> Hashtbl.replace histograms (table, column) h
  | None -> Hashtbl.remove histograms (table, column));
  let version, table_versions = bump t ~table in
  { t with histograms; version; table_versions }

let synopsis_roots t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.synopses [])

let root_of_expression catalog tables =
  (* The root is the table whose primary key is not the target of an FK edge
     from another table in the set. *)
  let referenced =
    List.concat_map
      (fun table ->
        List.filter_map
          (fun (fk : Catalog.foreign_key) ->
            if List.mem fk.to_table tables then Some fk.to_table else None)
          (Catalog.foreign_keys_from catalog table))
      tables
  in
  match List.filter (fun table -> not (List.mem table referenced)) tables with
  | [ root ] -> Some root
  | _ -> None

let synopsis_for t tables =
  match tables with
  | [] -> None
  | [ table ] -> synopsis t ~root:table
  | _ -> (
      match root_of_expression t.catalog tables with
      | None -> None
      | Some root -> (
          match synopsis t ~root with
          | Some syn when Join_synopsis.covers syn tables -> Some syn
          | _ -> None))

(* Textbook (Selinger) fallback selectivities when the histogram cannot help. *)
let magic_eq = 0.1
let magic_range = 1.0 /. 3.0
let magic_other = 1.0 /. 3.0

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let histogram_selectivity t ~table pred =
  let hist column = Hashtbl.find_opt t.histograms (table, column) in
  let range column ~lo ~hi =
    match hist column with
    | Some h -> Histogram.selectivity_range h ~lo ~hi
    | None -> magic_range
  in
  let rec go = function
    | Pred.True -> 1.0
    | Pred.False -> 0.0
    | Pred.Cmp (op, a, b) -> (
        let flipped = function
          | Pred.Eq -> Pred.Eq
          | Pred.Ne -> Pred.Ne
          | Pred.Lt -> Pred.Gt
          | Pred.Le -> Pred.Ge
          | Pred.Gt -> Pred.Lt
          | Pred.Ge -> Pred.Le
        in
        match (a, b) with
        | Expr.Col c, e -> (
            match Expr.const_value e with
            | Some v -> simple_cmp op c v
            | None -> magic_other)
        | e, Expr.Col c -> (
            match Expr.const_value e with
            | Some v -> simple_cmp (flipped op) c v
            | None -> magic_other)
        | _ -> magic_other)
    | Pred.Between (Expr.Col c, lo_e, hi_e) -> (
        match (Expr.const_value lo_e, Expr.const_value hi_e) with
        | Some lo, Some hi -> range c ~lo:(Some lo) ~hi:(Some hi)
        | _ -> magic_range)
    | Pred.Between _ -> magic_range
    | Pred.Contains _ -> magic_eq
    | Pred.And ps -> List.fold_left (fun acc p -> acc *. go p) 1.0 ps
    | Pred.Or ps -> 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. go p)) 1.0 ps
    | Pred.Not p -> 1.0 -. go p
  and simple_cmp op c v =
    match op with
    | Pred.Eq -> (
        match hist c with Some h -> Histogram.selectivity_eq h v | None -> magic_eq)
    | Pred.Ne -> clamp01 (1.0 -. simple_cmp Pred.Eq c v)
    | Pred.Lt | Pred.Le -> range c ~lo:None ~hi:(Some v)
    | Pred.Gt | Pred.Ge -> range c ~lo:(Some v) ~hi:None
  in
  clamp01 (go pred)
