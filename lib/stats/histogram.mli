(** One-dimensional equi-depth histograms — the conventional estimator the
    paper uses as its baseline (250 buckets by default, matching the
    commercial system described in Sec. 6.1).

    A histogram keeps only per-bucket summaries (bounds, row count, distinct
    count), so estimates inside a bucket interpolate under a uniformity
    assumption; combining histograms across columns requires the attribute
    value independence assumption.  Both are exactly the error sources the
    paper's sampling approach removes. *)

open Rq_storage

type bucket = { lo : Value.t; hi : Value.t; rows : int; distinct : int }

type t

val default_bucket_count : int
(** 250. *)

val build : ?buckets:int -> Relation.t -> string -> t
(** Equi-depth over the non-null values of the column. *)

val table : t -> string
val column : t -> string
val buckets : t -> bucket list
val total_rows : t -> int
val null_rows : t -> int

val selectivity_eq : t -> Value.t -> float
(** Uniform-within-bucket: rows/distinct of the containing bucket, over
    total rows. *)

val selectivity_range : t -> lo:Value.t option -> hi:Value.t option -> float
(** Closed range [lo, hi]; [None] = open end.  Linear interpolation within
    partially-covered buckets (0.5 coverage when the bound type cannot be
    interpolated numerically). *)

val estimated_distinct : t -> int
(** Sum of per-bucket distinct counts. *)
