(** A small bounded string-keyed LRU cache (the {!Rq_optimizer.Plan_cache}
    recipe, reusable): hashtable + logical clock, least-recently-used
    eviction at capacity, hit/miss/eviction counters, and an eviction
    callback for trace events. *)

type 'a t

val create : ?on_evict:(string -> unit) -> capacity:int -> unit -> 'a t
(** Raises [Invalid_argument] on a negative capacity.  Capacity 0 is a
    legal degenerate cache that stores nothing: every {!find} misses and
    every {!insert} drops the value immediately, counting an eviction and
    firing [on_evict].  [on_evict] receives the evicted key (default:
    ignore). *)

val find : 'a t -> string -> 'a option
(** Counts a hit (and refreshes recency) or a miss. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find], or build, insert and return (evicting the LRU entry first when
    at capacity). *)

val insert : 'a t -> string -> 'a -> unit
val mem : 'a t -> string -> bool
val clear : 'a t -> unit
val set_on_evict : 'a t -> (string -> unit) -> unit

val capacity : 'a t -> int
val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
