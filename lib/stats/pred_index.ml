(* The bitset evidence kernel: per-sample cached bitmaps for atomic
   predicates.

   Each *atomic* predicate (comparison, BETWEEN, CONTAINS) is evaluated
   exactly once over the sample, row by row, into a bitmap; the evidence
   count for any conjunction/disjunction/negation is then a bitwise
   combination plus a popcount — O(n/64) words instead of O(n) fresh row
   evaluations.  This is exact, not approximate: a bitmap records
   precisely the rows where the compiled atom returned true, and
   [Pred.compile]'s And/Or/Not are pointwise for_all/exists/not over the
   same rows, so bitwise AND/OR/NOT reproduce the scan path bit for bit
   (nulls included — a null comparison is false in the atom's bitmap, and
   negation flips it exactly as [Not] does).

   Atom identity is the canonical structural rendering ([Pred.render]),
   shared with the plan-cache fingerprints, so conjunct order and
   comparison commutation cannot duplicate bitmaps.  The cache is a small
   LRU: long-running optimizers with adversarial predicate churn stay
   bounded, at worst re-scanning for an evicted atom. *)

open Rq_storage
open Rq_exec

type t = {
  rows : Relation.t;
  nrows : int;
  atoms : Bitset.t Lru.t;
  (* Canonical rendering per atom structure.  Rendering allocates; on the
     warm path it would dominate the bitwise work itself, so each distinct
     atom is rendered once and found again by (cheap) structural hash.
     Entries are a few dozen bytes, but reset anyway if predicate churn
     ever grows the table past [renders_bound]. *)
  renders : (Pred.t, string) Hashtbl.t;
  mutable bitmaps_built : int;
  mutable bitmap_hits : int;
  mutable evidence_queries : int;
  mutable rows_scanned : int;
  mutable rows_scan_avoided : int;
}

let default_capacity = 256
let renders_bound = 4096

let create ?(capacity = default_capacity) rows =
  {
    rows;
    nrows = Relation.row_count rows;
    atoms = Lru.create ~capacity ();
    renders = Hashtbl.create 64;
    bitmaps_built = 0;
    bitmap_hits = 0;
    evidence_queries = 0;
    rows_scanned = 0;
    rows_scan_avoided = 0;
  }

let rows t = t.rows
let size t = t.nrows
let set_on_evict t f = Lru.set_on_evict t.atoms f
let clear t = Lru.clear t.atoms

let atom_key t pred =
  match Hashtbl.find_opt t.renders pred with
  | Some key -> key
  | None ->
      let key = Pred.render pred in
      if Hashtbl.length t.renders >= renders_bound then Hashtbl.reset t.renders;
      Hashtbl.replace t.renders pred key;
      key

let atomic t pred =
  let key = atom_key t pred in
  match Lru.find t.atoms key with
  | Some bitmap ->
      t.bitmap_hits <- t.bitmap_hits + 1;
      (* Each hit stands in for the full sample scan the row path would
         have paid for this atom. *)
      t.rows_scan_avoided <- t.rows_scan_avoided + t.nrows;
      bitmap
  | None ->
      let check = Pred.compile (Relation.schema t.rows) pred in
      let bitmap = Bitset.of_pred ~len:t.nrows (fun i -> check (Relation.get t.rows i)) in
      t.bitmaps_built <- t.bitmaps_built + 1;
      t.rows_scanned <- t.rows_scanned + t.nrows;
      Lru.insert t.atoms key bitmap;
      bitmap

let rec eval t = function
  | Pred.True -> Bitset.full t.nrows
  | Pred.False -> Bitset.create t.nrows
  | Pred.And [] -> Bitset.full t.nrows
  | Pred.And (p :: ps) ->
      List.fold_left (fun acc q -> Bitset.logand acc (eval t q)) (eval t p) ps
  | Pred.Or [] -> Bitset.create t.nrows
  | Pred.Or (p :: ps) ->
      List.fold_left (fun acc q -> Bitset.logor acc (eval t q)) (eval t p) ps
  | Pred.Not p -> Bitset.lognot (eval t p)
  | (Pred.Cmp _ | Pred.Between _ | Pred.Contains _) as atom -> atomic t atom

let count t pred =
  t.evidence_queries <- t.evidence_queries + 1;
  Bitset.popcount (eval t pred)

let stats t =
  {
    Rq_obs.Metrics.bitmaps_built = t.bitmaps_built;
    bitmap_hits = t.bitmap_hits;
    bitmap_evictions = Lru.evictions t.atoms;
    evidence_queries = t.evidence_queries;
    rows_scanned = t.rows_scanned;
    rows_scan_avoided = t.rows_scan_avoided;
  }
