open Rq_storage

let frequency_profile values =
  let counts = Hashtbl.create (Array.length values) in
  Array.iter
    (fun v ->
      let key = Value.to_string v in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    values;
  let freq_of_freq = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace freq_of_freq c
        (1 + Option.value ~default:0 (Hashtbl.find_opt freq_of_freq c)))
    counts;
  Hashtbl.fold (fun j f acc -> (j, f) :: acc) freq_of_freq []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let observed_distinct profile = List.fold_left (fun acc (_, f) -> acc + f) 0 profile

let clamp ~d ~population_size x =
  Float.max (float_of_int d) (Float.min (float_of_int population_size) x)

let gee ~sample ~population_size =
  let n = Array.length sample in
  if n = 0 then 0.0
  else begin
    let profile = frequency_profile sample in
    let d = observed_distinct profile in
    let f1 = Option.value ~default:0 (List.assoc_opt 1 profile) in
    let rest = d - f1 in
    let scale = sqrt (float_of_int population_size /. float_of_int n) in
    clamp ~d ~population_size ((scale *. float_of_int f1) +. float_of_int rest)
  end

let scale_up ~sample ~population_size =
  let n = Array.length sample in
  if n = 0 then 0.0
  else begin
    let d = observed_distinct (frequency_profile sample) in
    clamp ~d ~population_size
      (float_of_int d *. float_of_int population_size /. float_of_int n)
  end

let estimate_groups ~sample ~columns ~population_size =
  let schema = Relation.schema sample in
  let positions = List.map (Schema.index_of schema) columns in
  let combined =
    Array.init (Relation.row_count sample) (fun rid ->
        let tup = Relation.get sample rid in
        (* Encode the composite key as a single string value. *)
        Value.String
          (String.concat "\x00" (List.map (fun p -> Value.to_string tup.(p)) positions)))
  in
  gee ~sample:combined ~population_size
