open Rq_storage

(* Shared core: frequency-of-frequencies from a per-key count table. *)
let profile_of_counts counts =
  let freq_of_freq = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace freq_of_freq c
        (1 + Option.value ~default:0 (Hashtbl.find_opt freq_of_freq c)))
    counts;
  Hashtbl.fold (fun j f acc -> (j, f) :: acc) freq_of_freq []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let counts_of_keys keys =
  let counts = Hashtbl.create 64 in
  let n = ref 0 in
  Seq.iter
    (fun key ->
      incr n;
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    keys;
  (!n, counts)

let frequency_profile values =
  let _, counts = counts_of_keys (Seq.map Value.to_string (Array.to_seq values)) in
  profile_of_counts counts

let observed_distinct profile = List.fold_left (fun acc (_, f) -> acc + f) 0 profile

let clamp ~d ~population_size x =
  Float.max (float_of_int d) (Float.min (float_of_int population_size) x)

let gee_core ~n ~profile ~population_size =
  if n = 0 then 0.0
  else begin
    let d = observed_distinct profile in
    let f1 = Option.value ~default:0 (List.assoc_opt 1 profile) in
    let rest = d - f1 in
    let scale = sqrt (float_of_int population_size /. float_of_int n) in
    clamp ~d ~population_size ((scale *. float_of_int f1) +. float_of_int rest)
  end

(* Single pass over the key stream: nothing is materialized beyond the
   per-key count table (size = observed distinct count, not stream
   length).  This is the entry point for the estimator's GROUP-BY path,
   which feeds it the matching sample rows as a sequence. *)
let gee_of_keys keys ~population_size =
  let n, counts = counts_of_keys keys in
  gee_core ~n ~profile:(profile_of_counts counts) ~population_size

let gee ~sample ~population_size =
  gee_of_keys (Seq.map Value.to_string (Array.to_seq sample)) ~population_size

let scale_up ~sample ~population_size =
  let n = Array.length sample in
  if n = 0 then 0.0
  else begin
    let d = observed_distinct (frequency_profile sample) in
    clamp ~d ~population_size
      (float_of_int d *. float_of_int population_size /. float_of_int n)
  end

let composite_key positions tup =
  (* Encode the composite key as a single string value. *)
  String.concat "\x00" (List.map (fun p -> Value.to_string tup.(p)) positions)

let key_positions schema columns = List.map (Schema.index_of schema) columns

let estimate_groups_seq ~schema ~columns ~population_size tuples =
  let positions = key_positions schema columns in
  gee_of_keys (Seq.map (composite_key positions) tuples) ~population_size

let estimate_groups ~sample ~columns ~population_size =
  estimate_groups_seq ~schema:(Relation.schema sample) ~columns ~population_size
    (Relation.to_seq sample)
