open Rq_storage
open Rq_exec

(* Optimizers probe the same sample with the same predicates many times
   per enumeration; [Pred.compile] is pure per (schema, pred), so compiled
   checkers are memoized per sample under the canonical structural
   rendering.  Bounded so predicate churn cannot grow a sample
   unboundedly. *)
type t = {
  rows : Relation.t;
  population_size : int;
  checkers : (Relation.tuple -> bool) Lru.t;
}

let checker_cache_capacity = 256

let make ~rows ~population_size =
  { rows; population_size; checkers = Lru.create ~capacity:checker_cache_capacity () }

let of_relation rng ?(with_replacement = true) ~size rel =
  if size <= 0 then invalid_arg "Sample.of_relation: size must be positive";
  let population = Relation.row_count rel in
  (* An empty relation yields an empty sample (evidence (0, 0)) rather than
     an error: tables legitimately become empty between maintenance
     refreshes, and the estimation chain degrades on empty evidence. *)
  let indices =
    if population = 0 then [||]
    else if with_replacement then Rq_math.Rng.sample_with_replacement rng size population
    else Rq_math.Rng.sample_without_replacement rng (min size population) population
  in
  let tuples = Array.map (fun rid -> Relation.get rel rid) indices in
  make
    ~rows:
      (Relation.create
         ~name:(Relation.name rel ^ "__sample")
         ~schema:(Relation.schema rel) tuples)
    ~population_size:population

let of_rows ~rows ~schema ~population_size ~name =
  make ~rows:(Relation.create ~name ~schema rows) ~population_size

let reservoir rng ~size ~schema ~name stream =
  if size <= 0 then invalid_arg "Sample.reservoir: size must be positive";
  let buffer = Array.make size [||] in
  let seen = ref 0 in
  Seq.iter
    (fun tuple ->
      if !seen < size then buffer.(!seen) <- tuple
      else begin
        (* Keep each arriving tuple with probability size/seen. *)
        let j = Rq_math.Rng.int rng (!seen + 1) in
        if j < size then buffer.(j) <- tuple
      end;
      incr seen)
    stream;
  if !seen = 0 then invalid_arg "Sample.reservoir: empty stream";
  let rows = if !seen < size then Array.sub buffer 0 !seen else buffer in
  make ~rows:(Relation.create ~name ~schema rows) ~population_size:!seen

let rows t = t.rows
let size t = Relation.row_count t.rows
let population_size t = t.population_size

let checker t pred =
  Lru.find_or_add t.checkers (Pred.render pred) (fun () ->
      Pred.compile (Relation.schema t.rows) pred)

let count_matching t pred = Relation.filter_count t.rows (checker t pred)

let evidence t pred = (count_matching t pred, size t)

let naive_selectivity t pred =
  let n = size t in
  if n = 0 then 0.0 else float_of_int (count_matching t pred) /. float_of_int n
