include Rq_storage.Bitset
