(** The statistics store: what [UPDATE STATISTICS] produces (paper
    Sec. 3.2's precomputation phase).

    Holds, per catalog: one equi-depth histogram per (table, column) for the
    baseline estimator, and one join synopsis per table with outgoing FK
    edges (plus plain samples for FK-less tables, which are their own
    degenerate synopses). *)

open Rq_storage
open Rq_exec

type config = {
  sample_size : int;          (** tuples per synopsis; paper default 500 *)
  histogram_buckets : int;    (** paper-default 250 *)
  with_replacement : bool;
  synopsis_roots : string list option;
      (** [None] = every table (Sec. 3.5 discusses partial coverage) *)
  follow_foreign_keys : bool;
      (** [false] keeps only single-table samples: joins must then fall
          back to AVI over per-table estimates (Sec. 3.5, first case) *)
}

val default_config : config

type t

val update_statistics : Rq_math.Rng.t -> ?config:config -> Catalog.t -> t
(** Rebuilds everything from the current catalog contents. *)

val catalog : t -> Catalog.t
val config : t -> config

val version : t -> int
(** Monotonic statistics version.  Strictly increases across every store
    built in this process: {!update_statistics} (and hence every
    {!Maintenance} refresh) stamps a fresh version, and each copy-on-write
    derivation ({!with_synopsis}, {!with_histogram} — the primitives behind
    {!Fault.apply}) advances it again.  A consumer that recorded the
    version at plan time can detect any statistics change since — the
    invalidation rule of {!Rq_optimizer.Plan_cache}. *)

val table_version : t -> string -> int
(** The version of the last statistics change that touched this table: the
    store version for tables untouched since the last full rebuild, newer
    for tables whose synopsis or histograms were swapped copy-on-write.
    Unknown tables conservatively report the store version.  A full
    rebuild ({!update_statistics}) redraws every sample, so it advances
    every table's version — per-table granularity only helps consumers
    survive targeted (per-root) synopsis/histogram swaps. *)

type chunk_stats = {
  chunks : int;               (** sealed column chunks in the table's store *)
  rows : int;
  pages : int;
  clustered_columns : string list;
      (** columns whose per-chunk zone ranges are pairwise disjoint in
          chunk order: a range predicate over one zone-map-prunes the scan
          to a contiguous band of chunks *)
}

val chunk_stats : t -> string -> chunk_stats option
(** The chunk-level physical profile recorded for each table at
    {!update_statistics} — derived from the always-resident zone maps, so
    recording it never faults chunk data into the buffer pool.  Stamped
    with the store version like every other statistic. *)

val histogram : t -> table:string -> column:string -> Histogram.t option

val synopsis : t -> root:string -> Join_synopsis.t option

val synopsis_roots : t -> string list
(** Roots that currently have a synopsis, sorted. *)

val with_synopsis : t -> root:string -> Join_synopsis.t option -> t
(** Copy-on-write: a store identical to [t] except the given root's
    synopsis is replaced ([Some]) or removed ([None]).  The original store
    is untouched — used by the fault-injection harness. *)

val with_histogram : t -> table:string -> column:string -> Histogram.t option -> t
(** Copy-on-write histogram replacement/removal, as {!with_synopsis}. *)

val synopsis_for : t -> string list -> Join_synopsis.t option
(** The synopsis able to answer an SPJ expression over the given tables:
    rooted at the expression's root relation (the one whose primary key is
    not joined to), covering all tables.  [None] if the root has no
    synopsis (the no-statistics fallback case, Sec. 3.5). *)

val root_of_expression : Catalog.t -> string list -> string option
(** The root relation of a table set: the unique table in the set that is
    not referenced by any FK edge from another table in the set.  [None] if
    ambiguous or disconnected. *)

val histogram_selectivity : t -> table:string -> Pred.t -> float
(** Baseline per-table selectivity: decomposes the predicate into
    conjuncts, estimates each single-column conjunct from that column's
    histogram, falls back to textbook magic numbers (1/10 equality, 1/3
    range/other) for unsupported shapes, and multiplies the results — the
    attribute value independence assumption in action. *)
