(** Deterministic fault injection for statistics, and the structured error
    taxonomy the graceful-degradation estimation chain is driven by.

    The paper's robust estimator assumes its sample is a faithful picture of
    the data.  This module manufactures the ways that assumption breaks in
    production — statistics dropped, truncated below usefulness, gone stale
    against a mutated table, or outright corrupted — so tests can assert
    that every degradation path still yields a plan.  All randomness comes
    from the seeded {!Rq_math.Rng}, so every fault scenario is replayable. *)

open Rq_storage

type kind =
  | Stale            (** statistics no longer reflect the live table *)
  | Missing          (** statistics absent or truncated below usefulness *)
  | Corrupt          (** statistics fail an internal consistency check *)
  | Budget_exceeded  (** the optimizer ran out of its enumeration budget *)

type event = { kind : kind; subsystem : string; detail : string }
(** One structured degradation report: which check failed, where, and why.
    The estimation chain emits these instead of raising. *)

val kind_to_string : kind -> string
val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string

(** {2 Injections} *)

type injection =
  | Drop_synopsis of string                             (** root *)
  | Truncate_synopsis of { root : string; keep : int }
  | Corrupt_synopsis of string
      (** poisons one randomly chosen column per sample row with a
          type-mismatched value *)
  | Skew_synopsis of { root : string; factor : float }
      (** staleness: the recorded root size is multiplied by [factor], as if
          the synopsis were built against a table that has since changed *)
  | Drop_histogram of { table : string; column : string }
  | Dangling_fk of { root : string; break : int }
      (** breaks referential integrity inside the synopsis: the first
          [break] sample rows get a type-correct FK-side key that no longer
          matches the dimension key in the same row — invisible to the
          schema-type check, caught only by FK verification (classified
          [Corrupt], distinct from the whole-synopsis poisoning of
          [Corrupt_synopsis]).  No-op on single-table synopses. *)

val injection_to_string : injection -> string

val injection_to_json : injection -> Rq_obs.Json.t
val injection_of_json : Rq_obs.Json.t -> (injection, string) result
(** Round-trippable encoding used by the fuzzer's replayable [.fuzz-repro]
    files. *)

val apply : Rq_math.Rng.t -> Stats_store.t -> injection list -> Stats_store.t
(** Copy-on-write: returns a damaged store, leaves the input untouched. *)

(** {2 Verification} *)

val verify_synopsis : Catalog.t -> Join_synopsis.t -> (unit, event) result
(** Health check a consumer runs before trusting a synopsis: empty or
    truncated samples are [Missing]; a recorded root size drifted more than
    2x from the live table (or a vanished root) is [Stale]; schema-type
    violations and broken FK links inside sample rows are [Corrupt].  The
    check reads at most 50 rows and never evaluates user predicates, so it
    cannot itself crash on damaged contents. *)

(** {2 Named profiles (CLI [--fault-profile])} *)

val profile_names : string list
(** ["none"; "missing"; "truncate"; "corrupt"; "stale"; "dangling-fk";
    "chaos"]. *)

val profile_injections :
  Rq_math.Rng.t -> Stats_store.t -> string -> (injection list, string) result
(** Expands a profile name against the store's current synopsis roots;
    [chaos] picks a random fault per root and drops some histograms. *)
