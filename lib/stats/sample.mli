(** Precomputed uniform random samples of relations (paper Sec. 3.2).

    In contrast to on-the-fly sampling, samples are drawn once during the
    statistics-building phase (the analogue of histogram construction) and
    consulted at optimization time.  The default draws *with replacement*,
    matching the Bernoulli-evidence model of the paper's Bayesian analysis
    (Sec. 3.3). *)

open Rq_storage
open Rq_exec

type t

val of_relation :
  Rq_math.Rng.t -> ?with_replacement:bool -> size:int -> Relation.t -> t
(** [size] tuples drawn uniformly.  Without replacement, [size] is clamped
    to the population size.  Raises [Invalid_argument] on a non-positive
    size.  An empty relation yields an empty sample — evidence [(0, 0)] —
    so a table that became empty between maintenance refreshes degrades
    estimation (to the magic-constants tier) instead of aborting the
    statistics rebuild. *)

val of_rows :
  rows:Relation.tuple array -> schema:Schema.t -> population_size:int -> name:string -> t
(** Wraps already-drawn rows (used by the join-synopsis builder, whose rows
    are sample-of-root joined with full referenced tables). *)

val reservoir :
  Rq_math.Rng.t -> size:int -> schema:Schema.t -> name:string ->
  Relation.tuple Seq.t -> t
(** Single-pass reservoir sampling (Vitter's Algorithm R) over a tuple
    stream of unknown length — how the precomputation phase would sample a
    table too large to materialize.  The result is a uniform
    without-replacement sample of everything the stream produced (all of
    it, if fewer than [size] tuples arrive). *)

val rows : t -> Relation.t
(** The sample itself, as a small relation. *)

val size : t -> int
val population_size : t -> int

val checker : t -> Pred.t -> Relation.tuple -> bool
(** The compiled checker for [pred] against this sample's schema, served
    from a per-sample bounded cache keyed by the predicate's canonical
    rendering, so repeated probes do not recompile. *)

val count_matching : t -> Pred.t -> int
(** [count_matching s pred] = k, the number of sample tuples satisfying
    [pred] — the evidence fed to the Bayesian posterior.  Uses the cached
    compiled checker. *)

val evidence : t -> Pred.t -> int * int
(** [(k, n)]: matching count and sample size. *)

val naive_selectivity : t -> Pred.t -> float
(** Maximum-likelihood estimate k/n (what [1]'s join synopses would
    report); the robust estimator replaces this with a posterior quantile.
    0 on an empty sample. *)
