open Rq_storage

type t = {
  rng : Rq_math.Rng.t;
  config : Stats_store.config;
  refresh_fraction : float;
  catalog : Catalog.t;
  obs : Rq_obs.Recorder.t option;
  mutable stats : Stats_store.t;
  modified : (string, int) Hashtbl.t;
}

let create ?(config = Stats_store.default_config) ?(refresh_fraction = 0.2) ?obs rng catalog =
  if refresh_fraction <= 0.0 then
    invalid_arg "Maintenance.create: refresh_fraction must be positive";
  {
    rng;
    config;
    refresh_fraction;
    catalog;
    obs;
    stats = Stats_store.update_statistics (Rq_math.Rng.split rng) ~config catalog;
    modified = Hashtbl.create 8;
  }

let catalog t = t.catalog
let stats t = t.stats

let modifications_since_refresh t ~table =
  Option.value ~default:0 (Hashtbl.find_opt t.modified table)

let record_modifications t ~table count =
  if count < 0 then invalid_arg "Maintenance.record_modifications: negative count";
  Hashtbl.replace t.modified table (modifications_since_refresh t ~table + count)

let is_stale t =
  List.exists
    (fun table ->
      let rows = Relation.row_count (Catalog.find_table t.catalog table) in
      float_of_int (modifications_since_refresh t ~table)
      >= t.refresh_fraction *. float_of_int (max 1 rows))
    (Catalog.table_names t.catalog)

let apply_update t ~table f =
  let rel = Catalog.find_table t.catalog table in
  let old_rows = Relation.fold (fun acc _ tup -> tup :: acc) [] rel |> List.rev in
  let old_rows = Array.of_list old_rows in
  let new_rows = f old_rows in
  Catalog.replace_table t.catalog
    (Relation.create ~name:table ~schema:(Relation.schema rel) new_rows);
  (* Modification count: positionally-changed rows (physical inequality —
     an updated row is a fresh array) plus net growth or shrinkage. *)
  let common = min (Array.length old_rows) (Array.length new_rows) in
  let changed = ref (max (Array.length old_rows) (Array.length new_rows) - common) in
  for i = 0 to common - 1 do
    if not (old_rows.(i) == new_rows.(i)) then incr changed
  done;
  record_modifications t ~table !changed

let refresh t =
  (* The trace names the tables whose modifications triggered the rebuild;
     a manual refresh with no pending modifications names every table
     (everything is rebuilt either way). *)
  (match t.obs with
  | None -> ()
  | Some r ->
      let dirty =
        List.filter
          (fun table -> modifications_since_refresh t ~table > 0)
          (Catalog.table_names t.catalog)
      in
      let tables =
        match dirty with [] -> Catalog.table_names t.catalog | _ -> dirty
      in
      Rq_obs.Recorder.record r (Rq_obs.Trace.Stats_refresh { tables }));
  t.stats <- Stats_store.update_statistics (Rq_math.Rng.split t.rng) ~config:t.config t.catalog;
  Hashtbl.reset t.modified

let maybe_refresh t =
  if is_stale t then begin
    refresh t;
    true
  end
  else false
