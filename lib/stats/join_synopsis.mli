(** Join synopses (Acharya et al. [1], as used in paper Sec. 3.2).

    The join synopsis for relation R is a uniform random sample of the
    "maximal" foreign-key join rooted at R: sample R, join each sample tuple
    with the full relations R references, recursively.  Because each R-tuple
    matches exactly one tuple in each referenced table (FK integrity), the
    result is a uniform sample of that join, and projecting it onto any
    sub-join rooted at R gives a uniform sample of *that* join.  This is
    what lets the estimator evaluate a multi-table predicate on a single
    sample with no independence assumption and no error build-up.

    Columns in a synopsis are qualified as ["table.column"]. *)

open Rq_storage
open Rq_exec

type t

val build :
  ?with_replacement:bool -> ?follow_fks:bool -> ?lenient:bool -> Rq_math.Rng.t -> Catalog.t ->
  size:int -> root:string -> t
(** Samples the root and follows every outgoing FK edge transitively.
    With [~follow_fks:false] the synopsis degenerates to a plain
    single-table sample (covering only the root) — the Sec.-3.5 situation
    where join synopses are unavailable but per-table samples exist.
    An empty root yields an empty synopsis (evidence [(0, 0)]).
    Raises [Invalid_argument] if an FK value has no match (broken
    referential integrity) or the root is unknown.  With [~lenient:true]
    (the statistics-maintenance setting) a dangling root row is dropped
    from the sample instead — a root row with no referenced tuple is not
    part of the maximal join, so when a referenced table empties out the
    synopsis degrades toward empty rather than aborting the rebuild. *)

val root : t -> string

val tables : t -> string list
(** Root first, then every table reachable from it via FK edges. *)

val covers : t -> string list -> bool
(** Whether all the given tables appear in this synopsis. *)

val sample : t -> Sample.t
(** The synopsis rows (schema: concatenation of the qualified schemas of
    [tables t]). *)

val size : t -> int

val root_size : t -> int
(** Rows in the root relation; any FK-join expression rooted at R has true
    cardinality selectivity · root_size. *)

val evidence : t -> Pred.t -> int * int
(** [(k, n)] for a predicate over qualified columns of covered tables.
    Answered by the bitset evidence kernel ({!Pred_index}): each atomic
    predicate is scanned at most once per synopsis, then combined
    bitwise — bit-identical to {!evidence_scan}. *)

val evidence_scan : t -> Pred.t -> int * int
(** The reference row-scan implementation of {!evidence} (compile the
    whole predicate, scan the sample).  Kept for differential testing and
    the kernel benchmark baseline. *)

val matching_rows : t -> Pred.t -> Relation.tuple Seq.t
(** The sample rows satisfying [pred], lazily walked off the kernel's
    satisfaction bitmap — the streaming input to GROUP-BY distinct
    estimation; nothing is materialized. *)

val kernel_stats : t -> Rq_obs.Metrics.kernel
(** Cumulative kernel counters; all-zero if no evidence query has forced
    the kernel yet. *)

val set_on_evict : t -> (string -> unit) -> unit
(** Install an eviction observer on the kernel's bitmap cache (forces the
    kernel).  The callback receives the canonical atom rendering. *)

val clear_kernel : t -> unit
(** Drop any cached bitmaps (benchmark cold runs); a no-op if the kernel
    was never forced. *)

(** {2 Tamper hooks}

    Used only by the fault-injection harness ({!Fault}) to manufacture
    damaged statistics; they alter contents while keeping the synopsis
    metadata (root, covered tables) intact. *)

val with_rows : t -> Relation.tuple array -> t
(** Same synopsis with the sample rows replaced (schema unchanged). *)

val truncate : t -> int -> t
(** Keep only the first [n] sample rows ([n = 0] empties the sample). *)

val with_root_size : t -> int -> t
(** Override the recorded root-relation size (staleness skew: the synopsis
    claims a population that no longer matches the live table). *)
