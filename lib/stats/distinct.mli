(** Distinct-value estimation from a random sample (paper Sec. 3.5's
    GROUP-BY extension), after Haas, Naughton, Seshadri & Stokes [13]. *)

open Rq_storage

val frequency_profile : Value.t array -> (int * int) list
(** [(j, f_j)] pairs: [f_j] = number of distinct values occurring exactly
    [j] times in the sample, ascending in [j].  Nulls count as a value. *)

val gee_of_keys : string Seq.t -> population_size:int -> float
(** GEE over an already-encoded key stream, in one pass — nothing is
    materialized beyond the per-key count table, so feeding it the rows
    selected by a predicate costs memory proportional to the number of
    distinct keys, not the number of matching rows. *)

val gee : sample:Value.t array -> population_size:int -> float
(** The Guaranteed-Error Estimator:
    D̂ = sqrt(N/n)·f₁ + Σ_{j≥2} f_j,
    within a factor sqrt(N/n) of the truth in expectation.  Result is
    clamped to [d, N] where [d] is the distinct count observed. *)

val scale_up : sample:Value.t array -> population_size:int -> float
(** Naive scale-up baseline d·N/n (clamped to [d, N]); included so the
    ablation bench can show why GEE is preferred. *)

val estimate_groups :
  sample:Rq_storage.Relation.t -> columns:string list -> population_size:int -> float
(** GEE over the combined key of several grouping columns of a sample
    relation: the estimated number of GROUP BY groups. *)

val estimate_groups_seq :
  schema:Schema.t -> columns:string list -> population_size:int ->
  Relation.tuple Seq.t -> float
(** Streaming {!estimate_groups}: same estimate over a tuple sequence
    (e.g. just the sample rows matching a predicate) without
    materializing it. *)
