open Rq_storage

type kind = Stale | Missing | Corrupt | Budget_exceeded

type event = { kind : kind; subsystem : string; detail : string }

let kind_to_string = function
  | Stale -> "stale"
  | Missing -> "missing"
  | Corrupt -> "corrupt"
  | Budget_exceeded -> "budget-exceeded"

let pp_event fmt e =
  Format.fprintf fmt "[%s] %s: %s" (kind_to_string e.kind) e.subsystem e.detail

let event_to_string e = Format.asprintf "%a" pp_event e

type injection =
  | Drop_synopsis of string
  | Truncate_synopsis of { root : string; keep : int }
  | Corrupt_synopsis of string
  | Skew_synopsis of { root : string; factor : float }
  | Drop_histogram of { table : string; column : string }
  | Dangling_fk of { root : string; break : int }

let injection_to_string = function
  | Drop_synopsis root -> Printf.sprintf "drop-synopsis(%s)" root
  | Truncate_synopsis { root; keep } -> Printf.sprintf "truncate-synopsis(%s,%d)" root keep
  | Corrupt_synopsis root -> Printf.sprintf "corrupt-synopsis(%s)" root
  | Skew_synopsis { root; factor } -> Printf.sprintf "skew-synopsis(%s,%g)" root factor
  | Drop_histogram { table; column } -> Printf.sprintf "drop-histogram(%s.%s)" table column
  | Dangling_fk { root; break } -> Printf.sprintf "dangling-fk(%s,%d)" root break

(* A value the column's declared type can never hold, so verification spots
   the damage by a schema check alone — no predicate is ever evaluated over
   corrupted bytes. *)
let poison = function
  | Value.T_string -> Value.Int 0xBAD
  | _ -> Value.String "\xef\xbf\xbdcorrupt"

let corrupt_rows rng schema rows =
  let cols = Array.of_list (Schema.columns schema) in
  Array.map
    (fun tup ->
      let tup = Array.copy tup in
      let i = Rq_math.Rng.int rng (Array.length cols) in
      tup.(i) <- poison cols.(i).Schema.ty;
      tup)
    rows

let apply_one rng stats = function
  | Drop_synopsis root -> Stats_store.with_synopsis stats ~root None
  | Truncate_synopsis { root; keep } -> (
      match Stats_store.synopsis stats ~root with
      | None -> stats
      | Some syn ->
          Stats_store.with_synopsis stats ~root (Some (Join_synopsis.truncate syn keep)))
  | Corrupt_synopsis root -> (
      match Stats_store.synopsis stats ~root with
      | None -> stats
      | Some syn ->
          let rel = Sample.rows (Join_synopsis.sample syn) in
          let rows = Array.of_seq (Relation.to_seq rel) in
          let damaged = corrupt_rows rng (Relation.schema rel) rows in
          Stats_store.with_synopsis stats ~root (Some (Join_synopsis.with_rows syn damaged)))
  | Skew_synopsis { root; factor } -> (
      match Stats_store.synopsis stats ~root with
      | None -> stats
      | Some syn ->
          let skewed =
            int_of_float (Float.max 1.0 (float_of_int (Join_synopsis.root_size syn) *. factor))
          in
          Stats_store.with_synopsis stats ~root (Some (Join_synopsis.with_root_size syn skewed)))
  | Drop_histogram { table; column } -> Stats_store.with_histogram stats ~table ~column None
  | Dangling_fk { root; break } -> (
      (* Break referential integrity *inside* the synopsis: the first [break]
         sample rows get an FK-side key that no longer matches the dimension
         key stitched into the same row.  Unlike [Corrupt_synopsis] the
         damage is type-correct, so only the FK consistency check can see
         it.  A prefix is damaged (not random rows) so the bounded
         verification scan is guaranteed to look at a broken row. *)
      match Stats_store.synopsis stats ~root with
      | None -> stats
      | Some syn -> (
          let rel = Sample.rows (Join_synopsis.sample syn) in
          let schema = Relation.schema rel in
          let tables = Join_synopsis.tables syn in
          let edges =
            List.concat_map
              (fun table ->
                List.filter
                  (fun (fk : Catalog.foreign_key) -> List.mem fk.to_table tables)
                  (Catalog.foreign_keys_from (Stats_store.catalog stats) table))
              tables
          in
          match edges with
          | [] -> stats (* single-table synopsis: no FK edge to dangle *)
          | fk :: _ ->
              let fpos = Schema.index_of schema (fk.from_table ^ "." ^ fk.from_column) in
              let dangle = function
                | Value.Int k -> Value.Int (-abs k - 1_000_003)
                | Value.Float f -> Value.Float (-.Float.abs f -. 1e9)
                | Value.String s -> Value.String (s ^ "\x00dangling")
                | Value.Date d -> Value.Date (d + 1_000_003)
                | Value.Bool b -> Value.Bool (not b)
                | Value.Null -> Value.Int (-1_000_003)
              in
              let rows = Array.of_seq (Relation.to_seq rel) in
              let break = min (max break 1) (Array.length rows) in
              let damaged =
                Array.mapi
                  (fun i tup ->
                    if i < break then begin
                      let tup = Array.copy tup in
                      tup.(fpos) <- dangle tup.(fpos);
                      tup
                    end
                    else tup)
                  rows
              in
              Stats_store.with_synopsis stats ~root (Some (Join_synopsis.with_rows syn damaged))))

let apply rng stats injections = List.fold_left (apply_one rng) stats injections

(* ------------------------------------------------------------------ *)
(* Serialization (fuzzer repro files)                                  *)
(* ------------------------------------------------------------------ *)

let injection_to_json inj =
  let open Rq_obs.Json in
  match inj with
  | Drop_synopsis root -> Obj [ ("kind", Str "drop-synopsis"); ("root", Str root) ]
  | Truncate_synopsis { root; keep } ->
      Obj [ ("kind", Str "truncate-synopsis"); ("root", Str root); ("keep", Num (float_of_int keep)) ]
  | Corrupt_synopsis root -> Obj [ ("kind", Str "corrupt-synopsis"); ("root", Str root) ]
  | Skew_synopsis { root; factor } ->
      Obj [ ("kind", Str "skew-synopsis"); ("root", Str root); ("factor", Num factor) ]
  | Drop_histogram { table; column } ->
      Obj [ ("kind", Str "drop-histogram"); ("table", Str table); ("column", Str column) ]
  | Dangling_fk { root; break } ->
      Obj [ ("kind", Str "dangling-fk"); ("root", Str root); ("break", Num (float_of_int break)) ]

let injection_of_json json =
  let open Rq_obs.Json in
  let field obj name =
    match obj with
    | Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "fault injection: missing field %S" name))
    | _ -> Error "fault injection: expected an object"
  in
  let str obj name =
    match field obj name with
    | Ok (Str s) -> Ok s
    | Ok _ -> Error (Printf.sprintf "fault injection: field %S must be a string" name)
    | Error e -> Error e
  in
  let num obj name =
    match field obj name with
    | Ok (Num n) -> Ok n
    | Ok _ -> Error (Printf.sprintf "fault injection: field %S must be a number" name)
    | Error e -> Error e
  in
  let ( let* ) = Result.bind in
  let* kind = str json "kind" in
  match kind with
  | "drop-synopsis" ->
      let* root = str json "root" in
      Ok (Drop_synopsis root)
  | "truncate-synopsis" ->
      let* root = str json "root" in
      let* keep = num json "keep" in
      Ok (Truncate_synopsis { root; keep = int_of_float keep })
  | "corrupt-synopsis" ->
      let* root = str json "root" in
      Ok (Corrupt_synopsis root)
  | "skew-synopsis" ->
      let* root = str json "root" in
      let* factor = num json "factor" in
      Ok (Skew_synopsis { root; factor })
  | "drop-histogram" ->
      let* table = str json "table" in
      let* column = str json "column" in
      Ok (Drop_histogram { table; column })
  | "dangling-fk" ->
      let* root = str json "root" in
      let* break = num json "break" in
      Ok (Dangling_fk { root; break = int_of_float break })
  | other -> Error (Printf.sprintf "fault injection: unknown kind %S" other)

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let min_usable_sample = 8
let max_staleness_drift = 2.0
let verify_rows = 50

let verify_synopsis catalog syn =
  let root = Join_synopsis.root syn in
  let subsystem = "synopsis:" ^ root in
  let fail kind detail = Error { kind; subsystem; detail } in
  match Catalog.find_table_opt catalog root with
  | None -> fail Stale (Printf.sprintf "root table %s no longer in catalog" root)
  | Some rel ->
      let n = Join_synopsis.size syn in
      if n = 0 then fail Missing "synopsis sample is empty"
      else if n < min_usable_sample then
        fail Missing (Printf.sprintf "sample truncated to %d rows (< %d usable)" n min_usable_sample)
      else begin
        let live = float_of_int (max 1 (Relation.row_count rel)) in
        let recorded = float_of_int (max 1 (Join_synopsis.root_size syn)) in
        let drift = Float.max (live /. recorded) (recorded /. live) in
        if drift > max_staleness_drift then
          fail Stale
            (Printf.sprintf "recorded root size %.0f vs live %.0f (drift %.1fx)" recorded live
               drift)
        else begin
          let sample_rel = Sample.rows (Join_synopsis.sample syn) in
          let schema = Relation.schema sample_rel in
          let cols = Array.of_list (Schema.columns schema) in
          let checked = min verify_rows (Relation.row_count sample_rel) in
          let type_error = ref None in
          (try
             for r = 0 to checked - 1 do
               let tup = Relation.get sample_rel r in
               Array.iteri
                 (fun i (col : Schema.column) ->
                   match Value.type_of tup.(i) with
                   | None -> () (* NULLs are legal in any column *)
                   | Some ty ->
                       if ty <> col.Schema.ty && !type_error = None then
                         type_error :=
                           Some
                             (Printf.sprintf "row %d column %s holds %s, declared %s" r
                                col.Schema.name (Value.ty_to_string ty)
                                (Value.ty_to_string col.Schema.ty)))
                 cols
             done
           with _ -> type_error := Some "sample rows unreadable");
          match !type_error with
          | Some detail -> fail Corrupt detail
          | None ->
              (* FK consistency: within one synopsis row, every covered FK
                 edge must link matching key values — that is the defining
                 invariant of a join synopsis. *)
              let tables = Join_synopsis.tables syn in
              let edges =
                List.concat_map
                  (fun table ->
                    List.filter
                      (fun (fk : Catalog.foreign_key) -> List.mem fk.to_table tables)
                      (Catalog.foreign_keys_from catalog table))
                  tables
              in
              let fk_mismatch =
                List.find_map
                  (fun (fk : Catalog.foreign_key) ->
                    let fpos = Schema.index_of schema (fk.from_table ^ "." ^ fk.from_column) in
                    let tpos = Schema.index_of schema (fk.to_table ^ "." ^ fk.to_column) in
                    let bad = ref None in
                    for r = 0 to checked - 1 do
                      let tup = Relation.get sample_rel r in
                      if !bad = None && not (Value.equal tup.(fpos) tup.(tpos)) then
                        bad :=
                          Some
                            (Printf.sprintf "row %d breaks FK %s.%s = %s.%s" r fk.from_table
                               fk.from_column fk.to_table fk.to_column)
                    done;
                    !bad)
                  edges
              in
              (match fk_mismatch with
              | Some detail -> fail Corrupt detail
              | None -> Ok ())
        end
      end

(* ------------------------------------------------------------------ *)
(* Named profiles                                                      *)
(* ------------------------------------------------------------------ *)

let profile_names =
  [ "none"; "missing"; "truncate"; "corrupt"; "stale"; "dangling-fk"; "chaos" ]

let profile_injections rng stats name =
  let roots = Stats_store.synopsis_roots stats in
  match name with
  | "none" -> Ok []
  | "missing" -> Ok (List.map (fun r -> Drop_synopsis r) roots)
  | "truncate" -> Ok (List.map (fun r -> Truncate_synopsis { root = r; keep = 2 }) roots)
  | "corrupt" -> Ok (List.map (fun r -> Corrupt_synopsis r) roots)
  | "stale" -> Ok (List.map (fun r -> Skew_synopsis { root = r; factor = 16.0 }) roots)
  | "dangling-fk" ->
      (* Only roots whose synopsis stitches in at least one other table have
         an FK edge to break; single-table synopses are left alone. *)
      Ok
        (List.filter_map
           (fun r ->
             match Stats_store.synopsis stats ~root:r with
             | Some syn when List.length (Join_synopsis.tables syn) > 1 ->
                 Some (Dangling_fk { root = r; break = max 1 (Join_synopsis.size syn / 2) })
             | _ -> None)
           roots)
  | "chaos" ->
      let per_root root =
        Rq_math.Rng.pick rng
          [|
            Drop_synopsis root;
            Truncate_synopsis { root; keep = 2 };
            Corrupt_synopsis root;
            Skew_synopsis { root; factor = 16.0 };
            Dangling_fk { root; break = 25 };
          |]
      in
      let catalog = Stats_store.catalog stats in
      let hist_drops =
        List.concat_map
          (fun table ->
            let rel = Catalog.find_table catalog table in
            match Schema.columns (Relation.schema rel) with
            | { Schema.name = column; _ } :: _ when Rq_math.Rng.int rng 2 = 0 ->
                [ Drop_histogram { table; column } ]
            | _ -> [])
          (Catalog.table_names catalog)
      in
      Ok (List.map per_root roots @ hist_drops)
  | other ->
      Error
        (Printf.sprintf "unknown fault profile %S (expected one of: %s)" other
           (String.concat ", " profile_names))
