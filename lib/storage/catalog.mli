(** The database catalog: tables, secondary indexes, and foreign-key edges.

    The paper's estimator covers select-project-join expressions whose joins
    are all foreign-key joins over an acyclic join graph (Sec. 3.2); the
    catalog records that graph so both the optimizer and the join-synopsis
    builder can traverse it. *)

type foreign_key = {
  from_table : string;
  from_column : string;
  to_table : string;  (** referenced table; [to_column] is its primary key *)
  to_column : string;
}

type t

val create : unit -> t

val add_table : t -> ?primary_key:string -> ?clustered_by:string -> Relation.t -> unit
(** Registers a relation; raises [Invalid_argument] on duplicate names or if
    the primary-key or clustering column is missing from the schema.
    [clustered_by] declares that the heap is physically sorted on that column
    (defaults to the primary key when one is given): merge joins on a
    clustering key then need no sort, matching the paper's physical designs
    where every table is clustered on its primary key. *)

val find_table : t -> string -> Relation.t
(** Raises [Not_found]. *)

val replace_table : t -> Relation.t -> unit
(** Swap in a new version of an existing table (same name and schema);
    every registered index on it is rebuilt.  This is the mutation
    primitive behind batched inserts/deletes — and the reason statistics
    go stale (see {!Rq_stats.Maintenance}). *)

val find_table_opt : t -> string -> Relation.t option
val table_names : t -> string list
val primary_key : t -> string -> string option

val clustered_by : t -> string -> string option
(** The column the table's heap is sorted on, if any. *)

val build_index : t -> table:string -> column:string -> unit
(** Builds and registers a nonclustered index (idempotent). *)

val find_index : t -> table:string -> column:string -> Index.t option
val indexes_on : t -> string -> Index.t list

val add_foreign_key : t -> foreign_key -> unit
(** Validates both endpoints exist; the referenced column must be the
    declared primary key of [to_table].  Rejects edges that would create a
    cycle in the FK graph. *)

val foreign_keys_from : t -> string -> foreign_key list
(** Outgoing FK edges of a table. *)

val foreign_keys_into : t -> string -> foreign_key list
val all_foreign_keys : t -> foreign_key list

val fk_edge : t -> from_table:string -> to_table:string -> foreign_key option
(** The (unique, if any) FK edge between two tables. *)

val reachable_via_fk : t -> string -> string list
(** Tables reachable from a root by following outgoing FK edges, root first,
    in deterministic (preorder) order. *)
