type t = {
  relation_name : string;
  column : string;
  keys : Value.t array;  (* sorted ascending, Nulls first *)
  rids : int array;      (* parallel to keys *)
}

let build rel column =
  let pos = Schema.index_of (Relation.schema rel) column in
  let n = Relation.row_count rel in
  let pairs = Array.init n (fun rid -> ((Relation.get rel rid).(pos), rid)) in
  Array.sort
    (fun (k1, r1) (k2, r2) ->
      let c = Value.compare k1 k2 in
      if c <> 0 then c else Int.compare r1 r2)
    pairs;
  {
    relation_name = Relation.name rel;
    column;
    keys = Array.map fst pairs;
    rids = Array.map snd pairs;
  }

let relation_name t = t.relation_name
let column t = t.column
let entry_count t = Array.length t.keys

let leaf_page_count t =
  (* Entries are (key, 8-byte RID); keys sized by their runtime width. *)
  let entry_bytes =
    if Array.length t.keys = 0 then 12
    else
      match Value.type_of t.keys.(Array.length t.keys - 1) with
      | Some ty -> Value.byte_width ty + 8
      | None -> 12
  in
  let per_page = max 1 (Relation.page_size_bytes / entry_bytes) in
  let n = entry_count t in
  if n = 0 then 0 else ((n - 1) / per_page) + 1

(* First position with key >= v (lower bound). *)
let lower_bound t v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Value.compare t.keys.(mid) v < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.keys)

(* First position with key > v (upper bound). *)
let upper_bound t v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Value.compare t.keys.(mid) v <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.keys)

let range_bounds t ~lo ~hi =
  (* Nulls sort first; an open lower bound must still skip them, because SQL
     range predicates never match NULL. *)
  let start =
    match lo with
    | Some v -> lower_bound t v
    | None -> upper_bound t Value.Null
  in
  let stop = match hi with Some v -> upper_bound t v | None -> Array.length t.keys in
  (start, max start stop)

let probe_range t ~lo ~hi =
  let start, stop = range_bounds t ~lo ~hi in
  Rid_set.of_unsorted (Array.sub t.rids start (stop - start))

let probe_range_count t ~lo ~hi =
  let start, stop = range_bounds t ~lo ~hi in
  stop - start

let probe_eq t v = probe_range t ~lo:(Some v) ~hi:(Some v)

(* RIDs in key order, exactly as a stable sort of the heap on this column
   would emit them.  Ascending: keys ascend with Nulls first and equal-key
   ties in RID order — precisely the stored entry order.  Descending: a
   stable sort under the negated comparator keeps Nulls last and preserves
   the input (RID) order *within* each equal-key run, so we reverse the
   order of the runs but not the runs themselves. *)
let ordered_rids t ~descending =
  if not descending then Array.copy t.rids
  else begin
    let n = Array.length t.keys in
    let out = Array.make n 0 in
    let written = ref 0 in
    let hi = ref n in
    while !hi > 0 do
      let key = t.keys.(!hi - 1) in
      let lo = ref (!hi - 1) in
      while !lo > 0 && Value.compare t.keys.(!lo - 1) key = 0 do
        decr lo
      done;
      for i = !lo to !hi - 1 do
        out.(!written) <- t.rids.(i);
        incr written
      done;
      hi := !lo
    done;
    out
  end

let min_key t =
  (* Smallest non-null key. *)
  let start = upper_bound t Value.Null in
  if start < Array.length t.keys then Some t.keys.(start) else None

let max_key t =
  let n = Array.length t.keys in
  if n = 0 then None
  else
    let k = t.keys.(n - 1) in
    if Value.is_null k then None else Some k
