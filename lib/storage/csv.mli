(** RFC-4180-style CSV reading and writing (no external dependency).

    Supports quoted fields with embedded commas, newlines and doubled-quote
    escapes; both LF and CRLF row separators.  Used by the loader that
    populates a catalog from files on disk. *)

val parse : string -> (string list list, string) result
(** Rows of fields.  A trailing newline does not produce an empty row.
    Errors report the offset of the offending character (e.g. a stray
    quote inside an unquoted field). *)

val fold_rows :
  in_channel -> init:'a -> ('a -> string list -> ('a, string) result) -> ('a, string) result
(** Stream rows from a channel without slurping the file: each completed
    row is folded through [f] as soon as its terminating newline is read,
    so memory stays O(row), not O(file) — what makes a TPC-H SF 1 load
    constant-memory.  Same grammar, offsets and error messages as {!parse}
    (offsets count consumed characters).  An [Error] from [f] aborts the
    fold and is returned as-is. *)

val render : string list list -> string
(** Inverse of [parse]: fields containing commas, quotes or newlines are
    quoted; everything round-trips. *)

val tuple_of_fields :
  Schema.t -> string list -> (Relation.tuple, string) result
(** Convert one CSV row to a typed tuple: [""] becomes NULL; integers,
    floats, booleans ([true]/[false]) and ISO dates ([YYYY-MM-DD]) are
    parsed per the schema's column types. *)

val fields_of_tuple : Relation.tuple -> string list
(** Inverse conversion (NULL becomes the empty field; dates print ISO). *)
