(** Immutable columnar chunks: a fixed-size run of rows stored column-major
    (one [Value.t array] per column), the unit of buffer-pool residency and
    zone-map granularity.  A chunk spans a whole number of pages
    ({!Page.pages_per_chunk}), so chunk boundaries are page-aligned. *)

type t

val of_tuples : Value.t array array -> t
(** Seal a non-empty row-major slice into a chunk (copies into columns). *)

val of_rows : arity:int -> (int -> int -> Value.t) -> int -> t
(** [of_rows ~arity value n]: chunk of [n] rows where cell [(r,c)] is
    [value r c] — builds column-major directly, without a row-major copy. *)

val n_rows : t -> int
val n_columns : t -> int

val value : t -> col:int -> row:int -> Value.t

val column : t -> int -> Value.t array
(** The backing column array — do not mutate. *)

val get : t -> int -> Value.t array
(** Materialize one row as a fresh tuple. *)

val iter : (int -> Value.t array -> unit) -> t -> unit
(** Rows in order, each materialized as a fresh tuple; the row index is
    chunk-relative. *)
