(** Immutable columnar chunks: a fixed-size run of rows stored column-major
    (one [Value.t array] per column), the unit of buffer-pool residency and
    zone-map granularity.  A chunk spans a whole number of pages
    ({!Page.pages_per_chunk}), so chunk boundaries are page-aligned. *)

type t

val of_tuples : Value.t array array -> t
(** Seal a non-empty row-major slice into a chunk (copies into columns). *)

val of_rows : arity:int -> (int -> int -> Value.t) -> int -> t
(** [of_rows ~arity value n]: chunk of [n] rows where cell [(r,c)] is
    [value r c] — builds column-major directly, without a row-major copy. *)

val n_rows : t -> int
val n_columns : t -> int

val value : t -> col:int -> row:int -> Value.t

val column : t -> int -> Value.t array
(** The backing column array — do not mutate. *)

val columns : t -> Value.t array array
(** All backing column arrays, zero-copy — do not mutate.  The arrays stay
    valid after the chunk is unpinned or evicted (eviction only drops the
    pool's reference; the GC keeps shared columns alive). *)

val of_columns : n_rows:int -> Value.t array array -> t
(** Zero-copy view over caller-owned column arrays (each of length at least
    [n_rows]), so columnar batches can run the per-chunk predicate kernels.
    Raises if a column is shorter than [n_rows]. *)

val get : t -> int -> Value.t array
(** Materialize one row as a fresh tuple. *)

val iter : (int -> Value.t array -> unit) -> t -> unit
(** Rows in order, each materialized as a fresh tuple; the row index is
    chunk-relative. *)
