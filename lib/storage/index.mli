(** Nonclustered secondary indexes.

    An index over column [c] of relation [r] is a (key, RID) array sorted by
    key.  Probes return RID sets without touching the heap; fetching the rows
    afterwards costs one random page read per row, which is what makes
    index-intersection plans risky at high selectivity. *)

type t

val build : Relation.t -> string -> t
(** [build rel column].  Null keys are indexed and ordered first. *)

val relation_name : t -> string
val column : t -> string
val entry_count : t -> int

val leaf_page_count : t -> int
(** Pages occupied by (key, RID) entries; an index range scan reads the
    touched fraction of these sequentially. *)

val probe_eq : t -> Value.t -> Rid_set.t
(** RIDs whose key equals the probe value. *)

val probe_range : t -> lo:Value.t option -> hi:Value.t option -> Rid_set.t
(** RIDs with [lo <= key <= hi]; [None] leaves the bound open.  Null keys
    never match a range. *)

val probe_range_count : t -> lo:Value.t option -> hi:Value.t option -> int
(** Cardinality of [probe_range] without materializing it. *)

val ordered_rids : t -> descending:bool -> int array
(** Every RID in key order, ties in RID order — byte-identical to the
    order a stable sort of the heap on this column produces (ascending:
    Nulls first; descending: Nulls last, equal-key runs keep RID order).
    The ordered-scan access path walks this instead of sorting. *)

val min_key : t -> Value.t option
val max_key : t -> Value.t option
