(* Single source of truth for page geometry (shared by the cost model, zone
   maps and morsel alignment).  A chunk is a fixed whole number of pages, so
   chunk boundaries are always page-aligned and per-chunk page charges
   telescope exactly. *)

let size_bytes = 8192

let rows_per_page schema = max 1 (size_bytes / max 1 (Schema.row_bytes schema))

let pages_per_chunk = 16

let rows_per_chunk schema = pages_per_chunk * rows_per_page schema
