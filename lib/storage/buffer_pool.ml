(* A small chunk-granular buffer pool with pinning and LRU eviction.

   Residency is tracked per chunk (a fixed whole number of pages, so the
   page-denominated capacity divides exactly).  Pinned chunks are never
   eviction candidates; a chunk becomes evictable when its pin count drops
   to zero, at which point it enters the LRU recency list ({!Lru}, the same
   cache that backs the evidence/bitmap caches and the plan-cache shards).
   Inserting a newly-loaded chunk while the pool is at capacity evicts the
   least-recently-unpinned resident chunk.

   All operations are mutex-protected: the morsel-parallel executor pins
   chunks from several domains at once.  Hit/miss/eviction counters are
   schedule-dependent under that concurrency (which domain faults a chunk
   in first is a race), so they are *not* part of the deterministic cost
   parity counters — they surface through {!stats} into the observability
   layer's pool record and the bench report instead. *)

type entry = {
  chunk : Chunk.t;
  mutable pins : int;
  mutable seq : bool;
      (* every pin so far came from a sequential scan: on unpin the chunk
         enters the LRU at the cold end (scan-resistant insertion) instead
         of displacing recently-used chunks.  Any non-sequential pin
         promotes the entry for good. *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  capacity_chunks : int;
  resident_chunks : int;
}

type t = {
  mutable capacity_chunks : int;
  resident : (string, entry) Hashtbl.t;
  mutable lru : unit Lru.t;  (* unpinned resident keys, recency-ordered *)
  mutable hits : int;
  mutable misses : int;
  mutex : Mutex.t;
}

let chunks_of_pages pages = max 1 (pages / Page.pages_per_chunk)

let create ?(capacity_pages = 1024 * Page.pages_per_chunk) () =
  let capacity_chunks = chunks_of_pages capacity_pages in
  let resident = Hashtbl.create 64 in
  let pool =
    { capacity_chunks; resident; lru = Lru.create ~capacity:capacity_chunks ();
      hits = 0; misses = 0; mutex = Mutex.create () }
  in
  Lru.set_on_evict pool.lru (fun key -> Hashtbl.remove resident key);
  pool

let locked pool f =
  Mutex.lock pool.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.mutex) f

let pin ?(seq = false) pool ~key ~load =
  (* The load runs outside the lock only on a miss; re-check afterwards in
     case another domain faulted the same chunk in concurrently. *)
  let hit e =
    if e.pins = 0 then Lru.remove pool.lru key;
    e.pins <- e.pins + 1;
    if not seq then e.seq <- false;
    pool.hits <- pool.hits + 1;
    e.chunk
  in
  let resident_hit =
    locked pool (fun () ->
        match Hashtbl.find_opt pool.resident key with
        | Some e -> Some (hit e)
        | None -> None)
  in
  match resident_hit with
  | Some chunk -> chunk
  | None ->
      let chunk = load () in
      locked pool (fun () ->
          match Hashtbl.find_opt pool.resident key with
          | Some e ->
              (* Lost the race: another domain loaded it first. *)
              hit e
          | None ->
              pool.misses <- pool.misses + 1;
              Hashtbl.replace pool.resident key { chunk; pins = 1; seq };
              chunk)

let unpin pool ~key =
  locked pool (fun () ->
      match Hashtbl.find_opt pool.resident key with
      | None -> ()
      | Some e ->
          if e.pins <= 0 then
            invalid_arg (Printf.sprintf "Buffer_pool.unpin %s: not pinned" key);
          e.pins <- e.pins - 1;
          (* Entering the LRU at capacity evicts the least-recently-unpinned
             chunk (the on_evict hook drops it from the residency table).
             Chunks only ever pinned by sequential scans enter at the cold
             end instead, so a table sweep larger than the pool recycles one
             slot rather than flushing every hot chunk. *)
          if e.pins = 0 then
            if e.seq then Lru.insert_cold pool.lru key ()
            else Lru.insert pool.lru key ())

let drop_unpinned pool =
  Lru.clear pool.lru  (* clear does not fire on_evict; sweep by pin count *)
  ;
  let stale =
    Hashtbl.fold (fun k e acc -> if e.pins = 0 then k :: acc else acc)
      pool.resident []
  in
  List.iter (Hashtbl.remove pool.resident) stale

let set_capacity_pages pool pages =
  locked pool (fun () ->
      let capacity_chunks = chunks_of_pages pages in
      pool.capacity_chunks <- capacity_chunks;
      drop_unpinned pool;
      pool.lru <- Lru.create ~capacity:capacity_chunks ();
      Lru.set_on_evict pool.lru (fun key -> Hashtbl.remove pool.resident key))

let stats pool =
  locked pool (fun () ->
      { hits = pool.hits; misses = pool.misses;
        evictions = Lru.evictions pool.lru;
        capacity_chunks = pool.capacity_chunks;
        resident_chunks = Hashtbl.length pool.resident })

let reset_stats pool =
  locked pool (fun () ->
      pool.hits <- 0;
      pool.misses <- 0;
      drop_unpinned pool;
      let capacity_chunks = pool.capacity_chunks in
      pool.lru <- Lru.create ~capacity:capacity_chunks ();
      Lru.set_on_evict pool.lru (fun key -> Hashtbl.remove pool.resident key))

(* The process-wide pool every relation reads through.  Default capacity is
   generous (16 Ki chunks) so toy-scale tests never feel eviction; benches
   and the fuzzer squeeze it via {!configure}. *)
let global = create ()

let configure ~capacity_pages = set_capacity_pages global capacity_pages

let global_stats () = stats global

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
