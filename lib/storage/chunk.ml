(* An immutable columnar chunk: up to [Page.rows_per_chunk schema] rows,
   stored column-major so per-column work (zone maps, bitmap predicate
   kernels) touches one array. *)

type t = {
  n_rows : int;
  columns : Value.t array array;  (* columns.(col).(row) *)
}

let n_rows t = t.n_rows

let n_columns t = Array.length t.columns

let value t ~col ~row = t.columns.(col).(row)

let column t col = t.columns.(col)

let columns t = t.columns

(* Zero-copy view over existing column arrays: the vectorized executor
   wraps a batch's columns back into a chunk so the per-chunk bitmap
   kernels run on it unchanged.  The caller keeps ownership. *)
let of_columns ~n_rows columns =
  if n_rows < 0 then invalid_arg "Chunk.of_columns: negative n_rows";
  Array.iter
    (fun col ->
      if Array.length col < n_rows then
        invalid_arg "Chunk.of_columns: column shorter than n_rows")
    columns;
  { n_rows; columns }

let get t row =
  Array.init (Array.length t.columns) (fun c -> t.columns.(c).(row))

let of_rows ~arity rows n =
  let columns =
    Array.init arity (fun c -> Array.init n (fun r -> rows r c))
  in
  { n_rows = n; columns }

let of_tuples tuples =
  let n = Array.length tuples in
  if n = 0 then invalid_arg "Chunk.of_tuples: empty";
  let arity = Array.length tuples.(0) in
  of_rows ~arity (fun r c -> tuples.(r).(c)) n

let iter f t =
  let arity = Array.length t.columns in
  for r = 0 to t.n_rows - 1 do
    f r (Array.init arity (fun c -> t.columns.(c).(r)))
  done
