type foreign_key = {
  from_table : string;
  from_column : string;
  to_table : string;
  to_column : string;
}

type table_entry = {
  relation : Relation.t;
  primary_key : string option;
  clustered_by : string option;
}

type t = {
  tables : (string, table_entry) Hashtbl.t;
  indexes : (string * string, Index.t) Hashtbl.t;
  mutable foreign_keys : foreign_key list;
}

let create () =
  { tables = Hashtbl.create 16; indexes = Hashtbl.create 16; foreign_keys = [] }

let add_table t ?primary_key ?clustered_by rel =
  let name = Relation.name rel in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.add_table: duplicate table %S" name);
  let check_col what = function
    | Some c when not (Schema.mem (Relation.schema rel) c) ->
        invalid_arg
          (Printf.sprintf "Catalog.add_table %s: %s column %S not in schema" name what c)
    | _ -> ()
  in
  check_col "primary-key" primary_key;
  check_col "clustering" clustered_by;
  let clustered_by = match clustered_by with Some _ as c -> c | None -> primary_key in
  Hashtbl.add t.tables name { relation = rel; primary_key; clustered_by }

let find_table_opt t name =
  Option.map (fun e -> e.relation) (Hashtbl.find_opt t.tables name)

let find_table t name =
  match find_table_opt t name with Some r -> r | None -> raise Not_found

let replace_table t rel =
  let name = Relation.name rel in
  match Hashtbl.find_opt t.tables name with
  | None -> invalid_arg (Printf.sprintf "Catalog.replace_table: unknown table %S" name)
  | Some entry ->
      let old_columns = Schema.columns (Relation.schema entry.relation) in
      let new_columns = Schema.columns (Relation.schema rel) in
      if old_columns <> new_columns then
        invalid_arg (Printf.sprintf "Catalog.replace_table %s: schema changed" name);
      Hashtbl.replace t.tables name { entry with relation = rel };
      (* Registered indexes reflect the heap; rebuild them in place. *)
      Hashtbl.iter
        (fun (table, column) _ ->
          if String.equal table name then
            Hashtbl.replace t.indexes (table, column) (Index.build rel column))
        (Hashtbl.copy t.indexes)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let primary_key t name =
  match Hashtbl.find_opt t.tables name with
  | Some e -> e.primary_key
  | None -> raise Not_found

let clustered_by t name =
  match Hashtbl.find_opt t.tables name with
  | Some e -> e.clustered_by
  | None -> raise Not_found

let build_index t ~table ~column =
  if not (Hashtbl.mem t.indexes (table, column)) then begin
    let rel = find_table t table in
    Hashtbl.add t.indexes (table, column) (Index.build rel column)
  end

let find_index t ~table ~column = Hashtbl.find_opt t.indexes (table, column)

let indexes_on t table =
  Hashtbl.fold
    (fun (tbl, _) idx acc -> if String.equal tbl table then idx :: acc else acc)
    t.indexes []
  |> List.sort (fun a b -> String.compare (Index.column a) (Index.column b))

let foreign_keys_from t table =
  List.filter (fun fk -> String.equal fk.from_table table) t.foreign_keys

let foreign_keys_into t table =
  List.filter (fun fk -> String.equal fk.to_table table) t.foreign_keys

let all_foreign_keys t = t.foreign_keys

let fk_edge t ~from_table ~to_table =
  List.find_opt
    (fun fk -> String.equal fk.from_table from_table && String.equal fk.to_table to_table)
    t.foreign_keys

let reachable_via_fk t root =
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      order := name :: !order;
      List.iter (fun fk -> visit fk.to_table) (foreign_keys_from t name)
    end
  in
  visit root;
  List.rev !order

let add_foreign_key t fk =
  let check_column table column =
    let rel = find_table t table in
    if not (Schema.mem (Relation.schema rel) column) then
      invalid_arg
        (Printf.sprintf "Catalog.add_foreign_key: column %s.%s does not exist" table column)
  in
  check_column fk.from_table fk.from_column;
  check_column fk.to_table fk.to_column;
  (match primary_key t fk.to_table with
  | Some pk when String.equal pk fk.to_column -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Catalog.add_foreign_key: %s.%s is not the primary key of %s"
           fk.to_table fk.to_column fk.to_table));
  (* Acyclicity: the referenced table must not already reach the referencing
     table through existing FK edges. *)
  if List.mem fk.from_table (reachable_via_fk t fk.to_table) then
    invalid_arg
      (Printf.sprintf "Catalog.add_foreign_key: edge %s -> %s would create a cycle"
         fk.from_table fk.to_table);
  t.foreign_keys <- fk :: t.foreign_keys
