exception Csv_error of string
exception Row_error of string

(* The scanner proper, over any character source with one slot of pushback
   (all the grammar needs: the "" escape and the CRLF pair are the only
   two-character lookaheads).  [emit] receives each completed row; it may
   raise to abort.  Offsets in errors count consumed characters, matching
   the historical string-indexed messages. *)
let scan ~next ~emit =
  let peeked = ref None in
  let pos = ref 0 in
  let getc () =
    match !peeked with
    | Some _ as r ->
        peeked := None;
        incr pos;
        r
    | None -> (
        match next () with
        | Some _ as r ->
            incr pos;
            r
        | None -> None)
  in
  let peekc () =
    match !peeked with
    | Some _ as r -> r
    | None -> (
        match next () with
        | Some c ->
            peeked := Some c;
            Some c
        | None -> None)
  in
  let fail i msg = raise (Csv_error (Printf.sprintf "offset %d: %s" i msg)) in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    emit (List.rev !fields);
    fields := []
  in
  (* Tracks whether the current (possibly empty) field has consumed any
     character yet — needed to drop a trailing newline without emitting a
     phantom empty row. *)
  let row_started = ref false in
  let rec loop () =
    match getc () with
    | None -> ()
    | Some '"' ->
        if Buffer.length buf > 0 then fail (!pos - 1) "quote inside unquoted field";
        (* Quoted field: scan to the closing quote, honoring "" escapes. *)
        let rec quoted () =
          match getc () with
          | None -> fail !pos "unterminated quoted field"
          | Some '"' -> (
              match peekc () with
              | Some '"' ->
                  ignore (getc ());
                  Buffer.add_char buf '"';
                  quoted ()
              | _ -> ())
          | Some c ->
              Buffer.add_char buf c;
              quoted ()
        in
        quoted ();
        row_started := true;
        loop ()
    | Some ',' ->
        flush_field ();
        row_started := true;
        loop ()
    | Some (('\n' | '\r') as c) ->
        if !row_started || Buffer.length buf > 0 then flush_row ();
        row_started := false;
        (* Swallow a CRLF pair. *)
        (if c = '\r' then
           match peekc () with Some '\n' -> ignore (getc ()) | _ -> ());
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        row_started := true;
        loop ()
  in
  loop ();
  if !row_started || Buffer.length buf > 0 then flush_row ()

let parse input =
  let n = String.length input in
  let i = ref 0 in
  let next () =
    if !i >= n then None
    else begin
      let c = input.[!i] in
      incr i;
      Some c
    end
  in
  let rows = ref [] in
  match scan ~next ~emit:(fun row -> rows := row :: !rows) with
  | () -> Ok (List.rev !rows)
  | exception Csv_error msg -> Error msg

let fold_rows ic ~init f =
  let next () =
    match input_char ic with c -> Some c | exception End_of_file -> None
  in
  let acc = ref init in
  let emit row =
    match f !acc row with
    | Ok a -> acc := a
    | Error msg -> raise (Row_error msg)
  in
  match scan ~next ~emit with
  | () -> Ok !acc
  | exception Csv_error msg -> Error msg
  | exception Row_error msg -> Error msg

let needs_quoting field =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field

let render rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun fields ->
      List.iteri
        (fun i field ->
          if i > 0 then Buffer.add_char buf ',';
          if needs_quoting field then begin
            Buffer.add_char buf '"';
            String.iter
              (fun c ->
                if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
              field;
            Buffer.add_char buf '"'
          end
          else Buffer.add_string buf field)
        fields;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some year, Some month, Some day -> Some (Value.date_of_ymd ~year ~month ~day)
      | _ -> None)
  | _ -> None

let tuple_of_fields schema fields =
  let columns = Schema.columns schema in
  if List.length fields <> List.length columns then
    Error
      (Printf.sprintf "expected %d fields, got %d" (List.length columns)
         (List.length fields))
  else begin
    let converted =
      List.map2
        (fun { Schema.name; ty } field ->
          if String.equal field "" then Ok Value.Null
          else
            match ty with
            | Value.T_int -> (
                match int_of_string_opt field with
                | Some i -> Ok (Value.Int i)
                | None -> Error (Printf.sprintf "column %s: %S is not an integer" name field))
            | Value.T_float -> (
                match float_of_string_opt field with
                | Some f -> Ok (Value.Float f)
                | None -> Error (Printf.sprintf "column %s: %S is not a float" name field))
            | Value.T_bool -> (
                match String.lowercase_ascii field with
                | "true" | "t" | "1" -> Ok (Value.Bool true)
                | "false" | "f" | "0" -> Ok (Value.Bool false)
                | _ -> Error (Printf.sprintf "column %s: %S is not a boolean" name field))
            | Value.T_date -> (
                match parse_date field with
                | Some d -> Ok d
                | None ->
                    Error (Printf.sprintf "column %s: %S is not a YYYY-MM-DD date" name field))
            | Value.T_string -> Ok (Value.String field))
        columns fields
    in
    match List.find_opt Result.is_error converted with
    | Some (Error msg) -> Error msg
    | _ -> Ok (Array.of_list (List.map Result.get_ok converted))
  end

let fields_of_tuple tuple =
  Array.to_list
    (Array.map
       (function
         | Value.Null -> ""
         | Value.String s -> s
         | Value.Bool b -> string_of_bool b
         | Value.Int i -> string_of_int i
         | Value.Float f -> Printf.sprintf "%.17g" f
         | Value.Date _ as d -> Value.to_string d)
       tuple)
