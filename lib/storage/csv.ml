let parse input =
  let n = String.length input in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let error = ref None in
  let fail i msg = error := Some (Printf.sprintf "offset %d: %s" i msg) in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  (* Tracks whether the current (possibly empty) field has consumed any
     character yet — needed to drop a trailing newline without emitting a
     phantom empty row. *)
  let row_started = ref false in
  while !error = None && !i < n do
    let c = input.[!i] in
    if c = '"' then begin
      if Buffer.length buf > 0 then fail !i "quote inside unquoted field"
      else begin
        (* Quoted field: scan to the closing quote, honoring "" escapes. *)
        incr i;
        let closed = ref false in
        while (not !closed) && !error = None do
          if !i >= n then fail !i "unterminated quoted field"
          else if input.[!i] = '"' then
            if !i + 1 < n && input.[!i + 1] = '"' then begin
              Buffer.add_char buf '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char buf input.[!i];
            incr i
          end
        done;
        row_started := true
      end
    end
    else if c = ',' then begin
      flush_field ();
      row_started := true;
      incr i
    end
    else if c = '\n' || c = '\r' then begin
      if !row_started || Buffer.length buf > 0 then flush_row ();
      row_started := false;
      (* Swallow a CRLF pair. *)
      if c = '\r' && !i + 1 < n && input.[!i + 1] = '\n' then i := !i + 2 else incr i
    end
    else begin
      Buffer.add_char buf c;
      row_started := true;
      incr i
    end
  done;
  if !error = None && (!row_started || Buffer.length buf > 0) then flush_row ();
  match !error with Some msg -> Error msg | None -> Ok (List.rev !rows)

let needs_quoting field =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field

let render rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun fields ->
      List.iteri
        (fun i field ->
          if i > 0 then Buffer.add_char buf ',';
          if needs_quoting field then begin
            Buffer.add_char buf '"';
            String.iter
              (fun c ->
                if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
              field;
            Buffer.add_char buf '"'
          end
          else Buffer.add_string buf field)
        fields;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some year, Some month, Some day -> Some (Value.date_of_ymd ~year ~month ~day)
      | _ -> None)
  | _ -> None

let tuple_of_fields schema fields =
  let columns = Schema.columns schema in
  if List.length fields <> List.length columns then
    Error
      (Printf.sprintf "expected %d fields, got %d" (List.length columns)
         (List.length fields))
  else begin
    let converted =
      List.map2
        (fun { Schema.name; ty } field ->
          if String.equal field "" then Ok Value.Null
          else
            match ty with
            | Value.T_int -> (
                match int_of_string_opt field with
                | Some i -> Ok (Value.Int i)
                | None -> Error (Printf.sprintf "column %s: %S is not an integer" name field))
            | Value.T_float -> (
                match float_of_string_opt field with
                | Some f -> Ok (Value.Float f)
                | None -> Error (Printf.sprintf "column %s: %S is not a float" name field))
            | Value.T_bool -> (
                match String.lowercase_ascii field with
                | "true" | "t" | "1" -> Ok (Value.Bool true)
                | "false" | "f" | "0" -> Ok (Value.Bool false)
                | _ -> Error (Printf.sprintf "column %s: %S is not a boolean" name field))
            | Value.T_date -> (
                match parse_date field with
                | Some d -> Ok d
                | None ->
                    Error (Printf.sprintf "column %s: %S is not a YYYY-MM-DD date" name field))
            | Value.T_string -> Ok (Value.String field))
        columns fields
    in
    match List.find_opt Result.is_error converted with
    | Some (Error msg) -> Error msg
    | _ -> Ok (Array.of_list (List.map Result.get_ok converted))
  end

let fields_of_tuple tuple =
  Array.to_list
    (Array.map
       (function
         | Value.Null -> ""
         | Value.String s -> s
         | Value.Bool b -> string_of_bool b
         | Value.Int i -> string_of_int i
         | Value.Float f -> Printf.sprintf "%.17g" f
         | Value.Date _ as d -> Value.to_string d)
       tuple)
