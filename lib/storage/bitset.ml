(* Fixed-length bitsets packed as little-endian int64 words in Bytes.

   The evidence kernel's data plane: one bit per synopsis row.  Boolean
   predicate structure maps onto word-wise AND/OR/NOT and evidence counts
   onto popcount, so combining cached atomic bitmaps costs O(n/64) words
   instead of O(n) row evaluations. *)

type t = { len : int; words : Bytes.t }

let word_count len = (len + 63) lsr 6

let length t = t.len
let words t = word_count t.len

let get_word t i = Bytes.get_int64_le t.words (i lsl 3)
let set_word t i v = Bytes.set_int64_le t.words (i lsl 3) v

(* Bits past [len] in the last word must stay zero: popcount and equal
   read whole words and never mask.  [lognot] is the only operation that
   can set them; it re-masks the tail. *)
let tail_mask len =
  let used = len land 63 in
  if used = 0 then -1L else Int64.sub (Int64.shift_left 1L used) 1L

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Bytes.make (8 * word_count len) '\000' }

let full len =
  let t = create len in
  let w = word_count len in
  for i = 0 to w - 1 do
    set_word t i (-1L)
  done;
  if w > 0 then set_word t (w - 1) (tail_mask len);
  t

let check_index t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0, %d)" i t.len)

let set t i =
  check_index t i;
  let w = i lsr 6 and b = i land 63 in
  set_word t w (Int64.logor (get_word t w) (Int64.shift_left 1L b))

let get t i =
  check_index t i;
  let w = i lsr 6 and b = i land 63 in
  Int64.logand (Int64.shift_right_logical (get_word t w) b) 1L <> 0L

let check_same_length op a b =
  if a.len <> b.len then
    invalid_arg (Printf.sprintf "Bitset.%s: lengths differ (%d vs %d)" op a.len b.len)

let map2 op f a b =
  check_same_length op a b;
  let out = create a.len in
  for i = 0 to word_count a.len - 1 do
    set_word out i (f (get_word a i) (get_word b i))
  done;
  out

let logand a b = map2 "logand" Int64.logand a b
let logor a b = map2 "logor" Int64.logor a b

let lognot a =
  let out = create a.len in
  let w = word_count a.len in
  for i = 0 to w - 1 do
    set_word out i (Int64.lognot (get_word a i))
  done;
  if w > 0 then set_word out (w - 1) (Int64.logand (get_word out (w - 1)) (tail_mask a.len));
  out

(* SWAR popcount (Hacker's Delight fig. 5-2): no hardware popcnt from
   OCaml, but 64 bits fold in a handful of int64 ops. *)
let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let popcount t =
  let acc = ref 0 in
  for i = 0 to word_count t.len - 1 do
    acc := !acc + popcount64 (get_word t i)
  done;
  !acc

let count_and a b =
  check_same_length "count_and" a b;
  let acc = ref 0 in
  for i = 0 to word_count a.len - 1 do
    acc := !acc + popcount64 (Int64.logand (get_word a i) (get_word b i))
  done;
  !acc

let equal a b = a.len = b.len && Bytes.equal a.words b.words

let iter_set f t =
  for i = 0 to word_count t.len - 1 do
    let w = ref (get_word t i) in
    (* Peel off the lowest set bit each round: iteration cost tracks the
       popcount, not the universe size. *)
    while !w <> 0L do
      let lowest = Int64.logand !w (Int64.neg !w) in
      f ((i lsl 6) + popcount64 (Int64.sub lowest 1L));
      w := Int64.logxor !w lowest
    done
  done

let of_pred ~len pred =
  let t = create len in
  for i = 0 to len - 1 do
    if pred i then set t i
  done;
  t

(* -- Range windows (the vectorized scan's selection slices) -------------- *)

(* Mask for the bits of word [w] that fall inside [lo, hi), where the word
   covers rows [w*64, w*64+64). *)
let word_window_mask w ~lo ~hi =
  let base = w lsl 6 in
  let a = max 0 (lo - base) and b = min 64 (hi - base) in
  if a >= b then 0L
  else
    let ones_below n = if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L in
    Int64.logand (ones_below b) (Int64.lognot (ones_below a))

let check_range name len ~lo ~hi =
  if lo < 0 || hi > len || lo > hi then
    invalid_arg (Printf.sprintf "Bitset.%s: range [%d, %d) out of [0, %d]" name lo hi len)

let window len ~lo ~hi =
  check_range "window" len ~lo ~hi;
  let t = create len in
  if lo < hi then begin
    let w0 = lo lsr 6 and w1 = (hi - 1) lsr 6 in
    for w = w0 to w1 do
      set_word t w (word_window_mask w ~lo ~hi)
    done
  end;
  t

let inter_window b ~lo ~hi =
  check_range "inter_window" b.len ~lo ~hi;
  let out = create b.len in
  if lo < hi then begin
    let w0 = lo lsr 6 and w1 = (hi - 1) lsr 6 in
    for w = w0 to w1 do
      set_word out w (Int64.logand (get_word b w) (word_window_mask w ~lo ~hi))
    done
  end;
  out

(* Keep only the first [k] set bits (a LIMIT cutting a selection short). *)
let take b k =
  let out = create b.len in
  let remaining = ref (max 0 k) in
  let nw = word_count b.len in
  let w = ref 0 in
  while !remaining > 0 && !w < nw do
    let word = get_word b !w in
    let c = popcount64 word in
    if c <= !remaining then begin
      set_word out !w word;
      remaining := !remaining - c
    end
    else begin
      (* Peel the lowest set bit until the quota is spent. *)
      let rest = ref word and keep = ref 0L in
      for _ = 1 to !remaining do
        let lowest = Int64.logand !rest (Int64.neg !rest) in
        keep := Int64.logor !keep lowest;
        rest := Int64.logxor !rest lowest
      done;
      set_word out !w !keep;
      remaining := 0
    end;
    incr w
  done;
  out
