(** In-memory relations (heap tables).

    A relation is an immutable array of tuples plus page geometry used by the
    cost-accounting executor: rows are laid out in fixed-size pages so that a
    sequential scan costs [page_count] sequential reads while fetching one
    row by RID costs one random read (paper Sec. 2.1's seq-scan vs.
    index-intersection asymmetry). *)

type tuple = Value.t array

type t

val page_size_bytes : int
(** 8192, a conventional DBMS page size. *)

val create : name:string -> schema:Schema.t -> tuple array -> t
(** Validates tuple arity (not per-value types, which generators guarantee).
    The tuple array is owned by the relation afterwards. *)

val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int
val page_count : t -> int

val rows_per_page : t -> int
(** At least 1 even for very wide rows. *)

val get : t -> int -> tuple
(** Tuple by RID (0-based); raises [Invalid_argument] out of range. *)

val column_value : t -> int -> string -> Value.t
(** [column_value t rid col]. *)

val iter : (int -> tuple -> unit) -> t -> unit
val fold : ('a -> int -> tuple -> 'a) -> 'a -> t -> 'a

val to_seq : t -> tuple Seq.t

val filter_count : t -> (tuple -> bool) -> int
(** Number of tuples satisfying a predicate (used on samples, where the
    relation is small). *)

val pp_brief : Format.formatter -> t -> unit
