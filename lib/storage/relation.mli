(** Relations as sequences of immutable columnar chunks.

    Rows live in fixed-size column-major chunks ({!Chunk}) of
    [Page.rows_per_chunk] rows — a whole number of 8 KiB pages each — every
    chunk summarized by an always-resident zone map ({!Zone_map}).  Chunk
    payloads are reached only through the process-wide buffer pool
    ({!Buffer_pool.global}), so a capped pool bounds resident data; with a
    spilling {!Builder} the rows themselves live in a temp file and a
    TPC-H SF 1 table can exist without its tuples on the OCaml heap.

    Page geometry is unchanged from the row-array era: a sequential scan
    costs [page_count] sequential reads, one RID fetch costs one random
    read (paper Sec. 2.1's seq-scan vs. index-intersection asymmetry). *)

type tuple = Value.t array

type t

val page_size_bytes : int
(** [Page.size_bytes] (8192) — re-exported for compatibility. *)

val create : name:string -> schema:Schema.t -> tuple array -> t
(** Validates tuple arity (not per-value types, which generators guarantee).
    Chunks are sealed in heap storage; the input array is not retained. *)

(** Row-at-a-time construction with only the current chunk buffered.
    [~spill:true] marshals each sealed chunk to a temp file (removed at
    exit), so building and holding a relation needs O(chunk) heap. *)
module Builder : sig
  type rel = t
  type t

  val create : ?spill:bool -> name:string -> schema:Schema.t -> unit -> t
  val add_row : t -> tuple -> unit
  (** Raises [Invalid_argument] on an arity mismatch (same message as
      {!val:create}) or after {!finish}. *)

  val row_count : t -> int
  val finish : t -> rel
end

val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int
val page_count : t -> int

val rows_per_page : t -> int
(** [Page.rows_per_page (schema t)] — at least 1 even for very wide rows. *)

val rows_per_chunk : t -> int
(** [Page.rows_per_chunk (schema t)]: nominal rows per chunk; every chunk
    but the last is full. *)

val chunk_count : t -> int
val chunk_start : t -> int -> int
(** First RID of a chunk ([ci * rows_per_chunk]). *)

val chunk_row_count : t -> int -> int
val zone_map : t -> int -> Zone_map.t
(** Zone maps are resident metadata: consulting them never touches the
    buffer pool. *)

val with_chunk : ?seq:bool -> t -> int -> (Chunk.t -> 'a) -> 'a
(** [with_chunk t ci f] pins chunk [ci] in the global buffer pool (faulting
    it in on a miss), runs [f], and unpins — the only road to chunk data.
    [~seq:true] marks the pin as part of a sequential scan, which makes the
    chunk a scan-resistant (cold-end) LRU entry on unpin; see
    {!Buffer_pool.pin}. *)

val get : t -> int -> tuple
(** Tuple by RID (0-based); raises [Invalid_argument] out of range. *)

val column_value : t -> int -> string -> Value.t
(** [column_value t rid col] — a single-cell columnar read. *)

val iter : (int -> tuple -> unit) -> t -> unit
val fold : ('a -> int -> tuple -> 'a) -> 'a -> t -> 'a

val to_seq : t -> tuple Seq.t
(** One chunk pinned and materialized at a time: draining a spilled
    relation holds at most a chunk of tuples live. *)

val filter_count : t -> (tuple -> bool) -> int
(** Number of tuples satisfying a predicate (used on samples, where the
    relation is small). *)

val pp_brief : Format.formatter -> t -> unit
