(* Relations as sequences of immutable columnar chunks.

   A relation no longer owns a row array: rows live in fixed-size
   column-major chunks ({!Chunk}), each spanning a whole number of pages
   ({!Page.pages_per_chunk}) and summarized by an always-resident zone map
   ({!Zone_map}).  Chunk payloads are reached exclusively through the
   process-wide buffer pool ({!Buffer_pool.global}): every access pins the
   chunk (faulting it in from the heap store or the spill file on a miss)
   and unpins it when done, so a capped pool bounds resident data while
   pins keep in-flight chunks safe from eviction.

   [Builder] grows a relation row-by-row with only the current chunk
   buffered; with [~spill:true] sealed chunks are marshalled to a temp
   file, which is what lets a TPC-H SF 1 lineitem (~6M rows) exist without
   ~6M tuples live on the OCaml heap. *)

type tuple = Value.t array

type store =
  | Heap of Chunk.t array
  | Spill of { path : string; offsets : int array }

type t = {
  name : string;
  schema : Schema.t;
  n_rows : int;
  rows_per_page : int;
  rows_per_chunk : int;
  zone_maps : Zone_map.t array;
  store : store;
  id : int;
}

let page_size_bytes = Page.size_bytes

let next_id = Atomic.make 0

let pool_key t ci = Printf.sprintf "%s/%d#%d" t.name t.id ci

let load_chunk t ci =
  match t.store with
  | Heap chunks -> chunks.(ci)
  | Spill { path; offsets } ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          seek_in ic offsets.(ci);
          (Marshal.from_channel ic : Chunk.t))

let with_chunk ?(seq = false) t ci f =
  let key = pool_key t ci in
  let chunk =
    Buffer_pool.pin ~seq Buffer_pool.global ~key ~load:(fun () -> load_chunk t ci)
  in
  Fun.protect
    ~finally:(fun () -> Buffer_pool.unpin Buffer_pool.global ~key)
    (fun () -> f chunk)

(* -- Builder ------------------------------------------------------------- *)

module Builder = struct
  type rel = t

  type sink =
    | To_heap of Chunk.t list ref  (* sealed chunks, reversed *)
    | To_spill of { path : string; oc : out_channel; offsets : int list ref }

  type t = {
    b_name : string;
    b_schema : Schema.t;
    arity : int;
    chunk_capacity : int;
    buf : tuple array;  (* current chunk's rows, row-major *)
    mutable buf_len : int;
    mutable rows : int;
    mutable zone_maps : Zone_map.t list;  (* reversed *)
    sink : sink;
    mutable finished : bool;
  }

  let create ?(spill = false) ~name ~schema () =
    let chunk_capacity = Page.rows_per_chunk schema in
    let sink =
      if spill then begin
        let path = Filename.temp_file "rq_spill_" ".chunks" in
        at_exit (fun () -> if Sys.file_exists path then Sys.remove path);
        To_spill { path; oc = open_out_bin path; offsets = ref [] }
      end
      else To_heap (ref [])
    in
    {
      b_name = name;
      b_schema = schema;
      arity = Schema.arity schema;
      chunk_capacity;
      buf = Array.make chunk_capacity [||];
      buf_len = 0;
      rows = 0;
      zone_maps = [];
      sink;
      finished = false;
    }

  let row_count b = b.rows

  let seal b =
    if b.buf_len > 0 then begin
      let n = b.buf_len in
      let chunk = Chunk.of_rows ~arity:b.arity (fun r c -> b.buf.(r).(c)) n in
      b.zone_maps <- Zone_map.of_chunk chunk :: b.zone_maps;
      (match b.sink with
      | To_heap chunks -> chunks := chunk :: !chunks
      | To_spill { oc; offsets; _ } ->
          offsets := pos_out oc :: !offsets;
          Marshal.to_channel oc chunk []);
      Array.fill b.buf 0 n [||];
      b.buf_len <- 0
    end

  let add_row b tup =
    if b.finished then invalid_arg "Relation.Builder.add_row: already finished";
    if Array.length tup <> b.arity then
      invalid_arg
        (Printf.sprintf "Relation.create %s: tuple %d has arity %d, schema has %d"
           b.b_name b.rows (Array.length tup) b.arity);
    b.buf.(b.buf_len) <- tup;
    b.buf_len <- b.buf_len + 1;
    b.rows <- b.rows + 1;
    if b.buf_len = b.chunk_capacity then seal b

  let finish b =
    if b.finished then invalid_arg "Relation.Builder.finish: already finished";
    seal b;
    b.finished <- true;
    let store =
      match b.sink with
      | To_heap chunks -> Heap (Array.of_list (List.rev !chunks))
      | To_spill { path; oc; offsets } ->
          close_out oc;
          Spill { path; offsets = Array.of_list (List.rev !offsets) }
    in
    {
      name = b.b_name;
      schema = b.b_schema;
      n_rows = b.rows;
      rows_per_page = Page.rows_per_page b.b_schema;
      rows_per_chunk = b.chunk_capacity;
      zone_maps = Array.of_list (List.rev b.zone_maps);
      store;
      id = Atomic.fetch_and_add next_id 1;
    }
end

let create ~name ~schema tuples =
  let b = Builder.create ~name ~schema () in
  Array.iter (fun tup -> Builder.add_row b tup) tuples;
  Builder.finish b

(* -- Geometry ------------------------------------------------------------ *)

let name t = t.name
let schema t = t.schema
let row_count t = t.n_rows
let rows_per_page t = t.rows_per_page
let rows_per_chunk t = t.rows_per_chunk

let page_count t =
  if t.n_rows = 0 then 0 else ((t.n_rows - 1) / t.rows_per_page) + 1

let chunk_count t = Array.length t.zone_maps

let chunk_start t ci = ci * t.rows_per_chunk

let chunk_row_count t ci = Zone_map.n_rows t.zone_maps.(ci)

let zone_map t ci = t.zone_maps.(ci)

(* -- Row access (all through the buffer pool) ---------------------------- *)

let get t rid =
  if rid < 0 || rid >= t.n_rows then
    invalid_arg (Printf.sprintf "Relation.get %s: rid %d out of range" t.name rid);
  let ci = rid / t.rows_per_chunk in
  with_chunk t ci (fun chunk -> Chunk.get chunk (rid mod t.rows_per_chunk))

let column_value t rid col =
  if rid < 0 || rid >= t.n_rows then
    invalid_arg (Printf.sprintf "Relation.get %s: rid %d out of range" t.name rid);
  let ci = rid / t.rows_per_chunk in
  with_chunk t ci (fun chunk ->
      Chunk.value chunk ~col:(Schema.index_of t.schema col)
        ~row:(rid mod t.rows_per_chunk))

let iter f t =
  for ci = 0 to chunk_count t - 1 do
    let base = chunk_start t ci in
    with_chunk ~seq:true t ci (Chunk.iter (fun r tup -> f (base + r) tup))
  done

let fold f init t =
  let acc = ref init in
  iter (fun rid tup -> acc := f !acc rid tup) t;
  !acc

let to_seq t =
  (* One chunk pinned and materialized at a time, so draining a spilled
     relation never holds more than a chunk of tuples live. *)
  let n_chunks = chunk_count t in
  let rec chunk_seq ci () =
    if ci >= n_chunks then Seq.Nil
    else
      let rows = with_chunk ~seq:true t ci (fun chunk ->
          Array.init (Chunk.n_rows chunk) (Chunk.get chunk))
      in
      let rec row_seq r () =
        if r >= Array.length rows then chunk_seq (ci + 1) ()
        else Seq.Cons (rows.(r), row_seq (r + 1))
      in
      row_seq 0 ()
  in
  chunk_seq 0

let filter_count t pred =
  fold (fun acc _rid tup -> if pred tup then acc + 1 else acc) 0 t

let pp_brief fmt t =
  Format.fprintf fmt "%s[%d rows, %d pages] %a" t.name (row_count t) (page_count t)
    Schema.pp t.schema
