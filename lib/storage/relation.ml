type tuple = Value.t array

type t = {
  name : string;
  schema : Schema.t;
  tuples : tuple array;
  rows_per_page : int;
}

let page_size_bytes = 8192

let create ~name ~schema tuples =
  let arity = Schema.arity schema in
  Array.iteri
    (fun i tup ->
      if Array.length tup <> arity then
        invalid_arg
          (Printf.sprintf "Relation.create %s: tuple %d has arity %d, schema has %d"
             name i (Array.length tup) arity))
    tuples;
  let rows_per_page = max 1 (page_size_bytes / max 1 (Schema.row_bytes schema)) in
  { name; schema; tuples; rows_per_page }

let name t = t.name
let schema t = t.schema
let row_count t = Array.length t.tuples
let rows_per_page t = t.rows_per_page

let page_count t =
  let rows = row_count t in
  if rows = 0 then 0 else ((rows - 1) / t.rows_per_page) + 1

let get t rid =
  if rid < 0 || rid >= Array.length t.tuples then
    invalid_arg (Printf.sprintf "Relation.get %s: rid %d out of range" t.name rid);
  t.tuples.(rid)

let column_value t rid col = (get t rid).(Schema.index_of t.schema col)

let iter f t = Array.iteri f t.tuples

let fold f init t =
  let acc = ref init in
  Array.iteri (fun rid tup -> acc := f !acc rid tup) t.tuples;
  !acc

let to_seq t = Array.to_seq t.tuples

let filter_count t pred =
  Array.fold_left (fun acc tup -> if pred tup then acc + 1 else acc) 0 t.tuples

let pp_brief fmt t =
  Format.fprintf fmt "%s[%d rows, %d pages] %a" t.name (row_count t) (page_count t)
    Schema.pp t.schema
