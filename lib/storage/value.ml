type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

type ty = T_bool | T_int | T_float | T_string | T_date

let type_of = function
  | Null -> None
  | Bool _ -> Some T_bool
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | String _ -> Some T_string
  | Date _ -> Some T_date

(* Rank for cross-type ordering; Int and Float share a rank and compare
   numerically, mirroring SQL numeric comparison. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3
  | Date _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let is_null = function Null -> true | _ -> false

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Date x -> float_of_int x
  | Bool b -> if b then 1.0 else 0.0
  | Null -> invalid_arg "Value.to_float: Null"
  | String _ -> invalid_arg "Value.to_float: String"

let add_days v days =
  match v with
  | Date d -> Date (d + days)
  | _ -> invalid_arg "Value.add_days: not a date"

(* Days-from-civil and civil-from-days, Howard Hinnant's algorithms. *)
let date_of_ymd ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  Date ((era * 146097) + doe - 719468)

let ymd_of_date = function
  | Date z ->
      let z = z + 719468 in
      let era = (if z >= 0 then z else z - 146096) / 146097 in
      let doe = z - (era * 146097) in
      let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
      let y = yoe + (era * 400) in
      let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
      let mp = ((5 * doy) + 2) / 153 in
      let d = doy - (((153 * mp) + 2) / 5) + 1 in
      let m = if mp < 10 then mp + 3 else mp - 9 in
      ((if m <= 2 then y + 1 else y), m, d)
  | _ -> invalid_arg "Value.ymd_of_date: not a date"

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | String s -> Format.fprintf fmt "%S" s
  | Date _ as d ->
      let y, m, day = ymd_of_date d in
      Format.fprintf fmt "%04d-%02d-%02d" y m day

let to_string v = Format.asprintf "%a" pp v

let pp_ty fmt ty =
  Format.pp_print_string fmt
    (match ty with
    | T_bool -> "bool"
    | T_int -> "int"
    | T_float -> "float"
    | T_string -> "string"
    | T_date -> "date")

let ty_to_string ty = Format.asprintf "%a" pp_ty ty

let byte_width = function
  | T_bool -> 1
  | T_int -> 8
  | T_float -> 8
  | T_string -> 20
  | T_date -> 4
