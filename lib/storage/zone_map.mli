(** Per-chunk zone maps: min/max over the non-null values plus a null count
    for every column.  Computed once when a chunk is sealed and kept
    resident (only chunk payloads are paged through the buffer pool), they
    let scans skip whole chunks whose value range disproves the predicate
    and let the optimizer cost that skipping ahead of execution. *)

type col_stats = {
  lo : Value.t;  (** min over non-null values; [Null] when all-null *)
  hi : Value.t;  (** max over non-null values; [Null] when all-null *)
  nulls : int;
}

type t

val of_chunk : Chunk.t -> t

val n_rows : t -> int
val arity : t -> int
val column : t -> int -> col_stats

val pp : Format.formatter -> t -> unit
