(** Fixed-length bitsets over packed int64 words — the evidence kernel's
    representation of "which synopsis rows satisfy this predicate".

    All binary operations require equal lengths.  Bits beyond the logical
    length are kept zero, so {!popcount} and {!equal} are exact. *)

type t

val create : int -> t
(** All-zeros bitset of the given length.  Raises on negative length. *)

val full : int -> t
(** All-ones bitset of the given length. *)

val of_pred : len:int -> (int -> bool) -> t
(** [of_pred ~len f] sets bit [i] iff [f i] — the one row-at-a-time scan an
    atomic predicate ever pays. *)

val length : t -> int

val words : t -> int
(** Number of 64-bit words backing the set ([ceil (length / 64)]). *)

val set : t -> int -> unit
val get : t -> int -> bool

val logand : t -> t -> t
val logor : t -> t -> t

val lognot : t -> t
(** Complement within [length] (tail bits stay zero). *)

val popcount : t -> int

val count_and : t -> t -> int
(** [popcount (logand a b)] without materializing the intersection. *)

val equal : t -> t -> bool

val iter_set : (int -> unit) -> t -> unit
(** Calls [f] on each set bit in ascending order; cost is proportional to
    the number of set bits plus the word count. *)

val window : int -> lo:int -> hi:int -> t
(** [window len ~lo ~hi] has exactly the bits in [lo, hi) set — the
    selection a scan batch covering that row range starts from.  Raises on
    an out-of-bounds or inverted range. *)

val inter_window : t -> lo:int -> hi:int -> t
(** [inter_window b ~lo ~hi] is [logand b (window (length b) ~lo ~hi)]
    without materializing the window — restricting a per-chunk predicate
    bitmap to one batch's row range costs only the range's words. *)

val take : t -> int -> t
(** [take b k] keeps the first [k] set bits of [b] (all of them when
    [k >= popcount b]) — a LIMIT cutting a selection short. *)
