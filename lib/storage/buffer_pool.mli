(** A chunk-granular buffer pool with pinning and LRU eviction (reusing
    {!Lru}).  Every chunk access in {!Relation} routes through the
    process-wide {!global} pool: a pin either hits the residency table or
    faults the chunk in via the caller's [load]; an unpin returns the chunk
    to the LRU recency list, where an insert at capacity evicts the
    least-recently-unpinned chunk.  Pinned chunks are never evicted.

    All operations are mutex-protected (the morsel-parallel executor pins
    from several domains).  Hit/miss/eviction counters are therefore
    schedule-dependent and deliberately kept out of the deterministic
    cost-parity counters; they surface via {!stats} into
    [Rq_obs.Metrics.pool] and the bench [buffer_pool] section. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  capacity_chunks : int;
  resident_chunks : int;
}

val create : ?capacity_pages:int -> unit -> t
(** Capacity is given in pages and rounded down to whole chunks, minimum 1
    chunk ([max 1 (capacity_pages / Page.pages_per_chunk)]). *)

val pin : ?seq:bool -> t -> key:string -> load:(unit -> Chunk.t) -> Chunk.t
(** Return the chunk for [key], loading it on a miss ([load] runs outside
    the pool lock).  The chunk stays resident until the matching {!unpin}.

    [~seq:true] marks the pin as part of a sequential scan: a chunk whose
    pins were {e all} sequential enters the LRU at the cold end on unpin
    (scan-resistant insertion), so a sweep larger than the pool recycles a
    single slot instead of evicting every recently-used chunk.  Any
    non-sequential pin — a point lookup, an index fetch — permanently
    promotes the chunk to normal (hot-end) treatment. *)

val unpin : t -> key:string -> unit
(** Release one pin; at zero pins the chunk becomes an eviction candidate.
    Raises [Invalid_argument] when the key is resident but not pinned. *)

val set_capacity_pages : t -> int -> unit
(** Resize the pool, dropping all unpinned chunks and resetting the LRU
    (eviction counter restarts; hit/miss counters are kept). *)

val stats : t -> stats
val reset_stats : t -> unit
(** Zero hit/miss/eviction counters and drop unpinned chunks, so a bench
    arm measures only its own traffic. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], 0 when the pool saw no traffic. *)

val global : t
(** The process-wide pool every {!Relation} reads through. *)

val configure : capacity_pages:int -> unit
(** [set_capacity_pages global] — the CLI's [--buffer-pool-pages]. *)

val global_stats : unit -> stats
