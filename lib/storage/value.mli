(** Scalar values stored in relations.

    Dates are days since 1970-01-01 (negative allowed), which makes the
    BETWEEN-with-offset templates of the paper's experiments (e.g.
    ['07/01/97' + ?]) plain integer arithmetic. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since epoch *)

type ty = T_bool | T_int | T_float | T_string | T_date

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order: Null < Bool < Int/Float (numerically, mixed allowed) <
    String < Date.  Int and Float compare numerically against each other so
    predicates over numeric columns behave like SQL. *)

val equal : t -> t -> bool

val is_null : t -> bool

val to_float : t -> float
(** Numeric coercion of Int/Float/Date/Bool; raises [Invalid_argument] on
    String and Null. *)

val add_days : t -> int -> t
(** Shift a [Date]; raises [Invalid_argument] otherwise. *)

val date_of_ymd : year:int -> month:int -> day:int -> t
(** Civil date -> [Date] (proleptic Gregorian; Howard Hinnant's algorithm). *)

val ymd_of_date : t -> int * int * int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

val byte_width : ty -> int
(** Storage width used for page-geometry accounting (String uses a fixed
    average width). *)
