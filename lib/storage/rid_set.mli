(** Sets of row identifiers, as sorted deduplicated int arrays.

    Index probes return RID sets; the index-intersection access method
    intersects one set per predicate before fetching rows (paper Sec. 2.1). *)

type t

val of_unsorted : int array -> t
(** Sorts and deduplicates; takes ownership of the array. *)

val of_sorted_unsafe : int array -> t
(** Caller guarantees strictly increasing order (e.g. an index range probe
    over a clustered key). *)

val empty : t
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val inter : t -> t -> t
(** Linear-merge intersection. *)

val union : t -> t -> t
val to_array : t -> int array
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
