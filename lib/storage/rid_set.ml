type t = int array

let of_sorted_unsafe arr = arr

let of_unsorted arr =
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    (* In-place dedup over the sorted array. *)
    let w = ref 1 in
    for r = 1 to n - 1 do
      if arr.(r) <> arr.(!w - 1) then begin
        arr.(!w) <- arr.(r);
        incr w
      end
    done;
    if !w = n then arr else Array.sub arr 0 !w
  end

let empty = [||]
let cardinality = Array.length
let is_empty t = Array.length t = 0

let mem t rid =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if t.(mid) = rid then true
      else if t.(mid) < rid then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t)

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!w) <- x;
      incr w;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.sub out 0 !w

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  let push x =
    if !w = 0 || out.(!w - 1) <> x then begin
      out.(!w) <- x;
      incr w
    end
  in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && a.(!i) <= b.(!j)) then begin
      push a.(!i);
      incr i
    end
    else begin
      push b.(!j);
      incr j
    end
  done;
  Array.sub out 0 !w

let to_array = Array.copy
let iter f t = Array.iter f t
let fold f init t = Array.fold_left f init t
