(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val create : column list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty list. *)

val columns : t -> column list
val arity : t -> int

val index_of : t -> string -> int
(** Position of a column by name; raises [Not_found]. *)

val find : t -> string -> column option
val mem : t -> string -> bool
val column_at : t -> int -> column

val row_bytes : t -> int
(** Sum of column byte widths; drives page geometry. *)

val project : t -> string list -> t
(** Sub-schema with the given columns, in the given order. *)

val concat : t -> t -> t
(** Schema of a join result.  Column names are expected to be globally unique
    (we qualify them as ["table.column"] at catalog level); raises
    [Invalid_argument] on collision. *)

val qualify : string -> t -> t
(** [qualify prefix s] renames every column [c] to ["prefix.c"], for columns
    not already qualified. *)

val pp : Format.formatter -> t -> unit
