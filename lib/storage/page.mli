(** Page geometry: the single source of truth shared by the cost model
    ([Relation.rows_per_page]), zone maps (chunk extents) and morsel
    alignment in the parallel executor. *)

val size_bytes : int
(** 8192, a conventional DBMS page size. *)

val rows_per_page : Schema.t -> int
(** [max 1 (size_bytes / row_bytes)] — at least 1 even for very wide rows. *)

val pages_per_chunk : int
(** Chunks are a fixed whole number of pages (16), so chunk boundaries are
    page-aligned and per-chunk sequential-page charges telescope exactly
    across morsels. *)

val rows_per_chunk : Schema.t -> int
(** [pages_per_chunk * rows_per_page schema]. *)
