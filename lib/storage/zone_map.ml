(* Per-chunk, per-column min/max + null-count summaries.  Zone maps are
   tiny (a few Values per chunk) and always resident — only chunk payloads
   go through the buffer pool — so the optimizer and the executors can
   consult them without faulting data in. *)

type col_stats = {
  lo : Value.t;  (* min over non-null values; Null when the column is all null *)
  hi : Value.t;  (* max over non-null values; Null when the column is all null *)
  nulls : int;
}

type t = { n_rows : int; cols : col_stats array }

let n_rows t = t.n_rows
let arity t = Array.length t.cols
let column t c = t.cols.(c)

let of_chunk chunk =
  let arity = Chunk.n_columns chunk in
  let n = Chunk.n_rows chunk in
  let cols =
    Array.init arity (fun c ->
        let col = Chunk.column chunk c in
        let lo = ref Value.Null and hi = ref Value.Null and nulls = ref 0 in
        Array.iter
          (fun v ->
            if Value.is_null v then incr nulls
            else begin
              if Value.is_null !lo || Value.compare v !lo < 0 then lo := v;
              if Value.is_null !hi || Value.compare v !hi > 0 then hi := v
            end)
          col;
        { lo = !lo; hi = !hi; nulls = !nulls })
  in
  { n_rows = n; cols }

let pp fmt t =
  Format.fprintf fmt "@[<h>zone[%d rows:" t.n_rows;
  Array.iteri
    (fun i cs ->
      Format.fprintf fmt "%s %a..%a/%d nulls" (if i = 0 then "" else ";")
        Value.pp cs.lo Value.pp cs.hi cs.nulls)
    t.cols;
  Format.fprintf fmt "]@]"
