(* A small string-keyed LRU: a hashtable over an intrusive doubly-linked
   recency list, so find/insert/evict are all O(1) — no victim scan.  The
   evidence and bitmap caches and the plan cache are bounded with this so
   long throughput runs cannot grow memory without bound; [on_evict] lets
   the owner surface each eviction as a trace event. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward most-recent *)
  mutable next : 'a node option;  (* toward least-recent *)
}

type 'a t = {
  capacity : int;
  entries : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable on_evict : string -> unit;
}

let create ?(on_evict = fun _ -> ()) ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be non-negative";
  {
    capacity;
    entries = Hashtbl.create (min (max capacity 1) 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    on_evict;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let set_on_evict t f = t.on_evict <- f

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let push_back t node =
  node.next <- None;
  node.prev <- t.tail;
  (match t.tail with Some tl -> tl.next <- Some node | None -> t.head <- Some node);
  t.tail <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t key =
  match Hashtbl.find_opt t.entries key with
  | Some node ->
      touch t node;
      t.hits <- t.hits + 1;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.entries key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.entries node.key;
      t.evictions <- t.evictions + 1;
      t.on_evict node.key

let insert t key value =
  if t.capacity = 0 then begin
    (* A zero-capacity cache holds nothing: the insert itself is the
       eviction, so the counters and callback still tell the truth. *)
    ignore value;
    t.evictions <- t.evictions + 1;
    t.on_evict key
  end
  else
    match Hashtbl.find_opt t.entries key with
    | Some node ->
        (* Present: refresh, never evict — re-inserting an existing key at
           capacity must not drop an innocent victim. *)
        node.value <- value;
        touch t node
    | None ->
        if Hashtbl.length t.entries >= t.capacity then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.entries key node;
        push_front t node

(* Scan-resistant insertion: the entry goes in at the LRU end, so it is the
   next eviction victim instead of displacing the recency list's hot head.
   A sweep larger than the cache then churns through one slot — at most one
   previously-resident entry is lost to the whole sweep (the true LRU paid
   to open the slot) — while everything recently touched survives.  A
   [find] on a cold entry promotes it to the head like any other hit. *)
let insert_cold t key value =
  if t.capacity = 0 then begin
    ignore value;
    t.evictions <- t.evictions + 1;
    t.on_evict key
  end
  else
    match Hashtbl.find_opt t.entries key with
    | Some node ->
        (* Present: refresh in place.  No touch — a cold re-insert must not
           promote the entry it refreshes. *)
        node.value <- value
    | None ->
        if Hashtbl.length t.entries >= t.capacity then evict_lru t;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.entries key node;
        push_back t node

let remove t key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.entries key
      (* A deliberate drop (e.g. a version-invalidated plan), not a
         capacity eviction: no counter bump, no [on_evict]. *)

let find_or_add t key make =
  match find t key with
  | Some v -> v
  | None ->
      let v = make () in
      insert t key v;
      v

let clear t =
  Hashtbl.reset t.entries;
  t.head <- None;
  t.tail <- None
