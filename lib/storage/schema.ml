type column = { name : string; ty : Value.ty }

type t = { cols : column array; positions : (string, int) Hashtbl.t }

let create cols =
  if cols = [] then invalid_arg "Schema.create: empty column list";
  let arr = Array.of_list cols in
  let positions = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i { name; _ } ->
      if Hashtbl.mem positions name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %S" name);
      Hashtbl.add positions name i)
    arr;
  { cols = arr; positions }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let index_of t name =
  match Hashtbl.find_opt t.positions name with
  | Some i -> i
  | None -> raise Not_found

let find t name =
  match Hashtbl.find_opt t.positions name with
  | Some i -> Some t.cols.(i)
  | None -> None

let mem t name = Hashtbl.mem t.positions name
let column_at t i = t.cols.(i)

let row_bytes t =
  Array.fold_left (fun acc { ty; _ } -> acc + Value.byte_width ty) 0 t.cols

let project t names = create (List.map (fun n -> t.cols.(index_of t n)) names)

let concat a b = create (columns a @ columns b)

let qualify prefix t =
  let rename c =
    if String.contains c.name '.' then c else { c with name = prefix ^ "." ^ c.name }
  in
  create (List.map rename (columns t))

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt { name; ty } -> Format.fprintf fmt "%s:%a" name Value.pp_ty ty))
    (columns t)
