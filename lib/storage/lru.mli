(** A small bounded string-keyed LRU cache: a hashtable over an intrusive
    doubly-linked recency list (find/insert/evict all O(1), no victim
    scan), least-recently-used eviction at capacity, hit/miss/eviction
    counters, and an eviction callback for trace events.  Backs the
    evidence/bitmap caches and every {!Rq_optimizer.Plan_cache} shard. *)

type 'a t

val create : ?on_evict:(string -> unit) -> capacity:int -> unit -> 'a t
(** Raises [Invalid_argument] on a negative capacity.  Capacity 0 is a
    legal degenerate cache that stores nothing: every {!find} misses and
    every {!insert} drops the value immediately, counting an eviction and
    firing [on_evict].  [on_evict] receives the evicted key (default:
    ignore). *)

val find : 'a t -> string -> 'a option
(** Counts a hit (and refreshes recency) or a miss. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find], or build, insert and return (evicting the LRU entry first when
    at capacity). *)

val insert : 'a t -> string -> 'a -> unit
(** Inserting a key already present refreshes its value and recency and
    never evicts — only an insert of a {e new} key at capacity drops the
    least-recently-used entry. *)

val insert_cold : 'a t -> string -> 'a -> unit
(** Scan-resistant insert: the entry enters at the {e least}-recently-used
    end, making it the next eviction victim instead of displacing the hot
    head — a sequential sweep larger than the cache churns through one slot
    and costs at most one previously-resident entry.  A later {!find}
    promotes it normally.  Inserting a key already present refreshes its
    value in place without changing its recency.  At capacity 0 behaves
    like {!insert} (immediate drop). *)

val remove : 'a t -> string -> unit
(** Drop the entry if present.  A deliberate removal (e.g. a
    version-invalidated plan), not a capacity eviction: the eviction
    counter is untouched and [on_evict] does not fire. *)

val mem : 'a t -> string -> bool
val clear : 'a t -> unit
val set_on_evict : 'a t -> (string -> unit) -> unit

val capacity : 'a t -> int
val length : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
