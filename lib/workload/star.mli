(** The synthetic star schema of Experiment 3 (Sec. 6.2.3).

    A fact table with foreign keys to three small dimension tables, each
    dimension carrying a filter column with ten equally-frequent values.
    The joint distribution of the three FK targets is handcrafted so that
    the fraction of fact rows whose *three* dimension rows all pass their
    filters is a direct generator parameter ([join_fraction], 0–10%),
    while every single-dimension join fraction stays exactly 10% — so a
    histogram-based optimizer, multiplying marginals under independence,
    always estimates 0.1% no matter the truth. *)

open Rq_storage
open Rq_optimizer

type params = {
  fact_rows : int;        (** default 100_000; the paper used 10M *)
  dim_rows : int;         (** per dimension; default 1000, as in the paper *)
  join_fraction : float;  (** in [0, 0.1]: fraction of fact rows passing all three filters *)
}

val default_params : params

val paper_fact_rows : int
(** 10_000_000. *)

val generate : Rq_math.Rng.t -> ?params:params -> unit -> Catalog.t
(** Tables [fact], [dim1], [dim2], [dim3]; FK edges fact.f_dimN -> dimN;
    nonclustered indexes on each fact FK column (the paper's physical
    design for the semijoin strategy). *)

val cost_scale : Catalog.t -> float
(** paper_fact_rows / generated fact rows. *)

val query : ?filter_value:int -> unit -> Logical.t
(** The Experiment-3 template: four-way join with the filter
    [d_filter = filter_value] (default 0) on each dimension and SUM
    aggregates over the fact measures.  The joint selectivity is
    controlled by the generator's [join_fraction] (engineered for filter
    value 0; other values see the independent ~0.1%). *)

val true_selectivity : Catalog.t -> float
(** Measured fraction of fact rows in the join result. *)
