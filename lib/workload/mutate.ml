(* QPG-style data-state mutations for the differential fuzzer: when no new
   plans appear under query and stats mutation, change the *data* so the
   optimizer's trade-off landscape itself moves.  Mutations go through
   [Catalog.replace_table], so indexes are rebuilt and the statistics built
   afterwards are honest — only replayability and integrity matter here:

   - [Grow] appends duplicated rows with fresh primary keys above the
     current maximum, so clustering on the PK stays sorted; when the table
     is heap-clustered on a *non-key* column (tpch lineitem on l_orderkey)
     the new rows inherit the last heap row's cluster value, preserving
     sortedness without re-sorting.
   - [Shrink] keeps an order-preserving uniform subset and refuses tables
     with incoming FK edges — dangling references would make the *catalog*
     inconsistent, which is the statistics' job to get wrong, not ours.

   All randomness comes from the caller's seeded [Rng], so a serialized
   mutation list replays to the identical catalog. *)

open Rq_storage

type t =
  | Grow of { table : string; percent : int }
  | Shrink of { table : string; keep_percent : int }

let to_string = function
  | Grow { table; percent } -> Printf.sprintf "grow(%s,%d)" table percent
  | Shrink { table; keep_percent } -> Printf.sprintf "shrink(%s,%d)" table keep_percent

let of_string s =
  match Scanf.sscanf_opt s "grow(%[^,],%d)" (fun table percent -> Grow { table; percent }) with
  | Some m -> Ok m
  | None -> (
      match
        Scanf.sscanf_opt s "shrink(%[^,],%d)" (fun table keep_percent ->
            Shrink { table; keep_percent })
      with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "unparseable mutation %S (want grow(t,n) or shrink(t,n))" s))

let copy_catalog catalog =
  let fresh = Catalog.create () in
  let names = Catalog.table_names catalog in
  List.iter
    (fun name ->
      Catalog.add_table fresh
        ?primary_key:(Catalog.primary_key catalog name)
        ?clustered_by:(Catalog.clustered_by catalog name)
        (Catalog.find_table catalog name))
    names;
  List.iter (Catalog.add_foreign_key fresh) (Catalog.all_foreign_keys catalog);
  List.iter
    (fun name ->
      List.iter
        (fun idx -> Catalog.build_index fresh ~table:name ~column:(Index.column idx))
        (Catalog.indexes_on catalog name))
    names;
  fresh

let growable catalog =
  List.filter
    (fun name ->
      match Catalog.primary_key catalog name with
      | None -> false
      | Some pk -> (
          let rel = Catalog.find_table catalog name in
          Relation.row_count rel > 0
          &&
          let pos = Schema.index_of (Relation.schema rel) pk in
          match (Relation.get rel 0).(pos) with Value.Int _ -> true | _ -> false))
    (Catalog.table_names catalog)

let shrinkable catalog =
  List.filter
    (fun name -> Catalog.foreign_keys_into catalog name = [])
    (Catalog.table_names catalog)

let apply rng catalog mutation =
  let find table =
    match Catalog.find_table_opt catalog table with
    | Some rel -> Ok rel
    | None -> Error (Printf.sprintf "mutation targets unknown table %S" table)
  in
  match mutation with
  | Grow { table; percent } ->
      if percent <= 0 then Error "grow: percent must be positive"
      else
        Result.bind (find table) (fun rel ->
            match Catalog.primary_key catalog table with
            | None -> Error (Printf.sprintf "grow(%s): table has no primary key" table)
            | Some pk ->
                let schema = Relation.schema rel in
                let pk_pos = Schema.index_of schema pk in
                let n = Relation.row_count rel in
                if n = 0 then Error (Printf.sprintf "grow(%s): table is empty" table)
                else begin
                  let max_key =
                    Relation.fold
                      (fun acc _ tup ->
                        match (tup.(pk_pos), acc) with
                        | Value.Int k, Some m -> Some (max k m)
                        | Value.Int k, None -> Some k
                        | _ -> acc)
                      None rel
                  in
                  match max_key with
                  | None -> Error (Printf.sprintf "grow(%s): non-integer primary key" table)
                  | Some max_key ->
                      let cluster_pos =
                        match Catalog.clustered_by catalog table with
                        | Some c when c <> pk -> Some (Schema.index_of schema c)
                        | _ -> None
                      in
                      let tail = Relation.get rel (n - 1) in
                      let extra = max 1 (n * percent / 100) in
                      let added =
                        Array.init extra (fun i ->
                            let src = Array.copy (Relation.get rel (Rq_math.Rng.int rng n)) in
                            src.(pk_pos) <- Value.Int (max_key + 1 + i);
                            (match cluster_pos with
                            | Some cp -> src.(cp) <- tail.(cp)
                            | None -> ());
                            src)
                      in
                      let rows = Array.append (Array.of_seq (Relation.to_seq rel)) added in
                      Catalog.replace_table catalog (Relation.create ~name:table ~schema rows);
                      Ok ()
                end)
  | Shrink { table; keep_percent } ->
      if keep_percent < 0 || keep_percent > 100 then Error "shrink: keep_percent must be in [0,100]"
      else if Catalog.foreign_keys_into catalog table <> [] then
        Error (Printf.sprintf "shrink(%s): incoming foreign keys would dangle" table)
      else
        Result.bind (find table) (fun rel ->
            let n = Relation.row_count rel in
            let keep = n * keep_percent / 100 in
            let picked = Rq_math.Rng.sample_without_replacement rng keep n in
            Array.sort compare picked;
            let rows = Array.map (Relation.get rel) picked in
            Catalog.replace_table catalog
              (Relation.create ~name:table ~schema:(Relation.schema rel) rows);
            Ok ())

let apply_all rng catalog mutations =
  List.fold_left
    (fun acc m -> Result.bind acc (fun () -> apply rng catalog m))
    (Ok ()) mutations
