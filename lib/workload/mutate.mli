(** Replayable data-state mutations over generated catalogs — the
    fuzzer's outermost (QPG-style) escalation tier: when query tweaks and
    statistics faults stop producing unseen plans, move the data itself.

    Mutations preserve catalog integrity: grown rows get fresh primary
    keys above the current maximum (and inherit the last heap row's value
    for a non-key clustering column, keeping the heap sorted); shrinking
    is refused on tables with incoming FK edges.  Everything routes
    through {!Rq_storage.Catalog.replace_table}, so indexes are rebuilt. *)

open Rq_storage

type t =
  | Grow of { table : string; percent : int }
      (** append [percent]% duplicated rows (at least one) with fresh
          integer primary keys *)
  | Shrink of { table : string; keep_percent : int }
      (** keep an order-preserving uniform [keep_percent]% subset; 0 is
          legal and leaves the table empty *)

val to_string : t -> string
(** [grow(table,n)] / [shrink(table,n)] — the serialization used in
    [.fuzz-repro] files. *)

val of_string : string -> (t, string) result

val copy_catalog : Catalog.t -> Catalog.t
(** Deep-enough copy for mutation: fresh catalog with the same relations,
    keys, clustering, FK edges and secondary indexes.  Relations are
    immutable, so sharing them is safe — mutation replaces whole tables. *)

val growable : Catalog.t -> string list
(** Non-empty tables with an integer primary key. *)

val shrinkable : Catalog.t -> string list
(** Tables no FK edge points into. *)

val apply : Rq_math.Rng.t -> Catalog.t -> t -> (unit, string) result
(** Mutates the catalog in place.  Errors (unknown table, FK-referenced
    shrink target, keyless grow target) leave it unchanged. *)

val apply_all : Rq_math.Rng.t -> Catalog.t -> t list -> (unit, string) result
(** Left-to-right; stops at the first error. *)
