(** TPC-H-lite: the lineitem/orders/part subset used by the paper's
    Experiments 1 and 2 (Sec. 6.2.1–6.2.2), with the correlation structure
    that defeats AVI built in.

    Correlations:
    - [l_receiptdate] is [l_shipdate] plus a small uniform delay, so the
      two date predicates of the Experiment-1 template are strongly
      correlated: their joint selectivity swings with the template offset
      while each marginal stays constant.
    - [part] carries a [p_bucket] column (the paper's "modified part
      table"): every bucket holds the same number of parts (constant
      marginal selectivity), but parts in higher buckets are proportionally
      more popular in [lineitem], so the fraction of lineitem rows joining
      a bucket's parts — the quantity that picks the join strategy —
      varies by ~20x across buckets.  One-dimensional histograms cannot
      see either effect.

    Scale: [scale_factor 1.0] means the paper's 6M-row lineitem.  The
    default for experiments is 0.01 (60k rows); [cost_scale] returns the
    multiplier that makes the cost-accounting executor report
    6M-row-equivalent times, so plan crossovers appear at the paper's
    selectivities regardless of generated size. *)

open Rq_storage
open Rq_optimizer

type params = {
  scale_factor : float;        (** 1.0 = 6M lineitem rows *)
  lineitems_per_order : int;   (** average; default 4 *)
  receipt_delay_days : int;    (** receipt = ship + U[1, delay]; default 60 *)
  part_buckets : int;          (** distinct p_bucket values; default 1000 *)
  popularity_contrast : float; (** hottest/coldest bucket popularity ratio; default 80 *)
}

val default_params : params
(** scale_factor 0.01. *)

val paper_lineitem_rows : int
(** 6_000_000. *)

val generate : Rq_math.Rng.t -> ?params:params -> unit -> Catalog.t
(** Builds lineitem, orders and part with primary keys, clustering, FK
    edges and the experiments' physical design: nonclustered indexes on
    l_shipdate, l_receiptdate, l_partkey, l_orderkey, o_orderkey and
    p_partkey. *)

val cost_scale : Catalog.t -> float
(** paper_lineitem_rows / generated lineitem rows. *)

val ship_window : Value.t * Value.t
(** The Experiment-1 base shipdate window (1997-07-01 .. 1997-07-30;
    shortened from the paper's 92-day window so that, under this
    generator's delay structure, the achievable joint selectivity spans
    the paper's reported 0–0.6% range). *)

val exp1_query : offset:int -> Logical.t
(** The Experiment-1 template:
    SELECT SUM(l_extendedprice) FROM lineitem
    WHERE l_shipdate BETWEEN w0 AND w1
      AND l_receiptdate BETWEEN w0+offset AND w1+offset.
    [offset] is the template's "?" free parameter. *)

val exp1_selectivity : Catalog.t -> offset:int -> float
(** True joint selectivity of the Experiment-1 predicates at this offset. *)

val exp2_query : bucket:int -> Logical.t
(** The Experiment-2 template: lineitem |><| orders |><| part with the
    selection [p_bucket = bucket]; higher buckets select more popular
    parts. *)

val exp2_selectivity : Catalog.t -> bucket:int -> float
(** True fraction of lineitem rows in the three-way join at this bucket. *)
