open Rq_storage
open Rq_exec
open Rq_optimizer

type params = {
  scale_factor : float;
  lineitems_per_order : int;
  receipt_delay_days : int;
  part_buckets : int;
  popularity_contrast : float;
}

let default_params =
  {
    scale_factor = 0.01;
    lineitems_per_order = 4;
    receipt_delay_days = 60;
    part_buckets = 1000;
    popularity_contrast = 80.0;
  }

let paper_lineitem_rows = 6_000_000

let day_of ~year ~month ~day =
  match Value.date_of_ymd ~year ~month ~day with
  | Value.Date d -> d
  | other ->
      invalid_arg
        (Printf.sprintf "Tpch.day_of: %04d-%02d-%02d produced %s, not a date" year
           month day (Value.to_string other))

let date_range_start = day_of ~year:1992 ~month:1 ~day:1
let date_range_end = day_of ~year:1998 ~month:8 ~day:2

let ship_window =
  ( Value.date_of_ymd ~year:1997 ~month:7 ~day:1,
    Value.date_of_ymd ~year:1997 ~month:7 ~day:30 )

let part_schema =
  Schema.create
    [
      { Schema.name = "p_partkey"; ty = Value.T_int };
      { Schema.name = "p_bucket"; ty = Value.T_int };
      { Schema.name = "p_size"; ty = Value.T_int };
      { Schema.name = "p_retailprice"; ty = Value.T_float };
      { Schema.name = "p_brand"; ty = Value.T_string };
    ]

let orders_schema =
  Schema.create
    [
      { Schema.name = "o_orderkey"; ty = Value.T_int };
      { Schema.name = "o_custkey"; ty = Value.T_int };
      { Schema.name = "o_orderdate"; ty = Value.T_date };
      { Schema.name = "o_totalprice"; ty = Value.T_float };
    ]

let lineitem_schema =
  Schema.create
    [
      { Schema.name = "l_rowid"; ty = Value.T_int };
      { Schema.name = "l_orderkey"; ty = Value.T_int };
      { Schema.name = "l_partkey"; ty = Value.T_int };
      { Schema.name = "l_quantity"; ty = Value.T_float };
      { Schema.name = "l_extendedprice"; ty = Value.T_float };
      { Schema.name = "l_shipdate"; ty = Value.T_date };
      { Schema.name = "l_receiptdate"; ty = Value.T_date };
    ]

(* Popularity weight of a part bucket: buckets are equally sized, but parts
   in the hottest bucket appear on popularity_contrast-times as many
   lineitems as parts in bucket 0 — the handcrafted correlation of
   Experiment 2.  The eighth-power ramp keeps the average weight low, so
   the hottest buckets account for up to ~8x the average — while the
   histogram baseline, blind to popularity, always estimates the average. *)
let bucket_weight params b =
  let x = float_of_int b /. float_of_int (params.part_buckets - 1) in
  1.0 +. ((params.popularity_contrast -. 1.0) *. (x ** 8.0))

let generate rng ?(params = default_params) () =
  if params.scale_factor <= 0.0 then invalid_arg "Tpch.generate: scale_factor <= 0";
  if params.part_buckets < 2 then invalid_arg "Tpch.generate: need >= 2 part buckets";
  let lineitem_rows =
    max 1000 (int_of_float (params.scale_factor *. float_of_int paper_lineitem_rows))
  in
  let order_rows = max 1 (lineitem_rows / params.lineitems_per_order) in
  let buckets = params.part_buckets in
  let parts_per_bucket =
    max 2 (int_of_float (params.scale_factor *. 200_000.0) / buckets)
  in
  let part_rows = buckets * parts_per_bucket in
  (* part: key k lives in bucket (k mod buckets). *)
  let brands = [| "Brand#11"; "Brand#23"; "Brand#32"; "Brand#44"; "Brand#55" |] in
  let part_tuples =
    Array.init part_rows (fun k ->
        [|
          Value.Int k;
          Value.Int (k mod buckets);
          Value.Int (1 + Rq_math.Rng.int rng 50);
          Value.Float (900.0 +. Rq_math.Rng.float rng 1200.0);
          Value.String (Rq_math.Rng.pick rng brands);
        |])
  in
  (* Cumulative bucket weights for popularity-biased part sampling. *)
  let cumulative = Array.make buckets 0.0 in
  let total_weight = ref 0.0 in
  for b = 0 to buckets - 1 do
    total_weight := !total_weight +. bucket_weight { params with part_buckets = buckets } b;
    cumulative.(b) <- !total_weight
  done;
  let sample_part () =
    let u = Rq_math.Rng.float rng !total_weight in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) <= u then search (mid + 1) hi else search lo mid
    in
    let bucket = search 0 (buckets - 1) in
    bucket + (buckets * Rq_math.Rng.int rng parts_per_bucket)
  in
  let orders_builder = Relation.Builder.create ~name:"orders" ~schema:orders_schema () in
  for k = 0 to order_rows - 1 do
    Relation.Builder.add_row orders_builder
      [|
        Value.Int k;
        Value.Int (Rq_math.Rng.int rng (max 1 (order_rows / 10)));
        Value.Date (date_range_start + Rq_math.Rng.int rng (date_range_end - date_range_start));
        Value.Float (1000.0 +. Rq_math.Rng.float rng 300_000.0);
      |]
  done;
  (* lineitem rows are emitted in order-key order, so the heap is clustered
     on l_orderkey (the paper's physical design) while l_rowid stays a
     simple unique key.  Rows stream straight into a chunk builder — never
     a whole-table array — and past ~1M rows each sealed chunk spills to a
     temp file, so generating SF 1 (6M rows) needs O(chunk) heap for the
     table payload. *)
  let spill = lineitem_rows >= 1_000_000 in
  let lineitem_builder =
    Relation.Builder.create ~spill ~name:"lineitem" ~schema:lineitem_schema ()
  in
  let rowid = ref 0 in
  let order_index = ref 0 in
  while !rowid < lineitem_rows do
    (* Never wrap past the last order: wrapping would break the physical
       sort on l_orderkey that merge joins depend on.  Any surplus rows are
       absorbed by the final order. *)
    let orderkey = min !order_index (order_rows - 1) in
    incr order_index;
    let in_order =
      if orderkey = order_rows - 1 then lineitem_rows - !rowid
      else 1 + Rq_math.Rng.int rng ((2 * params.lineitems_per_order) - 1)
    in
    let count = min in_order (lineitem_rows - !rowid) in
    for _ = 1 to count do
      let ship = date_range_start + Rq_math.Rng.int rng (date_range_end - date_range_start - 100) in
      let receipt = ship + 1 + Rq_math.Rng.int rng params.receipt_delay_days in
      Relation.Builder.add_row lineitem_builder
        [|
          Value.Int !rowid;
          Value.Int orderkey;
          Value.Int (sample_part ());
          Value.Float (1.0 +. float_of_int (Rq_math.Rng.int rng 50));
          Value.Float (900.0 +. Rq_math.Rng.float rng 100_000.0);
          Value.Date ship;
          Value.Date receipt;
        |];
      incr rowid
    done
  done;
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"p_partkey"
    (Relation.create ~name:"part" ~schema:part_schema part_tuples);
  Catalog.add_table catalog ~primary_key:"o_orderkey"
    (Relation.Builder.finish orders_builder);
  Catalog.add_table catalog ~primary_key:"l_rowid" ~clustered_by:"l_orderkey"
    (Relation.Builder.finish lineitem_builder);
  Catalog.add_foreign_key catalog
    { from_table = "lineitem"; from_column = "l_orderkey"; to_table = "orders"; to_column = "o_orderkey" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitem"; from_column = "l_partkey"; to_table = "part"; to_column = "p_partkey" };
  List.iter
    (fun (table, column) -> Catalog.build_index catalog ~table ~column)
    [
      ("lineitem", "l_shipdate");
      ("lineitem", "l_receiptdate");
      ("lineitem", "l_partkey");
      ("lineitem", "l_orderkey");
      ("orders", "o_orderkey");
      ("part", "p_partkey");
    ];
  catalog

let cost_scale catalog =
  let rows = Relation.row_count (Catalog.find_table catalog "lineitem") in
  float_of_int paper_lineitem_rows /. float_of_int (max 1 rows)

let exp1_pred ~offset =
  let w0, w1 = ship_window in
  Pred.conj
    [
      Pred.between (Expr.col "l_shipdate") (Expr.Const w0) (Expr.Const w1);
      Pred.between (Expr.col "l_receiptdate")
        (Expr.Add_days (Expr.Const w0, offset))
        (Expr.Add_days (Expr.Const w1, offset));
    ]

let exp1_query ~offset =
  Logical.query
    ~aggs:[ { Plan.fn = Plan.Sum (Expr.col "lineitem.l_extendedprice"); output_name = "revenue" } ]
    [ Logical.scan ~pred:(exp1_pred ~offset) "lineitem" ]

let exp1_selectivity catalog ~offset =
  let rel = Catalog.find_table catalog "lineitem" in
  let check = Pred.compile (Relation.schema rel) (exp1_pred ~offset) in
  float_of_int (Relation.filter_count rel check) /. float_of_int (Relation.row_count rel)

let exp2_refs ~bucket =
  [
    Logical.scan "lineitem";
    Logical.scan "orders";
    Logical.scan ~pred:(Pred.eq (Expr.col "p_bucket") (Expr.int bucket)) "part";
  ]

let exp2_query ~bucket =
  Logical.query
    ~aggs:[ { Plan.fn = Plan.Sum (Expr.col "lineitem.l_extendedprice"); output_name = "revenue" } ]
    (exp2_refs ~bucket)

let exp2_selectivity catalog ~bucket = Naive.selectivity catalog (exp2_refs ~bucket)
