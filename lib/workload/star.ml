open Rq_storage
open Rq_exec
open Rq_optimizer

type params = { fact_rows : int; dim_rows : int; join_fraction : float }

let default_params = { fact_rows = 100_000; dim_rows = 1000; join_fraction = 0.01 }

let paper_fact_rows = 10_000_000

let filter_values = 10

let dim_schema =
  Schema.create
    [
      { Schema.name = "d_key"; ty = Value.T_int };
      { Schema.name = "d_filter"; ty = Value.T_int };
      { Schema.name = "d_payload"; ty = Value.T_float };
    ]

let fact_schema =
  Schema.create
    [
      { Schema.name = "f_id"; ty = Value.T_int };
      { Schema.name = "f_dim1"; ty = Value.T_int };
      { Schema.name = "f_dim2"; ty = Value.T_int };
      { Schema.name = "f_dim3"; ty = Value.T_int };
      { Schema.name = "f_m1"; ty = Value.T_float };
      { Schema.name = "f_m2"; ty = Value.T_float };
    ]

(* Draw the filter values (a1, a2, a3) of a fact row's three dimension
   targets.  Mixture with uniform marginals over 0..9 and
   Pr[a1 = a2 = a3 = 0] = join_fraction exactly:
     w.p. j           -> (0, 0, 0)
     w.p. (0.1 - j)x3 -> one coordinate 0, the others uniform in 1..9
     otherwise        -> all coordinates uniform in 1..9. *)
let draw_filters rng j =
  let nz () = 1 + Rq_math.Rng.int rng (filter_values - 1) in
  let u = Rq_math.Rng.float rng 1.0 in
  let solo = 0.1 -. j in
  if u < j then (0, 0, 0)
  else if u < j +. solo then (0, nz (), nz ())
  else if u < j +. (2.0 *. solo) then (nz (), 0, nz ())
  else if u < j +. (3.0 *. solo) then (nz (), nz (), 0)
  else (nz (), nz (), nz ())

let generate rng ?(params = default_params) () =
  if params.join_fraction < 0.0 || params.join_fraction > 0.1 then
    invalid_arg "Star.generate: join_fraction must be in [0, 0.1]";
  if params.dim_rows mod filter_values <> 0 then
    invalid_arg "Star.generate: dim_rows must be a multiple of 10";
  let catalog = Catalog.create () in
  let make_dim name =
    (* d_filter = d_key mod 10: exactly 10% of rows per filter value. *)
    let tuples =
      Array.init params.dim_rows (fun k ->
          [| Value.Int k; Value.Int (k mod filter_values); Value.Float (Rq_math.Rng.float rng 100.0) |])
    in
    Catalog.add_table catalog ~primary_key:"d_key"
      (Relation.create ~name ~schema:dim_schema tuples)
  in
  make_dim "dim1";
  make_dim "dim2";
  make_dim "dim3";
  (* A dimension key with filter value a: a + 10*u for uniform u. *)
  let key_with_filter a = a + (filter_values * Rq_math.Rng.int rng (params.dim_rows / filter_values)) in
  let fact_tuples =
    Array.init params.fact_rows (fun k ->
        let a1, a2, a3 = draw_filters rng params.join_fraction in
        [|
          Value.Int k;
          Value.Int (key_with_filter a1);
          Value.Int (key_with_filter a2);
          Value.Int (key_with_filter a3);
          Value.Float (Rq_math.Rng.float rng 1000.0);
          Value.Float (Rq_math.Rng.float rng 10.0);
        |])
  in
  Catalog.add_table catalog ~primary_key:"f_id"
    (Relation.create ~name:"fact" ~schema:fact_schema fact_tuples);
  List.iter
    (fun (column, dim) ->
      Catalog.add_foreign_key catalog
        { from_table = "fact"; from_column = column; to_table = dim; to_column = "d_key" };
      Catalog.build_index catalog ~table:"fact" ~column)
    [ ("f_dim1", "dim1"); ("f_dim2", "dim2"); ("f_dim3", "dim3") ];
  catalog

let cost_scale catalog =
  let rows = Relation.row_count (Catalog.find_table catalog "fact") in
  float_of_int paper_fact_rows /. float_of_int (max 1 rows)

let dim_pred value = Pred.eq (Expr.col "d_filter") (Expr.int value)

let refs ?(filter_value = 0) () =
  [
    Logical.scan "fact";
    Logical.scan ~pred:(dim_pred filter_value) "dim1";
    Logical.scan ~pred:(dim_pred filter_value) "dim2";
    Logical.scan ~pred:(dim_pred filter_value) "dim3";
  ]

let query ?filter_value () =
  Logical.query
    ~aggs:
      [
        { Plan.fn = Plan.Sum (Expr.col "fact.f_m1"); output_name = "total_m1" };
        { Plan.fn = Plan.Avg (Expr.col "fact.f_m2"); output_name = "avg_m2" };
        { Plan.fn = Plan.Count_star; output_name = "n" };
      ]
    (refs ?filter_value ())

let true_selectivity catalog = Naive.selectivity catalog (refs ())
