(** The observation substrate: per-operator spans plus a trace-event
    stream, filled in by a single execution.

    The executor opens a span per plan node (snapshotting its cost meter),
    runs the node, and closes the span with the node's output row count
    and a fresh snapshot; the span's [total] is the inclusive counter
    delta and [self] is [total] minus the children's totals.  Because the
    deltas telescope, the [self] deltas of a run's spans sum back to the
    meter's totals — the invariant EXPLAIN ANALYZE and the reopt cost
    attribution rely on.

    A recorder may hold several root spans: mid-query re-optimization
    wraps each execution attempt in its own root, so the wasted prefix of
    an aborted attempt stays attributable.

    Spans nest strictly (a stack); {!close_span}/{!abort_span} must be
    called on the innermost open span, which the executor's structure
    guarantees (exceptions unwind innermost-first). *)

type span = {
  label : string;         (** operator label, e.g. ["SeqScan(lineitem)"] *)
  rows : int;             (** rows produced; -1 when the span aborted *)
  aborted : bool;         (** closed by exception unwinding (guard fired) *)
  total : Metrics.t;      (** inclusive counter delta (children included) *)
  self : Metrics.t;       (** [total] minus the children's totals *)
  children : span list;   (** in execution order *)
}

type t
type handle

val create : unit -> t

val open_span : t -> label:string -> metrics:Metrics.t -> handle
val close_span : t -> handle -> rows:int -> metrics:Metrics.t -> unit
val abort_span : t -> handle -> metrics:Metrics.t -> unit
(** [abort_span] closes the span as [aborted] with [rows = -1]; its cost
    delta is still recorded (the work happened and stays on the bill). *)

val attach_span : t -> span -> unit
(** Insert an externally-built, already-finalized span tree: as a child of
    the innermost open span if one exists (e.g. an attempt span during
    re-optimization), otherwise as a new root.  Used by the streaming
    executor, whose per-operator windows interleave and therefore cannot
    use the open/close stack; the caller is responsible for the tree's
    total/self deltas telescoping like stack-built spans do. *)

val record : t -> Trace.event -> unit

val roots : t -> span list
(** Completed root spans, in completion order.  Spans still open (only
    possible mid-execution) are not included. *)

val events : t -> Trace.event list
(** In recording order. *)

val flatten : span -> span list
(** Pre-order traversal of a span tree. *)

val sum_self : span list -> Metrics.t
(** Sum of [self] deltas over the given trees (all spans, recursively);
    for the roots of one run this reconciles with the meter's snapshot. *)

val span_to_json : span -> Json.t
val to_json : t -> Json.t
(** [{"spans": [...], "events": [...]}]. *)

val render_spans : span list -> string
(** Indented text tree: one line per span with rows, self and total
    simulated seconds, and the non-zero self counters. *)

val render_events : Trace.event list -> string
(** One {!Trace.to_string} line per event; empty string for no events. *)
