(** Per-operator resource counters.

    A mirror of the executor's cost-meter snapshot, kept dependency-free so
    the meter (in [rq_exec]) can convert into it and everything above can
    consume spans without a cycle.  A span stores the *delta* of these
    counters across an operator's execution; deltas are closed under
    {!add}/{!sub}, and the integer counters subtract exactly, so per-span
    deltas reconcile against the meter's totals. *)

type t = {
  seconds : float;        (** simulated seconds, scale applied *)
  seq_pages : int;
  random_pages : int;
  pages_skipped : int;    (** pages of chunks a zone map let the scan skip *)
  cpu_tuples : int;
  index_probes : int;
  index_entries : int;    (** index entries touched in range/eq probes *)
  hash_build : int;
  hash_probe : int;
  merge_tuples : int;
  sort_tuples : int;      (** tuples handed to a sort *)
  output_tuples : int;
  sort_units : float;     (** accumulated n·log2(max n 2) sort work units *)
  extra_seconds : float;  (** raw [charge_seconds] charges, scale applied *)
}

val zero : t
val add : t -> t -> t
val sub : t -> t -> t

val approx_equal : ?tolerance:float -> t -> t -> bool
(** Integer counters must match exactly; float fields within [tolerance]
    (default 1e-9). *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
(** Compact one-line rendering; zero counters are omitted. *)

(** {2 Evidence-kernel counters}

    Work accounting for the bitset evidence kernel (optimizer-side CPU,
    distinct from the simulated execution cost above): bitmaps
    materialized vs. served from cache, and the row evaluations the
    bitwise path avoided relative to a row-scan implementation. *)

type kernel = {
  bitmaps_built : int;      (** atomic predicate bitmaps materialized *)
  bitmap_hits : int;        (** atoms served from the bitmap cache *)
  bitmap_evictions : int;   (** atoms dropped by the bounded cache *)
  evidence_queries : int;   (** count/popcount requests answered *)
  rows_scanned : int;       (** row evaluations paid building bitmaps *)
  rows_scan_avoided : int;  (** row evaluations a scan path would have paid *)
}

val kernel_zero : kernel
val kernel_add : kernel -> kernel -> kernel
val kernel_to_json : kernel -> Json.t
val pp_kernel : Format.formatter -> kernel -> unit

(** {2 Buffer-pool counters}

    Residency accounting for the chunk buffer pool.  Separate from [t]
    because hit/miss/eviction totals depend on which domain faults a chunk
    in first under the morsel-parallel executor — schedule-dependent, so
    excluded from the deterministic counter-parity checks.  The
    deterministic face of the same machinery, [pages_skipped], lives in
    [t]. *)

type pool = {
  pool_hits : int;        (** pins served from the residency table *)
  pool_misses : int;      (** pins that faulted the chunk in *)
  pool_evictions : int;   (** unpinned chunks dropped by LRU pressure *)
  pool_capacity_chunks : int;
  pool_resident_chunks : int;
}

val pool_zero : pool
val pool_hit_rate : pool -> float
(** [hits / (hits + misses)], 0 when the pool saw no traffic. *)

val pool_to_json : pool -> Json.t
val pp_pool : Format.formatter -> pool -> unit
