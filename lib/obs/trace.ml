type event =
  | Guard_ok of { label : string; expected_rows : float; actual_rows : int; q_error : float }
  | Guard_fired of { label : string; expected_rows : float; actual_rows : int; q_error : float }
  | Reopt_planned of { attempt : int; label : string }
  | Reopt_adopted of { attempt : int; plan : string }
  | Reopt_abandoned of { attempt : int; reason : string }
  | Degraded of { kind : string; subsystem : string; detail : string }
  | Stats_refresh of { tables : string list }
  | Plan_cache of { outcome : string; fingerprint : string; version : int }
  | Cache_evicted of { cache : string; key : string }
  | Rewrite_applied of { rule : string; detail : string }

(* Fingerprints are canonical query renderings and can run long; traces
   only need enough of one to tell entries apart. *)
let abbreviate fp =
  if String.length fp <= 48 then fp else String.sub fp 0 45 ^ "..."

let to_string = function
  | Guard_ok { label; expected_rows; actual_rows; q_error } ->
      Printf.sprintf "guard-ok: %s expected ~%.1f rows, saw %d (q-error %.2f)" label
        expected_rows actual_rows q_error
  | Guard_fired { label; expected_rows; actual_rows; q_error } ->
      Printf.sprintf "guard-fired: %s expected ~%.1f rows, saw %d (q-error %.2f)" label
        expected_rows actual_rows q_error
  | Reopt_planned { attempt; label } ->
      Printf.sprintf "reopt-planned: attempt %d over materialized %s" attempt label
  | Reopt_adopted { attempt; plan } ->
      Printf.sprintf "reopt-adopted: attempt %d continues as %s" attempt plan
  | Reopt_abandoned { attempt; reason } ->
      Printf.sprintf "reopt-abandoned: attempt %d (%s)" attempt reason
  | Degraded { kind; subsystem; detail } ->
      Printf.sprintf "degraded: [%s] %s: %s" kind subsystem detail
  | Stats_refresh { tables } ->
      Printf.sprintf "stats-refresh: %s" (String.concat ", " tables)
  | Plan_cache { outcome; fingerprint; version } ->
      Printf.sprintf "plan-cache: %s %s (stats v%d)" outcome (abbreviate fingerprint) version
  | Cache_evicted { cache; key } ->
      Printf.sprintf "cache-evicted: %s dropped %s" cache (abbreviate key)
  | Rewrite_applied { rule; detail } -> Printf.sprintf "rewrite: %s %s" rule detail

let to_json event =
  let obj kind fields = Json.Obj (("event", Json.Str kind) :: fields) in
  let guard label expected_rows actual_rows q_error =
    [
      ("label", Json.Str label);
      ("expected_rows", Json.Num expected_rows);
      ("actual_rows", Json.Num (float_of_int actual_rows));
      ("q_error", Json.Num q_error);
    ]
  in
  match event with
  | Guard_ok { label; expected_rows; actual_rows; q_error } ->
      obj "guard_ok" (guard label expected_rows actual_rows q_error)
  | Guard_fired { label; expected_rows; actual_rows; q_error } ->
      obj "guard_fired" (guard label expected_rows actual_rows q_error)
  | Reopt_planned { attempt; label } ->
      obj "reopt_planned"
        [ ("attempt", Json.Num (float_of_int attempt)); ("label", Json.Str label) ]
  | Reopt_adopted { attempt; plan } ->
      obj "reopt_adopted"
        [ ("attempt", Json.Num (float_of_int attempt)); ("plan", Json.Str plan) ]
  | Reopt_abandoned { attempt; reason } ->
      obj "reopt_abandoned"
        [ ("attempt", Json.Num (float_of_int attempt)); ("reason", Json.Str reason) ]
  | Degraded { kind; subsystem; detail } ->
      obj "degraded"
        [ ("kind", Json.Str kind); ("subsystem", Json.Str subsystem); ("detail", Json.Str detail) ]
  | Stats_refresh { tables } ->
      obj "stats_refresh" [ ("tables", Json.List (List.map (fun t -> Json.Str t) tables)) ]
  | Plan_cache { outcome; fingerprint; version } ->
      obj "plan_cache"
        [
          ("outcome", Json.Str outcome);
          ("fingerprint", Json.Str fingerprint);
          ("version", Json.Num (float_of_int version));
        ]
  | Cache_evicted { cache; key } ->
      obj "cache_evicted" [ ("cache", Json.Str cache); ("key", Json.Str key) ]
  | Rewrite_applied { rule; detail } ->
      obj "rewrite_applied" [ ("rule", Json.Str rule); ("detail", Json.Str detail) ]
