type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Integral values print as integers (counters dominate the output); other
   floats use %.17g, the shortest format guaranteed to round-trip a binary64
   through decimal. *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string json =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go json;
  Buffer.contents buf

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = input.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = input.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub input !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* The printer only emits \u for control characters; decode
                   the low byte and leave anything else as '?'. *)
                Buffer.add_char buf (if code < 0x100 then Char.chr code else '?');
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false
