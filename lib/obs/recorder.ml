type span = {
  label : string;
  rows : int;
  aborted : bool;
  total : Metrics.t;
  self : Metrics.t;
  children : span list;
}

type frame = {
  frame_label : string;
  start : Metrics.t;
  mutable children_rev : span list;
}

type t = {
  mutable stack : frame list;
  mutable roots_rev : span list;
  mutable events_rev : Trace.event list;
}

type handle = frame

let create () = { stack = []; roots_rev = []; events_rev = [] }

let open_span t ~label ~metrics =
  let frame = { frame_label = label; start = metrics; children_rev = [] } in
  t.stack <- frame :: t.stack;
  frame

let finish t handle ~rows ~aborted ~metrics =
  match t.stack with
  | top :: rest when top == handle ->
      t.stack <- rest;
      let children = List.rev top.children_rev in
      let total = Metrics.sub metrics top.start in
      let self =
        List.fold_left (fun acc child -> Metrics.sub acc child.total) total children
      in
      let span = { label = top.frame_label; rows; aborted; total; self; children } in
      (match t.stack with
      | parent :: _ -> parent.children_rev <- span :: parent.children_rev
      | [] -> t.roots_rev <- span :: t.roots_rev)
  | _ -> invalid_arg "Recorder: span closed out of order"

let close_span t handle ~rows ~metrics = finish t handle ~rows ~aborted:false ~metrics
let abort_span t handle ~metrics = finish t handle ~rows:(-1) ~aborted:true ~metrics

(* A span tree built outside the stack discipline (the streaming executor
   accumulates per-operator deltas across interleaved next-batch calls, so
   it cannot nest open/close windows) lands under whatever frame is
   currently open — an attemptN span during re-optimization — or becomes a
   root of its own. *)
let attach_span t span =
  match t.stack with
  | parent :: _ -> parent.children_rev <- span :: parent.children_rev
  | [] -> t.roots_rev <- span :: t.roots_rev

let record t event = t.events_rev <- event :: t.events_rev

let roots t = List.rev t.roots_rev
let events t = List.rev t.events_rev

let rec flatten span = span :: List.concat_map flatten span.children

let sum_self spans =
  List.fold_left
    (fun acc root ->
      List.fold_left (fun acc s -> Metrics.add acc s.self) acc (flatten root))
    Metrics.zero spans

let rec span_to_json span =
  Json.Obj
    [
      ("label", Json.Str span.label);
      ("rows", Json.Num (float_of_int span.rows));
      ("aborted", Json.Bool span.aborted);
      ("total", Metrics.to_json span.total);
      ("self", Metrics.to_json span.self);
      ("children", Json.List (List.map span_to_json span.children));
    ]

let to_json t =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (roots t)));
      ("events", Json.List (List.map Trace.to_json (events t)));
    ]

let render_spans spans =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-52s %10s %12s %12s  %s\n" "span" "rows" "self_s" "total_s" "self counters");
  let rec go depth span =
    let indent = String.make (2 * depth) ' ' in
    let rows = if span.aborted then "aborted" else string_of_int span.rows in
    Buffer.add_string buf
      (Printf.sprintf "%-52s %10s %12.6f %12.6f  %s\n" (indent ^ span.label) rows
         span.self.Metrics.seconds span.total.Metrics.seconds
         (Format.asprintf "%a" Metrics.pp span.self));
    List.iter (go (depth + 1)) span.children
  in
  List.iter (go 0) spans;
  Buffer.contents buf

let render_events events =
  String.concat "" (List.map (fun e -> Trace.to_string e ^ "\n") events)
