(** A minimal self-contained JSON value type, printer and parser.

    The metrics layer ships spans and trace events as JSON without pulling
    in an external JSON dependency.  Floats print with enough digits to
    round-trip bit-exactly through {!parse}; integral floats print without
    a decimal point and parse back to the same value. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with RFC-8259 string escaping. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the output of {!to_string} (plus
    arbitrary whitespace).  [Error] carries a position-annotated message. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare in order, numbers compare
    by float equality (round-tripped values are bit-identical). *)
