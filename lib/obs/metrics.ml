type t = {
  seconds : float;
  seq_pages : int;
  random_pages : int;
  pages_skipped : int;
  cpu_tuples : int;
  index_probes : int;
  index_entries : int;
  hash_build : int;
  hash_probe : int;
  merge_tuples : int;
  sort_tuples : int;
  output_tuples : int;
  sort_units : float;
  extra_seconds : float;
}

let zero =
  {
    seconds = 0.0;
    seq_pages = 0;
    random_pages = 0;
    pages_skipped = 0;
    cpu_tuples = 0;
    index_probes = 0;
    index_entries = 0;
    hash_build = 0;
    hash_probe = 0;
    merge_tuples = 0;
    sort_tuples = 0;
    output_tuples = 0;
    sort_units = 0.0;
    extra_seconds = 0.0;
  }

let map2 fi ff a b =
  {
    seconds = ff a.seconds b.seconds;
    seq_pages = fi a.seq_pages b.seq_pages;
    random_pages = fi a.random_pages b.random_pages;
    pages_skipped = fi a.pages_skipped b.pages_skipped;
    cpu_tuples = fi a.cpu_tuples b.cpu_tuples;
    index_probes = fi a.index_probes b.index_probes;
    index_entries = fi a.index_entries b.index_entries;
    hash_build = fi a.hash_build b.hash_build;
    hash_probe = fi a.hash_probe b.hash_probe;
    merge_tuples = fi a.merge_tuples b.merge_tuples;
    sort_tuples = fi a.sort_tuples b.sort_tuples;
    output_tuples = fi a.output_tuples b.output_tuples;
    sort_units = ff a.sort_units b.sort_units;
    extra_seconds = ff a.extra_seconds b.extra_seconds;
  }

let add = map2 ( + ) ( +. )
let sub = map2 ( - ) ( -. )

let approx_equal ?(tolerance = 1e-9) a b =
  a.seq_pages = b.seq_pages && a.random_pages = b.random_pages
  && a.pages_skipped = b.pages_skipped
  && a.cpu_tuples = b.cpu_tuples && a.index_probes = b.index_probes
  && a.index_entries = b.index_entries && a.hash_build = b.hash_build
  && a.hash_probe = b.hash_probe && a.merge_tuples = b.merge_tuples
  && a.sort_tuples = b.sort_tuples && a.output_tuples = b.output_tuples
  && Float.abs (a.seconds -. b.seconds) <= tolerance
  && Float.abs (a.sort_units -. b.sort_units) <= tolerance
  && Float.abs (a.extra_seconds -. b.extra_seconds) <= tolerance

let to_json m =
  Json.Obj
    [
      ("seconds", Json.Num m.seconds);
      ("seq_pages", Json.Num (float_of_int m.seq_pages));
      ("random_pages", Json.Num (float_of_int m.random_pages));
      ("pages_skipped", Json.Num (float_of_int m.pages_skipped));
      ("cpu_tuples", Json.Num (float_of_int m.cpu_tuples));
      ("index_probes", Json.Num (float_of_int m.index_probes));
      ("index_entries", Json.Num (float_of_int m.index_entries));
      ("hash_build", Json.Num (float_of_int m.hash_build));
      ("hash_probe", Json.Num (float_of_int m.hash_probe));
      ("merge_tuples", Json.Num (float_of_int m.merge_tuples));
      ("sort_tuples", Json.Num (float_of_int m.sort_tuples));
      ("output_tuples", Json.Num (float_of_int m.output_tuples));
      ("sort_units", Json.Num m.sort_units);
      ("extra_seconds", Json.Num m.extra_seconds);
    ]

(* ------------------------------------------------------------------ *)
(* Evidence-kernel counters                                            *)
(* ------------------------------------------------------------------ *)

(* Work accounting for the bitset evidence kernel: how many per-atom
   bitmaps were materialized (each one a full sample scan), how many
   evidence queries were answered by combining cached bitmaps instead, and
   the row evaluations that combination avoided.  Separate from the
   simulated-cost record above: kernel work is real optimizer-side CPU,
   not modeled query execution. *)
type kernel = {
  bitmaps_built : int;      (* atomic predicate bitmaps materialized *)
  bitmap_hits : int;        (* atoms served from the bitmap cache *)
  bitmap_evictions : int;   (* atoms dropped by the bounded cache *)
  evidence_queries : int;   (* count/popcount requests answered *)
  rows_scanned : int;       (* row evaluations paid building bitmaps *)
  rows_scan_avoided : int;  (* row evaluations a scan path would have paid *)
}

let kernel_zero =
  {
    bitmaps_built = 0;
    bitmap_hits = 0;
    bitmap_evictions = 0;
    evidence_queries = 0;
    rows_scanned = 0;
    rows_scan_avoided = 0;
  }

let kernel_add a b =
  {
    bitmaps_built = a.bitmaps_built + b.bitmaps_built;
    bitmap_hits = a.bitmap_hits + b.bitmap_hits;
    bitmap_evictions = a.bitmap_evictions + b.bitmap_evictions;
    evidence_queries = a.evidence_queries + b.evidence_queries;
    rows_scanned = a.rows_scanned + b.rows_scanned;
    rows_scan_avoided = a.rows_scan_avoided + b.rows_scan_avoided;
  }

let kernel_to_json k =
  Json.Obj
    [
      ("bitmaps_built", Json.Num (float_of_int k.bitmaps_built));
      ("bitmap_hits", Json.Num (float_of_int k.bitmap_hits));
      ("bitmap_evictions", Json.Num (float_of_int k.bitmap_evictions));
      ("evidence_queries", Json.Num (float_of_int k.evidence_queries));
      ("rows_scanned", Json.Num (float_of_int k.rows_scanned));
      ("rows_scan_avoided", Json.Num (float_of_int k.rows_scan_avoided));
    ]

(* ------------------------------------------------------------------ *)
(* Buffer-pool counters                                                *)
(* ------------------------------------------------------------------ *)

(* Residency accounting for the chunk buffer pool.  Deliberately separate
   from the simulated-cost record above: under the morsel-parallel executor
   which domain faults a chunk in first is a race, so hit/miss/eviction
   totals are schedule-dependent and must not participate in the
   deterministic counter-parity checks (pages_skipped, by contrast, is
   deterministic and lives in [t]). *)
type pool = {
  pool_hits : int;        (* pins served from the residency table *)
  pool_misses : int;      (* pins that faulted the chunk in *)
  pool_evictions : int;   (* unpinned chunks dropped by LRU pressure *)
  pool_capacity_chunks : int;
  pool_resident_chunks : int;
}

let pool_zero =
  {
    pool_hits = 0;
    pool_misses = 0;
    pool_evictions = 0;
    pool_capacity_chunks = 0;
    pool_resident_chunks = 0;
  }

let pool_hit_rate p =
  let total = p.pool_hits + p.pool_misses in
  if total = 0 then 0.0 else float_of_int p.pool_hits /. float_of_int total

let pool_to_json p =
  Json.Obj
    [
      ("hits", Json.Num (float_of_int p.pool_hits));
      ("misses", Json.Num (float_of_int p.pool_misses));
      ("evictions", Json.Num (float_of_int p.pool_evictions));
      ("hit_rate", Json.Num (pool_hit_rate p));
      ("capacity_chunks", Json.Num (float_of_int p.pool_capacity_chunks));
      ("resident_chunks", Json.Num (float_of_int p.pool_resident_chunks));
    ]

let pp_pool fmt p =
  Format.fprintf fmt "hits=%d misses=%d evictions=%d hit_rate=%.3f resident=%d/%d"
    p.pool_hits p.pool_misses p.pool_evictions (pool_hit_rate p)
    p.pool_resident_chunks p.pool_capacity_chunks

let pp_kernel fmt k =
  Format.fprintf fmt
    "evidence=%d bitmaps=%d hits=%d evictions=%d rows_scanned=%d rows_avoided=%d"
    k.evidence_queries k.bitmaps_built k.bitmap_hits k.bitmap_evictions k.rows_scanned
    k.rows_scan_avoided

let pp fmt m =
  Format.fprintf fmt "%.6fs" m.seconds;
  let field name v = if v <> 0 then Format.fprintf fmt " %s=%d" name v in
  field "seq" m.seq_pages;
  field "rand" m.random_pages;
  field "skipped" m.pages_skipped;
  field "cpu" m.cpu_tuples;
  field "probes" m.index_probes;
  field "entries" m.index_entries;
  field "hbuild" m.hash_build;
  field "hprobe" m.hash_probe;
  field "merge" m.merge_tuples;
  field "sort" m.sort_tuples;
  field "out" m.output_tuples
