(** Typed trace events.

    One stream carries everything the runtime observes about a query's
    life: cardinality-guard checks, mid-query re-optimization decisions,
    statistics-fault degradations (the [Fault] taxonomy, carried as
    strings to keep this library a leaf), and statistics-maintenance
    refreshes.  Producers record through {!Recorder.record}; consumers
    read them in order next to the operator spans of the same run. *)

type event =
  | Guard_ok of { label : string; expected_rows : float; actual_rows : int; q_error : float }
      (** a cardinality checkpoint passed *)
  | Guard_fired of { label : string; expected_rows : float; actual_rows : int; q_error : float }
      (** a checkpoint's q-error bound was exceeded; the pipeline aborts *)
  | Reopt_planned of { attempt : int; label : string }
      (** a continuation search began over the materialized intermediate *)
  | Reopt_adopted of { attempt : int; plan : string }
      (** a continuation plan was adopted and execution resumed *)
  | Reopt_abandoned of { attempt : int; reason : string }
      (** no continuation (budget exhausted / remainder unplannable); the
          original plan completes guard-free *)
  | Degraded of { kind : string; subsystem : string; detail : string }
      (** an estimation-statistics tier failed its health check (the
          [Fault] taxonomy: Stale / Missing / Corrupt / Budget_exceeded) *)
  | Stats_refresh of { tables : string list }
      (** the maintenance policy rebuilt statistics *)
  | Plan_cache of { outcome : string; fingerprint : string; version : int }
      (** one plan-cache lookup or eviction: [outcome] is ["hit"],
          ["miss"], ["invalidated"] (stats version moved since the entry
          was cached — a re-optimization follows) or ["evicted"] (LRU
          capacity pressure); [version] is the live statistics version at
          the event *)
  | Cache_evicted of { cache : string; key : string }
      (** a bounded estimator-side cache (evidence memo, per-synopsis
          bitmap index, group-count memo) dropped its LRU entry under
          capacity pressure *)
  | Rewrite_applied of { rule : string; detail : string }
      (** one logical-rewrite rule fired during the pre-enumeration
          fixpoint pass; [detail] says what the rule changed *)

val to_string : event -> string
(** One line, ["event-name: details"]. *)

val to_json : event -> Json.t
