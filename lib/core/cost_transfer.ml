let cost_percentile ~cost_of_selectivity posterior confidence =
  cost_of_selectivity (Posterior.quantile posterior (Confidence.to_fraction confidence))

(* Largest selectivity s in [0,1] with g(s) <= c, by bisection; relies on g
   monotone non-decreasing. *)
let invert_cost ~cost_of_selectivity c =
  if cost_of_selectivity 0.0 > c then None
  else if cost_of_selectivity 1.0 <= c then Some 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if cost_of_selectivity mid <= c then lo := mid else hi := mid
    done;
    Some !lo
  end

let cost_cdf ~cost_of_selectivity posterior c =
  match invert_cost ~cost_of_selectivity c with
  | None -> 0.0
  | Some s -> Posterior.cdf posterior s

let cost_cdf_inverse ~cost_of_selectivity posterior p =
  if p < 0.0 || p > 1.0 then invalid_arg "Cost_transfer.cost_cdf_inverse: p outside [0,1]";
  let c_lo = ref (cost_of_selectivity 0.0) and c_hi = ref (cost_of_selectivity 1.0) in
  for _ = 1 to 100 do
    let mid = 0.5 *. (!c_lo +. !c_hi) in
    if cost_cdf ~cost_of_selectivity posterior mid < p then c_lo := mid else c_hi := mid
  done;
  0.5 *. (!c_lo +. !c_hi)

let cost_pdf ~cost_of_selectivity posterior c =
  let span = Float.abs (cost_of_selectivity 1.0 -. cost_of_selectivity 0.0) in
  let h = Float.max 1e-9 (1e-5 *. Float.max span 1.0) in
  (cost_cdf ~cost_of_selectivity posterior (c +. h)
  -. cost_cdf ~cost_of_selectivity posterior (c -. h))
  /. (2.0 *. h)

let expected_cost ?(intervals = 2048) ~cost_of_selectivity posterior =
  if intervals <= 0 || intervals mod 2 <> 0 then
    invalid_arg "Cost_transfer.expected_cost: intervals must be positive and even";
  (* Composite Simpson on f(s) = pdf(s) * g(s).  The Jeffreys-posterior pdf
     can be singular at 0 and 1 (when k = 0 or k = n), so integrate on a
     slightly clipped domain; the omitted mass is negligible for the
     integrand g * pdf since g is bounded. *)
  let eps = 1e-9 in
  let a = eps and b = 1.0 -. eps in
  let h = (b -. a) /. float_of_int intervals in
  let f s = Posterior.pdf posterior s *. cost_of_selectivity s in
  let acc = ref (f a +. f b) in
  for i = 1 to intervals - 1 do
    let s = a +. (float_of_int i *. h) in
    acc := !acc +. ((if i mod 2 = 1 then 4.0 else 2.0) *. f s)
  done;
  !acc *. h /. 3.0
