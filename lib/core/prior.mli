(** Prior distributions over query selectivity (paper Sec. 3.3).

    With no workload knowledge, the paper adopts the Jeffreys prior
    Beta(1/2, 1/2) — the standard non-informative prior for a Bernoulli
    parameter — noting that the choice has little impact (Fig. 4).  The
    uniform prior Beta(1, 1) and arbitrary informed Beta priors are also
    supported so the ablation bench can reproduce that figure. *)

open Rq_math

type t =
  | Jeffreys        (** Beta(1/2, 1/2); the paper's default *)
  | Uniform         (** Beta(1, 1): all selectivities equally likely *)
  | Informed of Beta.t  (** workload-derived prior *)

val default : t
(** [Jeffreys]. *)

val to_beta : t -> Beta.t

val of_mean_strength : mean:float -> strength:float -> t
(** Informed prior with the given mean and equivalent-sample-size
    [strength]: Beta(mean·strength, (1-mean)·strength).  Requires
    0 < mean < 1 and strength > 0. *)

val fit_from_selectivities : float list -> (t, string) result
(** Workload-informed prior (paper Sec. 3.3: "if we have some prior
    knowledge about the query workload, we may be able to use that
    knowledge"): fits a Beta distribution to observed historical query
    selectivities by the method of moments.  Needs at least two distinct
    values in (0, 1); degenerate inputs report an error rather than a
    bogus prior. *)

val pp : Format.formatter -> t -> unit
