(** Confidence thresholds: the paper's single tuning knob for the
    performance/predictability trade-off (Sec. 3.1).

    At threshold T, plan costs are estimated at the T-th percentile of
    their distribution, so the optimizer is "T% confident" the actual cost
    will not exceed its estimate.  Raising T makes plan choice conservative
    (predictable); lowering it makes it aggressive.

    The paper proposes two configuration levels (Sec. 6.2.5): a system-wide
    robustness setting — conservative (95%), moderate (80%), aggressive
    (50%) — and a per-query hint that overrides it. *)

type t
(** A threshold, strictly between 0 and 1. *)

val of_percent : float -> t
(** [of_percent 80.0]; raises [Invalid_argument] outside (0, 100). *)

val of_fraction : float -> t
(** Raises [Invalid_argument] outside (0, 1). *)

val to_fraction : t -> float
val to_percent : t -> float

val median : t
(** 50%: ranks plans by the median of their cost distributions. *)

type policy = Conservative | Moderate | Aggressive

val of_policy : policy -> t
(** 95%, 80%, 50% respectively (the paper's recommended mapping). *)

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

type setting = { system_default : t } [@@unboxed]
(** System-wide configuration. *)

val default_setting : setting
(** Moderate (80%), the paper's recommended general-purpose baseline. *)

val resolve : ?query_hint:t -> setting -> t
(** Query hint wins over the system default. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
