type t = float

let of_fraction f =
  if not (f > 0.0 && f < 1.0) then
    invalid_arg "Confidence.of_fraction: must be strictly between 0 and 1";
  f

let of_percent p = of_fraction (p /. 100.0)
let to_fraction t = t
let to_percent t = t *. 100.0
let median = 0.5

type policy = Conservative | Moderate | Aggressive

let of_policy = function
  | Conservative -> 0.95
  | Moderate -> 0.80
  | Aggressive -> 0.50

let policy_of_string s =
  match String.lowercase_ascii s with
  | "conservative" -> Ok Conservative
  | "moderate" -> Ok Moderate
  | "aggressive" -> Ok Aggressive
  | other -> Error (Printf.sprintf "unknown robustness policy %S" other)

let policy_to_string = function
  | Conservative -> "conservative"
  | Moderate -> "moderate"
  | Aggressive -> "aggressive"

type setting = { system_default : t } [@@unboxed]

let default_setting = { system_default = of_policy Moderate }

let resolve ?query_hint setting =
  match query_hint with Some t -> t | None -> setting.system_default

let equal = Float.equal
let compare = Float.compare
let pp fmt t = Format.fprintf fmt "%g%%" (to_percent t)
