(** The robust selectivity estimation procedure (paper Sec. 3.4).

    Given sample evidence (k of n tuples satisfy the predicate):
    1. infer the posterior selectivity distribution via Bayes's rule, and
    2. return its cdf{^-1}(T) for the active confidence threshold T,
    producing a single-value estimate an unmodified optimizer can consume.

    Also provides the Sec.-3.5 fallbacks for expressions with no usable
    sample: the "magic distribution" (a fixed prior interpreted at the same
    confidence threshold, so the magic number moves with T) and the plain
    magic constant. *)

open Rq_math

type t = { prior : Prior.t; confidence : Confidence.t }

val create : ?prior:Prior.t -> confidence:Confidence.t -> unit -> t

val default : t
(** Jeffreys prior at the moderate (80%) threshold. *)

val posterior : t -> successes:int -> trials:int -> Posterior.t

val estimate : t -> successes:int -> trials:int -> float
(** The headline operation: selectivity = posterior quantile at the
    confidence threshold. *)

val estimate_from_distribution : t -> Beta.t -> float
(** Interpret an externally-supplied selectivity distribution at this
    estimator's threshold (the procedure is orthogonal to sampling). *)

val magic_distribution : Beta.t
(** Beta(1, 9): mean 10%, the classic magic number, with mass spread so the
    estimate responds to the confidence threshold. *)

val estimate_no_statistics : t -> float
(** cdf{^-1}(T) of [magic_distribution]. *)

val magic_selectivity : float
(** The plain constant 0.10 used when even the magic distribution is
    disabled. *)

val expected_value_estimate : successes:int -> trials:int -> ?prior:Prior.t -> unit -> float
(** Posterior-mean estimate (k+a)/(n+a+b) — the least-expected-cost-style
    baseline used in the ablation bench. *)

val maximum_likelihood_estimate : successes:int -> trials:int -> float
(** k/n, the frequentist baseline of Acharya et al. [1]. *)
