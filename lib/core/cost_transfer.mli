(** Transferring the selectivity distribution to a cost distribution
    (paper Sec. 3.1.1).

    If a plan's execution cost g(s) increases monotonically in the
    selectivity s, then the T-th percentile of the cost distribution equals
    g applied to the T-th percentile of the selectivity distribution:
    cdf_cost{^-1}(T) = g(cdf_sel{^-1}(T)).  So the estimator can invert the
    *selectivity* cdf once and invoke the cost model once — no explicit
    cost distribution is ever built, and the change stays confined to the
    cardinality estimation module.

    The explicit-distribution route is also implemented here (numerically),
    both to draw the paper's Figures 2 and 3 and to *verify* the
    equivalence in tests and the ablation bench. *)

val cost_percentile :
  cost_of_selectivity:(float -> float) -> Posterior.t -> Confidence.t -> float
(** The fast path: [g (quantile T)]. *)

val cost_cdf :
  cost_of_selectivity:(float -> float) -> Posterior.t -> float -> float
(** [cost_cdf ~cost_of_selectivity dist c] = Pr[g(s) <= c], computed by
    bisection-inverting the monotone g over [0, 1] — the roundabout route
    the fast path avoids. *)

val cost_cdf_inverse :
  cost_of_selectivity:(float -> float) -> Posterior.t -> float -> float
(** Percentile of the explicit cost distribution; equals [cost_percentile]
    for monotone costs (tested). *)

val cost_pdf :
  cost_of_selectivity:(float -> float) -> Posterior.t -> float -> float
(** Numerical density of the cost distribution (central difference of
    [cost_cdf]); used to reproduce Figure 2. *)

val expected_cost :
  ?intervals:int -> cost_of_selectivity:(float -> float) -> Posterior.t -> float
(** E[g(s)] by composite Simpson quadrature over the selectivity
    distribution (the least-expected-cost objective of Chu et al., used as
    an ablation baseline). *)
