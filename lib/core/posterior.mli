(** Posterior selectivity distributions inferred from sample evidence
    (paper Sec. 3.3, Equation 2).

    Observing that [k] of [n] uniformly-sampled tuples satisfy a predicate,
    the tuples are i.i.d. Bernoulli(p) in the true selectivity p, so under a
    Beta prior the posterior is Beta(k + a, n - k + b) — with the Jeffreys
    prior, Beta(k + 1/2, n - k + 1/2). *)

open Rq_math

type t

val infer : ?prior:Prior.t -> successes:int -> trials:int -> unit -> t
(** Bayes's rule for binomial evidence; prior defaults to Jeffreys.
    Requires [0 <= successes <= trials]. *)

val of_distribution : Beta.t -> t
(** Wrap an externally-derived selectivity distribution (the estimation
    procedure is orthogonal to how the distribution was produced —
    Sec. 3.2's closing remark). *)

val distribution : t -> Beta.t
val evidence : t -> (int * int) option
(** [(k, n)] when built via [infer]. *)

val mean : t -> float
val std_dev : t -> float

val quantile : t -> float -> float
(** [quantile t f] is the selectivity s with Pr[p <= s] = f — the value the
    estimator returns at confidence threshold f. *)

val cdf : t -> float -> float
val pdf : t -> float -> float

val credible_interval : t -> float -> float * float

val pp : Format.formatter -> t -> unit
