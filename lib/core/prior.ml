open Rq_math

type t = Jeffreys | Uniform | Informed of Beta.t

let default = Jeffreys

let to_beta = function
  | Jeffreys -> Beta.create ~alpha:0.5 ~beta:0.5
  | Uniform -> Beta.create ~alpha:1.0 ~beta:1.0
  | Informed b -> b

let of_mean_strength ~mean ~strength =
  if not (mean > 0.0 && mean < 1.0) then
    invalid_arg "Prior.of_mean_strength: mean must be in (0,1)";
  if strength <= 0.0 then invalid_arg "Prior.of_mean_strength: strength must be positive";
  Informed (Beta.create ~alpha:(mean *. strength) ~beta:((1.0 -. mean) *. strength))

let fit_from_selectivities selectivities =
  let usable = List.filter (fun s -> s > 0.0 && s < 1.0) selectivities in
  let n = List.length usable in
  if n < 2 then Error "need at least two selectivities strictly inside (0, 1)"
  else begin
    let nf = float_of_int n in
    let mean = List.fold_left ( +. ) 0.0 usable /. nf in
    let variance =
      List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.0)) 0.0 usable /. nf
    in
    if variance <= 0.0 then Error "selectivities are all identical; no spread to fit"
    else if variance >= mean *. (1.0 -. mean) then
      Error "sample variance too large for a Beta fit (variance >= mean(1-mean))"
    else begin
      (* Method of moments: alpha + beta = mean(1-mean)/var - 1. *)
      let strength = (mean *. (1.0 -. mean) /. variance) -. 1.0 in
      Ok (of_mean_strength ~mean ~strength)
    end
  end

let pp fmt = function
  | Jeffreys -> Format.pp_print_string fmt "Jeffreys"
  | Uniform -> Format.pp_print_string fmt "Uniform"
  | Informed b -> Format.fprintf fmt "Informed %a" Beta.pp b
