open Rq_math

type t = { dist : Beta.t; evidence : (int * int) option }

let infer ?(prior = Prior.default) ~successes ~trials () =
  {
    dist = Beta.posterior ~prior:(Prior.to_beta prior) ~successes ~trials;
    evidence = Some (successes, trials);
  }

let of_distribution dist = { dist; evidence = None }
let distribution t = t.dist
let evidence t = t.evidence
let mean t = Beta.mean t.dist
let std_dev t = Beta.std_dev t.dist
let quantile t f = Beta.quantile t.dist f
let cdf t x = Beta.cdf t.dist x
let pdf t x = Beta.pdf t.dist x
let credible_interval t mass = Beta.credible_interval t.dist mass

let pp fmt t =
  match t.evidence with
  | Some (k, n) -> Format.fprintf fmt "Posterior(%a | k=%d, n=%d)" Beta.pp t.dist k n
  | None -> Format.fprintf fmt "Posterior(%a)" Beta.pp t.dist
