open Rq_math

type t = { prior : Prior.t; confidence : Confidence.t }

let create ?(prior = Prior.default) ~confidence () = { prior; confidence }

let default =
  { prior = Prior.default; confidence = Confidence.of_policy Confidence.Moderate }

let posterior t ~successes ~trials = Posterior.infer ~prior:t.prior ~successes ~trials ()

let estimate t ~successes ~trials =
  Posterior.quantile (posterior t ~successes ~trials) (Confidence.to_fraction t.confidence)

let estimate_from_distribution t dist =
  Beta.quantile dist (Confidence.to_fraction t.confidence)

let magic_distribution = Beta.create ~alpha:1.0 ~beta:9.0

let estimate_no_statistics t = estimate_from_distribution t magic_distribution

let magic_selectivity = 0.10

let expected_value_estimate ~successes ~trials ?(prior = Prior.default) () =
  Beta.mean (Beta.posterior ~prior:(Prior.to_beta prior) ~successes ~trials)

let maximum_likelihood_estimate ~successes ~trials =
  if trials <= 0 then invalid_arg "maximum_likelihood_estimate: trials must be positive";
  float_of_int successes /. float_of_int trials
