(** Data series for the paper's analytical figures (Figures 1–8).

    Each function returns labelled (x, y) series ready for tabulation; the
    bench harness prints them.  Constants are chosen to match every number
    the paper quotes for these figures: the 26% cost crossover (Fig. 1),
    median costs 30.2/31.5 and 80th-percentile costs 33.5/31.9 for the
    k=50-of-200 posterior (Sec. 3.1), the 65% confidence-threshold
    crossover (Fig. 3), and the Section-5 cost-model parameters. *)

open Rq_math
open Rq_core

type series = { label : string; points : (float * float) list }

val example_plan_1 : float -> float
(** Execution cost of the running example's risky Plan 1 as a function of
    selectivity. *)

val example_plan_2 : float -> float
(** The stable Plan 2. *)

val example_posterior : Posterior.t
(** Beta(50.5, 150.5): the 50-of-200 evidence of Section 3.1. *)

val fig1_cost_vs_selectivity : unit -> series list
(** Cost of both plans over selectivity 0–100%. *)

val fig2_cost_pdf : unit -> series list
(** Probability density of each plan's execution cost. *)

val fig3_cost_cdf : unit -> series list
(** Cumulative probability of each plan's execution cost; the curves cross
    at T ~ 65%. *)

val fig3_preferred_plan : Confidence.t -> [ `Plan1 | `Plan2 ]
(** Which plan has the lower cost estimate at a given threshold. *)

val fig4_prior_comparison : unit -> series list
(** Posterior densities for (uniform | Jeffreys) x (10/100 | 50/500). *)

val fig5_confidence_sweep : unit -> series list
(** Expected execution time vs. selectivity (0–1%), one series per
    threshold in {5, 20, 50, 80, 95}%, n = 1000 (paper Figure 5). *)

val fig6_tradeoff : unit -> (float * Summary.t) list
(** Per threshold: (threshold percent, workload cost summary) — the
    mean/stddev trade-off frontier (paper Figure 6). *)

val fig7_sample_size_sweep : unit -> series list
(** Expected time vs. selectivity at T = 50%, one series per sample size
    in {50, 100, 250, 500, 1000} (paper Figure 7). *)

val fig8_high_crossover : unit -> series list
(** The perturbed model with crossover ~5.2%: thresholds {5, 50, 95}% plus
    the two pure plans, selectivity 0–20% (paper Figure 8). *)

val default_workload_selectivities : float list
(** 0%..1% in steps of 0.05% — the Figure-5/6 workload. *)
