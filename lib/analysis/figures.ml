open Rq_core

type series = { label : string; points : (float * float) list }

(* The running example of Sections 2.1/3.1: linear plan costs fitted to the
   numbers the paper quotes — crossover at 26% selectivity; with the
   50-of-200 posterior, medians 30.2 / 31.5, 80th percentiles 33.5 / 31.9,
   and cdf curves crossing at ~65%. *)
let example_plan_1 s = -0.85 +. (124.0 *. s)
let example_plan_2 s = 27.74 +. (15.0 *. s)

let example_posterior = Posterior.infer ~successes:50 ~trials:200 ()

let grid ~lo ~hi ~steps =
  List.init (steps + 1) (fun i ->
      lo +. (float_of_int i *. (hi -. lo) /. float_of_int steps))

let fig1_cost_vs_selectivity () =
  let xs = grid ~lo:0.0 ~hi:1.0 ~steps:50 in
  [
    { label = "Plan 1"; points = List.map (fun s -> (s, example_plan_1 s)) xs };
    { label = "Plan 2"; points = List.map (fun s -> (s, example_plan_2 s)) xs };
  ]

let fig2_cost_pdf () =
  let series_for label cost_fn =
    let costs = grid ~lo:20.0 ~hi:45.0 ~steps:100 in
    {
      label;
      points =
        List.map
          (fun c -> (c, Cost_transfer.cost_pdf ~cost_of_selectivity:cost_fn example_posterior c))
          costs;
    }
  in
  [ series_for "Plan 1" example_plan_1; series_for "Plan 2" example_plan_2 ]

let fig3_cost_cdf () =
  let series_for label cost_fn =
    let costs = grid ~lo:20.0 ~hi:40.0 ~steps:100 in
    {
      label;
      points =
        List.map
          (fun c -> (c, Cost_transfer.cost_cdf ~cost_of_selectivity:cost_fn example_posterior c))
          costs;
    }
  in
  [ series_for "Plan 1" example_plan_1; series_for "Plan 2" example_plan_2 ]

let fig3_preferred_plan confidence =
  let estimate f = Cost_transfer.cost_percentile ~cost_of_selectivity:f example_posterior confidence in
  if estimate example_plan_1 <= estimate example_plan_2 then `Plan1 else `Plan2

let fig4_prior_comparison () =
  let xs = grid ~lo:0.001 ~hi:0.25 ~steps:120 in
  let series_for label prior k n =
    let posterior = Posterior.infer ~prior ~successes:k ~trials:n () in
    { label; points = List.map (fun s -> (s, Posterior.pdf posterior s)) xs }
  in
  [
    series_for "uniform 10/100" Prior.Uniform 10 100;
    series_for "Jeffreys 10/100" Prior.Jeffreys 10 100;
    series_for "uniform 50/500" Prior.Uniform 50 500;
    series_for "Jeffreys 50/500" Prior.Jeffreys 50 500;
  ]

let default_workload_selectivities = grid ~lo:0.0 ~hi:0.01 ~steps:20

let fig5_thresholds = [ 5.0; 20.0; 50.0; 80.0; 95.0 ]

let fig5_confidence_sweep () =
  List.map
    (fun t ->
      let confidence = Confidence.of_percent t in
      {
        label = Printf.sprintf "T=%g%%" t;
        points =
          List.map
            (fun p ->
              ( p,
                Model.expected_cost Model.paper_model ~sample_size:1000 ~confidence
                  ~selectivity:p ))
            default_workload_selectivities;
      })
    fig5_thresholds

let fig6_tradeoff () =
  List.map
    (fun t ->
      let confidence = Confidence.of_percent t in
      ( t,
        Model.cost_over_workload Model.paper_model ~sample_size:1000 ~confidence
          ~selectivities:default_workload_selectivities ))
    fig5_thresholds

let fig7_sample_size_sweep () =
  List.map
    (fun n ->
      {
        label = Printf.sprintf "n=%d" n;
        points =
          List.map
            (fun p ->
              ( p,
                Model.expected_cost Model.paper_model ~sample_size:n
                  ~confidence:Confidence.median ~selectivity:p ))
            default_workload_selectivities;
      })
    [ 50; 100; 250; 500; 1000 ]

let fig8_high_crossover () =
  let xs = grid ~lo:0.0 ~hi:0.20 ~steps:40 in
  let model = Model.high_crossover_model in
  let threshold_series t =
    let confidence = Confidence.of_percent t in
    {
      label = Printf.sprintf "T=%g%%" t;
      points =
        List.map
          (fun p -> (p, Model.expected_cost model ~sample_size:1000 ~confidence ~selectivity:p))
          xs;
    }
  in
  let plan_series label plan =
    {
      label;
      points = List.map (fun p -> (p, Model.plan_execution_cost model plan ~selectivity:p)) xs;
    }
  in
  List.map threshold_series [ 5.0; 50.0; 95.0 ]
  @ [ plan_series "Plan P1 (stable)" model.Model.stable;
      plan_series "Plan P2 (risky)" model.Model.risky ]
