open Rq_math
open Rq_core

type plan_cost = { fixed : float; per_row : float }

type t = { rows : float; stable : plan_cost; risky : plan_cost }

let paper_model =
  {
    rows = 6_000_000.0;
    stable = { fixed = 35.0; per_row = 3.5e-6 };
    risky = { fixed = 5.0; per_row = 3.5e-3 };
  }

let high_crossover_model =
  {
    rows = 6_000_000.0;
    stable = { fixed = 35.0; per_row = 3.5e-6 };
    risky = { fixed = 19.0; per_row = 5.4e-5 };
  }

let plan_execution_cost t plan ~selectivity =
  plan.fixed +. (plan.per_row *. selectivity *. t.rows)

let crossover t =
  (t.stable.fixed -. t.risky.fixed)
  /. (t.rows *. (t.risky.per_row -. t.stable.per_row))

let oracle_cost t ~selectivity =
  Float.min
    (plan_execution_cost t t.stable ~selectivity)
    (plan_execution_cost t t.risky ~selectivity)

type choice = Stable | Risky

type estimate_rule =
  | At_confidence of Confidence.t
  | Posterior_mean
  | Maximum_likelihood

let estimate_under_rule ~prior ~rule ~sample_size k =
  match rule with
  | At_confidence confidence ->
      let posterior = Posterior.infer ~prior ~successes:k ~trials:sample_size () in
      Posterior.quantile posterior (Confidence.to_fraction confidence)
  | Posterior_mean ->
      Posterior.mean (Posterior.infer ~prior ~successes:k ~trials:sample_size ())
  | Maximum_likelihood -> float_of_int k /. float_of_int sample_size

let choice_table_rule ?(prior = Prior.default) t ~sample_size ~rule =
  let pc = crossover t in
  Array.init (sample_size + 1) (fun k ->
      let estimate = estimate_under_rule ~prior ~rule ~sample_size k in
      if estimate <= pc then Risky else Stable)

let choice_table ?prior t ~sample_size ~confidence =
  choice_table_rule ?prior t ~sample_size ~rule:(At_confidence confidence)

let executed_cost t choices ~selectivity k =
  match choices.(k) with
  | Stable -> plan_execution_cost t t.stable ~selectivity
  | Risky -> plan_execution_cost t t.risky ~selectivity

let expected_cost ?prior t ~sample_size ~confidence ~selectivity =
  let choices = choice_table ?prior t ~sample_size ~confidence in
  Binomial.expectation ~n:sample_size ~p:selectivity
    (executed_cost t choices ~selectivity)

let risky_probability ?prior t ~sample_size ~confidence ~selectivity =
  let choices = choice_table ?prior t ~sample_size ~confidence in
  Binomial.expectation ~n:sample_size ~p:selectivity (fun k ->
      match choices.(k) with Risky -> 1.0 | Stable -> 0.0)

let cost_over_workload_choices t ~sample_size ~choices ~selectivities =
  if selectivities = [] then invalid_arg "Model.cost_over_workload: empty workload";
  (* Exact first and second moments of the cost under the mixture
     (p uniform over the workload, k ~ Binomial(n, p)). *)
  let m1 = ref 0.0 and m2 = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  List.iter
    (fun p ->
      let c1 =
        Binomial.expectation ~n:sample_size ~p (executed_cost t choices ~selectivity:p)
      in
      let c2 =
        Binomial.expectation ~n:sample_size ~p (fun k ->
            let c = executed_cost t choices ~selectivity:p k in
            c *. c)
      in
      m1 := !m1 +. c1;
      m2 := !m2 +. c2;
      mn := Float.min !mn c1;
      mx := Float.max !mx c1)
    selectivities;
  let count = float_of_int (List.length selectivities) in
  let mean = !m1 /. count in
  let variance = Float.max 0.0 ((!m2 /. count) -. (mean *. mean)) in
  {
    Summary.count = List.length selectivities;
    mean;
    variance;
    std_dev = sqrt variance;
    min = !mn;
    max = !mx;
  }

let cost_over_workload ?prior t ~sample_size ~confidence ~selectivities =
  let choices = choice_table ?prior t ~sample_size ~confidence in
  cost_over_workload_choices t ~sample_size ~choices ~selectivities

let cost_over_workload_rule ?prior t ~sample_size ~rule ~selectivities =
  let choices = choice_table_rule ?prior t ~sample_size ~rule in
  cost_over_workload_choices t ~sample_size ~choices ~selectivities
