(** The Section-5 analytical model.

    A single-table query against an N-row table chooses between two linear
    plans: a stable one (sequential scan: high fixed cost, negligible
    per-row cost) and a risky one (index intersection: low fixed cost,
    high per-row cost).  Selectivity is estimated from an n-tuple sample at
    confidence threshold T; the number of sample hits k is
    Binomial(n, p), so every expectation below is an exact sum over k —
    no simulation. *)

open Rq_math
open Rq_core

type plan_cost = { fixed : float; per_row : float }
(** cost(p) = fixed + per_row · p · N. *)

type t = {
  rows : float;       (** N *)
  stable : plan_cost; (** optimal above the crossover (paper's P1) *)
  risky : plan_cost;  (** optimal below the crossover (paper's P2) *)
}

val paper_model : t
(** N = 6,000,000; stable f=35, v=3.5e-6; risky f=5, v=3.5e-3 —
    crossover ~0.143% (Sec. 5.1). *)

val high_crossover_model : t
(** The Figure-8 perturbation: same stable plan, risky v=5.4e-5 with
    f=19, moving the crossover to ~5.2%. *)

val plan_execution_cost : t -> plan_cost -> selectivity:float -> float

val crossover : t -> float
(** The selectivity at which the two plans cost the same. *)

val oracle_cost : t -> selectivity:float -> float
(** Cost when the cheaper plan is always chosen (perfect estimation). *)

type choice = Stable | Risky

type estimate_rule =
  | At_confidence of Confidence.t
      (** the paper's rule: posterior quantile at the threshold *)
  | Posterior_mean
      (** collapse to E[s]; with linear plan costs this selects the
          least-expected-cost plan (Chu, Halpern & Gehrke), so it doubles
          as the LEC comparison point in the ablation bench *)
  | Maximum_likelihood
      (** the frequentist k/n of Acharya et al. (the estimate is 0 when
          k = 0, so this rule always gambles on empty evidence) *)

val choice_table :
  ?prior:Prior.t -> t -> sample_size:int -> confidence:Confidence.t -> choice array
(** Index k (0..n): the plan chosen when k of n sample tuples match.  The
    risky plan is chosen iff the estimated selectivity is below the
    crossover. *)

val choice_table_rule :
  ?prior:Prior.t -> t -> sample_size:int -> rule:estimate_rule -> choice array
(** As {!choice_table} but under any single-value estimation rule. *)

val cost_over_workload_rule :
  ?prior:Prior.t -> t -> sample_size:int -> rule:estimate_rule ->
  selectivities:float list -> Summary.t
(** The Figure-6 coordinates for an arbitrary rule; lets the ablation
    bench place posterior-mean (LEC) and maximum-likelihood points on the
    same mean/stddev plane as the confidence-threshold frontier. *)

val expected_cost :
  ?prior:Prior.t -> t -> sample_size:int -> confidence:Confidence.t ->
  selectivity:float -> float
(** E over the sample of the executed plan's cost at the true selectivity
    (the Figure-5/7/8 quantity). *)

val risky_probability :
  ?prior:Prior.t -> t -> sample_size:int -> confidence:Confidence.t ->
  selectivity:float -> float
(** Probability the optimizer picks the risky plan. *)

val cost_over_workload :
  ?prior:Prior.t -> t -> sample_size:int -> confidence:Confidence.t ->
  selectivities:float list -> Summary.t
(** Mean and standard deviation of execution cost when the query
    selectivity is drawn uniformly from [selectivities] and the sample is
    redrawn per query — the Figure-6 trade-off coordinates.  Exact (sums
    binomial weights over every selectivity). *)
