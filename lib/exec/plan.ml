open Rq_storage

type probe = { column : string; lo : Value.t option; hi : Value.t option }

type access =
  | Seq_scan
  | Index_range of probe
  | Index_intersect of probe list
  | Index_order of { column : string; descending : bool }

type agg_fn =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type agg = { fn : agg_fn; output_name : string }

type sort_key = { sort_column : string; descending : bool }

type star_dim = { dim_table : string; dim_pred : Pred.t; fact_fk : string }

type t =
  | Scan of { table : string; access : access; pred : Pred.t }
  | Scan_resume of { table : string; pred : Pred.t; from_rid : int }
  | Hash_join of { build : t; probe : t; build_key : string; probe_key : string }
  | Merge_join of { left : t; right : t; left_key : string; right_key : string }
  | Indexed_nl_join of {
      outer : t;
      outer_key : string;
      inner_table : string;
      inner_key : string;
      inner_pred : Pred.t;
    }
  | Star_semijoin of { fact : string; fact_pred : Pred.t; dims : star_dim list }
  | Filter of t * Pred.t
  | Project of t * string list
  | Aggregate of { input : t; group_by : string list; aggs : agg list }
  | Sort of { input : t; keys : sort_key list }
  | Limit of t * int
  | Guard of { input : t; expected_rows : float; max_q_error : float; label : string }
  | Materialized of {
      name : string;
      schema : Schema.t;
      tuples : Value.t array array;
      refs : (string * Pred.t) list;
    }
  | Append of t list

let qualified_schema catalog table =
  Schema.qualify table (Relation.schema (Catalog.find_table catalog table))

let agg_output_type = function
  | Count_star | Count _ -> Value.T_int
  | Sum _ | Avg _ -> Value.T_float
  | Min _ | Max _ -> Value.T_float

let rec schema_of catalog = function
  | Scan { table; _ } | Scan_resume { table; _ } -> qualified_schema catalog table
  | Append [] -> invalid_arg "Plan.schema_of: empty Append"
  | Append (part :: _) -> schema_of catalog part
  | Hash_join { build; probe; _ } ->
      Schema.concat (schema_of catalog build) (schema_of catalog probe)
  | Merge_join { left; right; _ } ->
      Schema.concat (schema_of catalog left) (schema_of catalog right)
  | Indexed_nl_join { outer; inner_table; _ } ->
      Schema.concat (schema_of catalog outer) (qualified_schema catalog inner_table)
  | Star_semijoin { fact; dims; _ } ->
      List.fold_left
        (fun acc { dim_table; _ } -> Schema.concat acc (qualified_schema catalog dim_table))
        (qualified_schema catalog fact)
        dims
  | Filter (input, _) -> schema_of catalog input
  | Sort { input; _ } | Limit (input, _) -> schema_of catalog input
  | Guard { input; _ } -> schema_of catalog input
  | Materialized { schema; _ } -> schema
  | Project (input, cols) -> Schema.project (schema_of catalog input) cols
  | Aggregate { input; group_by; aggs } ->
      let input_schema = schema_of catalog input in
      let group_cols =
        List.map
          (fun c -> Schema.column_at input_schema (Schema.index_of input_schema c))
          group_by
      in
      let agg_cols =
        List.map
          (fun { fn; output_name } -> { Schema.name = output_name; ty = agg_output_type fn })
          aggs
      in
      Schema.create (group_cols @ agg_cols)

let base_tables plan =
  let add acc t = if List.mem t acc then acc else t :: acc in
  let rec go acc = function
    | Scan { table; _ } | Scan_resume { table; _ } -> add acc table
    | Append parts -> List.fold_left go acc parts
    | Hash_join { build; probe; _ } -> go (go acc build) probe
    | Merge_join { left; right; _ } -> go (go acc left) right
    | Indexed_nl_join { outer; inner_table; _ } -> add (go acc outer) inner_table
    | Star_semijoin { fact; dims; _ } ->
        List.fold_left (fun acc { dim_table; _ } -> add acc dim_table) (add acc fact) dims
    | Filter (input, _) | Project (input, _) -> go acc input
    | Sort { input; _ } | Limit (input, _) -> go acc input
    | Aggregate { input; _ } -> go acc input
    | Guard { input; _ } -> go acc input
    | Materialized { refs; _ } ->
        List.fold_left (fun acc (table, _) -> add acc table) acc refs
  in
  List.rev (go [] plan)

let validate catalog plan =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_index table column k =
    match Catalog.find_index catalog ~table ~column with
    | Some _ -> k ()
    | None -> fail "no index on %s.%s" table column
  in
  let check_column schema column k =
    if Schema.mem schema column then k () else fail "column %s not in scope" column
  in
  let rec go = function
    | Scan { table; access; pred = _ } -> (
        match Catalog.find_table_opt catalog table with
        | None -> fail "unknown table %s" table
        | Some _ -> (
            match access with
            | Seq_scan -> Ok ()
            | Index_range p -> check_index table p.column (fun () -> Ok ())
            | Index_intersect probes ->
                if List.length probes < 2 then
                  fail "Index_intersect on %s needs >= 2 probes" table
                else
                  List.fold_left
                    (fun acc p ->
                      match acc with
                      | Error _ as e -> e
                      | Ok () -> check_index table p.column (fun () -> Ok ()))
                    (Ok ()) probes
            | Index_order { column; descending = _ } ->
                check_index table column (fun () -> Ok ())))
    | Hash_join { build; probe; build_key; probe_key } -> (
        match (go build, go probe) with
        | Ok (), Ok () ->
            check_column (schema_of catalog build) build_key (fun () ->
                check_column (schema_of catalog probe) probe_key (fun () -> Ok ()))
        | (Error _ as e), _ | _, (Error _ as e) -> e)
    | Merge_join { left; right; left_key; right_key } -> (
        match (go left, go right) with
        | Ok (), Ok () ->
            check_column (schema_of catalog left) left_key (fun () ->
                check_column (schema_of catalog right) right_key (fun () -> Ok ()))
        | (Error _ as e), _ | _, (Error _ as e) -> e)
    | Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred = _ } -> (
        match go outer with
        | Error _ as e -> e
        | Ok () ->
            check_column (schema_of catalog outer) outer_key (fun () ->
                match Catalog.find_table_opt catalog inner_table with
                | None -> fail "unknown table %s" inner_table
                | Some _ -> check_index inner_table inner_key (fun () -> Ok ())))
    | Star_semijoin { fact; fact_pred = _; dims } -> (
        match Catalog.find_table_opt catalog fact with
        | None -> fail "unknown fact table %s" fact
        | Some _ ->
            if dims = [] then fail "Star_semijoin needs at least one dimension"
            else
              List.fold_left
                (fun acc { dim_table; fact_fk; _ } ->
                  match acc with
                  | Error _ as e -> e
                  | Ok () -> (
                      match Catalog.fk_edge catalog ~from_table:fact ~to_table:dim_table with
                      | None -> fail "no FK edge %s -> %s" fact dim_table
                      | Some fk when not (String.equal fk.from_column fact_fk) ->
                          fail "FK %s -> %s is on %s, plan says %s" fact dim_table
                            fk.from_column fact_fk
                      | Some _ -> check_index fact fact_fk (fun () -> Ok ())))
                (Ok ()) dims)
    | Filter (input, pred) -> (
        match go input with
        | Error _ as e -> e
        | Ok () ->
            let schema = schema_of catalog input in
            List.fold_left
              (fun acc c ->
                match acc with Error _ as e -> e | Ok () -> check_column schema c (fun () -> Ok ()))
              (Ok ()) (Pred.columns pred))
    | Project (input, cols) -> (
        match go input with
        | Error _ as e -> e
        | Ok () ->
            let schema = schema_of catalog input in
            List.fold_left
              (fun acc c ->
                match acc with Error _ as e -> e | Ok () -> check_column schema c (fun () -> Ok ()))
              (Ok ()) cols)
    | Sort { input; keys } -> (
        match go input with
        | Error _ as e -> e
        | Ok () ->
            let schema = schema_of catalog input in
            List.fold_left
              (fun acc { sort_column; _ } ->
                match acc with
                | Error _ as e -> e
                | Ok () -> check_column schema sort_column (fun () -> Ok ()))
              (Ok ()) keys)
    | Limit (input, n) ->
        if n < 0 then fail "LIMIT must be non-negative" else go input
    | Aggregate { input; group_by; aggs } -> (
        match go input with
        | Error _ as e -> e
        | Ok () ->
            let schema = schema_of catalog input in
            let agg_columns { fn; _ } =
              match fn with
              | Count_star -> []
              | Count e | Sum e | Avg e | Min e | Max e -> Expr.columns e
            in
            let needed = group_by @ List.concat_map agg_columns aggs in
            List.fold_left
              (fun acc c ->
                match acc with Error _ as e -> e | Ok () -> check_column schema c (fun () -> Ok ()))
              (Ok ()) needed)
    | Guard { input; expected_rows; max_q_error; label = _ } ->
        if max_q_error < 1.0 then fail "guard max_q_error must be >= 1.0"
        else if expected_rows < 0.0 then fail "guard expected_rows must be >= 0"
        else go input
    | Materialized { schema; tuples; _ } ->
        let width = List.length (Schema.columns schema) in
        if Array.exists (fun tup -> Array.length tup <> width) tuples then
          fail "materialized tuples do not match schema width"
        else Ok ()
    | Scan_resume { table; pred = _; from_rid } -> (
        match Catalog.find_table_opt catalog table with
        | None -> fail "unknown table %s" table
        | Some _ -> if from_rid < 0 then fail "Scan_resume from_rid must be >= 0" else Ok ())
    | Append parts -> (
        match parts with
        | [] -> fail "Append needs at least one input"
        | first :: rest -> (
            match
              List.fold_left
                (fun acc p -> match acc with Error _ as e -> e | Ok () -> go p)
                (Ok ()) parts
            with
            | Error _ as e -> e
            | Ok () ->
                let names p =
                  List.map (fun (c : Schema.column) -> c.Schema.name)
                    (Schema.columns (schema_of catalog p))
                in
                let expected = names first in
                if List.for_all (fun p -> names p = expected) rest then Ok ()
                else fail "Append inputs have mismatched schemas"))
  in
  go plan

let pp_probe fmt { column; lo; hi } =
  let pp_bound fmt = function
    | Some v -> Value.pp fmt v
    | None -> Format.pp_print_string fmt "-inf"
  in
  Format.fprintf fmt "%a <= %s <= %a" pp_bound lo column
    (fun fmt -> function Some v -> Value.pp fmt v | None -> Format.pp_print_string fmt "+inf")
    hi

let pp_access fmt = function
  | Seq_scan -> Format.pp_print_string fmt "SeqScan"
  | Index_range p -> Format.fprintf fmt "IndexRange[%a]" pp_probe p
  | Index_intersect ps ->
      Format.fprintf fmt "IndexIntersect[%a]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ") pp_probe)
        ps
  | Index_order { column; descending } ->
      Format.fprintf fmt "IndexOrder[%s %s]" column (if descending then "DESC" else "ASC")

let pp_agg fmt { fn; output_name } =
  (match fn with
  | Count_star -> Format.pp_print_string fmt "COUNT(*)"
  | Count e -> Format.fprintf fmt "COUNT(%a)" Expr.pp e
  | Sum e -> Format.fprintf fmt "SUM(%a)" Expr.pp e
  | Avg e -> Format.fprintf fmt "AVG(%a)" Expr.pp e
  | Min e -> Format.fprintf fmt "MIN(%a)" Expr.pp e
  | Max e -> Format.fprintf fmt "MAX(%a)" Expr.pp e);
  Format.fprintf fmt " AS %s" output_name

let rec pp_indented fmt depth plan =
  let indent fmt depth =
    for _ = 1 to depth do
      Format.pp_print_string fmt "  "
    done
  in
  indent fmt depth;
  match plan with
  | Scan { table; access; pred } ->
      Format.fprintf fmt "%a(%s) filter: %a@." pp_access access table Pred.pp pred
  | Hash_join { build; probe; build_key; probe_key } ->
      Format.fprintf fmt "HashJoin(%s = %s)@." build_key probe_key;
      pp_indented fmt (depth + 1) build;
      pp_indented fmt (depth + 1) probe
  | Merge_join { left; right; left_key; right_key } ->
      Format.fprintf fmt "MergeJoin(%s = %s)@." left_key right_key;
      pp_indented fmt (depth + 1) left;
      pp_indented fmt (depth + 1) right
  | Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
      Format.fprintf fmt "IndexedNLJoin(%s = %s.%s) inner filter: %a@." outer_key
        inner_table inner_key Pred.pp inner_pred;
      pp_indented fmt (depth + 1) outer
  | Star_semijoin { fact; fact_pred; dims } ->
      Format.fprintf fmt "StarSemijoin(%s) filter: %a@." fact Pred.pp fact_pred;
      List.iter
        (fun { dim_table; dim_pred; fact_fk } ->
          indent fmt (depth + 1);
          Format.fprintf fmt "dim %s via %s.%s filter: %a@." dim_table fact fact_fk
            Pred.pp dim_pred)
        dims
  | Filter (input, pred) ->
      Format.fprintf fmt "Filter: %a@." Pred.pp pred;
      pp_indented fmt (depth + 1) input
  | Project (input, cols) ->
      Format.fprintf fmt "Project: %s@." (String.concat ", " cols);
      pp_indented fmt (depth + 1) input
  | Aggregate { input; group_by; aggs } ->
      Format.fprintf fmt "Aggregate group by [%s]: %a@."
        (String.concat ", " group_by)
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_agg)
        aggs;
      pp_indented fmt (depth + 1) input
  | Sort { input; keys } ->
      Format.fprintf fmt "Sort: %s@."
        (String.concat ", "
           (List.map
              (fun { sort_column; descending } ->
                sort_column ^ if descending then " DESC" else " ASC")
              keys));
      pp_indented fmt (depth + 1) input
  | Limit (input, n) ->
      Format.fprintf fmt "Limit %d@." n;
      pp_indented fmt (depth + 1) input
  | Guard { input; expected_rows; max_q_error; label = _ } ->
      Format.fprintf fmt "Guard expect ~%.1f rows, max q-error %.1f@." expected_rows
        max_q_error;
      pp_indented fmt (depth + 1) input
  | Materialized { name; tuples; _ } ->
      Format.fprintf fmt "Materialized(%s: %d rows)@." name (Array.length tuples)
  | Scan_resume { table; pred; from_rid } ->
      Format.fprintf fmt "ResumeScan(%s from rid %d) filter: %a@." table from_rid Pred.pp pred
  | Append parts ->
      Format.fprintf fmt "Append@.";
      List.iter (pp_indented fmt (depth + 1)) parts

let pp fmt plan = pp_indented fmt 0 plan

(* Symmetric relative error with 0.5 floors so empty results stay finite.
   The single definition shared by the executor's guards and EXPLAIN
   ANALYZE — both must agree on exactly when a checkpoint fires. *)
let q_error ~expected ~actual =
  let est = Float.max expected 0.5 and act = Float.max (float_of_int actual) 0.5 in
  Float.max (est /. act) (act /. est)

let node_label = function
  | Scan { table; access; _ } -> (
      match access with
      | Seq_scan -> Printf.sprintf "SeqScan(%s)" table
      | Index_range p -> Printf.sprintf "IndexRange(%s.%s)" table p.column
      | Index_intersect ps ->
          Printf.sprintf "IndexIntersect(%s: %s)" table
            (String.concat "," (List.map (fun p -> p.column) ps))
      | Index_order { column; descending } ->
          Printf.sprintf "IndexOrder(%s.%s%s)" table column
            (if descending then " desc" else ""))
  | Hash_join { build_key; probe_key; _ } ->
      Printf.sprintf "HashJoin(%s = %s)" build_key probe_key
  | Merge_join { left_key; right_key; _ } ->
      Printf.sprintf "MergeJoin(%s = %s)" left_key right_key
  | Indexed_nl_join { outer_key; inner_table; inner_key; _ } ->
      Printf.sprintf "IndexedNLJoin(%s = %s.%s)" outer_key inner_table inner_key
  | Star_semijoin { fact; dims; _ } ->
      Printf.sprintf "StarSemijoin(%s; %s)" fact
        (String.concat "," (List.map (fun d -> d.dim_table) dims))
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Sort _ -> "Sort"
  | Limit (_, n) -> Printf.sprintf "Limit(%d)" n
  | Aggregate _ -> "Aggregate"
  | Guard { max_q_error; _ } -> Printf.sprintf "Guard(max q-error %.1f)" max_q_error
  | Materialized { name; _ } -> Printf.sprintf "Materialized(%s)" name
  | Scan_resume { table; from_rid; _ } -> Printf.sprintf "ResumeScan(%s@%d)" table from_rid
  | Append _ -> "Append"

let rec describe = function
  | Scan { table; access; _ } -> (
      match access with
      | Seq_scan -> Printf.sprintf "Scan(%s)" table
      | Index_range _ -> Printf.sprintf "IdxRange(%s)" table
      | Index_intersect _ -> Printf.sprintf "IdxIsect(%s)" table
      | Index_order _ -> Printf.sprintf "IdxOrder(%s)" table)
  | Hash_join { build; probe; _ } ->
      Printf.sprintf "Hash(%s,%s)" (describe build) (describe probe)
  | Merge_join { left; right; _ } ->
      Printf.sprintf "Merge(%s,%s)" (describe left) (describe right)
  | Indexed_nl_join { outer; inner_table; _ } ->
      Printf.sprintf "INL(%s,%s)" (describe outer) inner_table
  | Star_semijoin { fact; dims; _ } ->
      Printf.sprintf "Semijoin(%s;%s)" fact
        (String.concat "," (List.map (fun d -> d.dim_table) dims))
  | Filter (input, _) -> describe input
  | Project (input, _) -> describe input
  | Sort { input; _ } -> describe input
  | Limit (input, _) -> describe input
  | Aggregate { input; _ } -> describe input
  | Guard { input; _ } -> describe input
  | Materialized { name; _ } -> Printf.sprintf "Mat(%s)" name
  | Scan_resume { table; _ } -> Printf.sprintf "Resume(%s)" table
  | Append parts ->
      Printf.sprintf "Append(%s)" (String.concat "," (List.map describe parts))

(* Remove every guard, keeping the guarded subplans: the plan that would
   have run had the optimizer not asked for runtime validation. *)
let rec strip_guards = function
  | Scan _ as p -> p
  | Hash_join { build; probe; build_key; probe_key } ->
      Hash_join
        { build = strip_guards build; probe = strip_guards probe; build_key; probe_key }
  | Merge_join { left; right; left_key; right_key } ->
      Merge_join { left = strip_guards left; right = strip_guards right; left_key; right_key }
  | Indexed_nl_join j -> Indexed_nl_join { j with outer = strip_guards j.outer }
  | Star_semijoin _ as p -> p
  | Filter (input, pred) -> Filter (strip_guards input, pred)
  | Project (input, cols) -> Project (strip_guards input, cols)
  | Aggregate { input; group_by; aggs } ->
      Aggregate { input = strip_guards input; group_by; aggs }
  | Sort { input; keys } -> Sort { input = strip_guards input; keys }
  | Limit (input, n) -> Limit (strip_guards input, n)
  | Guard { input; _ } -> strip_guards input
  | Materialized _ as p -> p
  | Scan_resume _ as p -> p
  | Append parts -> Append (List.map strip_guards parts)

let rec guard_count = function
  | Scan _ | Star_semijoin _ | Materialized _ | Scan_resume _ -> 0
  | Append parts -> List.fold_left (fun acc p -> acc + guard_count p) 0 parts
  | Hash_join { build; probe; _ } -> guard_count build + guard_count probe
  | Merge_join { left; right; _ } -> guard_count left + guard_count right
  | Indexed_nl_join { outer; _ } -> guard_count outer
  | Filter (input, _) | Project (input, _) | Limit (input, _) -> guard_count input
  | Aggregate { input; _ } | Sort { input; _ } -> guard_count input
  | Guard { input; _ } -> 1 + guard_count input
