(* The streaming operator protocol.

   An operator is opened by compiling it (constructor state is its "open");
   [next_batch] returns [Some batch] with at least one row, or [None] once
   drained — there are no empty batches, so consumers never spin.  Batches
   are plain tuple arrays the consumer may keep (producers never reuse
   buffers).  [close] releases operator state early (early exit under
   LIMIT); it is idempotent and calling [next_batch] after [close] is
   undefined.

   [progress] and [resume] exist for mid-stream guard recovery: [progress]
   approximates the fraction of the operator's input already consumed (the
   driving source's position for pipelined operators, 1.0 once drained),
   and [resume] is a plan computing exactly the rows not yet emitted, when
   the source supports it — only sequential scans do. *)

open Rq_storage

type batch = Relation.tuple array

type t = {
  schema : Schema.t;
  next_batch : unit -> batch option;
  close : unit -> unit;
  progress : unit -> float;
  resume : unit -> Plan.t option;
}

(* Most operators are neither resumable nor meaningfully measurable beyond
   their driving child; these defaults keep constructors terse. *)
let no_resume () = None

let make ?close ?progress ?resume ~schema next_batch =
  {
    schema;
    next_batch;
    close = Option.value close ~default:(fun () -> ());
    progress = Option.value progress ~default:(fun () -> 0.0);
    resume = Option.value resume ~default:no_resume;
  }

(* The vectorized twin of the protocol: identical contract, but batches are
   column-major {!Vbatch.t}s whose selection bitset is never empty (the
   no-empty-batches invariant, stated over logical rows).  Consumers may
   keep batches; producers never mutate emitted columns. *)
module Vec = struct
  type t = {
    schema : Schema.t;
    next_batch : unit -> Vbatch.t option;
    close : unit -> unit;
    progress : unit -> float;
    resume : unit -> Plan.t option;
  }

  let make ?close ?progress ?resume ~schema next_batch =
    {
      schema;
      next_batch;
      close = Option.value close ~default:(fun () -> ());
      progress = Option.value progress ~default:(fun () -> 0.0);
      resume = Option.value resume ~default:no_resume;
    }
end
