(** Types and helpers shared by the two execution engines.

    {!Executor} (materialize-everything) and {!Stream_exec} (pull-based
    batch pipeline) must agree on the result representation, the guard
    violation they raise, and the exact cost charged per physical action —
    the differential parity suite holds every counter identical between
    them on full drains.  Everything both engines touch lives here so the
    agreement is by construction. *)

open Rq_storage

type result = { schema : Schema.t; tuples : Relation.tuple array }

type violation = {
  label : string;          (** the guard's label (guarded subplan shape) *)
  expected_rows : float;   (** optimizer's estimate at instrumentation time *)
  actual_rows : int;       (** rows seen when the guard fired *)
  q_error : float;         (** max(est/act, act/est), 0.5 floors *)
  result : result;         (** the rows seen so far — reusable as a
                               {!Plan.Materialized} leaf *)
  subplan : Plan.t;        (** the guarded subplan that produced them *)
  complete : bool;         (** input fully consumed: [result] is the whole
                               output (materialized execution, or a
                               streaming underflow caught at drain) *)
  progress : float;        (** fraction of the input consumed, in [0, 1];
                               1.0 when [complete] *)
  resume : Plan.t option;  (** a plan computing exactly the rows NOT in
                               [result], when the source supports it (a
                               mid-scan {!Plan.Scan_resume}); [None] when
                               [complete] or the prefix is non-resumable *)
}

exception Guard_violation of violation

val qualified_schema : Catalog.t -> string -> Schema.t

val leaf_pages_touched : Index.t -> int -> int
(** Leaf pages read when [entries] contiguous entries of the index are
    scanned; at least 1 when any entry is touched. *)

val find_index_exn : Catalog.t -> table:string -> column:string -> Index.t
(** Raises [Invalid_argument] when the index does not exist. *)

val fetch_rids : Cost.t -> Relation.t -> Rid_set.t -> Relation.tuple array
(** Heap rows by RID in RID order, charging one random page read and one
    CPU tuple per row. *)

val probe_index : Cost.t -> Index.t -> Plan.probe -> Rid_set.t
(** One B-tree range probe: charges the descent, the entries touched and
    the leaf pages covered. *)

val output_sorted_on : Catalog.t -> Plan.t -> string option
(** Qualified clustered-key column the plan's output is physically ordered
    by, when the merge join may skip its sort; guards are transparent. *)

val concat_tuples : Relation.tuple -> Relation.tuple -> Relation.tuple

val resume_pages : Relation.t -> from:int -> int
(** Sequential pages a scan resumed at RID [from] reads: 0 when nothing
    remains, [page_count] when [from = 0], and one page of overlap when
    [from] falls mid-page (that page really is read twice). *)
