(** Global toggle for the streaming engine's vectorized data plane.

    With [enabled := true] (the default) {!Stream_exec.run} compiles plans
    to column-major vector batches carrying a selection bitset; with
    [false] it compiles to the original row-at-a-time operators.  The two
    planes are observationally identical — same result tuples in the same
    order, same {!Cost} counters, same guard fire points and resume plans —
    so the knob only moves wall clock and allocation. *)

val enabled : bool ref

val with_vectorize : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the toggle set, restoring the previous value even on
    exceptions — how tests and benches pin one data plane per arm. *)
