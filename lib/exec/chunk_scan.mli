(** The one sequential-scan planner shared by the materialized, streaming
    and morsel-parallel engines and by the optimizer's cost model: a scan
    becomes a list of per-chunk tasks, each either read (sequential pages
    + per-row CPU) or skipped because its zone map disproves the predicate
    (pages_skipped only — zero simulated seconds, zero CPU).  Because all
    four consumers plan from the same task list, executed charges and
    cost estimates agree exactly. *)

open Rq_storage

type task = {
  ci : int;      (** chunk index *)
  lo : int;      (** first RID, inclusive (= chunk start except when resuming) *)
  hi : int;      (** last RID, exclusive *)
  pages : int;   (** sequential pages this task covers *)
  skip : bool;   (** zone map disproved the predicate for the whole chunk *)
}

val pages_upto : int -> int -> int
(** [pages_upto rows_per_page pos]: pages covering RIDs [0, pos). *)

val tasks : ?from:int -> Relation.t -> Pred.t -> task list
(** In chunk order.  Page charges telescope: they sum to
    [Relation.page_count] for a fresh scan and to
    [Exec_common.resume_pages] when resuming from [from] (the split page
    is re-read, as before).  Honors {!Prune.enabled}; [Pred.True] never
    consults zone maps. *)

val totals : Relation.t -> Pred.t -> int * int * int
(** [(read_pages, skipped_pages, read_rows)] of a fresh scan — the
    optimizer-facing summary ([read_pages + skipped_pages = page_count]). *)

val bitmap : Schema.t -> Pred.t -> (Chunk.t -> Bitset.t) option
(** The per-chunk match bitmap underlying {!matcher}: [None] for
    [Pred.True] (every row matches), otherwise a function computing which
    chunk rows satisfy the predicate — for callers that slice chunks into
    batches and want the bitmap computed once per chunk. *)

val matcher :
  Schema.t -> Pred.t -> Chunk.t -> (int -> Value.t array -> unit) -> unit
(** [matcher schema pred] precompiles the predicate into a per-chunk
    bitmap filter: one bitset per atomic predicate built touching only the
    columns the atom references, combined word-wise per the boolean
    structure.  The returned function calls [f] with (chunk-relative row,
    tuple) for each matching row in ascending order; [Pred.True]
    short-circuits to a plain chunk iteration.  Semantics-identical to
    [Pred.compile].  Thread-safe: one matcher may serve many domains. *)
