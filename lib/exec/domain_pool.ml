(* A persistent pool of OCaml 5 domains executing indexed task batches.

   The morsel-driven scheduling discipline: a batch of [n] tasks is
   published under the pool's mutex and every participant — the spawned
   worker domains plus the submitting caller — repeatedly claims the next
   unclaimed index and runs it outside the lock.  Claiming from the shared
   cursor is the work-stealing step: no task is pre-assigned to a domain,
   so a domain that finishes early simply pulls the next morsel instead of
   idling behind a static partition.

   Claims are issued in index order, and a claimed task always runs to
   completion even when the batch aborts.  Those two facts give the
   invariant the parallel guard path relies on: at any abort, the set of
   completed tasks is exactly the contiguous prefix [0, claimed).

   An exception raised by a task aborts the batch (no further claims; tasks
   already in flight on other domains still finish) and is re-raised in the
   caller once the batch settles; when several tasks raise, the one with
   the smallest index wins, which keeps the serial-engine semantics of
   "the first failure is the failure".

   A pool of size 1 spawns no domains at all: the caller runs every task
   inline, making [--domains 1] a true serial baseline over the identical
   code path. *)

type batch = {
  total : int;
  run : int -> exn option;  (* returns the task's exception, if any *)
  mutable next : int;       (* next unclaimed index *)
  mutable live : int;       (* claimed, still running *)
  mutable aborted : bool;   (* stop claiming (failure or early exit) *)
  mutable failure : (int * exn) option;  (* smallest-index task exception *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;   (* workers: a batch was published or stop was set *)
  settled : Condition.t;  (* caller: the current batch fully settled *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Claim and run tasks until the current batch is exhausted or aborted.
   Caller holds the mutex; returns with the mutex held. *)
let drain_batch t b =
  let rec go () =
    if b.next < b.total && not b.aborted then begin
      let i = b.next in
      b.next <- b.next + 1;
      b.live <- b.live + 1;
      Mutex.unlock t.mutex;
      let failed = b.run i in
      Mutex.lock t.mutex;
      b.live <- b.live - 1;
      (match failed with
      | None -> ()
      | Some e ->
          b.aborted <- true;
          (match b.failure with
          | Some (j, _) when j <= i -> ()
          | _ -> b.failure <- Some (i, e)));
      go ()
    end
  in
  go ();
  if b.live = 0 then Condition.broadcast t.settled

let worker t () =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else begin
      (match t.batch with
      | Some b when b.next < b.total && not b.aborted -> drain_batch t b
      | _ -> Condition.wait t.work t.mutex);
      loop ()
    end
  in
  loop ()

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Run [f 0 .. f (n-1)] across the pool, returning the results in index
   order.  Raises the smallest-index task exception after the batch has
   settled (all in-flight tasks finished); tasks never claimed after an
   abort are left unrun and their slots are dropped by the caller. *)
let run t n f =
  if n < 0 then invalid_arg "Domain_pool.run: negative task count";
  let results = Array.make n None in
  let b =
    {
      total = n;
      run =
        (fun i ->
          match f i with
          | v ->
              results.(i) <- Some v;
              None
          | exception e -> Some e);
      next = 0;
      live = 0;
      aborted = false;
      failure = None;
    }
  in
  Mutex.lock t.mutex;
  t.batch <- Some b;
  Condition.broadcast t.work;
  drain_batch t b;
  while b.live > 0 do
    Condition.wait t.settled t.mutex
  done;
  t.batch <- None;
  Mutex.unlock t.mutex;
  match b.failure with
  | Some (_, e) -> raise e
  | None -> Array.map Option.get results

(* Like [run], but an abort requested by a task (returning [`Stop]) is not
   an error: the completed contiguous prefix is returned.  The guard path:
   a morsel that sees the running row count overflow requests a stop; tasks
   already claimed on other domains still finish and are part of the
   prefix. *)
let run_prefix t n f =
  if n < 0 then invalid_arg "Domain_pool.run_prefix: negative task count";
  let results = Array.make n None in
  let rec b =
    {
      total = n;
      run =
        (fun i ->
          match f i with
          | `Done v ->
              results.(i) <- Some v;
              None
          | `Stop v ->
              results.(i) <- Some v;
              Mutex.lock t.mutex;
              b.aborted <- true;
              Mutex.unlock t.mutex;
              None
          | exception e -> Some e);
      next = 0;
      live = 0;
      aborted = false;
      failure = None;
    }
  in
  Mutex.lock t.mutex;
  t.batch <- Some b;
  Condition.broadcast t.work;
  drain_batch t b;
  while b.live > 0 do
    Condition.wait t.settled t.mutex
  done;
  t.batch <- None;
  Mutex.unlock t.mutex;
  (match b.failure with Some (_, e) -> raise e | None -> ());
  (* Claims are in index order and all claimed tasks completed, so the
     filled slots are exactly a contiguous prefix. *)
  let completed = ref 0 in
  while !completed < n && Option.is_some results.(!completed) do
    incr completed
  done;
  Array.init !completed (fun i -> Option.get results.(i))
