open Rq_storage

type result = Exec_common.result = { schema : Schema.t; tuples : Relation.tuple array }

type violation = Exec_common.violation = {
  label : string;
  expected_rows : float;
  actual_rows : int;
  q_error : float;
  result : result;
  subplan : Plan.t;
  complete : bool;
  progress : float;
  resume : Plan.t option;
}

exception Guard_violation = Exec_common.Guard_violation

(* The guard's firing rule is Plan.q_error, the same definition EXPLAIN
   ANALYZE renders — re-exported so callers of the executor need not know. *)
let q_error = Plan.q_error

type mode = Streaming | Materialized

type ctx = {
  catalog : Catalog.t;
  meter : Cost.t;
  obs : Rq_obs.Recorder.t option;
}

let meter_metrics ctx = Cost.to_metrics (Cost.snapshot ctx.meter)

let record ctx event =
  match ctx.obs with None -> () | Some r -> Rq_obs.Recorder.record r event

(* Chunked sequential scan shared by Seq_scan, Scan_resume and the
   star-semijoin dimension scans: per-task charges from the shared planner
   (zone-map-skipped chunks cost pages_skipped only), per-chunk bitmap
   filtering for the rest, matches emitted in RID order. *)
let scan_chunks meter rel ~pred ?(from = 0) emit =
  let match_chunk = Chunk_scan.matcher (Relation.schema rel) pred in
  List.iter
    (fun (t : Chunk_scan.task) ->
      if t.skip then Cost.charge_pages_skipped meter t.pages
      else begin
        Cost.charge_seq_pages meter t.pages;
        Cost.charge_cpu_tuples meter (t.hi - t.lo);
        let base = Relation.chunk_start rel t.ci in
        Relation.with_chunk ~seq:true rel t.ci (fun chunk ->
            match_chunk chunk (fun r tup ->
                let rid = base + r in
                if rid >= t.lo then emit rid tup))
      end)
    (Chunk_scan.tasks ~from rel pred)

let exec_scan catalog meter ~table ~access ~pred =
  let rel = Catalog.find_table catalog table in
  let check = Pred.compile (Relation.schema rel) pred in
  let matching =
    match access with
    | Plan.Seq_scan ->
        let acc = ref [] in
        scan_chunks meter rel ~pred (fun _rid tup -> acc := tup :: !acc);
        Array.of_list (List.rev !acc)
    | Plan.Index_range probe ->
        let idx = Exec_common.find_index_exn catalog ~table ~column:probe.Plan.column in
        let rids = Exec_common.probe_index meter idx probe in
        let fetched = Exec_common.fetch_rids meter rel rids in
        Array.of_seq (Seq.filter check (Array.to_seq fetched))
    | Plan.Index_order { column; descending } ->
        (* Walk the full leaf level in key order, then fetch each row by
           RID: same charges as a whole-index probe plus per-row random
           fetches, but the rows come out pre-sorted on [column]. *)
        let idx = Exec_common.find_index_exn catalog ~table ~column in
        Cost.charge_index_probes meter 1;
        Cost.charge_index_entries meter (Index.entry_count idx);
        Cost.charge_seq_pages meter (Index.leaf_page_count idx);
        let rids = Index.ordered_rids idx ~descending in
        Cost.charge_random_pages meter (Array.length rids);
        Cost.charge_cpu_tuples meter (Array.length rids);
        let acc = ref [] in
        Array.iter
          (fun rid ->
            let tup = Relation.get rel rid in
            if check tup then acc := tup :: !acc)
          rids;
        Array.of_list (List.rev !acc)
    | Plan.Index_intersect probes ->
        (match probes with
        | [] | [ _ ] -> invalid_arg "Executor: Index_intersect needs >= 2 probes"
        | first :: rest ->
            let idx0 =
              Exec_common.find_index_exn catalog ~table ~column:first.Plan.column
            in
            let acc = ref (Exec_common.probe_index meter idx0 first) in
            List.iter
              (fun probe ->
                let idx =
                  Exec_common.find_index_exn catalog ~table ~column:probe.Plan.column
                in
                let rids = Exec_common.probe_index meter idx probe in
                Cost.charge_cpu_tuples meter
                  (Rid_set.cardinality !acc + Rid_set.cardinality rids);
                acc := Rid_set.inter !acc rids)
              rest;
            let fetched = Exec_common.fetch_rids meter rel !acc in
            Array.of_seq (Seq.filter check (Array.to_seq fetched)))
  in
  { schema = Exec_common.qualified_schema catalog table; tuples = matching }

(* Every node executes under a recorder span (when a recorder is attached):
   the span's metric delta is the meter movement attributable to this node's
   whole subtree; the recorder subtracts children to get self cost.  A node
   unwound by an exception (a fired guard, an ill-formed plan) still keeps
   its span — marked aborted — so wasted work stays attributed. *)
let rec exec ctx plan =
  match ctx.obs with
  | None -> exec_node ctx plan
  | Some r -> (
      let h =
        Rq_obs.Recorder.open_span r ~label:(Plan.node_label plan)
          ~metrics:(meter_metrics ctx)
      in
      match exec_node ctx plan with
      | res ->
          Rq_obs.Recorder.close_span r h ~rows:(Array.length res.tuples)
            ~metrics:(meter_metrics ctx);
          res
      | exception e ->
          Rq_obs.Recorder.abort_span r h ~metrics:(meter_metrics ctx);
          raise e)

and exec_node ctx plan =
  let catalog = ctx.catalog and meter = ctx.meter in
  match plan with
  | Plan.Scan { table; access; pred } -> exec_scan catalog meter ~table ~access ~pred
  | Plan.Scan_resume { table; pred; from_rid } ->
      let rel = Catalog.find_table catalog table in
      let n = Relation.row_count rel in
      let from = min (max 0 from_rid) n in
      let acc = ref [] in
      scan_chunks meter rel ~pred ~from (fun _rid tup -> acc := tup :: !acc);
      {
        schema = Exec_common.qualified_schema catalog table;
        tuples = Array.of_list (List.rev !acc);
      }
  | Plan.Append parts ->
      let results = List.map (exec ctx) parts in
      let schema =
        match results with
        | [] -> invalid_arg "Executor: Append needs at least one input"
        | first :: _ -> first.schema
      in
      { schema; tuples = Array.concat (List.map (fun r -> r.tuples) results) }
  | Plan.Hash_join { build; probe; build_key; probe_key } ->
      let build_res = exec ctx build in
      let probe_res = exec ctx probe in
      let bpos = Schema.index_of build_res.schema build_key in
      let ppos = Schema.index_of probe_res.schema probe_key in
      let table = Hashtbl.create (max 16 (Array.length build_res.tuples)) in
      Array.iter
        (fun tup ->
          let key = tup.(bpos) in
          if not (Value.is_null key) then Hashtbl.add table key tup)
        build_res.tuples;
      Cost.charge_hash_build meter (Array.length build_res.tuples);
      Cost.charge_hash_probe meter (Array.length probe_res.tuples);
      let out = ref [] in
      Array.iter
        (fun ptup ->
          let key = ptup.(ppos) in
          if not (Value.is_null key) then
            (* find_all yields reverse insertion order; reverse it back so
               duplicate-key matches come out in build-input order (and both
               engines emit byte-identical results). *)
            List.iter
              (fun btup -> out := Exec_common.concat_tuples btup ptup :: !out)
              (List.rev (Hashtbl.find_all table key)))
        probe_res.tuples;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      { schema = Schema.concat build_res.schema probe_res.schema; tuples }
  | Plan.Merge_join { left; right; left_key; right_key } ->
      let sorted_left = Exec_common.output_sorted_on catalog left in
      let sorted_right = Exec_common.output_sorted_on catalog right in
      let left_res = exec ctx left in
      let right_res = exec ctx right in
      let lpos = Schema.index_of left_res.schema left_key in
      let rpos = Schema.index_of right_res.schema right_key in
      let ensure_sorted res pos already =
        if already then res.tuples
        else begin
          Cost.charge_sort meter (Array.length res.tuples);
          let copy = Array.copy res.tuples in
          Array.sort (fun a b -> Value.compare a.(pos) b.(pos)) copy;
          copy
        end
      in
      let ltups = ensure_sorted left_res lpos (sorted_left = Some left_key) in
      let rtups = ensure_sorted right_res rpos (sorted_right = Some right_key) in
      Cost.charge_merge_tuples meter (Array.length ltups + Array.length rtups);
      let out = ref [] in
      let nl = Array.length ltups and nr = Array.length rtups in
      let i = ref 0 and j = ref 0 in
      while !i < nl && !j < nr do
        let kv = ltups.(!i).(lpos) and rv = rtups.(!j).(rpos) in
        if Value.is_null kv then incr i
        else if Value.is_null rv then incr j
        else
          let c = Value.compare kv rv in
          if c < 0 then incr i
          else if c > 0 then incr j
          else begin
            (* Emit the cross product of the equal-key runs. *)
            let i_end = ref !i in
            while !i_end < nl && Value.compare ltups.(!i_end).(lpos) kv = 0 do
              incr i_end
            done;
            let j_end = ref !j in
            while !j_end < nr && Value.compare rtups.(!j_end).(rpos) rv = 0 do
              incr j_end
            done;
            for a = !i to !i_end - 1 do
              for b = !j to !j_end - 1 do
                out := Exec_common.concat_tuples ltups.(a) rtups.(b) :: !out
              done
            done;
            i := !i_end;
            j := !j_end
          end
      done;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      { schema = Schema.concat left_res.schema right_res.schema; tuples }
  | Plan.Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
      let outer_res = exec ctx outer in
      let opos = Schema.index_of outer_res.schema outer_key in
      let inner_rel = Catalog.find_table catalog inner_table in
      let idx = Exec_common.find_index_exn catalog ~table:inner_table ~column:inner_key in
      let check = Pred.compile (Relation.schema inner_rel) inner_pred in
      let out = ref [] in
      Array.iter
        (fun otup ->
          let key = otup.(opos) in
          if not (Value.is_null key) then begin
            Cost.charge_index_probes meter 1;
            let rids = Index.probe_eq idx key in
            Cost.charge_index_entries meter (Rid_set.cardinality rids);
            let fetched = Exec_common.fetch_rids meter inner_rel rids in
            Array.iter
              (fun itup ->
                if check itup then out := Exec_common.concat_tuples otup itup :: !out)
              fetched
          end)
        outer_res.tuples;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      {
        schema =
          Schema.concat outer_res.schema
            (Exec_common.qualified_schema catalog inner_table);
        tuples;
      }
  | Plan.Star_semijoin { fact; fact_pred; dims } ->
      exec_star_semijoin catalog meter ~fact ~fact_pred ~dims
  | Plan.Filter (input, pred) ->
      let res = exec ctx input in
      let check = Pred.compile res.schema pred in
      Cost.charge_cpu_tuples meter (Array.length res.tuples);
      { res with tuples = Array.of_seq (Seq.filter check (Array.to_seq res.tuples)) }
  | Plan.Project (input, cols) ->
      let res = exec ctx input in
      let positions = List.map (Schema.index_of res.schema) cols in
      Cost.charge_cpu_tuples meter (Array.length res.tuples);
      {
        schema = Schema.project res.schema cols;
        tuples =
          Array.map (fun tup -> Array.of_list (List.map (fun p -> tup.(p)) positions)) res.tuples;
      }
  | Plan.Sort { input; keys } ->
      let res = exec ctx input in
      let positions =
        List.map
          (fun { Plan.sort_column; descending } ->
            (Schema.index_of res.schema sort_column, descending))
          keys
      in
      Cost.charge_sort meter (Array.length res.tuples);
      let compare_rows a b =
        let rec go = function
          | [] -> 0
          | (pos, descending) :: rest ->
              let c = Value.compare a.(pos) b.(pos) in
              if c <> 0 then if descending then -c else c else go rest
        in
        go positions
      in
      let sorted = Array.copy res.tuples in
      (* Stable, so ties keep the input order (deterministic output). *)
      let indexed = Array.mapi (fun i tup -> (i, tup)) sorted in
      Array.sort
        (fun (i, a) (j, b) ->
          let c = compare_rows a b in
          if c <> 0 then c else Int.compare i j)
        indexed;
      { res with tuples = Array.map snd indexed }
  | Plan.Limit (input, n) ->
      let res = exec ctx input in
      let keep = max 0 (min n (Array.length res.tuples)) in
      Cost.charge_cpu_tuples meter keep;
      { res with tuples = Array.sub res.tuples 0 keep }
  | Plan.Aggregate { input; group_by; aggs } ->
      let res = exec ctx input in
      let agg = Agg.create res.schema ~group_by ~aggs in
      Cost.charge_hash_build meter (Array.length res.tuples);
      Agg.feed agg res.tuples;
      let rows = Agg.finalize agg in
      Cost.charge_output_tuples meter (List.length rows);
      let schema = Plan.schema_of catalog (Plan.Aggregate { input; group_by; aggs }) in
      { schema; tuples = Array.of_list rows }
  | Plan.Guard { input; expected_rows; max_q_error; label } ->
      let res = exec ctx input in
      let actual = Array.length res.tuples in
      (* The guard inspects every materialized row once (a counter pass);
         that honesty is what the <5%-overhead bound is measured against. *)
      Cost.charge_cpu_tuples meter actual;
      let q = q_error ~expected:expected_rows ~actual in
      if q > max_q_error then begin
        record ctx
          (Rq_obs.Trace.Guard_fired
             { label; expected_rows; actual_rows = actual; q_error = q });
        raise
          (Guard_violation
             {
               label;
               expected_rows;
               actual_rows = actual;
               q_error = q;
               result = res;
               subplan = input;
               complete = true;
               progress = 1.0;
               resume = None;
             })
      end
      else begin
        record ctx
          (Rq_obs.Trace.Guard_ok
             { label; expected_rows; actual_rows = actual; q_error = q });
        res
      end
  | Plan.Materialized { schema; tuples; _ } ->
      (* Already paid for when it was first produced; reading it back is free
         in the simulated model (it is sitting in memory). *)
      { schema; tuples }

and exec_star_semijoin catalog meter ~fact ~fact_pred ~dims =
  let fact_rel = Catalog.find_table catalog fact in
  (* Phase 1: per dimension, scan it, collect qualifying keys, and semijoin
     the fact table through its FK index. *)
  let dim_results =
    List.map
      (fun { Plan.dim_table; dim_pred; fact_fk } ->
        let dim_rel = Catalog.find_table catalog dim_table in
        let pk =
          match Catalog.primary_key catalog dim_table with
          | Some pk -> pk
          | None -> invalid_arg (Printf.sprintf "Executor: dim %s has no primary key" dim_table)
        in
        let pk_pos = Schema.index_of (Relation.schema dim_rel) pk in
        let lookup = Hashtbl.create 64 in
        let keys = ref [] in
        scan_chunks meter dim_rel ~pred:dim_pred (fun _rid tup ->
            Hashtbl.replace lookup tup.(pk_pos) tup;
            keys := tup.(pk_pos) :: !keys);
        Cost.charge_hash_build meter (Hashtbl.length lookup);
        let idx = Exec_common.find_index_exn catalog ~table:fact ~column:fact_fk in
        let rid_chunks =
          List.map
            (fun key ->
              Cost.charge_index_probes meter 1;
              let rids = Index.probe_eq idx key in
              Cost.charge_index_entries meter (Rid_set.cardinality rids);
              Rid_set.to_array rids)
            !keys
        in
        let semijoin_rids = Rid_set.of_unsorted (Array.concat rid_chunks) in
        (fact_fk, lookup, semijoin_rids))
      dims
  in
  (* Phase 2: intersect the per-dimension RID sets. *)
  let surviving =
    match dim_results with
    | [] -> invalid_arg "Executor: Star_semijoin with no dimensions"
    | (_, _, first) :: rest ->
        List.fold_left
          (fun acc (_, _, rids) ->
            Cost.charge_cpu_tuples meter (Rid_set.cardinality acc + Rid_set.cardinality rids);
            Rid_set.inter acc rids)
          first rest
  in
  (* Phase 3: fetch qualifying fact rows once, apply the fact predicate and
     stitch the dimension tuples back on. *)
  let fact_schema = Relation.schema fact_rel in
  let check_fact = Pred.compile fact_schema fact_pred in
  let fetched = Exec_common.fetch_rids meter fact_rel surviving in
  let fk_positions =
    List.map (fun (fact_fk, lookup, _) -> (Schema.index_of fact_schema fact_fk, lookup)) dim_results
  in
  let out = ref [] in
  Array.iter
    (fun ftup ->
      if check_fact ftup then begin
        Cost.charge_hash_probe meter (List.length fk_positions);
        let dim_tuples =
          List.map (fun (pos, lookup) -> Hashtbl.find_opt lookup ftup.(pos)) fk_positions
        in
        if List.for_all Option.is_some dim_tuples then
          let row =
            List.fold_left
              (fun acc d -> Exec_common.concat_tuples acc (Option.get d))
              ftup dim_tuples
          in
          out := row :: !out
      end)
    fetched;
  let tuples = Array.of_list (List.rev !out) in
  Cost.charge_output_tuples meter (Array.length tuples);
  let schema =
    List.fold_left
      (fun acc { Plan.dim_table; _ } ->
        Schema.concat acc (Exec_common.qualified_schema catalog dim_table))
      (Exec_common.qualified_schema catalog fact)
      dims
  in
  { schema; tuples }

let run ?obs ?(mode = Streaming) catalog meter plan =
  match mode with
  | Streaming -> Stream_exec.run ?obs catalog meter plan
  | Materialized -> exec { catalog; meter; obs } plan

let run_timed catalog ?constants ?scale ?obs ?mode plan =
  let meter = Cost.create ?constants ?scale () in
  let res = run ?obs ?mode catalog meter plan in
  (res, Cost.snapshot meter)

let result_to_relation ~name { schema; tuples } = Relation.create ~name ~schema tuples
