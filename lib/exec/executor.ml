open Rq_storage

type result = { schema : Schema.t; tuples : Relation.tuple array }

exception
  Guard_violation of {
    label : string;
    expected_rows : float;
    actual_rows : int;
    q_error : float;
    result : result;
    subplan : Plan.t;
  }

(* The guard's firing rule is Plan.q_error, the same definition EXPLAIN
   ANALYZE renders — re-exported so callers of the executor need not know. *)
let q_error = Plan.q_error

type ctx = {
  catalog : Catalog.t;
  meter : Cost.t;
  obs : Rq_obs.Recorder.t option;
}

let meter_metrics ctx = Cost.to_metrics (Cost.snapshot ctx.meter)

let record ctx event =
  match ctx.obs with None -> () | Some r -> Rq_obs.Recorder.record r event

let qualified_schema catalog table =
  Schema.qualify table (Relation.schema (Catalog.find_table catalog table))

(* Pages of index leaf level touched when [entries] of [total] entries are
   read: the matching entries are contiguous in key order. *)
let leaf_pages_touched idx entries =
  let total = Index.entry_count idx in
  if total = 0 || entries = 0 then 0
  else
    let pages = Index.leaf_page_count idx in
    max 1 (int_of_float (ceil (float_of_int entries /. float_of_int total *. float_of_int pages)))

let find_index_exn catalog ~table ~column =
  match Catalog.find_index catalog ~table ~column with
  | Some idx -> idx
  | None -> invalid_arg (Printf.sprintf "Executor: no index on %s.%s" table column)

(* Fetch heap rows by RID, charging one random page read per row (the paper's
   index-intersection cost model: each qualifying record needs a random disk
   read). *)
let fetch_rids meter rel rids =
  Cost.charge_random_pages meter (Rid_set.cardinality rids);
  Cost.charge_cpu_tuples meter (Rid_set.cardinality rids);
  let out = Array.make (Rid_set.cardinality rids) [||] in
  let i = ref 0 in
  Rid_set.iter
    (fun rid ->
      out.(!i) <- Relation.get rel rid;
      incr i)
    rids;
  out

let probe_index meter idx { Plan.column = _; lo; hi } =
  Cost.charge_index_probes meter 1;
  let count = Index.probe_range_count idx ~lo ~hi in
  Cost.charge_index_entries meter count;
  Cost.charge_seq_pages meter (leaf_pages_touched idx count);
  Index.probe_range idx ~lo ~hi

let exec_scan catalog meter ~table ~access ~pred =
  let rel = Catalog.find_table catalog table in
  let check = Pred.compile (Relation.schema rel) pred in
  let matching =
    match access with
    | Plan.Seq_scan ->
        Cost.charge_seq_pages meter (Relation.page_count rel);
        Cost.charge_cpu_tuples meter (Relation.row_count rel);
        let acc = ref [] in
        Relation.iter (fun _ tup -> if check tup then acc := tup :: !acc) rel;
        Array.of_list (List.rev !acc)
    | Plan.Index_range probe ->
        let idx = find_index_exn catalog ~table ~column:probe.Plan.column in
        let rids = probe_index meter idx probe in
        let fetched = fetch_rids meter rel rids in
        Array.of_seq (Seq.filter check (Array.to_seq fetched))
    | Plan.Index_intersect probes ->
        (match probes with
        | [] | [ _ ] -> invalid_arg "Executor: Index_intersect needs >= 2 probes"
        | first :: rest ->
            let idx0 = find_index_exn catalog ~table ~column:first.Plan.column in
            let acc = ref (probe_index meter idx0 first) in
            List.iter
              (fun probe ->
                let idx = find_index_exn catalog ~table ~column:probe.Plan.column in
                let rids = probe_index meter idx probe in
                Cost.charge_cpu_tuples meter
                  (Rid_set.cardinality !acc + Rid_set.cardinality rids);
                acc := Rid_set.inter !acc rids)
              rest;
            let fetched = fetch_rids meter rel !acc in
            Array.of_seq (Seq.filter check (Array.to_seq fetched)))
  in
  { schema = qualified_schema catalog table; tuples = matching }

(* The physical order a plan's output arrives in, if it is a clustered-key
   order the merge join can rely on.  Seq scans emit heap order; index
   fetches emit RID order, which is also heap order. *)
let rec output_sorted_on catalog = function
  | Plan.Scan { table; _ } -> (
      match Catalog.clustered_by catalog table with
      | Some col -> Some (table ^ "." ^ col)
      | None -> None)
  | Plan.Guard { input; _ } -> output_sorted_on catalog input
  | _ -> None

let concat_tuples a b =
  let out = Array.make (Array.length a + Array.length b) Value.Null in
  Array.blit a 0 out 0 (Array.length a);
  Array.blit b 0 out (Array.length a) (Array.length b);
  out

(* Every node executes under a recorder span (when a recorder is attached):
   the span's metric delta is the meter movement attributable to this node's
   whole subtree; the recorder subtracts children to get self cost.  A node
   unwound by an exception (a fired guard, an ill-formed plan) still keeps
   its span — marked aborted — so wasted work stays attributed. *)
let rec exec ctx plan =
  match ctx.obs with
  | None -> exec_node ctx plan
  | Some r -> (
      let h =
        Rq_obs.Recorder.open_span r ~label:(Plan.node_label plan)
          ~metrics:(meter_metrics ctx)
      in
      match exec_node ctx plan with
      | res ->
          Rq_obs.Recorder.close_span r h ~rows:(Array.length res.tuples)
            ~metrics:(meter_metrics ctx);
          res
      | exception e ->
          Rq_obs.Recorder.abort_span r h ~metrics:(meter_metrics ctx);
          raise e)

and exec_node ctx plan =
  let catalog = ctx.catalog and meter = ctx.meter in
  match plan with
  | Plan.Scan { table; access; pred } -> exec_scan catalog meter ~table ~access ~pred
  | Plan.Hash_join { build; probe; build_key; probe_key } ->
      let build_res = exec ctx build in
      let probe_res = exec ctx probe in
      let bpos = Schema.index_of build_res.schema build_key in
      let ppos = Schema.index_of probe_res.schema probe_key in
      let table = Hashtbl.create (max 16 (Array.length build_res.tuples)) in
      Array.iter
        (fun tup ->
          let key = tup.(bpos) in
          if not (Value.is_null key) then Hashtbl.add table key tup)
        build_res.tuples;
      Cost.charge_hash_build meter (Array.length build_res.tuples);
      Cost.charge_hash_probe meter (Array.length probe_res.tuples);
      let out = ref [] in
      Array.iter
        (fun ptup ->
          let key = ptup.(ppos) in
          if not (Value.is_null key) then
            List.iter
              (fun btup -> out := concat_tuples btup ptup :: !out)
              (Hashtbl.find_all table key))
        probe_res.tuples;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      { schema = Schema.concat build_res.schema probe_res.schema; tuples }
  | Plan.Merge_join { left; right; left_key; right_key } ->
      let sorted_left = output_sorted_on catalog left in
      let sorted_right = output_sorted_on catalog right in
      let left_res = exec ctx left in
      let right_res = exec ctx right in
      let lpos = Schema.index_of left_res.schema left_key in
      let rpos = Schema.index_of right_res.schema right_key in
      let ensure_sorted res pos already =
        if already then res.tuples
        else begin
          Cost.charge_sort meter (Array.length res.tuples);
          let copy = Array.copy res.tuples in
          Array.sort (fun a b -> Value.compare a.(pos) b.(pos)) copy;
          copy
        end
      in
      let ltups = ensure_sorted left_res lpos (sorted_left = Some left_key) in
      let rtups = ensure_sorted right_res rpos (sorted_right = Some right_key) in
      Cost.charge_merge_tuples meter (Array.length ltups + Array.length rtups);
      let out = ref [] in
      let nl = Array.length ltups and nr = Array.length rtups in
      let i = ref 0 and j = ref 0 in
      while !i < nl && !j < nr do
        let kv = ltups.(!i).(lpos) and rv = rtups.(!j).(rpos) in
        if Value.is_null kv then incr i
        else if Value.is_null rv then incr j
        else
          let c = Value.compare kv rv in
          if c < 0 then incr i
          else if c > 0 then incr j
          else begin
            (* Emit the cross product of the equal-key runs. *)
            let i_end = ref !i in
            while !i_end < nl && Value.compare ltups.(!i_end).(lpos) kv = 0 do
              incr i_end
            done;
            let j_end = ref !j in
            while !j_end < nr && Value.compare rtups.(!j_end).(rpos) rv = 0 do
              incr j_end
            done;
            for a = !i to !i_end - 1 do
              for b = !j to !j_end - 1 do
                out := concat_tuples ltups.(a) rtups.(b) :: !out
              done
            done;
            i := !i_end;
            j := !j_end
          end
      done;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      { schema = Schema.concat left_res.schema right_res.schema; tuples }
  | Plan.Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
      let outer_res = exec ctx outer in
      let opos = Schema.index_of outer_res.schema outer_key in
      let inner_rel = Catalog.find_table catalog inner_table in
      let idx = find_index_exn catalog ~table:inner_table ~column:inner_key in
      let check = Pred.compile (Relation.schema inner_rel) inner_pred in
      let out = ref [] in
      Array.iter
        (fun otup ->
          let key = otup.(opos) in
          if not (Value.is_null key) then begin
            Cost.charge_index_probes meter 1;
            let rids = Index.probe_eq idx key in
            Cost.charge_index_entries meter (Rid_set.cardinality rids);
            let fetched = fetch_rids meter inner_rel rids in
            Array.iter
              (fun itup -> if check itup then out := concat_tuples otup itup :: !out)
              fetched
          end)
        outer_res.tuples;
      let tuples = Array.of_list (List.rev !out) in
      Cost.charge_output_tuples meter (Array.length tuples);
      {
        schema = Schema.concat outer_res.schema (qualified_schema catalog inner_table);
        tuples;
      }
  | Plan.Star_semijoin { fact; fact_pred; dims } ->
      exec_star_semijoin catalog meter ~fact ~fact_pred ~dims
  | Plan.Filter (input, pred) ->
      let res = exec ctx input in
      let check = Pred.compile res.schema pred in
      Cost.charge_cpu_tuples meter (Array.length res.tuples);
      { res with tuples = Array.of_seq (Seq.filter check (Array.to_seq res.tuples)) }
  | Plan.Project (input, cols) ->
      let res = exec ctx input in
      let positions = List.map (Schema.index_of res.schema) cols in
      Cost.charge_cpu_tuples meter (Array.length res.tuples);
      {
        schema = Schema.project res.schema cols;
        tuples =
          Array.map (fun tup -> Array.of_list (List.map (fun p -> tup.(p)) positions)) res.tuples;
      }
  | Plan.Sort { input; keys } ->
      let res = exec ctx input in
      let positions =
        List.map
          (fun { Plan.sort_column; descending } ->
            (Schema.index_of res.schema sort_column, descending))
          keys
      in
      Cost.charge_sort meter (Array.length res.tuples);
      let compare_rows a b =
        let rec go = function
          | [] -> 0
          | (pos, descending) :: rest ->
              let c = Value.compare a.(pos) b.(pos) in
              if c <> 0 then if descending then -c else c else go rest
        in
        go positions
      in
      let sorted = Array.copy res.tuples in
      (* Stable, so ties keep the input order (deterministic output). *)
      let indexed = Array.mapi (fun i tup -> (i, tup)) sorted in
      Array.sort
        (fun (i, a) (j, b) ->
          let c = compare_rows a b in
          if c <> 0 then c else Int.compare i j)
        indexed;
      { res with tuples = Array.map snd indexed }
  | Plan.Limit (input, n) ->
      let res = exec ctx input in
      let keep = max 0 (min n (Array.length res.tuples)) in
      Cost.charge_cpu_tuples meter keep;
      { res with tuples = Array.sub res.tuples 0 keep }
  | Plan.Aggregate { input; group_by; aggs } -> exec_aggregate ctx ~input ~group_by ~aggs
  | Plan.Guard { input; expected_rows; max_q_error; label } ->
      let res = exec ctx input in
      let actual = Array.length res.tuples in
      (* The guard inspects every materialized row once (a counter pass);
         that honesty is what the <5%-overhead bound is measured against. *)
      Cost.charge_cpu_tuples meter actual;
      let q = q_error ~expected:expected_rows ~actual in
      if q > max_q_error then begin
        record ctx
          (Rq_obs.Trace.Guard_fired
             { label; expected_rows; actual_rows = actual; q_error = q });
        raise
          (Guard_violation
             { label; expected_rows; actual_rows = actual; q_error = q; result = res; subplan = input })
      end
      else begin
        record ctx
          (Rq_obs.Trace.Guard_ok
             { label; expected_rows; actual_rows = actual; q_error = q });
        res
      end
  | Plan.Materialized { schema; tuples; _ } ->
      (* Already paid for when it was first produced; reading it back is free
         in the simulated model (it is sitting in memory). *)
      { schema; tuples }

and exec_star_semijoin catalog meter ~fact ~fact_pred ~dims =
  let fact_rel = Catalog.find_table catalog fact in
  (* Phase 1: per dimension, scan it, collect qualifying keys, and semijoin
     the fact table through its FK index. *)
  let dim_results =
    List.map
      (fun { Plan.dim_table; dim_pred; fact_fk } ->
        let dim_rel = Catalog.find_table catalog dim_table in
        Cost.charge_seq_pages meter (Relation.page_count dim_rel);
        Cost.charge_cpu_tuples meter (Relation.row_count dim_rel);
        let check = Pred.compile (Relation.schema dim_rel) dim_pred in
        let pk =
          match Catalog.primary_key catalog dim_table with
          | Some pk -> pk
          | None -> invalid_arg (Printf.sprintf "Executor: dim %s has no primary key" dim_table)
        in
        let pk_pos = Schema.index_of (Relation.schema dim_rel) pk in
        let lookup = Hashtbl.create 64 in
        let keys = ref [] in
        Relation.iter
          (fun _ tup ->
            if check tup then begin
              Hashtbl.replace lookup tup.(pk_pos) tup;
              keys := tup.(pk_pos) :: !keys
            end)
          dim_rel;
        Cost.charge_hash_build meter (Hashtbl.length lookup);
        let idx = find_index_exn catalog ~table:fact ~column:fact_fk in
        let rid_chunks =
          List.map
            (fun key ->
              Cost.charge_index_probes meter 1;
              let rids = Index.probe_eq idx key in
              Cost.charge_index_entries meter (Rid_set.cardinality rids);
              Rid_set.to_array rids)
            !keys
        in
        let semijoin_rids = Rid_set.of_unsorted (Array.concat rid_chunks) in
        (fact_fk, lookup, semijoin_rids))
      dims
  in
  (* Phase 2: intersect the per-dimension RID sets. *)
  let surviving =
    match dim_results with
    | [] -> invalid_arg "Executor: Star_semijoin with no dimensions"
    | (_, _, first) :: rest ->
        List.fold_left
          (fun acc (_, _, rids) ->
            Cost.charge_cpu_tuples meter (Rid_set.cardinality acc + Rid_set.cardinality rids);
            Rid_set.inter acc rids)
          first rest
  in
  (* Phase 3: fetch qualifying fact rows once, apply the fact predicate and
     stitch the dimension tuples back on. *)
  let fact_schema = Relation.schema fact_rel in
  let check_fact = Pred.compile fact_schema fact_pred in
  let fetched = fetch_rids meter fact_rel surviving in
  let fk_positions =
    List.map (fun (fact_fk, lookup, _) -> (Schema.index_of fact_schema fact_fk, lookup)) dim_results
  in
  let out = ref [] in
  Array.iter
    (fun ftup ->
      if check_fact ftup then begin
        Cost.charge_hash_probe meter (List.length fk_positions);
        let dim_tuples =
          List.map (fun (pos, lookup) -> Hashtbl.find_opt lookup ftup.(pos)) fk_positions
        in
        if List.for_all Option.is_some dim_tuples then
          let row =
            List.fold_left
              (fun acc d -> concat_tuples acc (Option.get d))
              ftup dim_tuples
          in
          out := row :: !out
      end)
    fetched;
  let tuples = Array.of_list (List.rev !out) in
  Cost.charge_output_tuples meter (Array.length tuples);
  let schema =
    List.fold_left
      (fun acc { Plan.dim_table; _ } -> Schema.concat acc (qualified_schema catalog dim_table))
      (qualified_schema catalog fact)
      dims
  in
  { schema; tuples }

and exec_aggregate ctx ~input ~group_by ~aggs =
  let catalog = ctx.catalog and meter = ctx.meter in
  let res = exec ctx input in
  let group_positions = List.map (Schema.index_of res.schema) group_by in
  let agg_fns =
    List.map
      (fun { Plan.fn; _ } ->
        match fn with
        | Plan.Count_star -> `Count
        | Plan.Count e -> `Count_expr (Expr.compile res.schema e)
        | Plan.Sum e -> `Sum (Expr.compile res.schema e)
        | Plan.Avg e -> `Avg (Expr.compile res.schema e)
        | Plan.Min e -> `Min (Expr.compile res.schema e)
        | Plan.Max e -> `Max (Expr.compile res.schema e))
      aggs
  in
  (* Per-group accumulators: count, sum, min, max per aggregate slot. *)
  let module State = struct
    type t = { mutable count : int; mutable sum : float; mutable min_v : Value.t; mutable max_v : Value.t }

    let create () = { count = 0; sum = 0.0; min_v = Value.Null; max_v = Value.Null }
  end in
  let groups : (Value.t list, State.t array) Hashtbl.t = Hashtbl.create 64 in
  let touch key =
    match Hashtbl.find_opt groups key with
    | Some states -> states
    | None ->
        let states = Array.init (List.length agg_fns) (fun _ -> State.create ()) in
        Hashtbl.add groups key states;
        states
  in
  Cost.charge_hash_build meter (Array.length res.tuples);
  Array.iter
    (fun tup ->
      let key = List.map (fun p -> tup.(p)) group_positions in
      let states = touch key in
      List.iteri
        (fun i fn ->
          let st = states.(i) in
          match fn with
          | `Count -> st.State.count <- st.State.count + 1
          | `Count_expr f -> (
              match f tup with
              | Value.Null -> ()
              | _ -> st.State.count <- st.State.count + 1)
          | `Sum f | `Avg f -> (
              match f tup with
              | Value.Null -> ()
              | v ->
                  st.State.count <- st.State.count + 1;
                  st.State.sum <- st.State.sum +. Value.to_float v)
          | `Min f -> (
              match f tup with
              | Value.Null -> ()
              | v ->
                  if Value.is_null st.State.min_v || Value.compare v st.State.min_v < 0 then
                    st.State.min_v <- v)
          | `Max f -> (
              match f tup with
              | Value.Null -> ()
              | v ->
                  if Value.is_null st.State.max_v || Value.compare v st.State.max_v > 0 then
                    st.State.max_v <- v))
        agg_fns)
    res.tuples;
  (* SQL semantics: grand-total aggregation yields one row even on empty
     input. *)
  if group_by = [] && Hashtbl.length groups = 0 then ignore (touch []);
  let finalize states =
    List.mapi
      (fun i fn ->
        let st = states.(i) in
        match fn with
        | `Count | `Count_expr _ -> Value.Int st.State.count
        | `Sum _ -> if st.State.count = 0 then Value.Null else Value.Float st.State.sum
        | `Avg _ ->
            if st.State.count = 0 then Value.Null
            else Value.Float (st.State.sum /. float_of_int st.State.count)
        | `Min _ -> st.State.min_v
        | `Max _ -> st.State.max_v)
      agg_fns
  in
  let rows =
    Hashtbl.fold (fun key states acc -> Array.of_list (key @ finalize states) :: acc) groups []
  in
  Cost.charge_output_tuples meter (List.length rows);
  let schema = Plan.schema_of catalog (Plan.Aggregate { input; group_by; aggs }) in
  { schema; tuples = Array.of_list rows }

let run ?obs catalog meter plan = exec { catalog; meter; obs } plan

let run_timed catalog ?constants ?scale ?obs plan =
  let meter = Cost.create ?constants ?scale () in
  let res = run ?obs catalog meter plan in
  (res, Cost.snapshot meter)

let result_to_relation ~name { schema; tuples } = Relation.create ~name ~schema tuples
