(* The one scan planner shared by all three engines and the optimizer's
   cost model: split a (possibly resuming) sequential scan into per-chunk
   tasks, marking each chunk either read (sequential pages + per-row CPU)
   or skipped (its zone map disproves the predicate: pages_skipped only,
   zero simulated seconds, zero CPU).

   Page charges telescope exactly: a task's pages are counted from the
   page containing its first row to the page containing its last, so
   summing over tasks gives [Relation.page_count] for a fresh scan and
   [Exec_common.resume_pages] for a resume — whether or not chunks in
   between are skipped, and however tasks are divided among morsels
   (chunk boundaries are page-aligned by construction). *)

open Rq_storage

type task = {
  ci : int;      (* chunk index *)
  lo : int;      (* first RID, inclusive (= chunk start except when resuming) *)
  hi : int;      (* last RID, exclusive *)
  pages : int;   (* sequential pages this task covers *)
  skip : bool;   (* zone map disproved the predicate for the whole chunk *)
}

let pages_upto rpp pos = if pos = 0 then 0 else ((pos - 1) / rpp) + 1

let tasks ?(from = 0) rel pred =
  let rows = Relation.row_count rel in
  if from >= rows then []
  else begin
    let rpp = Relation.rows_per_page rel in
    let rpc = Relation.rows_per_chunk rel in
    let schema = Relation.schema rel in
    let prune = !Prune.enabled && pred <> Pred.True in
    let acc = ref [] in
    for ci = Relation.chunk_count rel - 1 downto from / rpc do
      let lo = max from (ci * rpc) in
      let hi = min rows ((ci + 1) * rpc) in
      let pages = pages_upto rpp hi - (lo / rpp) in
      let skip =
        prune && not (Prune.chunk_may_match schema (Relation.zone_map rel ci) pred)
      in
      acc := { ci; lo; hi; pages; skip } :: !acc
    done;
    !acc
  end

let totals rel pred =
  List.fold_left
    (fun (read_pages, skipped_pages, read_rows) t ->
      if t.skip then (read_pages, skipped_pages + t.pages, read_rows)
      else (read_pages + t.pages, skipped_pages, read_rows + (t.hi - t.lo)))
    (0, 0, 0) (tasks rel pred)

(* -- Per-chunk bitmap filtering ------------------------------------------ *)

(* For chunks the zone map cannot skip, the predicate is evaluated as a
   per-chunk bitmap: one bitset per atomic predicate (built touching only
   the columns the atom references — the columnar payoff), combined with
   word-wise AND/OR/NOT per the boolean structure, then matching rows are
   materialized in ascending order.  [Bitset.lognot] keeps bits past the
   logical length zero, so [Not] is exact; the bitmap path is
   semantics-identical to [Pred.compile] row-at-a-time evaluation. *)
let build_bitmap schema pred =
  let arity = Schema.arity schema in
  let rec build p : Chunk.t -> int -> Bitset.t =
    match (p : Pred.t) with
    | True -> fun _ n -> Bitset.full n
    | False -> fun _ n -> Bitset.create n
    | And ps ->
        let fs = List.map build ps in
        fun chunk n ->
          List.fold_left (fun acc f -> Bitset.logand acc (f chunk n)) (Bitset.full n) fs
    | Or ps ->
        let fs = List.map build ps in
        fun chunk n ->
          List.fold_left (fun acc f -> Bitset.logor acc (f chunk n)) (Bitset.create n) fs
    | Not p ->
        let f = build p in
        fun chunk n -> Bitset.lognot (f chunk n)
    | atom ->
        let idxs = List.map (Schema.index_of schema) (Pred.columns atom) in
        let compiled = Pred.compile schema atom in
        fun chunk n ->
          (* The scratch tuple is per-invocation: matchers are shared
             across domains by the morsel-parallel executor. *)
          let scratch = Array.make arity Value.Null in
          Bitset.of_pred ~len:n (fun r ->
              List.iter
                (fun i -> scratch.(i) <- Chunk.value chunk ~col:i ~row:r)
                idxs;
              compiled scratch)
  in
  build pred

let bitmap schema pred =
  match (pred : Pred.t) with
  | True -> None
  | _ ->
      let bm = build_bitmap schema pred in
      Some (fun chunk -> bm chunk (Chunk.n_rows chunk))

let matcher schema pred =
  match bitmap schema pred with
  | None -> fun chunk f -> Chunk.iter f chunk
  | Some bm ->
      fun chunk f -> Bitset.iter_set (fun r -> f r (Chunk.get chunk r)) (bm chunk)
