open Rq_storage

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | Between of Expr.t * Expr.t * Expr.t
  | Contains of Expr.t * string
  | And of t list
  | Or of t list
  | Not of t

let eq a b = Cmp (Eq, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)
let between e lo hi = Between (e, lo, hi)

let conj preds =
  let rec flatten acc = function
    | True -> acc
    | And ps -> List.fold_left flatten acc ps
    | p -> p :: acc
  in
  match List.rev (List.fold_left flatten [] preds) with
  | [] -> True
  | [ p ] -> p
  | ps -> if List.mem False ps then False else And ps

let conjuncts = function And ps -> ps | True -> [] | p -> [ p ]

let columns pred =
  let add acc c = if List.mem c acc then acc else c :: acc in
  let rec go acc = function
    | True | False -> acc
    | Cmp (_, a, b) -> List.fold_left add (List.fold_left add acc (Expr.columns a)) (Expr.columns b)
    | Between (e, lo, hi) ->
        List.fold_left add acc (Expr.columns e @ Expr.columns lo @ Expr.columns hi)
    | Contains (e, _) -> List.fold_left add acc (Expr.columns e)
    | And ps | Or ps -> List.fold_left go acc ps
    | Not p -> go acc p
  in
  List.rev (go [] pred)

type compiled = Relation.tuple -> bool

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec compile schema = function
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (op, a, b) ->
      let fa = Expr.compile schema a and fb = Expr.compile schema b in
      fun tuple ->
        let va = fa tuple and vb = fb tuple in
        (not (Value.is_null va || Value.is_null vb)) && cmp_holds op (Value.compare va vb)
  | Between (e, lo, hi) ->
      let fe = Expr.compile schema e
      and flo = Expr.compile schema lo
      and fhi = Expr.compile schema hi in
      fun tuple ->
        let v = fe tuple and l = flo tuple and h = fhi tuple in
        (not (Value.is_null v || Value.is_null l || Value.is_null h))
        && Value.compare l v <= 0
        && Value.compare v h <= 0
  | Contains (e, needle) ->
      let fe = Expr.compile schema e in
      let contains haystack =
        let nh = String.length haystack and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
        nn = 0 || at 0
      in
      fun tuple -> (
        match fe tuple with Value.String s -> contains s | _ -> false)
  | And ps ->
      let fs = List.map (compile schema) ps in
      fun tuple -> List.for_all (fun f -> f tuple) fs
  | Or ps ->
      let fs = List.map (compile schema) ps in
      fun tuple -> List.exists (fun f -> f tuple) fs
  | Not p ->
      let f = compile schema p in
      fun tuple -> not (f tuple)

let eval schema pred tuple = compile schema pred tuple

let rename_columns f pred =
  let rec expr = function
    | Expr.Col c -> Expr.Col (f c)
    | Expr.Const _ as e -> e
    | Expr.Add (a, b) -> Expr.Add (expr a, expr b)
    | Expr.Sub (a, b) -> Expr.Sub (expr a, expr b)
    | Expr.Mul (a, b) -> Expr.Mul (expr a, expr b)
    | Expr.Div (a, b) -> Expr.Div (expr a, expr b)
    | Expr.Add_days (a, d) -> Expr.Add_days (expr a, d)
  in
  let rec go = function
    | (True | False) as p -> p
    | Cmp (op, a, b) -> Cmp (op, expr a, expr b)
    | Between (e, lo, hi) -> Between (expr e, expr lo, expr hi)
    | Contains (e, s) -> Contains (expr e, s)
    | And ps -> And (List.map go ps)
    | Or ps -> Or (List.map go ps)
    | Not p -> Not (go p)
  in
  go pred

let render_cmp = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Canonical one-line rendering for structural keys: nested And/Or are
   flattened, operand lists sorted by rendering, and the operands of the
   commutative comparisons (=, <>) ordered — predicates equal modulo
   commutation render identically.  [Rq_sql.Fingerprint] and the evidence
   memo both key on this, so a cached bitmap combination and a cached plan
   agree on what "the same predicate" means. *)
let rec render p =
  let flatten_and = function And ps -> ps | p -> [ p ] in
  let flatten_or = function Or ps -> ps | p -> [ p ] in
  match p with
  | True -> "true"
  | False -> "false"
  | Cmp (op, a, b) ->
      let ra = Expr.render a and rb = Expr.render b in
      let ra, rb =
        match op with
        | Eq | Ne -> if String.compare ra rb <= 0 then (ra, rb) else (rb, ra)
        | _ -> (ra, rb)
      in
      "(" ^ render_cmp op ^ " " ^ ra ^ " " ^ rb ^ ")"
  | Between (e, lo, hi) ->
      "(between " ^ Expr.render e ^ " " ^ Expr.render lo ^ " " ^ Expr.render hi ^ ")"
  | Contains (e, s) -> Printf.sprintf "(contains %s %S)" (Expr.render e) s
  | And ps ->
      let parts =
        List.concat_map flatten_and ps |> List.map render |> List.sort String.compare
      in
      "(and " ^ String.concat " " parts ^ ")"
  | Or ps ->
      let parts =
        List.concat_map flatten_or ps |> List.map render |> List.sort String.compare
      in
      "(or " ^ String.concat " " parts ^ ")"
  | Not p -> "(not " ^ render p ^ ")"

let pp_cmp fmt op =
  Format.pp_print_string fmt
    (match op with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "TRUE"
  | False -> Format.pp_print_string fmt "FALSE"
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %a %a" Expr.pp a pp_cmp op Expr.pp b
  | Between (e, lo, hi) ->
      Format.fprintf fmt "%a BETWEEN %a AND %a" Expr.pp e Expr.pp lo Expr.pp hi
  | Contains (e, s) -> Format.fprintf fmt "%a CONTAINS %S" Expr.pp e s
  | And ps ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " AND ") pp)
        ps
  | Or ps ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " OR ") pp)
        ps
  | Not p -> Format.fprintf fmt "NOT %a" pp p
