(** A persistent work-stealing pool of OCaml 5 domains.

    Tasks are submitted as indexed batches; every participant — the pool's
    worker domains plus the submitting caller — claims the next unclaimed
    index from a shared cursor and runs it outside the pool lock, so a
    fast domain pulls more morsels instead of idling behind a static
    partition.  Claims are issued in strictly increasing index order and a
    claimed task always runs to completion, which makes the completed set
    at any abort a contiguous prefix [0, k) — the invariant the parallel
    guard's resume geometry relies on. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] (default 1) is the total parallelism including the caller:
    [domains - 1] worker domains are spawned.  A pool of size 1 spawns
    nothing and runs every task inline on the caller, making it a true
    serial baseline over the identical code path.  Raises
    [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Must not be called while a batch
    is running; idempotent. *)

val run : t -> int -> (int -> 'a) -> 'a array
(** [run t n f] evaluates [f 0 .. f (n - 1)] across the pool and returns
    the results in index order.  If tasks raise, the batch aborts (no new
    claims; in-flight tasks finish) and the exception of the
    smallest-index failed task is re-raised in the caller. *)

val run_prefix : t -> int -> (int -> [ `Done of 'a | `Stop of 'a ]) -> 'a array
(** Like {!run}, but a task may return [`Stop v] to request an early
    abort without error: its own result is kept, tasks already in flight
    finish, no further indices are claimed, and the contiguous completed
    prefix is returned.  Used by guarded parallel scans: the morsel that
    observes the running row count overflow stops the batch and the
    prefix becomes the guard violation's reusable result. *)
