(** Physical query plans.

    The plan algebra covers exactly the plan families the paper's
    experiments exercise: sequential scans; single-index range scans; the
    risky index-intersection access method (Sec. 2.1); hash, merge and
    indexed-nested-loop joins (Exp. 2); the semijoin-intersection star-join
    strategy and its hybrid with hash joins (Exp. 3); and group-by
    aggregation.

    Naming convention: a scan of table [t] outputs columns qualified as
    ["t.column"]; predicates *inside* access paths use unqualified base
    column names, predicates above scans use qualified names. *)

open Rq_storage

type probe = { column : string; lo : Value.t option; hi : Value.t option }
(** One index range probe: [lo <= column <= hi], [None] = open. *)

type access =
  | Seq_scan
  | Index_range of probe
      (** probe one index, fetch matching rows by RID *)
  | Index_intersect of probe list
      (** probe several indexes, intersect RID sets, fetch survivors;
          requires at least two probes *)
  | Index_order of { column : string; descending : bool }
      (** walk the whole index in key order and fetch every row by RID:
          emits rows exactly as a stable sort on [column] would, so a
          Sort above it can be elided (the ORDER BY/LIMIT pushdown
          target).  Each row costs a random page read, but under a LIMIT
          the streaming engine stops fetching early *)

type agg_fn =
  | Count_star             (** count of all rows *)
  | Count of Expr.t        (** count of rows where the expression is not NULL *)
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

type agg = { fn : agg_fn; output_name : string }

type sort_key = { sort_column : string; descending : bool }

type star_dim = {
  dim_table : string;
  dim_pred : Pred.t;   (** on the dimension's base schema *)
  fact_fk : string;    (** fact column with an FK to the dimension *)
}

type t =
  | Scan of { table : string; access : access; pred : Pred.t }
      (** [pred] is the full base-table predicate (unqualified names); it is
          re-checked on fetched rows, so access paths may cover it only
          partially *)
  | Scan_resume of { table : string; pred : Pred.t; from_rid : int }
      (** the tail of an interrupted sequential scan: rows with
          RID >= [from_rid], same predicate semantics as [Scan] with
          [Seq_scan] access.  Produced by the re-optimizer when a streaming
          guard fires mid-scan, so the already-streamed prefix (carried as a
          [Materialized] leaf under an [Append]) is not re-read; only the
          unscanned pages are charged *)
  | Hash_join of { build : t; probe : t; build_key : string; probe_key : string }
      (** keys are qualified output column names *)
  | Merge_join of { left : t; right : t; left_key : string; right_key : string }
      (** inputs are sorted on the keys if not already (sorting is charged
          unless the input is a scan clustered on the key) *)
  | Indexed_nl_join of {
      outer : t;
      outer_key : string;       (** qualified column of the outer plan *)
      inner_table : string;
      inner_key : string;       (** indexed base column of the inner table *)
      inner_pred : Pred.t;      (** residual on the inner base schema *)
    }
  | Star_semijoin of { fact : string; fact_pred : Pred.t; dims : star_dim list }
      (** Exp.-3 strategy: semijoin the fact table with each filtered
          dimension via the fact's FK indexes, intersect the RID sets, fetch
          qualifying fact rows once, then stitch dimension columns back on *)
  | Filter of t * Pred.t
  | Project of t * string list
  | Aggregate of { input : t; group_by : string list; aggs : agg list }
  | Sort of { input : t; keys : sort_key list }
      (** stable sort on qualified output columns; always charges a sort *)
  | Limit of t * int
      (** first n rows of the input's order *)
  | Guard of { input : t; expected_rows : float; max_q_error : float; label : string }
      (** cardinality checkpoint: passes the input through unchanged, but if
          the q-error between [expected_rows] and the actual row count
          exceeds [max_q_error] the executor raises
          {!Executor.Guard_violation} carrying the already-materialized
          rows, so a re-optimizer can resume from them.  Order-transparent:
          a guard over a clustered scan still satisfies a merge join's sort
          requirement. *)
  | Materialized of {
      name : string;
      schema : Schema.t;
      tuples : Value.t array array;
      refs : (string * Pred.t) list;
          (** the base-table predicates this intermediate covers (base-schema
              column names), so costing above it can still form logical
              expression refs *)
    }
      (** an already-computed intermediate result used as a plan leaf when
          execution resumes after a guard violation; costs nothing to read *)
  | Append of t list
      (** concatenation of the inputs' outputs, in order; all inputs must
          share a schema.  The mid-stream-recovery leaf:
          [Append [Materialized prefix; Scan_resume rest]] replays a
          partially-drained scan without repeating its pages *)

val schema_of : Catalog.t -> t -> Schema.t
(** Output schema (qualified names).  Raises if the plan is ill-formed
    (unknown tables/columns). *)

val base_tables : t -> string list
(** Tables referenced, without duplicates, in first-appearance order. *)

val validate : Catalog.t -> t -> (unit, string) result
(** Structural checks: indexes exist for every probe, intersect has >= 2
    probes, FK edges exist for star dims, keys are in scope. *)

val q_error : expected:float -> actual:int -> float
(** max(est/act, act/est) with 0.5 floors so empty results stay finite;
    >= 1, 1 = perfect.  The one definition both the executor's guards and
    EXPLAIN ANALYZE use, so "would fire" and "did fire" cannot drift. *)

val pp : Format.formatter -> t -> unit
(** Multi-line EXPLAIN-style rendering. *)

val node_label : t -> string
(** One-line label for this node alone (children not descended), e.g.
    ["SeqScan(lineitem)"] or ["HashJoin(a = b)"]; used for span labels and
    the EXPLAIN ANALYZE table. *)

val describe : t -> string
(** One-line plan shape, e.g. ["IdxIsect(lineitem)"] or
    ["Hash(Hash(INL(part,lineitem)),orders)"]; used to label which plan the
    optimizer picked in experiment output.  Guards are transparent so the
    label names the same shape whether or not the plan is instrumented. *)

val strip_guards : t -> t
(** The same plan with every [Guard] removed (guarded subplans kept). *)

val guard_count : t -> int
(** Number of [Guard] nodes in the plan. *)
