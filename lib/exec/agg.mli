(** Grouped-aggregation core shared by both execution engines.

    Holds the hash of per-group accumulator states; the caller feeds input
    tuples (all at once or batch by batch — the final state is identical)
    and finalizes to output rows.  Both engines construct it identically
    (same initial table size, same insertion pattern), so the finalize
    fold order — hence the output row order — is byte-identical whether
    the input arrived materialized or streamed. *)

open Rq_storage

type t

val create : Schema.t -> group_by:string list -> aggs:Plan.agg list -> t
(** Compiles the aggregate expressions against the input schema.  Raises
    [Invalid_argument] on unknown columns. *)

val feed : t -> Relation.tuple array -> unit

val feed_cols : t -> Value.t array array -> Bitset.t -> unit
(** Columnar feed for the vectorized plane: visits the selected rows of the
    batch's column arrays in ascending order, building the same keys and
    applying the same accumulator updates as {!feed} — so mixing planes
    still yields byte-identical finalize order. *)

val finalize : t -> Relation.tuple list
(** Output rows (group key columns then aggregate columns), in the group
    hash's fold order; a single row for grand-total aggregation even on
    empty input.  Call once. *)
