(** The pull-based streaming engine behind {!Executor}'s [Streaming] mode.

    Compiles a plan into a tree of {!Stream.t} operators and drains the
    root.  Pipeline breakers (hash build side, sort, aggregate, merge-join
    inputs) drain their children on first pull; everything else streams
    batch by batch, so a satisfied [Limit] or a mid-stream guard violation
    stops pulling upstream and leaves the unperformed work uncharged.  On a
    full drain every {!Cost} counter lands exactly where the materialized
    engine puts it.

    Two data planes share this operator protocol.  When {!Vectorize.enabled}
    is set (the default), plans compile to {!Stream.Vec.t} operators carrying
    column-major {!Vbatch.t}s — scans hand out chunk column slices zero-copy
    with the predicate bitmap as initial selection, filters AND bitsets,
    expressions/joins/aggregates run per-column loops over selected indices,
    and tuples materialize only at breaker boundaries and final output.  The
    vectorized scan slices rows into exactly the row plane's
    (chunk ∩ [batch_rows] window) batches and every vectorized operator
    charges the same counters the same logical-row amounts at the same pull
    points, so counters, guard fire points, span row counts and resume
    positions are identical between planes. *)

open Rq_storage

val batch_rows : int
(** Rows per pulled batch (producers may emit fewer, never zero). *)

val run : ?obs:Rq_obs.Recorder.t -> Catalog.t -> Cost.t -> Plan.t -> Exec_common.result
(** Raises {!Exec_common.Guard_violation} when a guard fires — mid-stream
    on overflow (with [complete = false] and a [resume] plan when the
    source scan supports it), or at drain on underflow.

    With [?obs], a span tree mirroring the operator tree is attached to the
    recorder when the root drains or unwinds: each span's total is the sum
    of the meter deltas across that operator's pulls, children nest inside
    parents, and operators interrupted by an exception are marked aborted
    (a fired guard's input span is not — its rows were produced
    successfully). *)
