(** The pull-based streaming engine behind {!Executor}'s [Streaming] mode.

    Compiles a plan into a tree of {!Stream.t} operators and drains the
    root.  Pipeline breakers (hash build side, sort, aggregate, merge-join
    inputs) drain their children on first pull; everything else streams
    batch by batch, so a satisfied [Limit] or a mid-stream guard violation
    stops pulling upstream and leaves the unperformed work uncharged.  On a
    full drain every {!Cost} counter lands exactly where the materialized
    engine puts it. *)

open Rq_storage

val batch_rows : int
(** Rows per pulled batch (producers may emit fewer, never zero). *)

val run : ?obs:Rq_obs.Recorder.t -> Catalog.t -> Cost.t -> Plan.t -> Exec_common.result
(** Raises {!Exec_common.Guard_violation} when a guard fires — mid-stream
    on overflow (with [complete = false] and a [resume] plan when the
    source scan supports it), or at drain on underflow.

    With [?obs], a span tree mirroring the operator tree is attached to the
    recorder when the root drains or unwinds: each span's total is the sum
    of the meter deltas across that operator's pulls, children nest inside
    parents, and operators interrupted by an exception are marked aborted
    (a fired guard's input span is not — its rows were produced
    successfully). *)
