(* Morsel-driven parallel execution.

   The plan is rewritten in execution order: every maximal parallelizable
   unit — a sequential scan, a resumed scan, a guard directly over either,
   and a hash join probing straight off such a scan — is executed
   immediately on the domain pool and replaced by a [Plan.Materialized]
   leaf; the residual plan then runs through the serial materialized
   engine on the same meter.  Materialized leaves are free to read, so
   meter totals compose exactly: parallel charges + residual charges equal
   the serial materialized engine's charges counter for counter.

   Morsels are page-aligned row ranges (a whole number of heap pages, at
   least 4 x the streaming engine's 1024-row batch): morsel [lo, hi)
   charges [pages_upto hi - lo / rows_per_page] sequential pages, the
   split-page-exact geometry [Scan_resume] uses, so per-morsel page
   charges sum to the serial scan's page count exactly — including a
   resumed scan's re-read of the page its split point sits in.

   Each morsel charges a private {!Cost} meter; the snapshots are absorbed
   into the main meter in morsel-index order ({!Cost.absorb}), so merged
   totals — including the order-sensitive float seconds — are identical no
   matter which domain ran which morsel.  Per-unit recorder spans bracket
   the main meter around each unit (total = self; the unit is one leaf to
   the span tree), so [Recorder.sum_self] over the run's roots still
   reconciles with the meter to 1e-9.

   A guard over a scan runs as a guarded morsel batch: matching rows are
   counted in a shared [Atomic]; the morsel that pushes the count past the
   unrecoverable-overflow bound stops the batch, morsels already in flight
   on other domains finish, and the contiguous completed prefix becomes
   the violation's reusable result with a [Scan_resume] continuation
   covering exactly the unscanned tail. *)

open Rq_storage

type t = { pool : Domain_pool.t }

let create ?(domains = 1) () = { pool = Domain_pool.create ~domains () }
let of_pool pool = { pool }
let domains t = Domain_pool.size t.pool
let shutdown t = Domain_pool.shutdown t.pool

type ctx = {
  pool : Domain_pool.t;
  catalog : Catalog.t;
  meter : Cost.t;
  obs : Rq_obs.Recorder.t option;
  mutable morsel_seconds : float list;  (* reversed *)
}

let record ctx event =
  match ctx.obs with None -> () | Some r -> Rq_obs.Recorder.record r event

(* ------------------------------------------------------------------ *)
(* Morsel geometry                                                     *)
(* ------------------------------------------------------------------ *)

let morsel_target_rows = 4 * Stream_exec.batch_rows

(* Morsels are a whole number of storage chunks (themselves a whole number
   of pages), so every morsel boundary after the first sits on a chunk —
   hence page — boundary: chunk tasks never straddle morsels and page
   charges telescope. *)
let morsel_rows rel =
  let rpc = Relation.rows_per_chunk rel in
  rpc * max 1 ((morsel_target_rows + rpc - 1) / rpc)

(* Row ranges covering [from, row_count), split at absolute multiples of
   the morsel size.  Aligning to the absolute grid (not to [from]) keeps
   every boundary after the first on a chunk boundary, so page charges
   telescope. *)
let morsel_bounds rel ~from =
  let n = Relation.row_count rel in
  let m = morsel_rows rel in
  let acc = ref [] in
  let lo = ref (min (max 0 from) n) in
  while !lo < n do
    let hi = min n (((!lo / m) + 1) * m) in
    acc := (!lo, hi) :: !acc;
    lo := hi
  done;
  Array.of_list (List.rev !acc)

(* One morsel: its chunk tasks, charging a private meter exactly as the
   serial engine charges that row range — zone-map-skipped chunks cost
   pages_skipped only, read chunks are pinned from the buffer pool and
   filtered through the shared per-chunk bitmap matcher. *)
let scan_morsel ~rel ~match_chunk ~constants ~scale tasks =
  let meter = Cost.create ~constants ~scale () in
  let out = ref [] in
  List.iter
    (fun (t : Chunk_scan.task) ->
      if t.skip then Cost.charge_pages_skipped meter t.pages
      else begin
        Cost.charge_seq_pages meter t.pages;
        Cost.charge_cpu_tuples meter (t.hi - t.lo);
        let base = Relation.chunk_start rel t.ci in
        Relation.with_chunk ~seq:true rel t.ci (fun chunk ->
            match_chunk chunk (fun r tup ->
                if base + r >= t.lo then out := tup :: !out))
      end)
    tasks;
  (Array.of_list (List.rev !out), Cost.snapshot meter)

let absorb ctx (snap : Cost.snapshot) =
  Cost.absorb ctx.meter snap;
  ctx.morsel_seconds <- snap.Cost.seconds :: ctx.morsel_seconds

(* ------------------------------------------------------------------ *)
(* Span accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* A parallel unit is one leaf to the span tree: its span's total = self =
   the main meter's movement across the unit (the morsel meters are
   absorbed inside the bracket).  A guard violation is not an abort — the
   prefix rows were produced successfully and are carried in the
   violation — so its span keeps the row count; any other exception marks
   the span aborted, like the serial engines do. *)
let with_unit_span ctx ~label f =
  match ctx.obs with
  | None -> f ()
  | Some r ->
      let metrics () = Cost.to_metrics (Cost.snapshot ctx.meter) in
      let before = metrics () in
      let attach ~rows ~aborted =
        let delta = Rq_obs.Metrics.sub (metrics ()) before in
        Rq_obs.Recorder.attach_span r
          { Rq_obs.Recorder.label; rows; aborted; total = delta; self = delta; children = [] }
      in
      (match f () with
      | res ->
          attach ~rows:(Array.length res.Exec_common.tuples) ~aborted:false;
          res
      | exception Exec_common.Guard_violation v ->
          attach ~rows:v.Exec_common.actual_rows ~aborted:false;
          raise (Exec_common.Guard_violation v)
      | exception e ->
          attach ~rows:(-1) ~aborted:true;
          raise e)

(* ------------------------------------------------------------------ *)
(* Parallel units                                                      *)
(* ------------------------------------------------------------------ *)

let scan_setup ctx ~table ~pred ~from =
  let rel = Catalog.find_table ctx.catalog table in
  let match_chunk = Chunk_scan.matcher (Relation.schema rel) pred in
  let bounds = morsel_bounds rel ~from in
  (* Partition the shared chunk-task plan by morsel: tasks and bounds are
     both in RID order and morsel boundaries are chunk-aligned, so one
     pass assigns each task to the morsel holding its first row. *)
  let groups = Array.make (Array.length bounds) [] in
  let mi = ref 0 in
  List.iter
    (fun (t : Chunk_scan.task) ->
      while t.lo >= snd bounds.(!mi) do
        incr mi
      done;
      groups.(!mi) <- t :: groups.(!mi))
    (Chunk_scan.tasks ~from rel pred);
  let groups = Array.map List.rev groups in
  let constants = Cost.constants ctx.meter and scale = Cost.scale ctx.meter in
  (rel, bounds, fun i -> scan_morsel ~rel ~match_chunk ~constants ~scale groups.(i))

(* Plain parallel scan: all morsels, merged in morsel order. *)
let run_scan_unit ctx ~table ~pred ~from =
  let _, bounds, morsel = scan_setup ctx ~table ~pred ~from in
  let parts =
    Domain_pool.run ctx.pool (Array.length bounds) (fun i -> morsel i)
  in
  Array.iter (fun (_, snap) -> absorb ctx snap) parts;
  {
    Exec_common.schema = Exec_common.qualified_schema ctx.catalog table;
    tuples = Array.concat (List.map fst (Array.to_list parts));
  }

(* Guard directly over a (possibly resumed) sequential scan.  Matching
   rows are counted across domains in an [Atomic]; the morsel that pushes
   the count past the unrecoverable-overflow bound (the streaming guard's
   firing rule: actual > expected * max_q can never recover, since the
   count only grows) stops the batch.  In-flight morsels finish, so the
   completed set is the contiguous prefix [0, k) and the violation resumes
   at the prefix's exact page-aligned end. *)
let run_guarded_scan_unit ctx ~table ~pred ~from ~expected_rows ~max_q_error ~label
    ~subplan =
  let rel, bounds, morsel = scan_setup ctx ~table ~pred ~from in
  let n = Relation.row_count rel in
  let from = min (max 0 from) n in
  let overflow_bound = max_q_error *. Float.max expected_rows 0.5 in
  let seen = Atomic.make 0 in
  let parts =
    Domain_pool.run_prefix ctx.pool (Array.length bounds) (fun i ->
        let ((tuples, _) as part) = morsel i in
        let matched = Array.length tuples in
        let total = Atomic.fetch_and_add seen matched + matched in
        if float_of_int total > overflow_bound then `Stop part else `Done part)
  in
  Array.iter (fun (_, snap) -> absorb ctx snap) parts;
  let result =
    {
      Exec_common.schema = Exec_common.qualified_schema ctx.catalog table;
      tuples = Array.concat (List.map fst (Array.to_list parts));
    }
  in
  let actual = Array.length result.Exec_common.tuples in
  (* The guard inspects every row it saw once (a counter pass) — the same
     honesty charge both serial engines make. *)
  Cost.charge_cpu_tuples ctx.meter actual;
  let complete = Array.length parts = Array.length bounds in
  let q = Plan.q_error ~expected:expected_rows ~actual in
  if (not complete) || q > max_q_error then begin
    record ctx
      (Rq_obs.Trace.Guard_fired { label; expected_rows; actual_rows = actual; q_error = q });
    let prefix_end =
      if complete || Array.length parts = 0 then from
      else snd bounds.(Array.length parts - 1)
    in
    raise
      (Exec_common.Guard_violation
         {
           label;
           expected_rows;
           actual_rows = actual;
           q_error = q;
           result;
           subplan;
           complete;
           progress =
             (if complete || n = from then 1.0
              else float_of_int (prefix_end - from) /. float_of_int (n - from));
           resume =
             (if complete then None
              else Some (Plan.Scan_resume { table; pred; from_rid = prefix_end }));
         })
  end
  else begin
    record ctx
      (Rq_obs.Trace.Guard_ok { label; expected_rows; actual_rows = actual; q_error = q });
    result
  end

(* ------------------------------------------------------------------ *)
(* Plan rewriting                                                      *)
(* ------------------------------------------------------------------ *)

let materialized ~name (res : Exec_common.result) ~refs =
  Plan.Materialized { name; schema = res.Exec_common.schema; tuples = res.Exec_common.tuples; refs }

(* A leaf the morsel engine can partition: a plain sequential scan or the
   resumed tail of one. *)
let scan_leaf = function
  | Plan.Scan { table; access = Plan.Seq_scan; pred } -> Some (table, pred, 0)
  | Plan.Scan_resume { table; pred; from_rid } -> Some (table, pred, from_rid)
  | _ -> None

(* Fused parallel hash join: the probe side is a parallelizable scan.  The
   phases run in the serial materialized engine's charge order — build
   subtree, probe scan (parallel morsels), hash build, hash probe, output
   — so every counter and the float seconds sum land identically.  The
   probe *matching* phase is then re-partitioned over the already-scanned
   probe tuples: per-domain chunks probe the shared read-only hash table
   and their match lists merge in chunk order at the breaker (the charges
   for that phase were already made in bulk, exactly like serial). *)
let rec run_fused_hash_join ctx ~build ~probe_leaf ~build_key ~probe_key =
  let build_res = run_plan ctx build in
  let table, pred, from = probe_leaf in
  let probe_res = run_scan_unit ctx ~table ~pred ~from in
  let bpos = Schema.index_of build_res.Exec_common.schema build_key in
  let ppos = Schema.index_of probe_res.Exec_common.schema probe_key in
  let btuples = build_res.Exec_common.tuples in
  let ptuples = probe_res.Exec_common.tuples in
  let hash = Hashtbl.create (max 16 (Array.length btuples)) in
  Array.iter
    (fun tup ->
      let key = tup.(bpos) in
      if not (Value.is_null key) then Hashtbl.add hash key tup)
    btuples;
  Cost.charge_hash_build ctx.meter (Array.length btuples);
  Cost.charge_hash_probe ctx.meter (Array.length ptuples);
  (* Read-only sharing: the table is never written after build, so probing
     it from several domains is safe. *)
  let chunk = max 1 morsel_target_rows in
  let nchunks = (Array.length ptuples + chunk - 1) / chunk in
  let match_chunks =
    Domain_pool.run ctx.pool nchunks (fun c ->
        let lo = c * chunk and hi = min (Array.length ptuples) ((c + 1) * chunk) in
        let out = ref [] in
        for i = lo to hi - 1 do
          let ptup = ptuples.(i) in
          let key = ptup.(ppos) in
          if not (Value.is_null key) then
            (* find_all yields reverse insertion order; reverse it back so
               duplicate-key matches come out in build-input order. *)
            List.iter
              (fun btup -> out := Exec_common.concat_tuples btup ptup :: !out)
              (List.rev (Hashtbl.find_all hash key))
        done;
        Array.of_list (List.rev !out))
  in
  let tuples = Array.concat (Array.to_list match_chunks) in
  Cost.charge_output_tuples ctx.meter (Array.length tuples);
  {
    Exec_common.schema = Schema.concat build_res.Exec_common.schema probe_res.Exec_common.schema;
    tuples;
  }

(* Rewrite the plan in the serial engine's execution order, running every
   parallelizable unit as it is reached and splicing its output back as a
   [Materialized] leaf.  Anything else is left for the residual
   materialized pass, which charges it exactly as serial execution would
   (Materialized leaves read for free). *)
and rewrite ctx plan =
  match plan with
  | _ when scan_leaf plan <> None ->
      let table, pred, from = Option.get (scan_leaf plan) in
      let res =
        with_unit_span ctx ~label:(Plan.node_label plan) (fun () ->
            run_scan_unit ctx ~table ~pred ~from)
      in
      materialized ~name:table res ~refs:[ (table, pred) ]
  | Plan.Guard { input; expected_rows; max_q_error; label }
    when scan_leaf input <> None ->
      let table, pred, from = Option.get (scan_leaf input) in
      let res =
        with_unit_span ctx ~label:(Plan.node_label plan) (fun () ->
            run_guarded_scan_unit ctx ~table ~pred ~from ~expected_rows ~max_q_error
              ~label ~subplan:input)
      in
      materialized ~name:table res ~refs:[ (table, pred) ]
  | Plan.Hash_join { build; probe; build_key; probe_key }
    when scan_leaf probe <> None ->
      (* The join's unit span brackets the whole fused unit, build subtree
         included; units nested under it must not attach their own spans
         or their deltas would be counted twice.  The inner ctx shares the
         meter and pool but drops the recorder; its morsel timings are
         copied back even if a nested guard fires. *)
      let inner = { ctx with obs = None } in
      let res =
        Fun.protect
          ~finally:(fun () -> ctx.morsel_seconds <- inner.morsel_seconds)
          (fun () ->
            with_unit_span ctx ~label:(Plan.node_label plan) (fun () ->
                run_fused_hash_join inner ~build
                  ~probe_leaf:(Option.get (scan_leaf probe))
                  ~build_key ~probe_key))
      in
      materialized ~name:"hash_join" res
        ~refs:(match scan_leaf probe with Some (t, p, _) -> [ (t, p) ] | None -> [])
  | Plan.Hash_join { build; probe; build_key; probe_key } ->
      (* Serial execution order: build before probe. *)
      let build = rewrite ctx build in
      let probe = rewrite ctx probe in
      Plan.Hash_join { build; probe; build_key; probe_key }
  | Plan.Merge_join { left; right; left_key; right_key } ->
      (* A clustered scan feeding a merge join satisfies the sort
         requirement through [output_sorted_on]'s shape check; replacing
         it with a Materialized leaf would hide the order and charge a
         sort serial execution doesn't.  Keep such sides serial. *)
      let side plan key =
        match Exec_common.output_sorted_on ctx.catalog plan with
        | Some k when k = key -> plan
        | _ -> rewrite ctx plan
      in
      let left = side left left_key in
      let right = side right right_key in
      Plan.Merge_join { left; right; left_key; right_key }
  | Plan.Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
      Plan.Indexed_nl_join
        { outer = rewrite ctx outer; outer_key; inner_table; inner_key; inner_pred }
  | Plan.Filter (input, pred) -> Plan.Filter (rewrite ctx input, pred)
  | Plan.Project (input, cols) -> Plan.Project (rewrite ctx input, cols)
  | Plan.Sort { input; keys } -> Plan.Sort { input = rewrite ctx input; keys }
  | Plan.Limit (input, n) -> Plan.Limit (rewrite ctx input, n)
  | Plan.Aggregate { input; group_by; aggs } ->
      Plan.Aggregate { input = rewrite ctx input; group_by; aggs }
  | Plan.Guard { input; expected_rows; max_q_error; label } ->
      Plan.Guard { input = rewrite ctx input; expected_rows; max_q_error; label }
  | Plan.Append parts -> Plan.Append (List.map (rewrite ctx) parts)
  | Plan.Scan _ | Plan.Scan_resume _ | Plan.Star_semijoin _ | Plan.Materialized _ ->
      plan

(* Run a whole subtree: rewrite (executing parallel units), then the
   residual through the serial materialized engine on the same meter.  The
   residual run is unobserved — the enclosing unit span owns its delta. *)
and run_plan ctx plan =
  let residual = rewrite ctx plan in
  Executor.run ~mode:Materialized ctx.catalog ctx.meter residual

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type report = {
  morsels : int;           (** parallel morsels executed *)
  morsel_seconds : float array;
      (** per-morsel simulated seconds, in absorb (morsel-unit) order *)
  serial_seconds : float;  (** simulated seconds charged outside morsels *)
  total_seconds : float;   (** the meter's movement across the whole run *)
}

let run_report ?obs (t : t) catalog meter plan =
  let ctx = { pool = t.pool; catalog; meter; obs; morsel_seconds = [] } in
  let before = (Cost.snapshot meter).Cost.seconds in
  let residual = rewrite ctx plan in
  let res = Executor.run ?obs ~mode:Materialized catalog meter residual in
  let total = (Cost.snapshot meter).Cost.seconds -. before in
  let morsel_seconds = Array.of_list (List.rev ctx.morsel_seconds) in
  let parallel = Array.fold_left ( +. ) 0.0 morsel_seconds in
  ( res,
    {
      morsels = Array.length morsel_seconds;
      morsel_seconds;
      serial_seconds = Float.max 0.0 (total -. parallel);
      total_seconds = total;
    } )

let run ?obs t catalog meter plan = fst (run_report ?obs t catalog meter plan)

(* Deterministic simulated makespan: morsels are assigned greedily, in
   morsel order, to the least-loaded of [domains] simulated domains; the
   non-morsel remainder is serial.  This is the repo's ground-truth
   "execution time" model applied to the parallel schedule — stable on
   any host, including single-core CI. *)
let makespan ~domains report =
  if domains < 1 then invalid_arg "Parallel.makespan: domains must be >= 1";
  let loads = Array.make domains 0.0 in
  Array.iter
    (fun s ->
      let best = ref 0 in
      for d = 1 to domains - 1 do
        if loads.(d) < loads.(!best) then best := d
      done;
      loads.(!best) <- loads.(!best) +. s)
    report.morsel_seconds;
  let busiest = Array.fold_left Float.max 0.0 loads in
  report.serial_seconds +. busiest
