open Rq_storage

type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Add_days of t * int

let col name = Col name
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.String s)
let date ~year ~month ~day = Const (Value.date_of_ymd ~year ~month ~day)

let columns expr =
  let rec go acc = function
    | Col name -> if List.mem name acc then acc else name :: acc
    | Const _ -> acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
    | Add_days (a, _) -> go acc a
  in
  List.rev (go [] expr)

type compiled = Relation.tuple -> Value.t

let arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | `Add -> Value.Int (x + y)
      | `Sub -> Value.Int (x - y)
      | `Mul -> Value.Int (x * y)
      | `Div -> if y = 0 then Value.Null else Value.Int (x / y))
  | a, b ->
      let x = Value.to_float a and y = Value.to_float b in
      (match op with
      | `Add -> Value.Float (x +. y)
      | `Sub -> Value.Float (x -. y)
      | `Mul -> Value.Float (x *. y)
      | `Div -> if y = 0.0 then Value.Null else Value.Float (x /. y))

let rec const_value = function
  | Col _ -> None
  | Const v -> Some v
  | Add (a, b) -> const_binop `Add a b
  | Sub (a, b) -> const_binop `Sub a b
  | Mul (a, b) -> const_binop `Mul a b
  | Div (a, b) -> const_binop `Div a b
  | Add_days (a, days) -> (
      match const_value a with
      | Some Value.Null -> Some Value.Null
      | Some v -> Some (Value.add_days v days)
      | None -> None)

and const_binop op a b =
  match (const_value a, const_value b) with
  | Some va, Some vb -> Some (arith op va vb)
  | _ -> None

let rec compile schema = function
  | Col name ->
      let pos = Schema.index_of schema name in
      fun tuple -> tuple.(pos)
  | Const v -> fun _ -> v
  | Add (a, b) -> compile_binop schema `Add a b
  | Sub (a, b) -> compile_binop schema `Sub a b
  | Mul (a, b) -> compile_binop schema `Mul a b
  | Div (a, b) -> compile_binop schema `Div a b
  | Add_days (a, days) ->
      let fa = compile schema a in
      fun tuple -> (
        match fa tuple with
        | Value.Null -> Value.Null
        | v -> Value.add_days v days)

and compile_binop schema op a b =
  let fa = compile schema a and fb = compile schema b in
  fun tuple -> arith op (fa tuple) (fb tuple)

let eval schema expr tuple = compile schema expr tuple

(* Columnar compilation: the same tree, but evaluated against a batch's
   column arrays at a physical row index — no tuple is materialized.  Kept
   structurally parallel to [compile] so both planes compute bit-identical
   values (same operations in the same order). *)
type compiled_cols = Value.t array array -> int -> Value.t

let rec compile_cols schema = function
  | Col name ->
      let pos = Schema.index_of schema name in
      fun cols r -> cols.(pos).(r)
  | Const v -> fun _ _ -> v
  | Add (a, b) -> compile_cols_binop schema `Add a b
  | Sub (a, b) -> compile_cols_binop schema `Sub a b
  | Mul (a, b) -> compile_cols_binop schema `Mul a b
  | Div (a, b) -> compile_cols_binop schema `Div a b
  | Add_days (a, days) ->
      let fa = compile_cols schema a in
      fun cols r -> (
        match fa cols r with
        | Value.Null -> Value.Null
        | v -> Value.add_days v days)

and compile_cols_binop schema op a b =
  let fa = compile_cols schema a and fb = compile_cols schema b in
  fun cols r -> arith op (fa cols r) (fb cols r)

(* Canonical one-line rendering for structural keys (evidence memos, plan
   fingerprints).  Unlike [pp], the output never depends on a formatter
   margin: equal expressions render identically everywhere. *)
let rec render = function
  | Col c -> "c:" ^ c
  | Const v -> "v:" ^ Value.to_string v
  | Add (a, b) -> "(+ " ^ render a ^ " " ^ render b ^ ")"
  | Sub (a, b) -> "(- " ^ render a ^ " " ^ render b ^ ")"
  | Mul (a, b) -> "(* " ^ render a ^ " " ^ render b ^ ")"
  | Div (a, b) -> "(/ " ^ render a ^ " " ^ render b ^ ")"
  | Add_days (e, d) -> Printf.sprintf "(+days %s %d)" (render e) d

let rec pp fmt = function
  | Col name -> Format.pp_print_string fmt name
  | Const v -> Value.pp fmt v
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Add_days (a, d) -> Format.fprintf fmt "(%a + %d days)" pp a d
