(** Column-major vector batches with selection bitsets — the data unit of
    the vectorized streaming plane ({!Vectorize}).

    A batch's logical content is its selected rows in ascending physical
    order.  Column arrays are shared and never mutated: scan batches alias
    the pinned chunk's columns zero-copy, projection drops column
    references without copying, and filters refine only [sel].  Producers
    never emit an empty selection. *)

open Rq_storage

type t = {
  cols : Value.t array array;  (** [cols.(c).(r)]; each length >= [n_rows] *)
  n_rows : int;                (** physical rows covered by [sel] *)
  sel : Bitset.t;              (** length [n_rows]; the live rows *)
}

val selected : t -> int
(** [Bitset.popcount sel] — the batch's logical row count, the amount every
    per-tuple cost charge is denominated in. *)

val of_chunk : Chunk.t -> sel:Bitset.t -> t
(** Zero-copy over the chunk's columns; [sel] must have length
    [Chunk.n_rows]. *)

val chunk_view : t -> Chunk.t
(** Zero-copy chunk view over the physical rows, so {!Chunk_scan.bitmap}
    kernels evaluate predicate atoms on any batch. *)

val of_tuples : Relation.tuple array -> t
(** Transpose a non-empty row batch; full selection.  How row-plane
    operators' outputs re-enter the vectorized plane. *)

val to_tuples : t -> Relation.tuple array
(** Materialize the selected rows as fresh tuples, ascending — the late
    materialization at breaker boundaries and final output. *)

val project : t -> int array -> t
(** Keep only the given column positions (shared arrays, no copy). *)

val take : t -> int -> t
(** Keep the first [k] selected rows ({!Bitset.take} on [sel]). *)
