open Rq_storage

(* Per-group accumulators: count, sum, min, max per aggregate slot. *)
type state = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

type compiled =
  [ `Count
  | `Count_expr of Relation.tuple -> Value.t
  | `Sum of Relation.tuple -> Value.t
  | `Avg of Relation.tuple -> Value.t
  | `Min of Relation.tuple -> Value.t
  | `Max of Relation.tuple -> Value.t ]

(* The columnar twin of [compiled]: evaluate at a physical row index of a
   batch's column arrays, no tuple materialized. *)
type compiled_cols =
  [ `Count
  | `Count_expr of Expr.compiled_cols
  | `Sum of Expr.compiled_cols
  | `Avg of Expr.compiled_cols
  | `Min of Expr.compiled_cols
  | `Max of Expr.compiled_cols ]

type t = {
  group_positions : int list;
  agg_fns : compiled list;
  agg_fns_cols : compiled_cols list;
  group_by : string list;
  groups : (Value.t list, state array) Hashtbl.t;
}

let create schema ~group_by ~aggs =
  let group_positions = List.map (Schema.index_of schema) group_by in
  let agg_fns =
    List.map
      (fun { Plan.fn; _ } ->
        match fn with
        | Plan.Count_star -> `Count
        | Plan.Count e -> `Count_expr (Expr.compile schema e)
        | Plan.Sum e -> `Sum (Expr.compile schema e)
        | Plan.Avg e -> `Avg (Expr.compile schema e)
        | Plan.Min e -> `Min (Expr.compile schema e)
        | Plan.Max e -> `Max (Expr.compile schema e))
      aggs
  in
  let agg_fns_cols =
    List.map
      (fun { Plan.fn; _ } ->
        match fn with
        | Plan.Count_star -> `Count
        | Plan.Count e -> `Count_expr (Expr.compile_cols schema e)
        | Plan.Sum e -> `Sum (Expr.compile_cols schema e)
        | Plan.Avg e -> `Avg (Expr.compile_cols schema e)
        | Plan.Min e -> `Min (Expr.compile_cols schema e)
        | Plan.Max e -> `Max (Expr.compile_cols schema e))
      aggs
  in
  (* Initial size 64 matters: both engines feed identical key sequences into
     identically-sized tables, so the final fold order — hence the output
     row order — is byte-identical between them. *)
  { group_positions; agg_fns; agg_fns_cols; group_by; groups = Hashtbl.create 64 }

let fresh_state () = { count = 0; sum = 0.0; min_v = Value.Null; max_v = Value.Null }

let touch t key =
  match Hashtbl.find_opt t.groups key with
  | Some states -> states
  | None ->
      let states = Array.init (List.length t.agg_fns) (fun _ -> fresh_state ()) in
      Hashtbl.add t.groups key states;
      states

let feed_tuple t tup =
  let key = List.map (fun p -> tup.(p)) t.group_positions in
  let states = touch t key in
  List.iteri
    (fun i fn ->
      let st = states.(i) in
      match fn with
      | `Count -> st.count <- st.count + 1
      | `Count_expr f -> (
          match f tup with Value.Null -> () | _ -> st.count <- st.count + 1)
      | `Sum f | `Avg f -> (
          match f tup with
          | Value.Null -> ()
          | v ->
              st.count <- st.count + 1;
              st.sum <- st.sum +. Value.to_float v)
      | `Min f -> (
          match f tup with
          | Value.Null -> ()
          | v ->
              if Value.is_null st.min_v || Value.compare v st.min_v < 0 then st.min_v <- v)
      | `Max f -> (
          match f tup with
          | Value.Null -> ()
          | v ->
              if Value.is_null st.max_v || Value.compare v st.max_v > 0 then st.max_v <- v))
    t.agg_fns

let feed t tuples = Array.iter (feed_tuple t) tuples

(* Columnar feed: same key construction and same match arms as [feed_tuple],
   visiting selected rows in ascending order — so the key-insertion sequence
   into [groups], and hence the final fold order, is identical to the row
   plane's. *)
let feed_cols t cols sel =
  Bitset.iter_set
    (fun r ->
      let key = List.map (fun p -> cols.(p).(r)) t.group_positions in
      let states = touch t key in
      List.iteri
        (fun i fn ->
          let st = states.(i) in
          match fn with
          | `Count -> st.count <- st.count + 1
          | `Count_expr f -> (
              match f cols r with Value.Null -> () | _ -> st.count <- st.count + 1)
          | `Sum f | `Avg f -> (
              match f cols r with
              | Value.Null -> ()
              | v ->
                  st.count <- st.count + 1;
                  st.sum <- st.sum +. Value.to_float v)
          | `Min f -> (
              match f cols r with
              | Value.Null -> ()
              | v ->
                  if Value.is_null st.min_v || Value.compare v st.min_v < 0 then
                    st.min_v <- v)
          | `Max f -> (
              match f cols r with
              | Value.Null -> ()
              | v ->
                  if Value.is_null st.max_v || Value.compare v st.max_v > 0 then
                    st.max_v <- v))
        t.agg_fns_cols)
    sel

let finalize t =
  (* SQL semantics: grand-total aggregation yields one row even on empty
     input. *)
  if t.group_by = [] && Hashtbl.length t.groups = 0 then ignore (touch t []);
  let finalize_states states =
    List.mapi
      (fun i fn ->
        let st = states.(i) in
        match fn with
        | `Count | `Count_expr _ -> Value.Int st.count
        | `Sum _ -> if st.count = 0 then Value.Null else Value.Float st.sum
        | `Avg _ ->
            if st.count = 0 then Value.Null
            else Value.Float (st.sum /. float_of_int st.count)
        | `Min _ -> st.min_v
        | `Max _ -> st.max_v)
      t.agg_fns
  in
  Hashtbl.fold
    (fun key states acc -> Array.of_list (key @ finalize_states states) :: acc)
    t.groups []
