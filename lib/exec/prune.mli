(** Zone-map chunk pruning: decide from a chunk's per-column
    min/max/null-count summary whether a predicate can possibly match any
    of its rows.  Mirrors [Pred.compile]'s collapsed three-valued logic
    (Null comparisons are false, [Contains] matches only Strings) and uses
    [Value.compare]'s total order, so a skip decision can never disagree
    with row-at-a-time evaluation — the qcheck law
    [not chunk_may_match ⇒ no matching row in chunk]. *)

open Rq_storage

val enabled : bool ref
(** Global toggle (default [true]).  The differential suite re-runs
    identical plans with pruning off and asserts multiset-identical
    results; {!Chunk_scan} consults this when planning scan tasks. *)

val chunk_may_match : Schema.t -> Zone_map.t -> Pred.t -> bool
(** Conservative: [false] only when provably no row in the summarized
    chunk satisfies the predicate.  Raises [Not_found] if the predicate
    references a column absent from the schema (as [Pred.compile] would). *)
