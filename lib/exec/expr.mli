(** Scalar expressions over tuples.

    Sampling-based estimation works for "almost any type of query predicate,
    including arithmetic expressions, substring matches" (paper Sec. 3.2) —
    this expression language is what makes that true here: predicates are
    evaluated directly on sample tuples, so anything expressible is
    estimable. *)

open Rq_storage

type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Add_days of t * int  (** date arithmetic, e.g. ['07/01/97' + ?] *)

val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val date : year:int -> month:int -> day:int -> t

val columns : t -> string list
(** Column names referenced, without duplicates. *)

val const_value : t -> Value.t option
(** Folds an expression with no column references to its value; [None] if
    any column is referenced. *)

type compiled = Relation.tuple -> Value.t

val compile : Schema.t -> t -> compiled
(** Resolves column positions once; raises [Not_found] for unknown columns.
    Arithmetic on Null yields Null (SQL semantics). *)

val eval : Schema.t -> t -> Relation.tuple -> Value.t

type compiled_cols = Value.t array array -> int -> Value.t
(** Columnar form: evaluate at physical row [r] of a batch's column arrays
    without materializing a tuple. *)

val compile_cols : Schema.t -> t -> compiled_cols
(** Same operations in the same order as {!compile}, so both planes compute
    bit-identical values. *)

val render : t -> string
(** Canonical one-line rendering for structural keys.  Unlike {!pp}, the
    output never depends on formatter state: equal expressions render
    identically across call sites and processes. *)

val pp : Format.formatter -> t -> unit
