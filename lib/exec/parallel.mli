(** Morsel-driven parallel execution on OCaml 5 domains.

    Sequential scans (and resumed scans, guards directly over them, and
    hash joins probing straight off them) are partitioned into
    page-aligned morsels pulled by a work-stealing {!Domain_pool}; each
    morsel charges a private {!Cost} meter and the snapshots are absorbed
    into the caller's meter in morsel-index order, so merged totals are
    deterministic and identical — counter for counter — to the serial
    materialized engine.  Everything the morsel engine does not cover runs
    through {!Executor.run} in [Materialized] mode on the same meter, over
    [Plan.Materialized] leaves holding the parallel units' outputs.

    Correctness bar (enforced by test_parallel and the differential
    suite): results are multiset-identical to the serial engines, cost
    counters equal the materialized engine's exactly, span/meter
    reconciliation holds to 1e-9, and a guard whose violating morsel is
    in flight on another domain still fires with a contiguous reusable
    prefix and an exact [Scan_resume] continuation. *)

open Rq_storage

type t
(** A parallel executor bound to a domain pool. *)

val create : ?domains:int -> unit -> t
(** [domains] defaults to 1 (serial over the identical code path). *)

val of_pool : Domain_pool.t -> t
val domains : t -> int
val shutdown : t -> unit

val run :
  ?obs:Rq_obs.Recorder.t -> t -> Catalog.t -> Cost.t -> Plan.t -> Exec_common.result
(** Execute the plan, charging the meter exactly as
    [Executor.run ~mode:Materialized] would.  Raises
    {!Exec_common.Guard_violation} when a guard fires; for a guard over a
    scan the violation carries the contiguous completed morsel prefix and
    a [Scan_resume] starting at the prefix's page-aligned end.  With
    [?obs], each parallel unit attaches one leaf span (total = self = the
    unit's meter delta) and the residual plan is spanned by the serial
    engine, so [Recorder.sum_self] over the roots reconciles with the
    meter. *)

type report = {
  morsels : int;           (** parallel morsels executed *)
  morsel_seconds : float array;
      (** per-morsel simulated seconds, in morsel-unit order *)
  serial_seconds : float;  (** simulated seconds charged outside morsels *)
  total_seconds : float;   (** the meter's movement across the whole run *)
}

val run_report :
  ?obs:Rq_obs.Recorder.t ->
  t ->
  Catalog.t ->
  Cost.t ->
  Plan.t ->
  Exec_common.result * report
(** {!run} plus the morsel-level timing decomposition the throughput and
    exec benches feed into {!makespan}. *)

val makespan : domains:int -> report -> float
(** Deterministic simulated wall-clock of the run on [domains] domains:
    morsels are greedily assigned, in order, to the least-loaded simulated
    domain; the serial remainder is added whole.  [makespan ~domains:1]
    equals [total_seconds] (up to float association), so
    [makespan ~domains:1 r /. makespan ~domains:n r] is the speedup the
    bench gates report.  Stable on any host, including single-core CI. *)
