(* A column-major vector batch with a selection bitset — the unit of data
   flow in the vectorized streaming plane.

   [cols] are shared, never-mutated column arrays (for scan batches they
   are the pinned chunk's own columns, zero-copy; eviction after unpin only
   drops the pool's reference, the GC keeps shared columns alive).  [sel]
   picks out the live rows among the [n_rows] physical rows; the logical
   content of a batch is exactly its selected rows in ascending physical
   order.  Producers never emit a batch with an empty selection, mirroring
   the row plane's no-empty-batches invariant.

   Rows are materialized as tuples only at breaker boundaries (hash build
   sides, sorts, merge inputs) and at final output — late materialization
   is where the wall-clock win comes from; the cost counters never see the
   difference because they charge logical rows, not representation. *)

open Rq_storage

type t = {
  cols : Value.t array array;  (* cols.(c).(r), each length >= n_rows *)
  n_rows : int;                (* physical rows covered by [sel] *)
  sel : Bitset.t;              (* length = n_rows; the live rows *)
}

let selected t = Bitset.popcount t.sel

let of_chunk chunk ~sel =
  { cols = Chunk.columns chunk; n_rows = Chunk.n_rows chunk; sel }

(* View the physical rows as a chunk so the per-chunk bitmap kernels
   ({!Chunk_scan.bitmap}) run on any batch unchanged.  Zero-copy. *)
let chunk_view t = Chunk.of_columns ~n_rows:t.n_rows t.cols

let of_tuples (tuples : Relation.tuple array) =
  let n = Array.length tuples in
  if n = 0 then invalid_arg "Vbatch.of_tuples: empty batch";
  let arity = Array.length tuples.(0) in
  let cols = Array.init arity (fun c -> Array.init n (fun r -> tuples.(r).(c))) in
  { cols; n_rows = n; sel = Bitset.full n }

let to_tuples t =
  let k = selected t in
  let arity = Array.length t.cols in
  let out = Array.make k [||] in
  let j = ref 0 in
  Bitset.iter_set
    (fun i ->
      let row = Array.make arity Value.Null in
      for c = 0 to arity - 1 do
        row.(c) <- t.cols.(c).(i)
      done;
      out.(!j) <- row;
      incr j)
    t.sel;
  out

let project t positions =
  { t with cols = Array.map (fun p -> t.cols.(p)) positions }

let take t k = { t with sel = Bitset.take t.sel k }
