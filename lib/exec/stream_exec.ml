(* The pull-based streaming engine.

   Every plan node compiles to a {!Stream.t}; pipelined operators (scans,
   joins' probe sides, filter/project/limit/guard) emit batches as they are
   pulled, and true pipeline breakers (hash build side, sort, aggregate,
   merge-join inputs) drain their children on the first pull.  Charging is
   arranged so a full drain moves every {!Cost} counter exactly as the
   materialized engine does — the charges are the same amounts attached to
   the same physical actions, just incrementally — while early exit
   (a satisfied LIMIT, a mid-stream guard violation) simply stops pulling
   and leaves the unperformed work uncharged.

   Span accounting cannot use the recorder's open/close stack: operator
   windows interleave (a parent's pull nests each child pull inside it, but
   successive pulls of one operator are not contiguous).  Instead each
   operator accumulates its inclusive metric delta across all its pulls;
   child windows always sit inside parent windows, so the accumulated
   totals nest exactly like stack spans and self = total - children sums
   telescope back to the meter. *)

open Rq_storage

let batch_rows = 1024

(* First heap-fetch chunk after an index probe.  Fetches ramp up
   geometrically to [batch_rows], so a LIMIT above an ordered index scan
   stops after a few small chunks instead of paying for a full batch of
   random pages — the early-exit discount the cost model applies to
   ordered pipelines under LIMIT.  A full drain charges the same total
   either way. *)
let fetch_ramp_rows = 64

type ctx = { catalog : Catalog.t; meter : Cost.t; obs : Rq_obs.Recorder.t option }

let record ctx event =
  match ctx.obs with None -> () | Some r -> Rq_obs.Recorder.record r event

let meter_metrics ctx = Cost.to_metrics (Cost.snapshot ctx.meter)

(* ------------------------------------------------------------------ *)
(* Span accounting                                                     *)
(* ------------------------------------------------------------------ *)

type span_node = {
  sp_label : string;
  mutable sp_rows : int;
  mutable sp_total : Rq_obs.Metrics.t;
  mutable sp_aborted : bool;
  sp_children : span_node list;
}

let wrap_spans ctx node (op : Stream.t) =
  let next_batch () =
    let before = meter_metrics ctx in
    match op.Stream.next_batch () with
    | r ->
        node.sp_total <-
          Rq_obs.Metrics.add node.sp_total (Rq_obs.Metrics.sub (meter_metrics ctx) before);
        (match r with
        | Some b -> node.sp_rows <- node.sp_rows + Array.length b
        | None -> ());
        r
    | exception e ->
        node.sp_total <-
          Rq_obs.Metrics.add node.sp_total (Rq_obs.Metrics.sub (meter_metrics ctx) before);
        node.sp_aborted <- true;
        raise e
  in
  { op with Stream.next_batch }

(* Same accumulation for the vectorized plane; rows are logical (selected)
   rows, so span row counts match the row plane batch for batch. *)
let wrap_vspans ctx node (op : Stream.Vec.t) =
  let next_batch () =
    let before = meter_metrics ctx in
    match op.Stream.Vec.next_batch () with
    | r ->
        node.sp_total <-
          Rq_obs.Metrics.add node.sp_total (Rq_obs.Metrics.sub (meter_metrics ctx) before);
        (match r with
        | Some vb -> node.sp_rows <- node.sp_rows + Vbatch.selected vb
        | None -> ());
        r
    | exception e ->
        node.sp_total <-
          Rq_obs.Metrics.add node.sp_total (Rq_obs.Metrics.sub (meter_metrics ctx) before);
        node.sp_aborted <- true;
        raise e
  in
  { op with Stream.Vec.next_batch }

let rec finalize_span node =
  let children = List.map finalize_span node.sp_children in
  let self =
    List.fold_left
      (fun acc (c : Rq_obs.Recorder.span) -> Rq_obs.Metrics.sub acc c.Rq_obs.Recorder.total)
      node.sp_total children
  in
  {
    Rq_obs.Recorder.label = node.sp_label;
    rows = (if node.sp_aborted then -1 else node.sp_rows);
    aborted = node.sp_aborted;
    total = node.sp_total;
    self;
    children;
  }

(* ------------------------------------------------------------------ *)
(* Generic plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let drain_all (op : Stream.t) =
  let acc = ref [] in
  let rec go () =
    match op.Stream.next_batch () with
    | Some b ->
        acc := b :: !acc;
        go ()
    | None -> ()
  in
  go ();
  Array.concat (List.rev !acc)

(* Emit an already-computed array in batch_rows slices (breaker outputs,
   materialized leaves). *)
let slice_emitter arr =
  let pos = ref 0 in
  fun () ->
    let n = Array.length !arr in
    if !pos >= n then None
    else begin
      let k = min batch_rows (n - !pos) in
      let b = Array.sub !arr !pos k in
      pos := !pos + k;
      Some b
    end

let finish_batch ctx out =
  match out with
  | [] -> None
  | rows ->
      let arr = Array.of_list (List.rev rows) in
      Cost.charge_output_tuples ctx.meter (Array.length arr);
      Some arr

(* ------------------------------------------------------------------ *)
(* Leaf operators                                                      *)
(* ------------------------------------------------------------------ *)

(* Sequential scan starting at [from] (0 for a whole-table scan), walking
   the shared chunk-task plan: a zone-map-skipped chunk charges
   pages_skipped (free) and is stepped over whole; a read chunk is pulled
   pinned from the buffer pool and sliced into batches, charging CPU per
   source row and each heap page the first time a row on it is touched.
   A full drain thus charges exactly the planner's read-page/read-row
   totals (= page_count/row_count when nothing prunes), and stopping
   early leaves the tail pages unread.  Matching rows inside a read chunk
   come from a per-chunk bitmap computed once per chunk. *)
let seq_scan_stream ctx ~table ~pred ~from =
  let rel = Catalog.find_table ctx.catalog table in
  let n = Relation.row_count rel in
  let from = min (max 0 from) n in
  let rpp = Relation.rows_per_page rel in
  let bitmap = Chunk_scan.bitmap (Relation.schema rel) pred in
  let tasks = ref (Chunk_scan.tasks ~from rel pred) in
  let pos = ref from in
  (* Absolute index of the next page to charge; starts at the page holding
     [from], so a resume re-reads the split page (as before). *)
  let page_frontier = ref (from / rpp) in
  (* Per-chunk bitmap cache: (chunk index, bits). *)
  let cached_bits = ref (-1, None) in
  let next_batch () =
    let out = ref [] in
    while !out = [] && !tasks <> [] do
      match !tasks with
      | [] -> ()
      | t :: rest ->
          if t.Chunk_scan.skip then begin
            Cost.charge_pages_skipped ctx.meter t.pages;
            page_frontier := Chunk_scan.pages_upto rpp t.hi;
            pos := t.hi;
            tasks := rest
          end
          else begin
            let stop = min t.hi (!pos + batch_rows) in
            Cost.charge_cpu_tuples ctx.meter (stop - !pos);
            let pages_now = Chunk_scan.pages_upto rpp stop in
            if pages_now > !page_frontier then begin
              Cost.charge_seq_pages ctx.meter (pages_now - !page_frontier);
              page_frontier := pages_now
            end;
            let base = Relation.chunk_start rel t.ci in
            Relation.with_chunk ~seq:true rel t.ci (fun chunk ->
                let bits =
                  match (bitmap, !cached_bits) with
                  | None, _ -> None
                  | Some _, (ci, bits) when ci = t.ci -> bits
                  | Some bm, _ ->
                      let bits = Some (bm chunk) in
                      cached_bits := (t.ci, bits);
                      bits
                in
                for rid = !pos to stop - 1 do
                  let r = rid - base in
                  let keep =
                    match bits with None -> true | Some b -> Bitset.get b r
                  in
                  if keep then out := Chunk.get chunk r :: !out
                done);
            pos := stop;
            if stop >= t.hi then tasks := rest
          end
    done;
    match !out with [] -> None | rows -> Some (Array.of_list (List.rev rows))
  in
  Stream.make
    ~schema:(Exec_common.qualified_schema ctx.catalog table)
    ~progress:(fun () ->
      if n = from then 1.0 else float_of_int (!pos - from) /. float_of_int (n - from))
    ~resume:(fun () ->
      if !pos >= n then None else Some (Plan.Scan_resume { table; pred; from_rid = !pos }))
    next_batch

(* Index access paths probe up-front (the B-tree descent is one action),
   then fetch matching RIDs chunk by chunk. *)
let rid_fetch_stream ctx ~table ~pred ~probe_rids =
  let rel = Catalog.find_table ctx.catalog table in
  let check = Pred.compile (Relation.schema rel) pred in
  let rids = ref [||] in
  let started = ref false in
  let fpos = ref 0 in
  let chunk = ref fetch_ramp_rows in
  let next_batch () =
    if not !started then begin
      started := true;
      rids := probe_rids ()
    end;
    let arr = !rids in
    let total = Array.length arr in
    let out = ref [] in
    while !out = [] && !fpos < total do
      let stop = min total (!fpos + !chunk) in
      chunk := min batch_rows (2 * !chunk);
      let k = stop - !fpos in
      Cost.charge_random_pages ctx.meter k;
      Cost.charge_cpu_tuples ctx.meter k;
      for i = !fpos to stop - 1 do
        let tup = Relation.get rel arr.(i) in
        if check tup then out := tup :: !out
      done;
      fpos := stop
    done;
    match !out with [] -> None | rows -> Some (Array.of_list (List.rev rows))
  in
  Stream.make
    ~schema:(Exec_common.qualified_schema ctx.catalog table)
    ~progress:(fun () ->
      if not !started then 0.0
      else if Array.length !rids = 0 then 1.0
      else float_of_int !fpos /. float_of_int (Array.length !rids))
    next_batch

let index_range_stream ctx ~table ~pred ~probe =
  let idx = Exec_common.find_index_exn ctx.catalog ~table ~column:probe.Plan.column in
  rid_fetch_stream ctx ~table ~pred ~probe_rids:(fun () ->
      Rid_set.to_array (Exec_common.probe_index ctx.meter idx probe))

(* Ordered scan: pay for the whole leaf level up-front (the index walk is
   one bulk action), then fetch rows lazily in key order — a LIMIT above
   stops pulling and the unfetched heap pages stay uncharged. *)
let index_order_stream ctx ~table ~pred ~column ~descending =
  let idx = Exec_common.find_index_exn ctx.catalog ~table ~column in
  rid_fetch_stream ctx ~table ~pred ~probe_rids:(fun () ->
      Cost.charge_index_probes ctx.meter 1;
      Cost.charge_index_entries ctx.meter (Index.entry_count idx);
      Cost.charge_seq_pages ctx.meter (Index.leaf_page_count idx);
      Index.ordered_rids idx ~descending)

let index_intersect_stream ctx ~table ~pred ~probes =
  rid_fetch_stream ctx ~table ~pred ~probe_rids:(fun () ->
      match probes with
      | [] | [ _ ] -> invalid_arg "Executor: Index_intersect needs >= 2 probes"
      | first :: rest ->
          let idx0 = Exec_common.find_index_exn ctx.catalog ~table ~column:first.Plan.column in
          let acc = ref (Exec_common.probe_index ctx.meter idx0 first) in
          List.iter
            (fun probe ->
              let idx =
                Exec_common.find_index_exn ctx.catalog ~table ~column:probe.Plan.column
              in
              let rids = Exec_common.probe_index ctx.meter idx probe in
              Cost.charge_cpu_tuples ctx.meter
                (Rid_set.cardinality !acc + Rid_set.cardinality rids);
              acc := Rid_set.inter !acc rids)
            rest;
          Rid_set.to_array !acc)

let materialized_stream ~schema ~tuples =
  (* Already paid for when it was first produced; reading it back is free in
     the simulated model. *)
  let arr = ref tuples in
  let emit = slice_emitter arr in
  let n = Array.length tuples in
  let emitted = ref 0 in
  Stream.make ~schema
    ~progress:(fun () -> if n = 0 then 1.0 else float_of_int !emitted /. float_of_int n)
    (fun () ->
      match emit () with
      | Some b ->
          emitted := !emitted + Array.length b;
          Some b
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let hash_join_stream ctx ~(bop : Stream.t) ~(pop : Stream.t) ~build_key ~probe_key =
  let schema = Schema.concat bop.Stream.schema pop.Stream.schema in
  let bpos = Schema.index_of bop.Stream.schema build_key in
  let ppos = Schema.index_of pop.Stream.schema probe_key in
  let table = ref None in
  let ensure_table () =
    match !table with
    | Some t -> t
    | None ->
        let build_rows = drain_all bop in
        let t = Hashtbl.create (max 16 (Array.length build_rows)) in
        Array.iter
          (fun tup ->
            let key = tup.(bpos) in
            if not (Value.is_null key) then Hashtbl.add t key tup)
          build_rows;
        Cost.charge_hash_build ctx.meter (Array.length build_rows);
        table := Some t;
        t
  in
  let drained = ref false in
  let next_batch () =
    let t = ensure_table () in
    let out = ref [] in
    while !out = [] && not !drained do
      match pop.Stream.next_batch () with
      | None -> drained := true
      | Some pb ->
          Cost.charge_hash_probe ctx.meter (Array.length pb);
          Array.iter
            (fun ptup ->
              let key = ptup.(ppos) in
              if not (Value.is_null key) then
                (* find_all yields reverse insertion order; reverse it back so
                   duplicate-key matches come out in build-input order. *)
                List.iter
                  (fun btup -> out := Exec_common.concat_tuples btup ptup :: !out)
                  (List.rev (Hashtbl.find_all t key)))
            pb
    done;
    finish_batch ctx !out
  in
  Stream.make ~schema ~progress:pop.Stream.progress next_batch

let merge_join_stream ctx ~left_plan ~right_plan ~(lop : Stream.t) ~(rop : Stream.t)
    ~left_key ~right_key =
  let schema = Schema.concat lop.Stream.schema rop.Stream.schema in
  let lpos = Schema.index_of lop.Stream.schema left_key in
  let rpos = Schema.index_of rop.Stream.schema right_key in
  let state = ref None in
  let ensure () =
    match !state with
    | Some s -> s
    | None ->
        let lrows = drain_all lop in
        let rrows = drain_all rop in
        let ensure_sorted rows pos already =
          if already then rows
          else begin
            Cost.charge_sort ctx.meter (Array.length rows);
            let copy = Array.copy rows in
            Array.sort (fun a b -> Value.compare a.(pos) b.(pos)) copy;
            copy
          end
        in
        let ltups =
          ensure_sorted lrows lpos
            (Exec_common.output_sorted_on ctx.catalog left_plan = Some left_key)
        in
        let rtups =
          ensure_sorted rrows rpos
            (Exec_common.output_sorted_on ctx.catalog right_plan = Some right_key)
        in
        Cost.charge_merge_tuples ctx.meter (Array.length ltups + Array.length rtups);
        let s = (ltups, rtups, ref 0, ref 0) in
        state := Some s;
        s
  in
  let next_batch () =
    let ltups, rtups, i, j = ensure () in
    let nl = Array.length ltups and nr = Array.length rtups in
    let out = ref [] in
    while !out = [] && !i < nl && !j < nr do
      let kv = ltups.(!i).(lpos) and rv = rtups.(!j).(rpos) in
      if Value.is_null kv then incr i
      else if Value.is_null rv then incr j
      else
        let c = Value.compare kv rv in
        if c < 0 then incr i
        else if c > 0 then incr j
        else begin
          (* Emit the cross product of the equal-key runs as one batch. *)
          let i_end = ref !i in
          while !i_end < nl && Value.compare ltups.(!i_end).(lpos) kv = 0 do
            incr i_end
          done;
          let j_end = ref !j in
          while !j_end < nr && Value.compare rtups.(!j_end).(rpos) rv = 0 do
            incr j_end
          done;
          for a = !i to !i_end - 1 do
            for b = !j to !j_end - 1 do
              out := Exec_common.concat_tuples ltups.(a) rtups.(b) :: !out
            done
          done;
          i := !i_end;
          j := !j_end
        end
    done;
    finish_batch ctx !out
  in
  Stream.make ~schema
    ~progress:(fun () ->
      match !state with
      | None -> 0.0
      | Some (ltups, _, i, _) ->
          if Array.length ltups = 0 then 1.0
          else float_of_int !i /. float_of_int (Array.length ltups))
    next_batch

let inl_join_stream ctx ~(oop : Stream.t) ~outer_key ~inner_table ~inner_key ~inner_pred =
  let inner_rel = Catalog.find_table ctx.catalog inner_table in
  let idx = Exec_common.find_index_exn ctx.catalog ~table:inner_table ~column:inner_key in
  let check = Pred.compile (Relation.schema inner_rel) inner_pred in
  let schema =
    Schema.concat oop.Stream.schema (Exec_common.qualified_schema ctx.catalog inner_table)
  in
  let opos = Schema.index_of oop.Stream.schema outer_key in
  let drained = ref false in
  let next_batch () =
    let out = ref [] in
    while !out = [] && not !drained do
      match oop.Stream.next_batch () with
      | None -> drained := true
      | Some ob ->
          Array.iter
            (fun otup ->
              let key = otup.(opos) in
              if not (Value.is_null key) then begin
                Cost.charge_index_probes ctx.meter 1;
                let rids = Index.probe_eq idx key in
                Cost.charge_index_entries ctx.meter (Rid_set.cardinality rids);
                let fetched = Exec_common.fetch_rids ctx.meter inner_rel rids in
                Array.iter
                  (fun itup ->
                    if check itup then out := Exec_common.concat_tuples otup itup :: !out)
                  fetched
              end)
            ob
    done;
    finish_batch ctx !out
  in
  Stream.make ~schema ~progress:oop.Stream.progress next_batch

let star_semijoin_stream ctx ~fact ~fact_pred ~dims =
  let catalog = ctx.catalog and meter = ctx.meter in
  let fact_rel = Catalog.find_table catalog fact in
  let fact_schema = Relation.schema fact_rel in
  let check_fact = Pred.compile fact_schema fact_pred in
  let schema =
    List.fold_left
      (fun acc { Plan.dim_table; _ } ->
        Schema.concat acc (Exec_common.qualified_schema catalog dim_table))
      (Exec_common.qualified_schema catalog fact)
      dims
  in
  let state = ref None in
  (* Phases 1 and 2 (dimension scans, semijoin probes, RID intersection) are
     inherently bulk; only the phase-3 fact fetch streams. *)
  let ensure () =
    match !state with
    | Some s -> s
    | None ->
        let dim_results =
          List.map
            (fun { Plan.dim_table; dim_pred; fact_fk } ->
              let dim_rel = Catalog.find_table catalog dim_table in
              let pk =
                match Catalog.primary_key catalog dim_table with
                | Some pk -> pk
                | None ->
                    invalid_arg
                      (Printf.sprintf "Executor: dim %s has no primary key" dim_table)
              in
              let pk_pos = Schema.index_of (Relation.schema dim_rel) pk in
              let lookup = Hashtbl.create 64 in
              let keys = ref [] in
              let match_chunk =
                Chunk_scan.matcher (Relation.schema dim_rel) dim_pred
              in
              List.iter
                (fun (t : Chunk_scan.task) ->
                  if t.skip then Cost.charge_pages_skipped meter t.pages
                  else begin
                    Cost.charge_seq_pages meter t.pages;
                    Cost.charge_cpu_tuples meter (t.hi - t.lo);
                    Relation.with_chunk ~seq:true dim_rel t.ci
                      (fun chunk ->
                        match_chunk chunk (fun _r tup ->
                            Hashtbl.replace lookup tup.(pk_pos) tup;
                            keys := tup.(pk_pos) :: !keys))
                  end)
                (Chunk_scan.tasks dim_rel dim_pred);
              Cost.charge_hash_build meter (Hashtbl.length lookup);
              let idx = Exec_common.find_index_exn catalog ~table:fact ~column:fact_fk in
              let rid_chunks =
                List.map
                  (fun key ->
                    Cost.charge_index_probes meter 1;
                    let rids = Index.probe_eq idx key in
                    Cost.charge_index_entries meter (Rid_set.cardinality rids);
                    Rid_set.to_array rids)
                  !keys
              in
              let semijoin_rids = Rid_set.of_unsorted (Array.concat rid_chunks) in
              (fact_fk, lookup, semijoin_rids))
            dims
        in
        let surviving =
          match dim_results with
          | [] -> invalid_arg "Executor: Star_semijoin with no dimensions"
          | (_, _, first) :: rest ->
              List.fold_left
                (fun acc (_, _, rids) ->
                  Cost.charge_cpu_tuples meter
                    (Rid_set.cardinality acc + Rid_set.cardinality rids);
                  Rid_set.inter acc rids)
                first rest
        in
        let fk_positions =
          List.map
            (fun (fact_fk, lookup, _) -> (Schema.index_of fact_schema fact_fk, lookup))
            dim_results
        in
        let s = (Rid_set.to_array surviving, fk_positions, ref 0) in
        state := Some s;
        s
  in
  let next_batch () =
    let rids, fk_positions, fpos = ensure () in
    let total = Array.length rids in
    let nfk = List.length fk_positions in
    let out = ref [] in
    while !out = [] && !fpos < total do
      let stop = min total (!fpos + batch_rows) in
      let k = stop - !fpos in
      Cost.charge_random_pages meter k;
      Cost.charge_cpu_tuples meter k;
      for i = !fpos to stop - 1 do
        let ftup = Relation.get fact_rel rids.(i) in
        if check_fact ftup then begin
          Cost.charge_hash_probe meter nfk;
          let dim_tuples =
            List.map (fun (pos, lookup) -> Hashtbl.find_opt lookup ftup.(pos)) fk_positions
          in
          if List.for_all Option.is_some dim_tuples then
            let row =
              List.fold_left
                (fun acc d -> Exec_common.concat_tuples acc (Option.get d))
                ftup dim_tuples
            in
            out := row :: !out
        end
      done;
      fpos := stop
    done;
    finish_batch ctx !out
  in
  Stream.make ~schema
    ~progress:(fun () ->
      match !state with
      | None -> 0.0
      | Some (rids, _, fpos) ->
          if Array.length rids = 0 then 1.0
          else float_of_int !fpos /. float_of_int (Array.length rids))
    next_batch

(* ------------------------------------------------------------------ *)
(* Unary operators                                                     *)
(* ------------------------------------------------------------------ *)

let filter_stream ctx ~(iop : Stream.t) ~pred =
  let check = Pred.compile iop.Stream.schema pred in
  let drained = ref false in
  let next_batch () =
    let out = ref None in
    while !out = None && not !drained do
      match iop.Stream.next_batch () with
      | None -> drained := true
      | Some b ->
          Cost.charge_cpu_tuples ctx.meter (Array.length b);
          let kept = Array.of_seq (Seq.filter check (Array.to_seq b)) in
          if Array.length kept > 0 then out := Some kept
    done;
    !out
  in
  Stream.make ~schema:iop.Stream.schema ~progress:iop.Stream.progress next_batch

let project_stream ctx ~(iop : Stream.t) ~cols =
  let positions = List.map (Schema.index_of iop.Stream.schema) cols in
  let schema = Schema.project iop.Stream.schema cols in
  let next_batch () =
    match iop.Stream.next_batch () with
    | None -> None
    | Some b ->
        Cost.charge_cpu_tuples ctx.meter (Array.length b);
        Some
          (Array.map
             (fun tup -> Array.of_list (List.map (fun p -> tup.(p)) positions))
             b)
  in
  Stream.make ~schema ~progress:iop.Stream.progress next_batch

let sort_stream ctx ~(iop : Stream.t) ~keys =
  let positions =
    List.map
      (fun { Plan.sort_column; descending } ->
        (Schema.index_of iop.Stream.schema sort_column, descending))
      keys
  in
  let compare_rows a b =
    let rec go = function
      | [] -> 0
      | (pos, descending) :: rest ->
          let c = Value.compare a.(pos) b.(pos) in
          if c <> 0 then if descending then -c else c else go rest
    in
    go positions
  in
  let sorted = ref [||] in
  let started = ref false in
  let emit = slice_emitter sorted in
  let next_batch () =
    if not !started then begin
      started := true;
      let rows = drain_all iop in
      Cost.charge_sort ctx.meter (Array.length rows);
      (* Stable, so ties keep the input order (deterministic output). *)
      let indexed = Array.mapi (fun i tup -> (i, tup)) rows in
      Array.sort
        (fun (i, a) (j, b) ->
          let c = compare_rows a b in
          if c <> 0 then c else Int.compare i j)
        indexed;
      sorted := Array.map snd indexed
    end;
    emit ()
  in
  Stream.make ~schema:iop.Stream.schema
    ~progress:(fun () -> if !started then 1.0 else 0.0)
    next_batch

let limit_stream ctx ~(iop : Stream.t) ~n =
  let remaining = ref (max 0 n) in
  let next_batch () =
    (* The whole point: once satisfied, never pull upstream again. *)
    if !remaining <= 0 then None
    else
      match iop.Stream.next_batch () with
      | None ->
          remaining := 0;
          None
      | Some b ->
          let keep = min !remaining (Array.length b) in
          Cost.charge_cpu_tuples ctx.meter keep;
          remaining := !remaining - keep;
          Some (if keep = Array.length b then b else Array.sub b 0 keep)
  in
  Stream.make ~schema:iop.Stream.schema ~progress:iop.Stream.progress next_batch

let aggregate_stream ctx ~plan ~(iop : Stream.t) ~group_by ~aggs =
  let out_schema = Plan.schema_of ctx.catalog plan in
  let rows = ref [||] in
  let started = ref false in
  let emit = slice_emitter rows in
  let next_batch () =
    if not !started then begin
      started := true;
      let agg = Agg.create iop.Stream.schema ~group_by ~aggs in
      let rec pull () =
        match iop.Stream.next_batch () with
        | Some b ->
            Cost.charge_hash_build ctx.meter (Array.length b);
            Agg.feed agg b;
            pull ()
        | None -> ()
      in
      pull ();
      let out = Agg.finalize agg in
      Cost.charge_output_tuples ctx.meter (List.length out);
      rows := Array.of_list out
    end;
    emit ()
  in
  Stream.make ~schema:out_schema
    ~progress:(fun () -> if !started then 1.0 else 0.0)
    next_batch

let guard_stream ctx ~(iop : Stream.t) ~input_plan ~expected_rows ~max_q_error ~label =
  let count = ref 0 in
  let buffered = ref [] in
  let drained = ref false in
  (* Overflow becomes unrecoverable the moment actual > expected * max_q:
     the count only grows, so the drain-time two-sided check would fire
     too.  Underflow can only be judged at drain. *)
  let overflow_bound = max_q_error *. Float.max expected_rows 0.5 in
  let fire ~complete q =
    record ctx
      (Rq_obs.Trace.Guard_fired
         { label; expected_rows; actual_rows = !count; q_error = q });
    let result =
      {
        Exec_common.schema = iop.Stream.schema;
        tuples = Array.concat (List.rev !buffered);
      }
    in
    raise
      (Exec_common.Guard_violation
         {
           label;
           expected_rows;
           actual_rows = !count;
           q_error = q;
           result;
           subplan = input_plan;
           complete;
           progress = (if complete then 1.0 else iop.Stream.progress ());
           resume = (if complete then None else iop.Stream.resume ());
         })
  in
  let next_batch () =
    if !drained then None
    else
      match iop.Stream.next_batch () with
      | Some b ->
          (* The guard inspects every row once (a counter pass); checked
             before the batch is handed on, so a violated bound never leaks
             rows downstream. *)
          Cost.charge_cpu_tuples ctx.meter (Array.length b);
          count := !count + Array.length b;
          buffered := b :: !buffered;
          if float_of_int !count > overflow_bound then
            fire ~complete:false (Plan.q_error ~expected:expected_rows ~actual:!count)
          else Some b
      | None ->
          drained := true;
          let q = Plan.q_error ~expected:expected_rows ~actual:!count in
          if q > max_q_error then fire ~complete:true q
          else begin
            record ctx
              (Rq_obs.Trace.Guard_ok
                 { label; expected_rows; actual_rows = !count; q_error = q });
            None
          end
  in
  Stream.make ~schema:iop.Stream.schema ~progress:iop.Stream.progress
    ~resume:iop.Stream.resume next_batch

let append_stream ~schema parts =
  let rem = ref parts in
  let done_parts = ref 0 in
  let total = List.length parts in
  let rec next_batch () =
    match !rem with
    | [] -> None
    | (op : Stream.t) :: rest -> (
        match op.Stream.next_batch () with
        | Some b -> Some b
        | None ->
            rem := rest;
            incr done_parts;
            next_batch ())
  in
  Stream.make ~schema
    ~progress:(fun () ->
      if total = 0 then 1.0 else float_of_int !done_parts /. float_of_int total)
    next_batch

(* ------------------------------------------------------------------ *)
(* Vectorized operators                                                *)
(* ------------------------------------------------------------------ *)

(* The vectorized plane carries {!Vbatch.t}s — column slices plus a
   selection bitset — between operators, materializing tuples only at
   breaker boundaries (hash builds, sorts, merge inputs) and final output.

   Counter parity is structural, not coincidental: every vectorized
   operator charges the same counter the same amount at the same point in
   the pull sequence as its row twin, denominated in logical (selected)
   rows.  The scan emits one batch per (chunk ∩ batch_rows window), exactly
   the row scan's slicing, so per-batch logical counts — and hence guard
   fire points, progress fractions and resume positions — are identical
   between planes.  Plane conversions charge nothing: representation is
   free in the cost model. *)

let stream_of_vec (vop : Stream.Vec.t) =
  Stream.make ~schema:vop.Stream.Vec.schema ~close:vop.Stream.Vec.close
    ~progress:vop.Stream.Vec.progress ~resume:vop.Stream.Vec.resume (fun () ->
      match vop.Stream.Vec.next_batch () with
      | None -> None
      | Some vb -> Some (Vbatch.to_tuples vb))

let vec_of_stream (op : Stream.t) =
  Stream.Vec.make ~schema:op.Stream.schema ~close:op.Stream.close
    ~progress:op.Stream.progress ~resume:op.Stream.resume (fun () ->
      match op.Stream.next_batch () with
      | None -> None
      | Some b -> Some (Vbatch.of_tuples b))

let drain_all_vec (vop : Stream.Vec.t) =
  let acc = ref [] in
  let rec go () =
    match vop.Stream.Vec.next_batch () with
    | Some vb ->
        acc := Vbatch.to_tuples vb :: !acc;
        go ()
    | None -> ()
  in
  go ();
  Array.concat (List.rev !acc)

(* Identical control flow and charge sites to [seq_scan_stream]; the only
   difference is what a window becomes: instead of materializing matching
   rows with [Chunk.get], the chunk's column arrays are shared zero-copy
   and the window's matches become the selection ([bitmap ∧ window]).
   Zero-match windows are stepped over (charged, not emitted) exactly as
   the row scan's empty-out windows are. *)
let seq_scan_vstream ctx ~table ~pred ~from =
  let rel = Catalog.find_table ctx.catalog table in
  let n = Relation.row_count rel in
  let from = min (max 0 from) n in
  let rpp = Relation.rows_per_page rel in
  let bitmap = Chunk_scan.bitmap (Relation.schema rel) pred in
  let tasks = ref (Chunk_scan.tasks ~from rel pred) in
  let pos = ref from in
  let page_frontier = ref (from / rpp) in
  let cached_bits = ref (-1, None) in
  let next_batch () =
    let out = ref None in
    while !out = None && !tasks <> [] do
      match !tasks with
      | [] -> ()
      | t :: rest ->
          if t.Chunk_scan.skip then begin
            Cost.charge_pages_skipped ctx.meter t.pages;
            page_frontier := Chunk_scan.pages_upto rpp t.hi;
            pos := t.hi;
            tasks := rest
          end
          else begin
            let stop = min t.hi (!pos + batch_rows) in
            Cost.charge_cpu_tuples ctx.meter (stop - !pos);
            let pages_now = Chunk_scan.pages_upto rpp stop in
            if pages_now > !page_frontier then begin
              Cost.charge_seq_pages ctx.meter (pages_now - !page_frontier);
              page_frontier := pages_now
            end;
            let base = Relation.chunk_start rel t.ci in
            Relation.with_chunk ~seq:true rel t.ci (fun chunk ->
                let bits =
                  match (bitmap, !cached_bits) with
                  | None, _ -> None
                  | Some _, (ci, bits) when ci = t.ci -> bits
                  | Some bm, _ ->
                      let bits = Some (bm chunk) in
                      cached_bits := (t.ci, bits);
                      bits
                in
                let lo = !pos - base and hi = stop - base in
                let sel =
                  match bits with
                  | None -> Bitset.window (Chunk.n_rows chunk) ~lo ~hi
                  | Some b -> Bitset.inter_window b ~lo ~hi
                in
                if Bitset.popcount sel > 0 then
                  out := Some (Vbatch.of_chunk chunk ~sel));
            pos := stop;
            if stop >= t.hi then tasks := rest
          end
    done;
    !out
  in
  Stream.Vec.make
    ~schema:(Exec_common.qualified_schema ctx.catalog table)
    ~progress:(fun () ->
      if n = from then 1.0 else float_of_int (!pos - from) /. float_of_int (n - from))
    ~resume:(fun () ->
      if !pos >= n then None else Some (Plan.Scan_resume { table; pred; from_rid = !pos }))
    next_batch

let materialized_vstream ~schema ~tuples =
  let arr = ref tuples in
  let emit = slice_emitter arr in
  let n = Array.length tuples in
  let emitted = ref 0 in
  Stream.Vec.make ~schema
    ~progress:(fun () -> if n = 0 then 1.0 else float_of_int !emitted /. float_of_int n)
    (fun () ->
      match emit () with
      | Some b ->
          emitted := !emitted + Array.length b;
          Some (Vbatch.of_tuples b)
      | None -> None)

(* Predicate atoms run as per-column bitmap kernels over the batch's
   physical rows; the result ANDs into the selection.  Rows already
   deselected are evaluated by the kernel but never observed — the charge
   is the arriving logical rows, same as the row filter's batch length. *)
let filter_vstream ctx ~(iop : Stream.Vec.t) ~pred =
  let bitmap = Chunk_scan.bitmap iop.Stream.Vec.schema pred in
  let drained = ref false in
  let next_batch () =
    let out = ref None in
    while !out = None && not !drained do
      match iop.Stream.Vec.next_batch () with
      | None -> drained := true
      | Some vb ->
          Cost.charge_cpu_tuples ctx.meter (Vbatch.selected vb);
          let sel =
            match bitmap with
            | None -> vb.Vbatch.sel
            | Some bm -> Bitset.logand vb.Vbatch.sel (bm (Vbatch.chunk_view vb))
          in
          if Bitset.popcount sel > 0 then out := Some { vb with Vbatch.sel }
    done;
    !out
  in
  Stream.Vec.make ~schema:iop.Stream.Vec.schema ~progress:iop.Stream.Vec.progress
    next_batch

(* Projection drops column references — no per-row work at all. *)
let project_vstream ctx ~(iop : Stream.Vec.t) ~cols =
  let positions =
    Array.of_list (List.map (Schema.index_of iop.Stream.Vec.schema) cols)
  in
  let schema = Schema.project iop.Stream.Vec.schema cols in
  let next_batch () =
    match iop.Stream.Vec.next_batch () with
    | None -> None
    | Some vb ->
        Cost.charge_cpu_tuples ctx.meter (Vbatch.selected vb);
        Some (Vbatch.project vb positions)
  in
  Stream.Vec.make ~schema ~progress:iop.Stream.Vec.progress next_batch

let limit_vstream ctx ~(iop : Stream.Vec.t) ~n =
  let remaining = ref (max 0 n) in
  let next_batch () =
    if !remaining <= 0 then None
    else
      match iop.Stream.Vec.next_batch () with
      | None ->
          remaining := 0;
          None
      | Some vb ->
          let k = Vbatch.selected vb in
          let keep = min !remaining k in
          Cost.charge_cpu_tuples ctx.meter keep;
          remaining := !remaining - keep;
          Some (if keep = k then vb else Vbatch.take vb keep)
  in
  Stream.Vec.make ~schema:iop.Stream.Vec.schema ~progress:iop.Stream.Vec.progress
    next_batch

let guard_vstream ctx ~(iop : Stream.Vec.t) ~input_plan ~expected_rows ~max_q_error
    ~label =
  let count = ref 0 in
  let buffered = ref [] in
  let drained = ref false in
  let overflow_bound = max_q_error *. Float.max expected_rows 0.5 in
  let fire ~complete q =
    record ctx
      (Rq_obs.Trace.Guard_fired
         { label; expected_rows; actual_rows = !count; q_error = q });
    (* The carried partial result materializes only now, when the guard
       fires — the one point the vectorized plane must hand tuples to
       recovery.  [buffered] is newest-first, so rev_map restores arrival
       order. *)
    let result =
      {
        Exec_common.schema = iop.Stream.Vec.schema;
        tuples = Array.concat (List.rev_map Vbatch.to_tuples !buffered);
      }
    in
    raise
      (Exec_common.Guard_violation
         {
           label;
           expected_rows;
           actual_rows = !count;
           q_error = q;
           result;
           subplan = input_plan;
           complete;
           progress = (if complete then 1.0 else iop.Stream.Vec.progress ());
           resume = (if complete then None else iop.Stream.Vec.resume ());
         })
  in
  let next_batch () =
    if !drained then None
    else
      match iop.Stream.Vec.next_batch () with
      | Some vb ->
          let k = Vbatch.selected vb in
          Cost.charge_cpu_tuples ctx.meter k;
          count := !count + k;
          buffered := vb :: !buffered;
          if float_of_int !count > overflow_bound then
            fire ~complete:false (Plan.q_error ~expected:expected_rows ~actual:!count)
          else Some vb
      | None ->
          drained := true;
          let q = Plan.q_error ~expected:expected_rows ~actual:!count in
          if q > max_q_error then fire ~complete:true q
          else begin
            record ctx
              (Rq_obs.Trace.Guard_ok
                 { label; expected_rows; actual_rows = !count; q_error = q });
            None
          end
  in
  Stream.Vec.make ~schema:iop.Stream.Vec.schema ~progress:iop.Stream.Vec.progress
    ~resume:iop.Stream.Vec.resume next_batch

(* Build side materializes (a hash table is a breaker); probing reads the
   key column directly at each selected index and the output batch is
   assembled column-major.  One output batch per match-bearing probe batch,
   matches in probe order × build-input order — the row join's order. *)
let hash_join_vstream ctx ~(bop : Stream.Vec.t) ~(pop : Stream.Vec.t) ~build_key
    ~probe_key =
  let schema = Schema.concat bop.Stream.Vec.schema pop.Stream.Vec.schema in
  let bpos = Schema.index_of bop.Stream.Vec.schema build_key in
  let ppos = Schema.index_of pop.Stream.Vec.schema probe_key in
  let barity = Schema.arity bop.Stream.Vec.schema in
  let table = ref None in
  let ensure_table () =
    match !table with
    | Some t -> t
    | None ->
        let build_rows = drain_all_vec bop in
        let n = Array.length build_rows in
        (* Columnarize the build side once; buckets hold build row indices
           (in build-input order) so probing is one [find_opt] plus an
           allocation-free walk over an int array per probe row. *)
        let bcols =
          Array.init barity (fun c -> Array.init n (fun r -> build_rows.(r).(c)))
        in
        let grouped = Hashtbl.create (max 16 n) in
        for r = 0 to n - 1 do
          let key = build_rows.(r).(bpos) in
          if not (Value.is_null key) then
            match Hashtbl.find_opt grouped key with
            | Some l -> Hashtbl.replace grouped key (r :: l)
            | None -> Hashtbl.replace grouped key [ r ]
        done;
        let buckets = Hashtbl.create (Hashtbl.length grouped) in
        Hashtbl.iter
          (fun key l -> Hashtbl.replace buckets key (Array.of_list (List.rev l)))
          grouped;
        Cost.charge_hash_build ctx.meter n;
        let t = (bcols, buckets) in
        table := Some t;
        t
  in
  let drained = ref false in
  let next_batch () =
    let bcols, buckets = ensure_table () in
    let result = ref None in
    while !result = None && not !drained do
      match pop.Stream.Vec.next_batch () with
      | None -> drained := true
      | Some vb ->
          let selected = Vbatch.selected vb in
          Cost.charge_hash_probe ctx.meter selected;
          let pcols = vb.Vbatch.cols in
          let pkey = pcols.(ppos) in
          (* Growable parallel index arrays (build row, probe row): matches
             land in probe order × build-input order, the row join's output
             order. *)
          let cap = ref (max 16 selected) and len = ref 0 in
          let bis = ref (Array.make !cap 0) and pis = ref (Array.make !cap 0) in
          let push r i =
            if !len = !cap then begin
              let cap' = 2 * !cap in
              let bis' = Array.make cap' 0 and pis' = Array.make cap' 0 in
              Array.blit !bis 0 bis' 0 !len;
              Array.blit !pis 0 pis' 0 !len;
              bis := bis';
              pis := pis';
              cap := cap'
            end;
            !bis.(!len) <- r;
            !pis.(!len) <- i;
            incr len
          in
          Bitset.iter_set
            (fun i ->
              let key = pkey.(i) in
              if not (Value.is_null key) then
                match Hashtbl.find_opt buckets key with
                | Some rows -> Array.iter (fun r -> push r i) rows
                | None -> ())
            vb.Vbatch.sel;
          let k = !len in
          if k > 0 then begin
            let bis = !bis and pis = !pis in
            let parity = Array.length pcols in
            let cols = Array.make (barity + parity) [||] in
            for c = 0 to barity - 1 do
              let src = bcols.(c) in
              let dst = Array.make k src.(bis.(0)) in
              for j = 1 to k - 1 do
                dst.(j) <- src.(bis.(j))
              done;
              cols.(c) <- dst
            done;
            for c = 0 to parity - 1 do
              let src = pcols.(c) in
              let dst = Array.make k src.(pis.(0)) in
              for j = 1 to k - 1 do
                dst.(j) <- src.(pis.(j))
              done;
              cols.(barity + c) <- dst
            done;
            Cost.charge_output_tuples ctx.meter k;
            result := Some { Vbatch.cols; n_rows = k; sel = Bitset.full k }
          end
    done;
    !result
  in
  Stream.Vec.make ~schema ~progress:pop.Stream.Vec.progress next_batch

let aggregate_vstream ctx ~plan ~(iop : Stream.Vec.t) ~group_by ~aggs =
  let out_schema = Plan.schema_of ctx.catalog plan in
  let rows = ref [||] in
  let started = ref false in
  let emit = slice_emitter rows in
  let next_batch () =
    if not !started then begin
      started := true;
      let agg = Agg.create iop.Stream.Vec.schema ~group_by ~aggs in
      let rec pull () =
        match iop.Stream.Vec.next_batch () with
        | Some vb ->
            Cost.charge_hash_build ctx.meter (Vbatch.selected vb);
            Agg.feed_cols agg vb.Vbatch.cols vb.Vbatch.sel;
            pull ()
        | None -> ()
      in
      pull ();
      let out = Agg.finalize agg in
      Cost.charge_output_tuples ctx.meter (List.length out);
      rows := Array.of_list out
    end;
    match emit () with None -> None | Some b -> Some (Vbatch.of_tuples b)
  in
  Stream.Vec.make ~schema:out_schema
    ~progress:(fun () -> if !started then 1.0 else 0.0)
    next_batch

let append_vstream ~schema parts =
  let rem = ref parts in
  let done_parts = ref 0 in
  let total = List.length parts in
  let rec next_batch () =
    match !rem with
    | [] -> None
    | (op : Stream.Vec.t) :: rest -> (
        match op.Stream.Vec.next_batch () with
        | Some vb -> Some vb
        | None ->
            rem := rest;
            incr done_parts;
            next_batch ())
  in
  Stream.Vec.make ~schema
    ~progress:(fun () ->
      if total = 0 then 1.0 else float_of_int !done_parts /. float_of_int total)
    next_batch

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Compile a plan to its operator tree; with a recorder attached, every
   operator is wrapped in a span accumulator whose children follow the
   same order {!Explain_analyze} walks plan children in. *)
let rec compile ctx plan : Stream.t * span_node option =
  let op, child_spans =
    match plan with
    | Plan.Scan { table; access; pred } -> (
        match access with
        | Plan.Seq_scan -> (seq_scan_stream ctx ~table ~pred ~from:0, [])
        | Plan.Index_range probe -> (index_range_stream ctx ~table ~pred ~probe, [])
        | Plan.Index_intersect probes -> (index_intersect_stream ctx ~table ~pred ~probes, [])
        | Plan.Index_order { column; descending } ->
            (index_order_stream ctx ~table ~pred ~column ~descending, []))
    | Plan.Scan_resume { table; pred; from_rid } ->
        (seq_scan_stream ctx ~table ~pred ~from:from_rid, [])
    | Plan.Materialized { schema; tuples; _ } -> (materialized_stream ~schema ~tuples, [])
    | Plan.Hash_join { build; probe; build_key; probe_key } ->
        let bop, bspan = compile ctx build in
        let pop, pspan = compile ctx probe in
        (hash_join_stream ctx ~bop ~pop ~build_key ~probe_key, [ bspan; pspan ])
    | Plan.Merge_join { left; right; left_key; right_key } ->
        let lop, lspan = compile ctx left in
        let rop, rspan = compile ctx right in
        ( merge_join_stream ctx ~left_plan:left ~right_plan:right ~lop ~rop ~left_key
            ~right_key,
          [ lspan; rspan ] )
    | Plan.Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
        let oop, ospan = compile ctx outer in
        (inl_join_stream ctx ~oop ~outer_key ~inner_table ~inner_key ~inner_pred, [ ospan ])
    | Plan.Star_semijoin { fact; fact_pred; dims } ->
        (star_semijoin_stream ctx ~fact ~fact_pred ~dims, [])
    | Plan.Filter (input, pred) ->
        let iop, ispan = compile ctx input in
        (filter_stream ctx ~iop ~pred, [ ispan ])
    | Plan.Project (input, cols) ->
        let iop, ispan = compile ctx input in
        (project_stream ctx ~iop ~cols, [ ispan ])
    | Plan.Sort { input; keys } ->
        let iop, ispan = compile ctx input in
        (sort_stream ctx ~iop ~keys, [ ispan ])
    | Plan.Limit (input, n) ->
        let iop, ispan = compile ctx input in
        (limit_stream ctx ~iop ~n, [ ispan ])
    | Plan.Aggregate { input; group_by; aggs } ->
        let iop, ispan = compile ctx input in
        (aggregate_stream ctx ~plan ~iop ~group_by ~aggs, [ ispan ])
    | Plan.Guard { input; expected_rows; max_q_error; label } ->
        let iop, ispan = compile ctx input in
        ( guard_stream ctx ~iop ~input_plan:input ~expected_rows ~max_q_error ~label,
          [ ispan ] )
    | Plan.Append parts ->
        let compiled = List.map (compile ctx) parts in
        let schema =
          match compiled with
          | [] -> invalid_arg "Executor: Append needs at least one input"
          | (op, _) :: _ -> op.Stream.schema
        in
        (append_stream ~schema (List.map fst compiled), List.map snd compiled)
  in
  match ctx.obs with
  | None -> (op, None)
  | Some _ ->
      let node =
        {
          sp_label = Plan.node_label plan;
          sp_rows = 0;
          sp_total = Rq_obs.Metrics.zero;
          sp_aborted = false;
          sp_children = List.filter_map Fun.id child_spans;
        }
      in
      (wrap_spans ctx node op, Some node)

(* The vectorized compilation.  Scans, filter/project/limit/guard,
   hash join, aggregate, append and materialized leaves run natively on
   vector batches; index access paths, merge join, indexed-NL join, star
   semijoin and sort reuse the row implementations with their inputs and
   outputs converted at the operator boundary (they materialize tuples
   internally anyway, so a native rewrite would buy nothing).  The span
   tree mirrors [compile]'s exactly. *)
let rec compile_vec ctx plan : Stream.Vec.t * span_node option =
  let op, child_spans =
    match plan with
    | Plan.Scan { table; access; pred } -> (
        match access with
        | Plan.Seq_scan -> (seq_scan_vstream ctx ~table ~pred ~from:0, [])
        | Plan.Index_range probe ->
            (vec_of_stream (index_range_stream ctx ~table ~pred ~probe), [])
        | Plan.Index_intersect probes ->
            (vec_of_stream (index_intersect_stream ctx ~table ~pred ~probes), [])
        | Plan.Index_order { column; descending } ->
            (vec_of_stream (index_order_stream ctx ~table ~pred ~column ~descending), []))
    | Plan.Scan_resume { table; pred; from_rid } ->
        (seq_scan_vstream ctx ~table ~pred ~from:from_rid, [])
    | Plan.Materialized { schema; tuples; _ } -> (materialized_vstream ~schema ~tuples, [])
    | Plan.Hash_join { build; probe; build_key; probe_key } ->
        let bop, bspan = compile_vec ctx build in
        let pop, pspan = compile_vec ctx probe in
        (hash_join_vstream ctx ~bop ~pop ~build_key ~probe_key, [ bspan; pspan ])
    | Plan.Merge_join { left; right; left_key; right_key } ->
        let lop, lspan = compile_vec ctx left in
        let rop, rspan = compile_vec ctx right in
        ( vec_of_stream
            (merge_join_stream ctx ~left_plan:left ~right_plan:right
               ~lop:(stream_of_vec lop) ~rop:(stream_of_vec rop) ~left_key ~right_key),
          [ lspan; rspan ] )
    | Plan.Indexed_nl_join { outer; outer_key; inner_table; inner_key; inner_pred } ->
        let oop, ospan = compile_vec ctx outer in
        ( vec_of_stream
            (inl_join_stream ctx ~oop:(stream_of_vec oop) ~outer_key ~inner_table
               ~inner_key ~inner_pred),
          [ ospan ] )
    | Plan.Star_semijoin { fact; fact_pred; dims } ->
        (vec_of_stream (star_semijoin_stream ctx ~fact ~fact_pred ~dims), [])
    | Plan.Filter (input, pred) ->
        let iop, ispan = compile_vec ctx input in
        (filter_vstream ctx ~iop ~pred, [ ispan ])
    | Plan.Project (input, cols) ->
        let iop, ispan = compile_vec ctx input in
        (project_vstream ctx ~iop ~cols, [ ispan ])
    | Plan.Sort { input; keys } ->
        let iop, ispan = compile_vec ctx input in
        (vec_of_stream (sort_stream ctx ~iop:(stream_of_vec iop) ~keys), [ ispan ])
    | Plan.Limit (input, n) ->
        let iop, ispan = compile_vec ctx input in
        (limit_vstream ctx ~iop ~n, [ ispan ])
    | Plan.Aggregate { input; group_by; aggs } ->
        let iop, ispan = compile_vec ctx input in
        (aggregate_vstream ctx ~plan ~iop ~group_by ~aggs, [ ispan ])
    | Plan.Guard { input; expected_rows; max_q_error; label } ->
        let iop, ispan = compile_vec ctx input in
        ( guard_vstream ctx ~iop ~input_plan:input ~expected_rows ~max_q_error ~label,
          [ ispan ] )
    | Plan.Append parts ->
        let compiled = List.map (compile_vec ctx) parts in
        let schema =
          match compiled with
          | [] -> invalid_arg "Executor: Append needs at least one input"
          | (op, _) :: _ -> op.Stream.Vec.schema
        in
        (append_vstream ~schema (List.map fst compiled), List.map snd compiled)
  in
  match ctx.obs with
  | None -> (op, None)
  | Some _ ->
      let node =
        {
          sp_label = Plan.node_label plan;
          sp_rows = 0;
          sp_total = Rq_obs.Metrics.zero;
          sp_aborted = false;
          sp_children = List.filter_map Fun.id child_spans;
        }
      in
      (wrap_vspans ctx node op, Some node)

let run ?obs catalog meter plan =
  let ctx = { catalog; meter; obs } in
  if !Vectorize.enabled then begin
    let vop, span = compile_vec ctx plan in
    let attach () =
      match (ctx.obs, span) with
      | Some r, Some node -> Rq_obs.Recorder.attach_span r (finalize_span node)
      | _ -> ()
    in
    match drain_all_vec vop with
    | tuples ->
        attach ();
        { Exec_common.schema = vop.Stream.Vec.schema; tuples }
    | exception e ->
        attach ();
        raise e
  end
  else begin
    let op, span = compile ctx plan in
    let attach () =
      match (ctx.obs, span) with
      | Some r, Some node -> Rq_obs.Recorder.attach_span r (finalize_span node)
      | _ -> ()
    in
    match drain_all op with
    | tuples ->
        attach ();
        { Exec_common.schema = op.Stream.schema; tuples }
    | exception e ->
        attach ();
        raise e
  end
