(** Simulated execution-cost accounting.

    The paper evaluates estimation quality by the *execution times* of chosen
    plans on a commercial DBMS.  We substitute a deterministic cost meter:
    every operator charges calibrated simulated seconds for sequential page
    reads, random page reads and CPU work.  Constants are calibrated so that
    on a 6M-row lineitem-shaped table, a sequential-scan plan costs
    ~35 s + 3.5e-6 s/row and an index-intersection plan costs
    ~5 s + 3.5e-3 s/row — the paper's Section-5.1 model — putting their
    crossover at ~0.14% selectivity.

    [scale] lets a small generated table stand in for a large logical one:
    all charges are multiplied by (logical rows / actual rows), which is
    exact because every charge is linear in data volume. *)

type constants = {
  seq_page_read_s : float;     (** per sequentially-read 8 KiB page *)
  random_page_read_s : float;  (** per random page read (one RID fetch) *)
  cpu_tuple_s : float;         (** per tuple examined (predicate eval, copy) *)
  cpu_index_entry_s : float;   (** per index entry touched in a range scan *)
  index_probe_s : float;       (** per B-tree descent *)
  hash_build_s : float;        (** per tuple inserted into a hash table *)
  hash_probe_s : float;        (** per probe of a hash table *)
  merge_tuple_s : float;       (** per tuple advanced during a merge join *)
  sort_tuple_s : float;        (** per tuple·log2(n) when an input must be sorted *)
  output_tuple_s : float;      (** per result tuple produced *)
}

val default_constants : constants

type t
(** A mutable meter. *)

val create : ?constants:constants -> ?scale:float -> unit -> t
(** [scale] defaults to 1.0 and must be positive. *)

val constants : t -> constants
val scale : t -> float

val charge_seq_pages : t -> int -> unit
val charge_random_pages : t -> int -> unit
val charge_pages_skipped : t -> int -> unit
(** Pages of chunks a zone map let the scan skip entirely: counter only,
    zero simulated seconds.  Deterministic (pruning depends only on data
    and predicate), so it participates in counter-parity checks. *)

val charge_cpu_tuples : t -> int -> unit
val charge_index_entries : t -> int -> unit
val charge_index_probes : t -> int -> unit
val charge_hash_build : t -> int -> unit
val charge_hash_probe : t -> int -> unit
val charge_merge_tuples : t -> int -> unit
val charge_sort : t -> int -> unit
(** [charge_sort t n] charges n·log2(max n 2) sort-tuple units. *)

val charge_output_tuples : t -> int -> unit

val charge_seconds : t -> float -> unit
(** Raw charge, already in simulated seconds (still multiplied by scale). *)

type snapshot = {
  seconds : float;        (** total simulated time, scale applied *)
  seq_pages : int;
  random_pages : int;
  pages_skipped : int;    (** pages of zone-map-skipped chunks (free) *)
  cpu_tuples : int;
  index_probes : int;
  index_entries : int;    (** index entries touched by range/eq probes *)
  hash_build : int;
  hash_probe : int;
  merge_tuples : int;
  sort_tuples : int;      (** tuples handed to sorts *)
  output_tuples : int;
  sort_units : float;     (** accumulated n·log2(max n 2) sort work units *)
  extra_seconds : float;  (** raw [charge_seconds] charges, scale applied *)
}
(** Every charge kind carries a counter, so [seconds] is fully
    reconcilable: {!seconds_of_counters} recomputes it from the counters
    and the meter's constants.  [sort_units] keeps the log-weighted sort
    work (the one nonlinear charge) and [extra_seconds] the raw
    {!charge_seconds} contributions, closing the accounting. *)

val snapshot : t -> snapshot
val reset : t -> unit

val absorb : t -> snapshot -> unit
(** Add every counter (and the already-scaled seconds) of the snapshot to
    this meter.  The deterministic merge step of the morsel-parallel
    executor: per-morsel meters are absorbed in morsel-index order, making
    the merged totals independent of which domain ran which morsel. *)

val seconds_of_counters : constants:constants -> scale:float -> snapshot -> float
(** Recompute the snapshot's simulated seconds from its counters alone;
    matches [snapshot.seconds] up to float-summation-order error. *)

val to_metrics : snapshot -> Rq_obs.Metrics.t
(** Bridge into the observability layer's counter record (field-for-field). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
