open Rq_storage

type result = { schema : Schema.t; tuples : Relation.tuple array }

type violation = {
  label : string;
  expected_rows : float;
  actual_rows : int;
  q_error : float;
  result : result;
  subplan : Plan.t;
  complete : bool;
  progress : float;
  resume : Plan.t option;
}

exception Guard_violation of violation

let qualified_schema catalog table =
  Schema.qualify table (Relation.schema (Catalog.find_table catalog table))

(* Pages of index leaf level touched when [entries] of [total] entries are
   read: the matching entries are contiguous in key order. *)
let leaf_pages_touched idx entries =
  let total = Index.entry_count idx in
  if total = 0 || entries = 0 then 0
  else
    let pages = Index.leaf_page_count idx in
    max 1 (int_of_float (ceil (float_of_int entries /. float_of_int total *. float_of_int pages)))

let find_index_exn catalog ~table ~column =
  match Catalog.find_index catalog ~table ~column with
  | Some idx -> idx
  | None -> invalid_arg (Printf.sprintf "Executor: no index on %s.%s" table column)

(* Fetch heap rows by RID, charging one random page read per row (the paper's
   index-intersection cost model: each qualifying record needs a random disk
   read). *)
let fetch_rids meter rel rids =
  let count = Rid_set.cardinality rids in
  Cost.charge_random_pages meter count;
  Cost.charge_cpu_tuples meter count;
  let out = Array.make count [||] in
  let i = ref 0 in
  Rid_set.iter
    (fun rid ->
      out.(!i) <- Relation.get rel rid;
      incr i)
    rids;
  out

let probe_index meter idx { Plan.column = _; lo; hi } =
  Cost.charge_index_probes meter 1;
  let count = Index.probe_range_count idx ~lo ~hi in
  Cost.charge_index_entries meter count;
  Cost.charge_seq_pages meter (leaf_pages_touched idx count);
  Index.probe_range idx ~lo ~hi

(* The physical order a plan's output arrives in, if it is a clustered-key
   order the merge join can rely on.  Seq scans (resumed or not) emit heap
   order; index fetches emit RID order, which is also heap order. *)
let rec output_sorted_on catalog = function
  | Plan.Scan { table; _ } | Plan.Scan_resume { table; _ } -> (
      match Catalog.clustered_by catalog table with
      | Some col -> Some (table ^ "." ^ col)
      | None -> None)
  | Plan.Guard { input; _ } -> output_sorted_on catalog input
  | _ -> None

let concat_tuples a b =
  let out = Array.make (Array.length a + Array.length b) Value.Null in
  Array.blit a 0 out 0 (Array.length a);
  Array.blit b 0 out (Array.length a) (Array.length b);
  out

(* Page geometry of a scan resumed at [from]: the remainder re-reads the
   page the split point sits in (it was genuinely fetched twice), then the
   untouched tail.  [resume_pages rel ~from:0] equals [page_count rel]. *)
let resume_pages rel ~from =
  let rows = Relation.row_count rel in
  if from >= rows then 0
  else Relation.page_count rel - (from / Relation.rows_per_page rel)
