(** Boolean predicates over tuples (conjunctions, comparisons, BETWEEN,
    substring match).

    Predicates are evaluated both by the executor (to produce query results)
    and by the estimators (on histogram buckets or sample tuples). *)

open Rq_storage

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * Expr.t * Expr.t
  | Between of Expr.t * Expr.t * Expr.t  (** [Between (e, lo, hi)] = lo <= e <= hi *)
  | Contains of Expr.t * string          (** substring match *)
  | And of t list
  | Or of t list
  | Not of t

val eq : Expr.t -> Expr.t -> t
val lt : Expr.t -> Expr.t -> t
val le : Expr.t -> Expr.t -> t
val gt : Expr.t -> Expr.t -> t
val ge : Expr.t -> Expr.t -> t
val between : Expr.t -> Expr.t -> Expr.t -> t
val conj : t list -> t
(** Conjunction, flattening nested [And]s and dropping [True]. *)

val columns : t -> string list
(** Referenced column names, deduplicated. *)

val conjuncts : t -> t list
(** Top-level conjuncts ([t] itself when not a conjunction). *)

type compiled = Relation.tuple -> bool

val compile : Schema.t -> t -> compiled
(** Comparisons involving Null are false (SQL three-valued logic collapsed
    to WHERE semantics: only TRUE qualifies). *)

val eval : Schema.t -> t -> Relation.tuple -> bool

val rename_columns : (string -> string) -> t -> t
(** Rewrites every column reference (used to qualify base-table predicates as
    ["table.column"] above joins). *)

val render : t -> string
(** Canonical one-line rendering for structural keys (evidence memos,
    {!Rq_sql.Fingerprint}): nested And/Or flattened, operand lists sorted,
    [=]/[<>] operands ordered.  Predicates equal modulo conjunct order and
    comparison commutation render identically, and the output never depends
    on formatter state. *)

val pp : Format.formatter -> t -> unit
