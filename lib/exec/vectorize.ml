(* Global toggle for the vectorized (column-major batch) data plane in the
   streaming engine.  On by default; the row-at-a-time path stays as the
   comparison arm — the differential suite, the fuzzer's [vectorize] gene
   and the bench's vectorized section all re-run identical plans with the
   knob off and assert byte-identical results and cost counters. *)

let enabled = ref true

let with_vectorize value f =
  let saved = !enabled in
  enabled := value;
  Fun.protect ~finally:(fun () -> enabled := saved) f
