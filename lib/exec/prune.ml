(* Zone-map chunk pruning: decide from a chunk's per-column min/max/null
   summary whether a predicate can possibly match any row in it.

   Two dual analyses, both conservative:
   - [may_match]  is a *necessary* condition — [false] only when provably
     no row in the chunk satisfies the predicate;
   - [all_match]  is a *sufficient* condition — [true] only when provably
     every row does (needed under [Not], whose rows are exactly those
     where the inner predicate is false).

   Both mirror [Pred.compile]'s collapsed three-valued logic exactly:
   comparisons involving Null are false, [Contains] matches only String
   values, and [Value.compare]'s cross-type total order (Int and Float
   compare numerically) is used throughout, so a skip decision can never
   disagree with row-at-a-time evaluation. *)

open Rq_storage

(* Global toggle so the differential suite can re-run identical plans with
   pruning off and assert multiset-identical results. *)
let enabled = ref true

type col_zone = { lo : Value.t; hi : Value.t; nulls : int; n_rows : int }

let col_zone schema zm c =
  let cs = Zone_map.column zm (Schema.index_of schema c) in
  { lo = cs.Zone_map.lo; hi = cs.Zone_map.hi; nulls = cs.Zone_map.nulls;
    n_rows = Zone_map.n_rows zm }

let all_null z = z.nulls >= z.n_rows
let no_nulls z = z.nulls = 0

(* A [Cmp] side is usable when it is a bare column or folds to a constant
   (handles [Add_days (Const _, d)] and friends via [Expr.const_value]);
   anything else makes the atom unprunable. *)
type side = S_col of string | S_const of Value.t | S_opaque

let side_of expr =
  match expr with
  | Expr.Col c -> S_col c
  | e -> (match Expr.const_value e with Some v -> S_const v | None -> S_opaque)

let flip op =
  match op with
  | Pred.Eq -> Pred.Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(* col `op` v possibly true for some non-null value in [z.lo, z.hi]? *)
let cmp_col_const_may z op v =
  if all_null z || Value.is_null v then false
  else
    match op with
    | Pred.Eq -> Value.compare z.lo v <= 0 && Value.compare v z.hi <= 0
    | Ne -> not (Value.compare z.lo z.hi = 0 && Value.compare z.lo v = 0)
    | Lt -> Value.compare z.lo v < 0
    | Le -> Value.compare z.lo v <= 0
    | Gt -> Value.compare z.hi v > 0
    | Ge -> Value.compare z.hi v >= 0

(* col `op` v provably true for every row (which requires no nulls)? *)
let cmp_col_const_all z op v =
  (not (Value.is_null v))
  && no_nulls z
  &&
  match op with
  | Pred.Eq -> Value.compare z.lo v = 0 && Value.compare z.hi v = 0
  | Ne -> Value.compare v z.lo < 0 || Value.compare v z.hi > 0
  | Lt -> Value.compare z.hi v < 0
  | Le -> Value.compare z.hi v <= 0
  | Gt -> Value.compare z.lo v > 0
  | Ge -> Value.compare z.lo v >= 0

(* a `op` b possibly true given both columns' ranges (per-row both must be
   non-null, so either side all-null kills the atom)? *)
let cmp_col_col_may za op zb =
  if all_null za || all_null zb then false
  else
    match op with
    | Pred.Eq -> Value.compare za.lo zb.hi <= 0 && Value.compare zb.lo za.hi <= 0
    | Ne ->
        not
          (Value.compare za.lo za.hi = 0
          && Value.compare zb.lo zb.hi = 0
          && Value.compare za.lo zb.lo = 0)
    | Lt -> Value.compare za.lo zb.hi < 0
    | Le -> Value.compare za.lo zb.hi <= 0
    | Gt -> Value.compare za.hi zb.lo > 0
    | Ge -> Value.compare za.hi zb.lo >= 0

let cmp_holds op c =
  match op with
  | Pred.Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec may_match schema zm (pred : Pred.t) =
  match pred with
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      match (side_of a, side_of b) with
      | S_const va, S_const vb ->
          (not (Value.is_null va || Value.is_null vb))
          && cmp_holds op (Value.compare va vb)
      | S_col c, S_const v -> cmp_col_const_may (col_zone schema zm c) op v
      | S_const v, S_col c -> cmp_col_const_may (col_zone schema zm c) (flip op) v
      | S_col a, S_col b ->
          cmp_col_col_may (col_zone schema zm a) op (col_zone schema zm b)
      | _ -> true)
  | Between (e, lo_e, hi_e) -> (
      match (side_of e, side_of lo_e, side_of hi_e) with
      | S_const v, S_const lo, S_const hi ->
          (not (Value.is_null v || Value.is_null lo || Value.is_null hi))
          && Value.compare lo v <= 0 && Value.compare v hi <= 0
      | S_col c, S_const lo, S_const hi ->
          let z = col_zone schema zm c in
          if all_null z || Value.is_null lo || Value.is_null hi then false
          else Value.compare z.lo hi <= 0 && Value.compare lo z.hi <= 0
      | _ -> true)
  | Contains (e, _) -> (
      (* Ranges cannot disprove a substring match; only an all-null column
         (or a null/non-string constant) can. *)
      match side_of e with
      | S_col c -> not (all_null (col_zone schema zm c))
      | S_const (Value.String _) -> true
      | S_const _ -> false
      | S_opaque -> true)
  | And ps -> List.for_all (may_match schema zm) ps
  | Or ps -> List.exists (may_match schema zm) ps
  | Not p -> not (all_match schema zm p)

and all_match schema zm (pred : Pred.t) =
  match pred with
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      match (side_of a, side_of b) with
      | S_const va, S_const vb ->
          (not (Value.is_null va || Value.is_null vb))
          && cmp_holds op (Value.compare va vb)
      | S_col c, S_const v -> cmp_col_const_all (col_zone schema zm c) op v
      | S_const v, S_col c -> cmp_col_const_all (col_zone schema zm c) (flip op) v
      | _ -> false)
  | Between (e, lo_e, hi_e) -> (
      match (side_of e, side_of lo_e, side_of hi_e) with
      | S_const v, S_const lo, S_const hi ->
          (not (Value.is_null v || Value.is_null lo || Value.is_null hi))
          && Value.compare lo v <= 0 && Value.compare v hi <= 0
      | S_col c, S_const lo, S_const hi ->
          let z = col_zone schema zm c in
          no_nulls z
          && (not (Value.is_null lo || Value.is_null hi))
          && Value.compare lo z.lo <= 0 && Value.compare z.hi hi <= 0
      | _ -> false)
  | Contains _ -> false
  | And ps -> List.for_all (all_match schema zm) ps
  | Or ps -> List.exists (all_match schema zm) ps
  | Not p -> not (may_match schema zm p)

let chunk_may_match schema zm pred = may_match schema zm pred
