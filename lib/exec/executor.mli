(** Volcano-style plan execution with cost accounting.

    [run] materializes the plan's result and charges every page read, index
    probe and per-tuple operation to the supplied cost meter; the meter's
    accumulated simulated seconds are the "query execution time" that the
    experiments report. *)

open Rq_storage

type result = { schema : Schema.t; tuples : Relation.tuple array }

exception
  Guard_violation of {
    label : string;          (** the guard's label (guarded subplan shape) *)
    expected_rows : float;   (** optimizer's estimate at instrumentation time *)
    actual_rows : int;       (** what actually materialized *)
    q_error : float;         (** max(est/act, act/est), 0.5 floors *)
    result : result;         (** the materialized rows — reusable as a
                                 {!Plan.Materialized} leaf *)
    subplan : Plan.t;        (** the guarded subplan that produced them *)
  }
(** Raised by [run] when a {!Plan.Guard}'s q-error bound is exceeded.  All
    work up to the violation is already charged to the meter; the carried
    result lets a re-optimizer resume without repeating it. *)

val q_error : expected:float -> actual:int -> float
(** Alias of {!Plan.q_error} — the guard firing rule. *)

val run : ?obs:Rq_obs.Recorder.t -> Catalog.t -> Cost.t -> Plan.t -> result
(** Raises [Invalid_argument] on ill-formed plans (missing index, key out of
    scope); run [Plan.validate] first for a friendly error.  Raises
    [Guard_violation] when a guard fires.

    With [?obs], every plan node is wrapped in a recorder span whose metric
    delta is that subtree's meter movement, guards emit
    [Guard_ok]/[Guard_fired] trace events, and spans unwound by an exception
    are kept, marked aborted, so wasted work stays attributed. *)

val run_timed :
  Catalog.t ->
  ?constants:Cost.constants ->
  ?scale:float ->
  ?obs:Rq_obs.Recorder.t ->
  Plan.t ->
  result * Cost.snapshot
(** Convenience: fresh meter, run, snapshot. *)

val result_to_relation : name:string -> result -> Relation.t
