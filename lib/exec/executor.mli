(** Plan execution with cost accounting, in two engines sharing one cost
    model.

    [run] executes the plan and charges every page read, index probe and
    per-tuple operation to the supplied cost meter; the meter's accumulated
    simulated seconds are the "query execution time" that the experiments
    report.

    The default {!Streaming} engine ({!Stream_exec}) pulls batches through
    a pipelined operator tree: [Limit] stops pulling once satisfied and
    guards can fire mid-stream, so early-exit plans charge only the work
    actually performed.  The {!Materialized} engine computes every
    operator's full output bottom-up.  On plans that run to completion the
    two are equivalent by construction: same result bytes, same value in
    every cost counter. *)

open Rq_storage

type result = Exec_common.result = { schema : Schema.t; tuples : Relation.tuple array }

type violation = Exec_common.violation = {
  label : string;          (** the guard's label (guarded subplan shape) *)
  expected_rows : float;   (** optimizer's estimate at instrumentation time *)
  actual_rows : int;       (** rows seen when the guard fired *)
  q_error : float;         (** max(est/act, act/est), 0.5 floors *)
  result : result;         (** the rows seen so far — reusable as a
                               {!Plan.Materialized} leaf *)
  subplan : Plan.t;        (** the guarded subplan that produced them *)
  complete : bool;         (** input fully consumed: [result] is the whole
                               output (materialized execution, or a
                               streaming underflow caught at drain) *)
  progress : float;        (** fraction of the input consumed, in [0, 1];
                               1.0 when [complete] *)
  resume : Plan.t option;  (** a plan computing exactly the rows NOT in
                               [result], when the source supports it (a
                               mid-scan {!Plan.Scan_resume}); [None] when
                               [complete] or the prefix is non-resumable *)
}

exception Guard_violation of violation
(** Raised by [run] when a {!Plan.Guard}'s q-error bound is exceeded.  All
    work up to the violation is already charged to the meter; the carried
    result (plus [resume] for a mid-stream overflow) lets a re-optimizer
    pick up without repeating it. *)

val q_error : expected:float -> actual:int -> float
(** Alias of {!Plan.q_error} — the guard firing rule. *)

type mode =
  | Streaming     (** pull-based batch pipeline; early exit charges less *)
  | Materialized  (** original materialize-everything engine *)

val run :
  ?obs:Rq_obs.Recorder.t -> ?mode:mode -> Catalog.t -> Cost.t -> Plan.t -> result
(** Raises [Invalid_argument] on ill-formed plans (missing index, key out of
    scope); run [Plan.validate] first for a friendly error.  Raises
    [Guard_violation] when a guard fires.  [mode] defaults to {!Streaming}.

    With [?obs], every plan node is wrapped in a recorder span whose metric
    delta is that subtree's meter movement, guards emit
    [Guard_ok]/[Guard_fired] trace events, and spans unwound by an exception
    are kept, marked aborted, so wasted work stays attributed.  Streaming
    spans accumulate per-pull deltas and are attached when the root drains
    (or unwinds); a fired guard's input span is [not] aborted — its partial
    rows were produced successfully and are reusable. *)

val run_timed :
  Catalog.t ->
  ?constants:Cost.constants ->
  ?scale:float ->
  ?obs:Rq_obs.Recorder.t ->
  ?mode:mode ->
  Plan.t ->
  result * Cost.snapshot
(** Convenience: fresh meter, run, snapshot. *)

val result_to_relation : name:string -> result -> Relation.t
