(** Volcano-style plan execution with cost accounting.

    [run] materializes the plan's result and charges every page read, index
    probe and per-tuple operation to the supplied cost meter; the meter's
    accumulated simulated seconds are the "query execution time" that the
    experiments report. *)

open Rq_storage

type result = { schema : Schema.t; tuples : Relation.tuple array }

val run : Catalog.t -> Cost.t -> Plan.t -> result
(** Raises [Invalid_argument] on ill-formed plans (missing index, key out of
    scope); run [Plan.validate] first for a friendly error. *)

val run_timed : Catalog.t -> ?constants:Cost.constants -> ?scale:float -> Plan.t -> result * Cost.snapshot
(** Convenience: fresh meter, run, snapshot. *)

val result_to_relation : name:string -> result -> Relation.t
