type constants = {
  seq_page_read_s : float;
  random_page_read_s : float;
  cpu_tuple_s : float;
  cpu_index_entry_s : float;
  index_probe_s : float;
  hash_build_s : float;
  hash_probe_s : float;
  merge_tuple_s : float;
  sort_tuple_s : float;
  output_tuple_s : float;
}

(* Calibration: a 6M-row, 48-byte-row table occupies ~35.3k pages, so a full
   scan at 1 ms/page costs ~35 s (the paper's f1).  A RID fetch at 3.5 ms
   matches the paper's v2 = 3.5e-3 s/row for index intersection. *)
let default_constants =
  {
    seq_page_read_s = 1.0e-3;
    random_page_read_s = 3.5e-3;
    cpu_tuple_s = 1.0e-7;
    cpu_index_entry_s = 5.0e-8;
    index_probe_s = 1.0e-4;
    hash_build_s = 2.0e-7;
    hash_probe_s = 1.0e-7;
    merge_tuple_s = 5.0e-8;
    sort_tuple_s = 2.0e-8;
    output_tuple_s = 5.0e-8;
  }

type t = {
  constants : constants;
  scale : float;
  mutable seconds : float;
  mutable seq_pages : int;
  mutable random_pages : int;
  mutable cpu_tuples : int;
  mutable index_probes : int;
}

let create ?(constants = default_constants) ?(scale = 1.0) () =
  if scale <= 0.0 then invalid_arg "Cost.create: scale must be positive";
  { constants; scale; seconds = 0.0; seq_pages = 0; random_pages = 0; cpu_tuples = 0; index_probes = 0 }

let constants t = t.constants
let scale t = t.scale

let add t s = t.seconds <- t.seconds +. (s *. t.scale)

let charge_seq_pages t n =
  t.seq_pages <- t.seq_pages + n;
  add t (float_of_int n *. t.constants.seq_page_read_s)

let charge_random_pages t n =
  t.random_pages <- t.random_pages + n;
  add t (float_of_int n *. t.constants.random_page_read_s)

let charge_cpu_tuples t n =
  t.cpu_tuples <- t.cpu_tuples + n;
  add t (float_of_int n *. t.constants.cpu_tuple_s)

let charge_index_entries t n = add t (float_of_int n *. t.constants.cpu_index_entry_s)

let charge_index_probes t n =
  t.index_probes <- t.index_probes + n;
  add t (float_of_int n *. t.constants.index_probe_s)

let charge_hash_build t n = add t (float_of_int n *. t.constants.hash_build_s)
let charge_hash_probe t n = add t (float_of_int n *. t.constants.hash_probe_s)
let charge_merge_tuples t n = add t (float_of_int n *. t.constants.merge_tuple_s)

let charge_sort t n =
  let nf = float_of_int (max n 2) in
  add t (float_of_int n *. (log nf /. log 2.0) *. t.constants.sort_tuple_s)

let charge_output_tuples t n = add t (float_of_int n *. t.constants.output_tuple_s)
let charge_seconds t s = add t s

type snapshot = {
  seconds : float;
  seq_pages : int;
  random_pages : int;
  cpu_tuples : int;
  index_probes : int;
}

let snapshot (t : t) =
  {
    seconds = t.seconds;
    seq_pages = t.seq_pages;
    random_pages = t.random_pages;
    cpu_tuples = t.cpu_tuples;
    index_probes = t.index_probes;
  }

let reset (t : t) =
  t.seconds <- 0.0;
  t.seq_pages <- 0;
  t.random_pages <- 0;
  t.cpu_tuples <- 0;
  t.index_probes <- 0

let pp_snapshot fmt s =
  Format.fprintf fmt "%.4f s (seq=%d pages, rand=%d pages, cpu=%d tuples, probes=%d)"
    s.seconds s.seq_pages s.random_pages s.cpu_tuples s.index_probes
