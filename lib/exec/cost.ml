type constants = {
  seq_page_read_s : float;
  random_page_read_s : float;
  cpu_tuple_s : float;
  cpu_index_entry_s : float;
  index_probe_s : float;
  hash_build_s : float;
  hash_probe_s : float;
  merge_tuple_s : float;
  sort_tuple_s : float;
  output_tuple_s : float;
}

(* Calibration: a 6M-row, 48-byte-row table occupies ~35.3k pages, so a full
   scan at 1 ms/page costs ~35 s (the paper's f1).  A RID fetch at 3.5 ms
   matches the paper's v2 = 3.5e-3 s/row for index intersection. *)
let default_constants =
  {
    seq_page_read_s = 1.0e-3;
    random_page_read_s = 3.5e-3;
    cpu_tuple_s = 1.0e-7;
    cpu_index_entry_s = 5.0e-8;
    index_probe_s = 1.0e-4;
    hash_build_s = 2.0e-7;
    hash_probe_s = 1.0e-7;
    merge_tuple_s = 5.0e-8;
    sort_tuple_s = 2.0e-8;
    output_tuple_s = 5.0e-8;
  }

type t = {
  constants : constants;
  scale : float;
  mutable seconds : float;
  mutable seq_pages : int;
  mutable random_pages : int;
  mutable pages_skipped : int;
  mutable cpu_tuples : int;
  mutable index_probes : int;
  mutable index_entries : int;
  mutable hash_build : int;
  mutable hash_probe : int;
  mutable merge_tuples : int;
  mutable sort_tuples : int;
  mutable output_tuples : int;
  mutable sort_units : float;
  mutable extra_seconds : float;
}

let create ?(constants = default_constants) ?(scale = 1.0) () =
  if scale <= 0.0 then invalid_arg "Cost.create: scale must be positive";
  {
    constants;
    scale;
    seconds = 0.0;
    seq_pages = 0;
    random_pages = 0;
    pages_skipped = 0;
    cpu_tuples = 0;
    index_probes = 0;
    index_entries = 0;
    hash_build = 0;
    hash_probe = 0;
    merge_tuples = 0;
    sort_tuples = 0;
    output_tuples = 0;
    sort_units = 0.0;
    extra_seconds = 0.0;
  }

let constants t = t.constants
let scale t = t.scale

let add t s = t.seconds <- t.seconds +. (s *. t.scale)

let charge_seq_pages t n =
  t.seq_pages <- t.seq_pages + n;
  add t (float_of_int n *. t.constants.seq_page_read_s)

let charge_random_pages t n =
  t.random_pages <- t.random_pages + n;
  add t (float_of_int n *. t.constants.random_page_read_s)

(* Pages a zone map proved the scan need not read: pure bookkeeping, zero
   simulated seconds — skipping is the whole point — but counted so tests
   can assert read + skipped = total and benches can report the savings. *)
let charge_pages_skipped t n = t.pages_skipped <- t.pages_skipped + n

let charge_cpu_tuples t n =
  t.cpu_tuples <- t.cpu_tuples + n;
  add t (float_of_int n *. t.constants.cpu_tuple_s)

let charge_index_entries t n =
  t.index_entries <- t.index_entries + n;
  add t (float_of_int n *. t.constants.cpu_index_entry_s)

let charge_index_probes t n =
  t.index_probes <- t.index_probes + n;
  add t (float_of_int n *. t.constants.index_probe_s)

let charge_hash_build t n =
  t.hash_build <- t.hash_build + n;
  add t (float_of_int n *. t.constants.hash_build_s)

let charge_hash_probe t n =
  t.hash_probe <- t.hash_probe + n;
  add t (float_of_int n *. t.constants.hash_probe_s)

let charge_merge_tuples t n =
  t.merge_tuples <- t.merge_tuples + n;
  add t (float_of_int n *. t.constants.merge_tuple_s)

let charge_sort t n =
  let nf = float_of_int (max n 2) in
  let units = float_of_int n *. (log nf /. log 2.0) in
  t.sort_tuples <- t.sort_tuples + n;
  t.sort_units <- t.sort_units +. units;
  add t (units *. t.constants.sort_tuple_s)

let charge_output_tuples t n =
  t.output_tuples <- t.output_tuples + n;
  add t (float_of_int n *. t.constants.output_tuple_s)

let charge_seconds t s =
  t.extra_seconds <- t.extra_seconds +. (s *. t.scale);
  add t s

type snapshot = {
  seconds : float;
  seq_pages : int;
  random_pages : int;
  pages_skipped : int;
  cpu_tuples : int;
  index_probes : int;
  index_entries : int;
  hash_build : int;
  hash_probe : int;
  merge_tuples : int;
  sort_tuples : int;
  output_tuples : int;
  sort_units : float;
  extra_seconds : float;
}

let snapshot (t : t) =
  {
    seconds = t.seconds;
    seq_pages = t.seq_pages;
    random_pages = t.random_pages;
    pages_skipped = t.pages_skipped;
    cpu_tuples = t.cpu_tuples;
    index_probes = t.index_probes;
    index_entries = t.index_entries;
    hash_build = t.hash_build;
    hash_probe = t.hash_probe;
    merge_tuples = t.merge_tuples;
    sort_tuples = t.sort_tuples;
    output_tuples = t.output_tuples;
    sort_units = t.sort_units;
    extra_seconds = t.extra_seconds;
  }

(* Merge another meter's accumulated work into this one.  Used by the
   morsel-parallel executor: every morsel charges a private meter and the
   snapshots are absorbed in morsel-index order, so the merged totals are
   identical no matter which domain ran which morsel.  The snapshot's
   seconds already include its meter's scale, so they are added raw. *)
let absorb (t : t) (s : snapshot) =
  t.seconds <- t.seconds +. s.seconds;
  t.seq_pages <- t.seq_pages + s.seq_pages;
  t.random_pages <- t.random_pages + s.random_pages;
  t.pages_skipped <- t.pages_skipped + s.pages_skipped;
  t.cpu_tuples <- t.cpu_tuples + s.cpu_tuples;
  t.index_probes <- t.index_probes + s.index_probes;
  t.index_entries <- t.index_entries + s.index_entries;
  t.hash_build <- t.hash_build + s.hash_build;
  t.hash_probe <- t.hash_probe + s.hash_probe;
  t.merge_tuples <- t.merge_tuples + s.merge_tuples;
  t.sort_tuples <- t.sort_tuples + s.sort_tuples;
  t.output_tuples <- t.output_tuples + s.output_tuples;
  t.sort_units <- t.sort_units +. s.sort_units;
  t.extra_seconds <- t.extra_seconds +. s.extra_seconds

let reset (t : t) =
  t.seconds <- 0.0;
  t.seq_pages <- 0;
  t.random_pages <- 0;
  t.pages_skipped <- 0;
  t.cpu_tuples <- 0;
  t.index_probes <- 0;
  t.index_entries <- 0;
  t.hash_build <- 0;
  t.hash_probe <- 0;
  t.merge_tuples <- 0;
  t.sort_tuples <- 0;
  t.output_tuples <- 0;
  t.sort_units <- 0.0;
  t.extra_seconds <- 0.0

let seconds_of_counters ~constants:c ~scale (s : snapshot) =
  scale
  *. (float_of_int s.seq_pages *. c.seq_page_read_s
     +. float_of_int s.random_pages *. c.random_page_read_s
     +. float_of_int s.cpu_tuples *. c.cpu_tuple_s
     +. float_of_int s.index_entries *. c.cpu_index_entry_s
     +. float_of_int s.index_probes *. c.index_probe_s
     +. float_of_int s.hash_build *. c.hash_build_s
     +. float_of_int s.hash_probe *. c.hash_probe_s
     +. float_of_int s.merge_tuples *. c.merge_tuple_s
     +. s.sort_units *. c.sort_tuple_s
     +. float_of_int s.output_tuples *. c.output_tuple_s)
  +. s.extra_seconds

let to_metrics (s : snapshot) =
  {
    Rq_obs.Metrics.seconds = s.seconds;
    seq_pages = s.seq_pages;
    random_pages = s.random_pages;
    pages_skipped = s.pages_skipped;
    cpu_tuples = s.cpu_tuples;
    index_probes = s.index_probes;
    index_entries = s.index_entries;
    hash_build = s.hash_build;
    hash_probe = s.hash_probe;
    merge_tuples = s.merge_tuples;
    sort_tuples = s.sort_tuples;
    output_tuples = s.output_tuples;
    sort_units = s.sort_units;
    extra_seconds = s.extra_seconds;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "%.4f s (seq=%d pages, rand=%d pages, skipped=%d pages, cpu=%d tuples, probes=%d, entries=%d)"
    s.seconds s.seq_pages s.random_pages s.pages_skipped s.cpu_tuples s.index_probes
    s.index_entries
