(** Feedback-guided differential fuzzer (ROADMAP item 4).

    An evolutionary loop over (data-state mutation, stats-fault profile,
    query) genomes, each executed through every differential pass the repo
    has: four estimators vs the exact oracle, cached-vs-cold optimization,
    streaming-vs-materialized execution, evidence-kernel-vs-row-scan, a
    degrading-estimator pass over deliberately faulted statistics with
    guard-driven re-optimization and span/meter reconciliation, and a
    rewritten-vs-unrewritten plan pass over the logical rewrite layer.

    Coverage is the (structural plan fingerprint x degradation-tier
    transition digest) pair; a mutant joins the corpus only if its pair is
    unseen, and the mutator escalates query -> stats-fault -> data-state
    when the search stagnates (Query Plan Guidance).  Divergences are
    delta-debugged to a minimal case and serialized as a replayable
    [.fuzz-repro] file. *)

open Rq_optimizer
open Rq_workload

(** {2 Genome} *)

type workload = Tpch | Star

type cmp = C_le | C_lt | C_gt | C_ge | C_eq

type literal = L_int of int | L_float of float | L_date of int  (** days since epoch *)

type atom = { column : string; cmp : cmp; value : literal }

type table_gene = { table : string; atoms : atom list }

type shape = Total | Grouped | Projected

type query_gene = {
  genes : table_gene list;
  shape : shape;
  semis : table_gene list;     (** IN-subquery (semijoin) genes over FK edges *)
  order : bool;                (** emit an ORDER BY clause *)
  descending : bool;
  limit : int option;          (** only honoured where results are deterministic *)
}
(** [genes] is never empty; its head is the workload's root table.  [semis]
    name tables that must not also appear in [genes] — the compiler drops
    any that do. *)

type case = {
  workload : workload;
  catalog_seed : int;
  mutations : Mutate.t list;          (** applied to the catalog, in order *)
  faults : Rq_stats.Fault.injection list;  (** applied to the statistics *)
  query : query_gene;
  pool_pages : int option;
      (** buffer-pool-capacity gene: global pool capped at this many pages
          (restored afterwards) while the case's passes run — eviction
          pressure must never change an answer.  Emitted to JSON only when
          set, so older corpora round-trip. *)
  vectorize : bool;
      (** data-plane gene: run the case's passes on the streaming engine's
          vectorized plane ([true], the engine default) or the row plane.
          The plane must never change an answer or a counter.  Emitted to
          JSON only when [false]; corpora predating the gene parse as
          [true]. *)
}

val workload_to_string : workload -> string
val case_to_json : case -> Rq_obs.Json.t
val case_of_json : Rq_obs.Json.t -> (case, string) result
val case_summary : case -> string

val compile_case : case -> Logical.t

(** {2 Configuration} *)

type config = {
  iterations : int;            (** mutation steps; 0 = unbounded (soak) *)
  seed : int;
  time_budget : float option;  (** wall-clock seconds *)
  corpus_dir : string option;  (** persist/reload kept cases as [*.fuzz] *)
  baseline : bool;             (** also run the pure-random control *)
  late_after : int option;     (** require an unseen pair after this iteration *)
  self_test : bool;            (** plant an estimator perturbation; the run
                                   only passes if the fuzzer catches it *)
  self_test_rewrite : bool;    (** plant an unsound logical rewrite instead;
                                   the rewrite pass must catch it *)
  repro_file : string;
  workloads : workload list;
  catalog_seeds : int list;
  tpch_scale : float;
  star_rows : int;
  sample_size : int;
  reopt_threshold : float;
  seed_corpus : int;
  shrink_budget : int;         (** max case evaluations while shrinking *)
}

val default_config : config

(** {2 Probing (exposed for tests)} *)

type divergence = { pass : string; detail : string }

type probe = { coverage : string * string; divergence : divergence option }
(** [coverage] = (concatenated structural plan digests, tier-transition
    digest). *)

val probe_case :
  ?self_test:bool -> ?self_test_rewrite:bool -> config -> case -> (probe, string) result
(** Run one case through every pass.  [Error] means the case itself is
    invalid (the oracle rejected the query, or a mutation could not apply)
    — not a divergence. *)

val gen_case : Rq_math.Rng.t -> config -> case

val mutate_case : Rq_math.Rng.t -> level:int -> config -> case -> case
(** [level] 0 tweaks the query, 1 the fault set, 2 the data mutations. *)

(** {2 The loop} *)

type found = {
  f_divergence : divergence;
  f_case : case;               (** shrunk *)
  f_tables : int;
  f_iteration : int;
  f_repro_path : string;
  f_reproduced : bool;         (** the written repro file replays red *)
}

type result = {
  r_iterations : int;
  r_probes : int;
  r_corpus : int;
  r_pairs : int;               (** distinct (plan x tier) pairs, steered *)
  r_baseline_pairs : int option;
  r_last_new_pair : int;
  r_kept_by_level : int * int * int;
  r_found : found option;
  r_self_test : bool;
  r_ok : bool;
  r_seconds : float;
}

val run : ?log:(string -> unit) -> ?config:config -> unit -> result
(** [r_ok] means: no divergence (plus the [late_after] and [baseline]
    checks when configured) — or, under [self_test], that the planted
    perturbation was caught by the kernel pass, shrunk to at most three
    tables, and its repro file replays red.  Under [self_test_rewrite]
    (which takes precedence) the catch must come from the rewrite pass
    instead. *)

val replay : config -> string -> (case * probe * string, string) Stdlib.result
(** Re-run a [.fuzz-repro] file; returns the case, the fresh probe and the
    originally recorded failing pass. *)

val render : result -> string
val result_to_json : result -> Rq_obs.Json.t
