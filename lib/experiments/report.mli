(** Plain-text rendering of experiment results (shared by the benchmark
    harness and the CLI). *)

val rows_table : Exp_common.row list -> string
(** TSV: parameter, true selectivity %%, and mean/std per series. *)

val plan_mix : Exp_common.row list -> string
(** Commented lines listing which plans each series chose, per parameter. *)

val tradeoff_table : (string * Rq_math.Summary.t) list -> string
(** TSV: series, average time, standard deviation (the (b)-figures). *)

val sample_size_table : Exp_sample_size.point list -> string

val overhead_table : Overhead.measurement list -> string

val partial_stats_table : Exp_partial_stats.row list -> string
