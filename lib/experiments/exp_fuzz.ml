(* Feedback-guided differential fuzzer (ROADMAP item 4).

   An evolutionary loop over (data-state mutation, stats-fault profile,
   query) triples.  Each case runs through every differential oracle the
   repo has accumulated — four estimators vs the exact oracle, cached vs
   cold optimization, streaming vs materialized execution, evidence kernel
   vs row scan — plus a fifth pass that plans with the *degrading*
   estimator over deliberately faulted statistics and executes under
   guard-driven re-optimization, reconciling the observability spans
   against the cost meter.  Whatever the estimates, the answers must
   agree with the oracle and the counters must add up.

   Coverage is YBFuzz-style Query Plan Guidance: a mutant is kept only if
   it exhibits an unseen (structural plan fingerprint x degradation-tier
   transition digest) pair.  When the search stagnates, the mutator
   escalates: query tweaks -> statistics faults -> data-state mutations.
   Any divergence is delta-debugged down to a minimal case and serialized
   as a replayable .fuzz-repro file carrying the exact seed. *)

open Rq_storage
open Rq_exec
open Rq_optimizer
open Rq_workload
module Rng = Rq_math.Rng
module Json = Rq_obs.Json
module Recorder = Rq_obs.Recorder
module Stats_store = Rq_stats.Stats_store
module Fault = Rq_stats.Fault

(* ------------------------------------------------------------------ *)
(* Genome                                                              *)
(* ------------------------------------------------------------------ *)

type workload = Tpch | Star

type cmp = C_le | C_lt | C_gt | C_ge | C_eq

type literal = L_int of int | L_float of float | L_date of int

type atom = { column : string; cmp : cmp; value : literal }

type table_gene = { table : string; atoms : atom list }

type shape = Total | Grouped | Projected

type query_gene = {
  genes : table_gene list;
  shape : shape;
  semis : table_gene list;
      (* IN-subquery genes: each rides one of the spec's FK triples; a semi
         whose table is already joined in FROM is dropped at compile time
         (the logical layer rejects disguised self-joins) *)
  order : bool;  (* ORDER BY the shape's sort column *)
  descending : bool;
  limit : int option;
      (* honored only where every candidate plan emits one canonical row
         order: single-table Projected queries without semijoins *)
}

type case = {
  workload : workload;
  catalog_seed : int;
  mutations : Mutate.t list;
  faults : Fault.injection list;
  query : query_gene;
  pool_pages : int option;
      (* buffer-pool-capacity gene: cap the global pool (in 8 KiB pages)
         while the case's passes run.  Eviction pressure must never change
         answers — a tiny pool only re-faults chunks. *)
  vectorize : bool;
      (* data-plane gene: run the streaming engine's vectorized (columnar
         batch) plane or the row-at-a-time plane.  The plane must never
         change answers or cost counters; corpora predating the gene
         default to [true] (the engine default). *)
}

let workload_to_string = function Tpch -> "tpch" | Star -> "star"

let workload_of_string = function
  | "tpch" -> Ok Tpch
  | "star" -> Ok Star
  | s -> Error (Printf.sprintf "unknown workload %S" s)

let cmp_to_string = function
  | C_le -> "le"
  | C_lt -> "lt"
  | C_gt -> "gt"
  | C_ge -> "ge"
  | C_eq -> "eq"

let cmp_of_string = function
  | "le" -> Ok C_le
  | "lt" -> Ok C_lt
  | "gt" -> Ok C_gt
  | "ge" -> Ok C_ge
  | "eq" -> Ok C_eq
  | s -> Error (Printf.sprintf "unknown comparison %S" s)

let shape_to_string = function
  | Total -> "total"
  | Grouped -> "grouped"
  | Projected -> "projected"

let shape_of_string = function
  | "total" -> Ok Total
  | "grouped" -> Ok Grouped
  | "projected" -> Ok Projected
  | s -> Error (Printf.sprintf "unknown shape %S" s)

(* ------------------------------------------------------------------ *)
(* Workload specs: the same predicate/table space as test_differential  *)
(* ------------------------------------------------------------------ *)

type atom_pool = { p_column : string; p_cmps : cmp array; p_draw : Rng.t -> literal }

type table_spec = { t_name : string; t_pools : atom_pool array }

type spec = {
  s_root : table_spec;
  s_satellites : table_spec array;
  s_group : string;        (* qualified GROUP BY column *)
  s_agg : string;          (* qualified SUM target *)
  s_projection : string list;
  s_order : string;        (* Projected-shape sort column; in s_projection *)
  s_semis : (string * string * string) array;
      (* (inner table, qualified outer key, inner key) FK triples the
         IN-subquery genes draw from *)
}

let ship_day0 = match fst Tpch.ship_window with Value.Date d -> d | _ -> 0

let tpch_spec =
  {
    s_root =
      {
        t_name = "lineitem";
        t_pools =
          [|
            {
              p_column = "l_quantity";
              p_cmps = [| C_le; C_gt; C_ge; C_lt |];
              p_draw = (fun rng -> L_int (1 + Rng.int rng 50));
            };
            {
              p_column = "l_extendedprice";
              p_cmps = [| C_gt; C_le |];
              p_draw = (fun rng -> L_float (Rng.float rng 120_000.0));
            };
            {
              p_column = "l_shipdate";
              p_cmps = [| C_le; C_gt |];
              p_draw = (fun rng -> L_date (ship_day0 - 200 + Rng.int rng 600));
            };
          |];
      };
    s_satellites =
      [|
        {
          t_name = "orders";
          t_pools =
            [|
              {
                p_column = "o_totalprice";
                p_cmps = [| C_gt; C_le |];
                p_draw = (fun rng -> L_float (Rng.float rng 250_000.0));
              };
            |];
        };
        {
          t_name = "part";
          t_pools =
            [|
              {
                p_column = "p_size";
                p_cmps = [| C_lt; C_ge |];
                p_draw = (fun rng -> L_int (1 + Rng.int rng 50));
              };
              {
                p_column = "p_bucket";
                p_cmps = [| C_eq |];
                p_draw = (fun rng -> L_int (Rng.int rng 1000));
              };
            |];
        };
      |];
    s_group = "lineitem.l_quantity";
    s_agg = "lineitem.l_extendedprice";
    s_projection = [ "lineitem.l_rowid"; "lineitem.l_extendedprice" ];
    s_order = "lineitem.l_extendedprice";
    s_semis =
      [|
        ("orders", "lineitem.l_orderkey", "o_orderkey");
        ("part", "lineitem.l_partkey", "p_partkey");
      |];
  }

let star_spec =
  let dim n =
    {
      t_name = Printf.sprintf "dim%d" n;
      t_pools =
        [|
          {
            p_column = "d_filter";
            p_cmps = [| C_eq |];
            p_draw = (fun rng -> L_int (Rng.int rng 10));
          };
        |];
    }
  in
  {
    s_root =
      {
        t_name = "fact";
        t_pools =
          [|
            {
              p_column = "f_m1";
              p_cmps = [| C_gt; C_le |];
              p_draw = (fun rng -> L_float (Rng.float rng 1000.0));
            };
          |];
      };
    s_satellites = [| dim 1; dim 2; dim 3 |];
    s_group = "fact.f_dim1";
    s_agg = "fact.f_m1";
    s_projection = [ "fact.f_id"; "fact.f_m1" ];
    s_order = "fact.f_m1";
    s_semis =
      [|
        ("dim1", "fact.f_dim1", "d_key");
        ("dim2", "fact.f_dim2", "d_key");
        ("dim3", "fact.f_dim3", "d_key");
      |];
  }

let spec_of = function Tpch -> tpch_spec | Star -> star_spec

let table_spec spec name =
  if spec.s_root.t_name = name then Some spec.s_root
  else Array.find_opt (fun t -> t.t_name = name) spec.s_satellites

(* ------------------------------------------------------------------ *)
(* Genome -> logical query                                             *)
(* ------------------------------------------------------------------ *)

let expr_of_literal = function
  | L_int n -> Expr.int n
  | L_float f -> Expr.float f
  | L_date d -> Expr.Const (Value.Date d)

let pred_cmp = function
  | C_le -> Pred.Le
  | C_lt -> Pred.Lt
  | C_gt -> Pred.Gt
  | C_ge -> Pred.Ge
  | C_eq -> Pred.Eq

let pred_of_atom a = Pred.Cmp (pred_cmp a.cmp, Expr.col a.column, expr_of_literal a.value)

let sum col name = { Plan.fn = Plan.Sum (Expr.col col); output_name = name }
let count name = { Plan.fn = Plan.Count_star; output_name = name }

let compile_case case =
  let spec = spec_of case.workload in
  let q = case.query in
  let refs =
    List.map
      (fun g -> Logical.scan ~pred:(Pred.conj (List.map pred_of_atom g.atoms)) g.table)
      q.genes
  in
  let from_tables = List.map (fun g -> g.table) q.genes in
  let semijoins =
    List.filter_map
      (fun g ->
        if List.mem g.table from_tables then None
        else
          Array.find_opt (fun (t, _, _) -> t = g.table) spec.s_semis
          |> Option.map (fun (_, outer_key, inner_key) ->
                 {
                   Logical.outer_key;
                   inner = Logical.scan ~pred:(Pred.conj (List.map pred_of_atom g.atoms)) g.table;
                   inner_key;
                 }))
      q.semis
  in
  let sort col = [ { Plan.sort_column = col; descending = q.descending } ] in
  match q.shape with
  | Total -> Logical.query ~semijoins ~aggs:[ sum spec.s_agg "total"; count "n" ] refs
  | Grouped ->
      let order_by = if q.order then sort "total" else [] in
      Logical.query ~semijoins ~group_by:[ spec.s_group ]
        ~aggs:[ sum spec.s_agg "total" ] ~order_by refs
  | Projected ->
      let order_by = if q.order then sort spec.s_order else [] in
      let limit =
        (* every candidate plan for a single-table, semijoin-free query
           emits one canonical row order (RID order, or the identical
           stable-sorted order), so LIMIT stays deterministic across the
           differential arms *)
        if List.length q.genes = 1 && semijoins = [] then q.limit else None
      in
      Logical.query ~semijoins ~projection:spec.s_projection ~order_by ?limit refs

(* ------------------------------------------------------------------ *)
(* Serialization (corpus entries and .fuzz-repro files)                *)
(* ------------------------------------------------------------------ *)

let literal_to_json = function
  | L_int n -> Json.Obj [ ("int", Json.Num (float_of_int n)) ]
  | L_float f -> Json.Obj [ ("float", Json.Num f) ]
  | L_date d -> Json.Obj [ ("date", Json.Num (float_of_int d)) ]

let literal_of_json = function
  | Json.Obj [ ("int", Json.Num n) ] -> Ok (L_int (int_of_float n))
  | Json.Obj [ ("float", Json.Num f) ] -> Ok (L_float f)
  | Json.Obj [ ("date", Json.Num d) ] -> Ok (L_date (int_of_float d))
  | j -> Error ("bad literal: " ^ Json.to_string j)

let atom_to_json a =
  Json.Obj
    [
      ("column", Json.Str a.column);
      ("cmp", Json.Str (cmp_to_string a.cmp));
      ("value", literal_to_json a.value);
    ]

let ( let* ) = Result.bind

let jfield name = function
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error (Printf.sprintf "expected an object with field %S" name)

let jstr name obj =
  match jfield name obj with
  | Ok (Json.Str s) -> Ok s
  | Ok _ -> Error (Printf.sprintf "field %S must be a string" name)
  | Error e -> Error e

let jnum name obj =
  match jfield name obj with
  | Ok (Json.Num n) -> Ok n
  | Ok _ -> Error (Printf.sprintf "field %S must be a number" name)
  | Error e -> Error e

let jlist name obj =
  match jfield name obj with
  | Ok (Json.List l) -> Ok l
  | Ok _ -> Error (Printf.sprintf "field %S must be a list" name)
  | Error e -> Error e

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    l (Ok [])

let atom_of_json j =
  let* column = jstr "column" j in
  let* cmp_s = jstr "cmp" j in
  let* cmp = cmp_of_string cmp_s in
  let* value_j = jfield "value" j in
  let* value = literal_of_json value_j in
  Ok { column; cmp; value }

let case_to_json case =
  Json.Obj
    ([
      ("workload", Json.Str (workload_to_string case.workload));
      ("catalog_seed", Json.Num (float_of_int case.catalog_seed));
      ("mutations", Json.List (List.map (fun m -> Json.Str (Mutate.to_string m)) case.mutations));
      ("faults", Json.List (List.map Fault.injection_to_json case.faults));
    ]
    @ (* emitted only when set, so corpora from older builds round-trip *)
    (match case.pool_pages with
    | None -> []
    | Some n -> [ ("pool_pages", Json.Num (float_of_int n)) ])
    @ (* emitted only when off the default, same round-trip reason *)
    (if case.vectorize then [] else [ ("vectorize", Json.Bool false) ])
    @ [
      ( "query",
        let gene_json g =
          Json.Obj
            [
              ("table", Json.Str g.table);
              ("atoms", Json.List (List.map atom_to_json g.atoms));
            ]
        in
        let q = case.query in
        Json.Obj
          ([
             ("shape", Json.Str (shape_to_string q.shape));
             ("tables", Json.List (List.map gene_json q.genes));
           ]
          (* widened-surface genes are emitted only when set, so corpora
             written by older builds parse and vice versa *)
          @ (if q.semis = [] then [] else [ ("semis", Json.List (List.map gene_json q.semis)) ])
          @ (if not q.order then []
             else [ ("order", Json.Str (if q.descending then "desc" else "asc")) ])
          @
          match q.limit with
          | None -> []
          | Some n -> [ ("limit", Json.Num (float_of_int n)) ]) );
    ])

let case_of_json j =
  let* workload_s = jstr "workload" j in
  let* workload = workload_of_string workload_s in
  let* catalog_seed_f = jnum "catalog_seed" j in
  let catalog_seed = int_of_float catalog_seed_f in
  let* mutation_js = jlist "mutations" j in
  let* mutations =
    map_result
      (function Json.Str s -> Mutate.of_string s | _ -> Error "mutation must be a string")
      mutation_js
  in
  let* fault_js = jlist "faults" j in
  let* faults = map_result Fault.injection_of_json fault_js in
  let* query_j = jfield "query" j in
  let* shape_s = jstr "shape" query_j in
  let* shape = shape_of_string shape_s in
  let gene_of_json g =
    let* table = jstr "table" g in
    let* atom_js = jlist "atoms" g in
    let* atoms = map_result atom_of_json atom_js in
    Ok { table; atoms }
  in
  let* table_js = jlist "tables" query_j in
  let* genes = map_result gene_of_json table_js in
  (* optional widened-surface genes: absent in corpora from older builds *)
  let jopt name = match query_j with Json.Obj fields -> List.assoc_opt name fields | _ -> None in
  let* semis =
    match jopt "semis" with
    | None -> Ok []
    | Some (Json.List l) -> map_result gene_of_json l
    | Some _ -> Error "field \"semis\" must be a list"
  in
  let* order, descending =
    match jopt "order" with
    | None -> Ok (false, false)
    | Some (Json.Str "asc") -> Ok (true, false)
    | Some (Json.Str "desc") -> Ok (true, true)
    | Some _ -> Error "field \"order\" must be \"asc\" or \"desc\""
  in
  let* limit =
    match jopt "limit" with
    | None -> Ok None
    | Some (Json.Num n) -> Ok (Some (int_of_float n))
    | Some _ -> Error "field \"limit\" must be a number"
  in
  (* optional top-level genes: absent in corpora from older builds *)
  let* pool_pages =
    match (match j with Json.Obj fields -> List.assoc_opt "pool_pages" fields | _ -> None) with
    | None -> Ok None
    | Some (Json.Num n) -> Ok (Some (int_of_float n))
    | Some _ -> Error "field \"pool_pages\" must be a number"
  in
  let* vectorize =
    match (match j with Json.Obj fields -> List.assoc_opt "vectorize" fields | _ -> None) with
    | None -> Ok true (* pre-gene corpora ran the engine default *)
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "field \"vectorize\" must be a boolean"
  in
  if genes = [] then Error "query has no tables"
  else
    Ok
      {
        workload;
        catalog_seed;
        mutations;
        faults;
        query = { genes; shape; semis; order; descending; limit };
        pool_pages;
        vectorize;
      }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  iterations : int;            (* mutation steps; 0 = unbounded (soak) *)
  seed : int;
  time_budget : float option;  (* wall seconds *)
  corpus_dir : string option;
  baseline : bool;             (* also run the pure-random control *)
  late_after : int option;     (* require a new pair after this iteration *)
  self_test : bool;
  self_test_rewrite : bool;    (* plant an unsound rewrite instead *)
  repro_file : string;
  workloads : workload list;
  catalog_seeds : int list;
  tpch_scale : float;
  star_rows : int;
  sample_size : int;
  reopt_threshold : float;
  seed_corpus : int;           (* initial random cases *)
  shrink_budget : int;         (* max case evaluations while shrinking *)
}

let default_config =
  {
    iterations = 200;
    seed = 5;
    time_budget = None;
    corpus_dir = None;
    baseline = false;
    late_after = None;
    self_test = false;
    self_test_rewrite = false;
    repro_file = "divergence.fuzz-repro";
    workloads = [ Tpch; Star ];
    catalog_seeds = [ 0; 1 ];
    tpch_scale = 0.001;
    star_rows = 2_000;
    sample_size = 150;
    reopt_threshold = 4.0;
    seed_corpus = 8;
    shrink_budget = 200;
  }

(* ------------------------------------------------------------------ *)
(* Environments (memoized catalogs + statistics)                       *)
(* ------------------------------------------------------------------ *)

type env = {
  e_catalog : Catalog.t;
  e_scale : float;
  e_stats : Stats_store.t;     (* healthy, built over the mutated catalog *)
}

(* Seeds for the deterministic sub-streams.  They depend only on fields
   that survive serialization, so a replayed .fuzz-repro rebuilds the
   byte-identical environment. *)
let mutation_seed case = (case.catalog_seed * 1_000_003) + 11
let stats_seed case = (case.catalog_seed * 7919) + 13
let fault_seed case = (case.catalog_seed * 1_000_003) + 7

let env_cache : (string, (env, string) result) Hashtbl.t = Hashtbl.create 32

let env_key config case =
  Printf.sprintf "%s/%d/%g/%d/%d/%s"
    (workload_to_string case.workload)
    case.catalog_seed config.tpch_scale config.star_rows config.sample_size
    (String.concat "," (List.map Mutate.to_string case.mutations))

let base_catalog config case =
  match case.workload with
  | Tpch ->
      let params = { Tpch.default_params with scale_factor = config.tpch_scale } in
      Tpch.generate (Rng.create ((case.catalog_seed * 2) + 1)) ~params ()
  | Star ->
      let params = { Star.default_params with fact_rows = config.star_rows } in
      Star.generate (Rng.create ((case.catalog_seed * 2) + 2)) ~params ()

let build_env config case =
  let key = env_key config case in
  match Hashtbl.find_opt env_cache key with
  | Some env -> env
  | None ->
      if Hashtbl.length env_cache > 32 then Hashtbl.reset env_cache;
      let env =
        let catalog = base_catalog config case in
        match Mutate.apply_all (Rng.create (mutation_seed case)) catalog case.mutations with
        | Error e -> Error e
        | Ok () ->
            let scale =
              match case.workload with
              | Tpch -> Tpch.cost_scale catalog
              | Star -> Star.cost_scale catalog
            in
            let stats =
              Stats_store.update_statistics
                (Rng.create (stats_seed case))
                ~config:{ Stats_store.default_config with sample_size = config.sample_size }
                catalog
            in
            Ok { e_catalog = catalog; e_scale = scale; e_stats = stats }
      in
      Hashtbl.add env_cache key env;
      env

(* ------------------------------------------------------------------ *)
(* One case through every differential pass                            *)
(* ------------------------------------------------------------------ *)

type divergence = { pass : string; detail : string }

type probe = { coverage : string * string; divergence : divergence option }

let estimator_configs stats =
  let est () =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.(resolve default_setting) ()
  in
  [
    ("robust-sampling", Cardinality.robust stats (est ()));
    ("histogram-avi", Cardinality.histogram_avi stats);
    ("sample-avi", Cardinality.sample_avi stats (est ()));
    ("sample-ml", Cardinality.sample_ml stats);
  ]

let fresh_estimator () =
  Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.(resolve default_setting) ()

(* The --self-test sabotage: inflate the quantile the perturbed arm turns
   into cardinalities and selectivities.  The answers it computes stay
   correct — only its plan choices drift, which is exactly the class of
   bug the kernel-vs-scan pass exists to catch. *)
let perturb_estimator (c : Cardinality.t) =
  {
    c with
    name = c.name ^ "+perturbed";
    expression_cardinality = (fun refs -> (5.0 *. c.expression_cardinality refs) +. 25.0);
    table_selectivity =
      (fun ~table pred -> Float.min 1.0 ((3.0 *. c.table_selectivity ~table pred) +. 0.05));
  }

let mismatch_detail reference candidate =
  let render r =
    let rows = Exp_common.canonical_rows r in
    let n = Array.length rows in
    let shown = Array.to_list (Array.sub rows 0 (min 3 n)) in
    Printf.sprintf "%d rows [%s%s]" n (String.concat " | " shown) (if n > 3 then " ..." else "")
  in
  Printf.sprintf "reference %s vs candidate %s" (render reference) (render candidate)

let run_case config ~self_test ~self_test_rewrite env case : (probe, string) result =
  let query = compile_case case in
  let scale = env.e_scale in
  let stats = env.e_stats in
  let catalog = env.e_catalog in
  let plans = Buffer.create 128 in
  let add_plan label plan =
    if Buffer.length plans > 0 then Buffer.add_char plans ';';
    Buffer.add_string plans (label ^ "=" ^ Plan.describe plan)
  in
  let tier = ref "" in
  let divergence = ref None in
  let fail pass detail = if !divergence = None then divergence := Some { pass; detail } in
  let guarded pass f =
    if !divergence = None then
      try f ()
      with exn -> fail ("crash:" ^ pass) (Printexc.to_string exn)
  in
  let execute ?mode plan =
    let meter = Cost.create ~scale () in
    let result = Executor.run ?mode catalog meter plan in
    (result, Cost.snapshot meter)
  in
  (* Pass 0: the exact oracle sets the reference answer. *)
  let oracle_opt = Optimizer.create ~scale stats (Cardinality.oracle catalog) in
  match Optimizer.optimize oracle_opt query with
  | Error e ->
      (* the mutator built an unplannable query: not a divergence, the
         case is simply invalid *)
      Error (Printf.sprintf "oracle rejected: %s" e)
  | Ok od ->
      let reference = ref None in
      guarded "oracle-execute" (fun () ->
          add_plan "o" od.Optimizer.plan;
          reference := Some (fst (execute od.Optimizer.plan)));
      let against_reference pass result =
        match !reference with
        | Some r when not (Exp_common.results_equal r result) ->
            fail pass (mismatch_detail r result)
        | _ -> ()
      in
      (* Pass 1: every estimator's plan answers like the oracle. *)
      List.iter
        (fun (name, estimator) ->
          guarded ("estimator:" ^ name) (fun () ->
              let opt = Optimizer.create ~scale stats estimator in
              match Optimizer.optimize opt query with
              | Error e -> fail ("estimator:" ^ name) ("rejected: " ^ e)
              | Ok d ->
                  add_plan name d.Optimizer.plan;
                  against_reference ("estimator:" ^ name) (fst (execute d.Optimizer.plan))))
        (estimator_configs stats);
      (* Pass 2: cached-vs-cold through a fresh plan cache. *)
      guarded "cache" (fun () ->
          let opt = Optimizer.robust ~scale stats in
          let cache = Plan_cache.create () in
          let fingerprint =
            Rq_sql.Fingerprint.to_key
              (Rq_sql.Fingerprint.of_logical
                 ~estimator:(Optimizer.estimator opt).Cardinality.name query)
          in
          List.iter
            (fun (pass, expected) ->
              match Plan_cache.find_or_optimize cache opt ~fingerprint query with
              | Error e -> fail ("cache:" ^ pass) ("rejected: " ^ e)
              | Ok (d, outcome) ->
                  let got = Plan_cache.outcome_to_string outcome in
                  if got <> expected then
                    fail ("cache:" ^ pass)
                      (Printf.sprintf "expected %s lookup, got %s" expected got)
                  else against_reference ("cache:" ^ pass) (fst (execute d.Optimizer.plan)))
            [ ("cold", "miss"); ("cached", "hit") ])
      ;
      (* Pass 3: streaming vs materialized on the robust plan: identical
         tuples, identical cost counters. *)
      guarded "engine" (fun () ->
          let opt = Optimizer.robust ~scale stats in
          match Optimizer.optimize opt query with
          | Error e -> fail "engine" ("rejected: " ^ e)
          | Ok d ->
              let sres, ssnap = execute ~mode:Executor.Streaming d.Optimizer.plan in
              let mres, msnap = execute ~mode:Executor.Materialized d.Optimizer.plan in
              if sres.Executor.tuples <> mres.Executor.tuples then
                fail "engine" (mismatch_detail mres sres)
              else if
                (* under LIMIT the streaming engine legitimately early-exits
                   and reads fewer pages; only the tuples must agree *)
                query.Logical.limit = None
                && not (Exp_common.snapshots_equal ssnap msnap)
              then
                fail "engine:counters"
                  (Printf.sprintf "streaming %s\nmaterialized %s"
                     (Format.asprintf "%a" Cost.pp_snapshot ssnap)
                     (Format.asprintf "%a" Cost.pp_snapshot msnap)));
      (* Pass 4: evidence kernel vs row scan (the --self-test sabotage
         perturbs the scan arm's estimator here). *)
      guarded "kernel" (fun () ->
          let names =
            List.map (fun (r : Logical.table_ref) -> r.Logical.table) query.Logical.tables
          in
          (match Rq_stats.Stats_store.synopsis_for stats names with
          | None -> ()
          | Some syn ->
              let pred =
                Pred.conj
                  (List.map
                     (fun (r : Logical.table_ref) ->
                       Pred.rename_columns (fun c -> r.Logical.table ^ "." ^ c) r.Logical.pred)
                     query.Logical.tables)
              in
              let kk, kn = Rq_stats.Join_synopsis.evidence syn pred in
              let sk, sn = Rq_stats.Join_synopsis.evidence_scan syn pred in
              if (kk, kn) <> (sk, sn) then
                fail "kernel:evidence"
                  (Printf.sprintf "kernel (%d, %d) <> scan (%d, %d) on %s" kk kn sk sn
                     (Pred.render pred)));
          if !divergence = None then begin
            let kernel_card = Cardinality.robust stats (fresh_estimator ()) in
            let scan_card =
              let c = Cardinality.robust ~kernel:false stats (fresh_estimator ()) in
              if self_test then perturb_estimator c else c
            in
            let kernel_opt = Optimizer.create ~scale stats kernel_card in
            let scan_opt = Optimizer.create ~scale stats scan_card in
            match (Optimizer.optimize kernel_opt query, Optimizer.optimize scan_opt query) with
            | Error e, _ -> fail "kernel" ("kernel arm rejected: " ^ e)
            | _, Error e -> fail "kernel" ("scan arm rejected: " ^ e)
            | Ok kd, Ok sd ->
                if
                  Exp_common.plan_digest kd.Optimizer.plan
                  <> Exp_common.plan_digest sd.Optimizer.plan
                then
                  fail "kernel:plan-mismatch"
                    (Printf.sprintf "kernel chose %s, scan chose %s"
                       (Plan.describe kd.Optimizer.plan)
                       (Plan.describe sd.Optimizer.plan))
                else begin
                  let kres = fst (execute kd.Optimizer.plan) in
                  let sres = fst (execute sd.Optimizer.plan) in
                  if not (Exp_common.results_equal sres kres) then
                    fail "kernel" (mismatch_detail sres kres)
                end
          end);
      (* Pass 5: the degrading estimator over *faulted* statistics, under
         guard-driven re-optimization, with span/meter reconciliation.
         Bad statistics may cost time, never answers or unaccounted work. *)
      guarded "degraded" (fun () ->
          let faulted = Fault.apply (Rng.create (fault_seed case)) stats case.faults in
          let recorder = Recorder.create () in
          let estimator = Cardinality.degrading ~obs:recorder faulted (fresh_estimator ()) in
          let opt = Optimizer.create ~scale faulted estimator in
          match Optimizer.optimize opt query with
          | Error e -> fail "degraded" ("rejected: " ^ e)
          | Ok d ->
              let outcome =
                Reopt.execute_plan ~threshold:config.reopt_threshold ~obs:recorder opt query
                  d.Optimizer.plan
              in
              against_reference "degraded" outcome.Reopt.result;
              if !divergence = None then begin
                let span_total = Recorder.sum_self (Recorder.roots recorder) in
                let meter_total = Cost.to_metrics outcome.Reopt.snapshot in
                if not (Rq_obs.Metrics.approx_equal ~tolerance:1e-9 span_total meter_total) then
                  fail "degraded:counter-reconciliation"
                    "observability spans do not sum to the cost-meter snapshot";
                add_plan "deg" outcome.Reopt.final_plan;
                tier := Trace_digest.of_recorder recorder
              end);
      (* Pass 6: the logical rewrite layer.  Optimize the query with the
         pass list off and on; both plans must produce the same multiset of
         rows.  The --self-test-rewrite sabotage swaps the rewritten arm's
         input for one with a dropped filter conjunct, which this pass must
         catch. *)
      guarded "rewrite" (fun () ->
          let opt = Optimizer.robust ~scale stats in
          let rewritten_query =
            if self_test_rewrite then Rewrite.unsound_for_tests query else query
          in
          match
            ( Optimizer.optimize ~rewrite:false opt query,
              Optimizer.optimize opt rewritten_query )
          with
          | Error e, _ -> fail "rewrite" ("unrewritten arm rejected: " ^ e)
          | _, Error e -> fail "rewrite" ("rewritten arm rejected: " ^ e)
          | Ok plain, Ok rewritten ->
              add_plan "rw" rewritten.Optimizer.plan;
              let pres = fst (execute plain.Optimizer.plan) in
              let rres = fst (execute rewritten.Optimizer.plan) in
              if not (Exp_common.results_equal pres rres) then
                fail "rewrite"
                  (Printf.sprintf "%s (plain %s vs rewritten %s)"
                     (mismatch_detail pres rres)
                     (Exp_common.plan_digest plain.Optimizer.plan)
                     (Exp_common.plan_digest rewritten.Optimizer.plan)));
      Ok { coverage = (Buffer.contents plans, !tier); divergence = !divergence }

let probe_case ?(self_test = false) ?(self_test_rewrite = false) config case =
  match build_env config case with
  | Error e -> Error e
  | Ok env ->
      (* Apply the data-plane gene for the duration of the probe: the
         vectorized and row planes must be indistinguishable in every
         pass's answers and counters. *)
      Rq_exec.Vectorize.with_vectorize case.vectorize (fun () ->
          match case.pool_pages with
          | None -> run_case config ~self_test ~self_test_rewrite env case
          | Some pages ->
              (* Apply the buffer-pool-capacity gene for the duration of the
                 probe, then restore the previous capacity: a starved pool must
                 only add fault-ins, never change an answer. *)
              let before =
                (Rq_storage.Buffer_pool.global_stats ()).Rq_storage.Buffer_pool.capacity_chunks
                * Rq_storage.Page.pages_per_chunk
              in
              Rq_storage.Buffer_pool.configure ~capacity_pages:pages;
              Fun.protect
                ~finally:(fun () -> Rq_storage.Buffer_pool.configure ~capacity_pages:before)
                (fun () -> run_case config ~self_test ~self_test_rewrite env case))

(* ------------------------------------------------------------------ *)
(* Random generation and the escalating mutator                        *)
(* ------------------------------------------------------------------ *)

let gen_atom rng pool = { column = pool.p_column; cmp = Rng.pick rng pool.p_cmps; value = pool.p_draw rng }

let gen_table_gene rng ?(max_atoms = 2) ts =
  let n = Rng.int rng (max_atoms + 1) in
  let atoms = List.init n (fun _ -> gen_atom rng (Rng.pick rng ts.t_pools)) in
  { table = ts.t_name; atoms }

let gen_semi rng spec ~present =
  let free =
    Array.to_list spec.s_semis
    |> List.filter (fun (t, _, _) -> not (List.mem t present))
  in
  match free with
  | [] -> None
  | _ ->
      let t, _, _ = Rng.pick rng (Array.of_list free) in
      table_spec spec t |> Option.map (fun ts -> gen_table_gene rng ~max_atoms:1 ts)

let gen_query rng spec =
  let root = gen_table_gene rng spec.s_root in
  let sats =
    Array.to_list spec.s_satellites
    |> List.filter_map (fun ts -> if Rng.bool rng then Some (gen_table_gene rng ~max_atoms:1 ts) else None)
  in
  let genes = root :: sats in
  let semis =
    if Rng.int rng 3 = 0 then
      match gen_semi rng spec ~present:(List.map (fun g -> g.table) genes) with
      | Some s -> [ s ]
      | None -> []
    else []
  in
  let shape = Rng.pick rng [| Total; Grouped; Projected |] in
  let order = shape <> Total && Rng.int rng 3 = 0 in
  let limit = if Rng.int rng 4 = 0 then Some (1 + Rng.int rng 20) else None in
  { genes; shape; semis; order; descending = order && Rng.bool rng; limit }

(* Faults and data mutations target tables the query actually touches:
   damage elsewhere leaves both the plan and the tier digest unchanged, so
   untargeted injections are almost always wasted probes. *)
let gen_fault rng spec tables =
  let root = Rng.pick rng (Array.of_list tables) in
  match Rng.int rng 6 with
  | 0 -> Fault.Drop_synopsis root
  | 1 -> Fault.Truncate_synopsis { root; keep = Rng.pick rng [| 2; 5 |] }
  | 2 -> Fault.Corrupt_synopsis root
  | 3 -> Fault.Skew_synopsis { root; factor = Rng.pick rng [| 16.0; 0.06; 64.0 |] }
  | 4 ->
      let ts =
        match table_spec spec root with Some ts -> ts | None -> spec.s_root
      in
      Fault.Drop_histogram { table = ts.t_name; column = (Rng.pick rng ts.t_pools).p_column }
  | _ -> Fault.Dangling_fk { root; break = Rng.pick rng [| 1; 25; 75 |] }

let gen_mutation rng spec tables =
  if Rng.int rng 3 = 0 then
    (* only the fact/root table is shrinkable (no incoming FK edges) *)
    Mutate.Shrink { table = spec.s_root.t_name; keep_percent = Rng.pick rng [| 60; 25; 0 |] }
  else
    Mutate.Grow { table = Rng.pick rng (Array.of_list tables); percent = Rng.pick rng [| 40; 120 |] }

let query_tables q = List.map (fun g -> g.table) q.genes

let gen_case rng config =
  let workload = Rng.pick rng (Array.of_list config.workloads) in
  let catalog_seed = Rng.pick rng (Array.of_list config.catalog_seeds) in
  let spec = spec_of workload in
  let query = gen_query rng spec in
  let tables = query_tables query in
  (* the pure-random control can reach fault/mutation states too — the
     steered loop must win on search order, not on a larger gene pool *)
  let faults = if Rng.int rng 4 = 0 then [ gen_fault rng spec tables ] else [] in
  let mutations = if Rng.int rng 6 = 0 then [ gen_mutation rng spec tables ] else [] in
  let pool_pages =
    if Rng.int rng 6 = 0 then Some (Rng.pick rng [| 64; 256; 2048 |]) else None
  in
  let vectorize = Rng.int rng 4 <> 0 in
  { workload; catalog_seed; mutations; faults; query; pool_pages; vectorize }

let cap_list n l = if List.length l > n then List.tl l else l

let nudge_literal rng = function
  | L_int n -> L_int (max 0 (n + Rng.int rng 11 - 5))
  | L_float f -> L_float (f *. Rng.pick rng [| 0.5; 1.5 |])
  | L_date d -> L_date (d + Rng.int rng 61 - 30)

let mutate_query rng spec q =
  let genes = Array.of_list q.genes in
  let pick_gene () = Rng.int rng (Array.length genes) in
  match Rng.int rng 9 with
  | 0 -> (
      (* redraw or nudge one literal *)
      let i = pick_gene () in
      let g = genes.(i) in
      match g.atoms with
      | [] -> q
      | atoms ->
          let j = Rng.int rng (List.length atoms) in
          let atoms =
            List.mapi
              (fun k a ->
                if k <> j then a
                else if Rng.bool rng then { a with value = nudge_literal rng a.value }
                else
                  match table_spec spec g.table with
                  | Some ts -> (
                      match Array.find_opt (fun p -> p.p_column = a.column) ts.t_pools with
                      | Some pool -> { a with value = pool.p_draw rng }
                      | None -> { a with value = nudge_literal rng a.value })
                  | None -> a)
              atoms
          in
          genes.(i) <- { g with atoms };
          { q with genes = Array.to_list genes })
  | 1 -> (
      (* add an atom *)
      let i = pick_gene () in
      let g = genes.(i) in
      match table_spec spec g.table with
      | Some ts when List.length g.atoms < 3 ->
          genes.(i) <- { g with atoms = gen_atom rng (Rng.pick rng ts.t_pools) :: g.atoms };
          { q with genes = Array.to_list genes }
      | _ -> q)
  | 2 -> (
      (* drop an atom *)
      let i = pick_gene () in
      let g = genes.(i) in
      match g.atoms with
      | [] -> q
      | atoms ->
          let j = Rng.int rng (List.length atoms) in
          genes.(i) <- { g with atoms = List.filteri (fun k _ -> k <> j) atoms };
          { q with genes = Array.to_list genes })
  | 3 -> (
      (* join in a satellite not yet present *)
      let present = List.map (fun g -> g.table) q.genes in
      let missing =
        Array.to_list spec.s_satellites
        |> List.filter (fun ts -> not (List.mem ts.t_name present))
      in
      match missing with
      | [] -> q
      | _ ->
          let ts = Rng.pick rng (Array.of_list missing) in
          { q with genes = q.genes @ [ gen_table_gene rng ~max_atoms:1 ts ] })
  | 4 -> (
      (* drop a satellite (never the root) *)
      match q.genes with
      | _root :: [] -> q
      | root :: sats ->
          let j = Rng.int rng (List.length sats) in
          { q with genes = root :: List.filteri (fun k _ -> k <> j) sats }
      | [] -> q)
  | 5 -> (
      (* add or drop an IN-subquery gene *)
      match q.semis with
      | _ :: _ when Rng.bool rng ->
          let j = Rng.int rng (List.length q.semis) in
          { q with semis = List.filteri (fun k _ -> k <> j) q.semis }
      | _ -> (
          let present = List.map (fun g -> g.table) (q.genes @ q.semis) in
          match gen_semi rng spec ~present with
          | Some s when List.length q.semis < 2 -> { q with semis = q.semis @ [ s ] }
          | _ -> q))
  | 6 ->
      (* toggle or flip the ORDER BY gene *)
      if not q.order then { q with order = true; descending = Rng.bool rng }
      else if Rng.bool rng then { q with descending = not q.descending }
      else { q with order = false }
  | 7 -> (
      (* set, nudge or clear LIMIT *)
      match q.limit with
      | None -> { q with limit = Some (1 + Rng.int rng 20) }
      | Some n ->
          if Rng.bool rng then { q with limit = None }
          else { q with limit = Some (max 1 (n + Rng.int rng 11 - 5)) })
  | _ ->
      let shapes = List.filter (fun s -> s <> q.shape) [ Total; Grouped; Projected ] in
      { q with shape = Rng.pick rng (Array.of_list shapes) }

let mutate_case rng ~level _config case =
  let spec = spec_of case.workload in
  let tables = query_tables case.query in
  match level with
  | 0 -> { case with query = mutate_query rng spec case.query }
  | 1 ->
      if case.faults <> [] && Rng.int rng 6 = 0 then
        let j = Rng.int rng (List.length case.faults) in
        { case with faults = List.filteri (fun k _ -> k <> j) case.faults }
      else
        (* stacking faults is the point: compound damage reaches tier
           transition sequences no single injection can produce *)
        { case with faults = cap_list 3 (case.faults @ [ gen_fault rng spec tables ]) }
  | _ ->
      if Rng.int rng 6 = 0 then
        (* flip the data-plane gene *)
        { case with vectorize = not case.vectorize }
      else if Rng.int rng 5 = 0 then
        (* toggle or tighten the buffer-pool-capacity gene *)
        { case with
          pool_pages =
            (match case.pool_pages with
            | None -> Some (Rng.pick rng [| 64; 256; 2048 |])
            | Some n -> if Rng.bool rng then None else Some (max 16 (n / 4)));
        }
      else if case.mutations <> [] && Rng.int rng 4 = 0 then
        let j = Rng.int rng (List.length case.mutations) in
        { case with mutations = List.filteri (fun k _ -> k <> j) case.mutations }
      else { case with mutations = cap_list 3 (case.mutations @ [ gen_mutation rng spec tables ]) }

(* ------------------------------------------------------------------ *)
(* Delta-debugging shrink                                              *)
(* ------------------------------------------------------------------ *)

let shrink_literal = function
  | L_int n -> if n = 0 then [] else [ L_int (n / 2); L_int 0 ]
  | L_float f -> if f = 0.0 then [] else [ L_float (f /. 2.0); L_float 0.0 ]
  | L_date d -> [ L_date (d - 100) ]

let weaken_fault = function
  | Fault.Truncate_synopsis { root; keep } when keep < 16 ->
      [ Fault.Truncate_synopsis { root; keep = keep * 4 } ]
  | Fault.Skew_synopsis { root; factor } when factor > 4.0 ->
      [ Fault.Skew_synopsis { root; factor = 4.0 } ]
  | Fault.Dangling_fk { root; break } when break > 1 ->
      [ Fault.Dangling_fk { root; break = break / 2 } ]
  | _ -> []

let weaken_mutation = function
  | Mutate.Grow { table; percent } when percent > 10 ->
      [ Mutate.Grow { table; percent = percent / 2 } ]
  | Mutate.Shrink { table; keep_percent } when keep_percent < 50 ->
      [ Mutate.Shrink { table; keep_percent = min 100 ((keep_percent * 2) + 10) } ]
  | _ -> []

let shrink_candidates case =
  let q = case.query in
  let with_query q' = { case with query = q' } in
  let drop_tables =
    match q.genes with
    | root :: sats when sats <> [] ->
        List.mapi
          (fun j _ -> with_query { q with genes = root :: List.filteri (fun k _ -> k <> j) sats })
          sats
    | _ -> []
  in
  let drop_semis =
    List.mapi
      (fun j _ -> with_query { q with semis = List.filteri (fun k _ -> k <> j) q.semis })
      q.semis
  in
  let drop_order = if q.order then [ with_query { q with order = false } ] else [] in
  let drop_limit =
    if q.limit <> None then [ with_query { q with limit = None } ] else []
  in
  let simplify_shape = if q.shape <> Total then [ with_query { q with shape = Total } ] else [] in
  let drop_mutations =
    List.mapi
      (fun j _ -> { case with mutations = List.filteri (fun k _ -> k <> j) case.mutations })
      case.mutations
  in
  let drop_pool =
    if case.pool_pages <> None then [ { case with pool_pages = None } ] else []
  in
  let drop_vectorize_off =
    (* restoring the default plane first: a divergence that survives it is
       not the vectorized plane's fault *)
    if not case.vectorize then [ { case with vectorize = true } ] else []
  in
  let weaken_mutations =
    List.concat
      (List.mapi
         (fun j m ->
           List.map
             (fun m' -> { case with mutations = List.mapi (fun k m0 -> if k = j then m' else m0) case.mutations })
             (weaken_mutation m))
         case.mutations)
  in
  let drop_faults =
    List.mapi
      (fun j _ -> { case with faults = List.filteri (fun k _ -> k <> j) case.faults })
      case.faults
  in
  let weaken_faults =
    List.concat
      (List.mapi
         (fun j f ->
           List.map
             (fun f' -> { case with faults = List.mapi (fun k f0 -> if k = j then f' else f0) case.faults })
             (weaken_fault f))
         case.faults)
  in
  let drop_atoms =
    List.concat
      (List.mapi
         (fun i g ->
           List.mapi
             (fun j _ ->
               let genes =
                 List.mapi
                   (fun k g0 ->
                     if k <> i then g0
                     else { g0 with atoms = List.filteri (fun l _ -> l <> j) g0.atoms })
                   q.genes
               in
               with_query { q with genes })
             g.atoms)
         q.genes)
  in
  let shrink_literals =
    List.concat
      (List.mapi
         (fun i g ->
           List.concat
             (List.mapi
                (fun j a ->
                  List.map
                    (fun v ->
                      let genes =
                        List.mapi
                          (fun k g0 ->
                            if k <> i then g0
                            else
                              {
                                g0 with
                                atoms =
                                  List.mapi
                                    (fun l a0 -> if l = j then { a0 with value = v } else a0)
                                    g0.atoms;
                              })
                          q.genes
                      in
                      with_query { q with genes })
                    (shrink_literal a.value))
                g.atoms))
         q.genes)
  in
  (* most aggressive first: whole tables and subqueries, then decoration
     (ORDER BY / LIMIT), then whole faults/mutations, then conjuncts, then
     literal values *)
  drop_tables @ drop_semis @ drop_order @ drop_limit @ simplify_shape @ drop_mutations
  @ drop_pool @ drop_vectorize_off @ drop_faults @ weaken_mutations @ weaken_faults
  @ drop_atoms @ shrink_literals

let shrink ~probe ~config case0 (div0 : divergence) =
  let reproduces case =
    match probe case with
    | Ok { divergence = Some d; _ } -> d.pass = div0.pass
    | _ -> false
  in
  let current = ref case0 in
  let spent = ref 0 in
  let progress = ref true in
  while !progress && !spent < config.shrink_budget do
    progress := false;
    (try
       List.iter
         (fun candidate ->
           if !spent >= config.shrink_budget then raise Exit;
           incr spent;
           if reproduces candidate then begin
             current := candidate;
             progress := true;
             raise Exit
           end)
         (shrink_candidates !current)
     with Exit -> ())
  done;
  !current

(* ------------------------------------------------------------------ *)
(* Repro files                                                         *)
(* ------------------------------------------------------------------ *)

let repro_format = "robustopt-fuzz-repro/1"

let repro_to_json ~seed ~iteration ~self_test ~self_test_rewrite case (d : divergence) =
  Json.Obj
    [
      ("format", Json.Str repro_format);
      ("seed", Json.Num (float_of_int seed));
      ("iteration", Json.Num (float_of_int iteration));
      ("self_test", Json.Bool self_test);
      ("self_test_rewrite", Json.Bool self_test_rewrite);
      ("divergence", Json.Obj [ ("pass", Json.Str d.pass); ("detail", Json.Str d.detail) ]);
      ("case", case_to_json case);
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let write_repro path ~seed ~iteration ~self_test ~self_test_rewrite case d =
  write_file path
    (Json.to_string (repro_to_json ~seed ~iteration ~self_test ~self_test_rewrite case d) ^ "\n")

let load_repro path =
  let* json = Json.parse (read_file path) in
  let* format = jstr "format" json in
  if format <> repro_format then Error (Printf.sprintf "unsupported repro format %S" format)
  else
    let* case_j = jfield "case" json in
    let* case = case_of_json case_j in
    let jbool name = match jfield name json with Ok (Json.Bool b) -> b | _ -> false in
    let self_test = jbool "self_test" in
    let self_test_rewrite = jbool "self_test_rewrite" in
    let pass = match jfield "divergence" json with Ok d -> Result.value ~default:"" (jstr "pass" d) | Error _ -> "" in
    Ok (case, self_test, self_test_rewrite, pass)

let replay config path =
  let* case, self_test, self_test_rewrite, expected_pass = load_repro path in
  let* probe = probe_case ~self_test ~self_test_rewrite config case in
  Ok (case, probe, expected_pass)

(* ------------------------------------------------------------------ *)
(* The evolutionary loop                                               *)
(* ------------------------------------------------------------------ *)

type found = {
  f_divergence : divergence;
  f_case : case;               (* shrunk *)
  f_tables : int;
  f_iteration : int;
  f_repro_path : string;
  f_reproduced : bool;         (* the written repro file replays red *)
}

type result = {
  r_iterations : int;
  r_probes : int;              (* total case evaluations, shrinking included *)
  r_corpus : int;
  r_pairs : int;               (* distinct (plan digest x tier digest) pairs *)
  r_baseline_pairs : int option;
  r_last_new_pair : int;       (* iteration that last produced an unseen pair *)
  r_kept_by_level : int * int * int;
  r_found : found option;
  r_self_test : bool;
  r_ok : bool;
  r_seconds : float;
}

let coverage_key (plans, tier) = plans ^ "|" ^ tier

let corpus_filename case =
  Printf.sprintf "%08x.fuzz" (Hashtbl.hash (Json.to_string (case_to_json case)))

let load_corpus dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fuzz")
    |> List.sort String.compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           match Json.parse (read_file path) with
           | Ok j -> ( match case_of_json j with Ok c -> Some c | Error _ -> None)
           | Error _ -> None)
  else []

let save_corpus_case dir case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file (Filename.concat dir (corpus_filename case))
    (Json.to_string (case_to_json case) ^ "\n")

(* QPG escalation as a *floor*: sustained stagnation forces the mutator up
   the ladder (query -> stats faults -> data state), but even a productive
   search keeps a standing chance of jumping tiers — tier digests mostly
   move when statistics are damaged, and waiting for full stagnation
   before touching them leaves that axis unexplored. *)
let escalation_floor ~stagnation = if stagnation >= 16 then 2 else if stagnation >= 8 then 1 else 0

let pick_level rng ~stagnation =
  let roll = Rng.int rng 10 in
  let stochastic = if roll < 4 then 0 else if roll < 8 then 1 else 2 in
  max (escalation_floor ~stagnation) stochastic

let run ?(log = fun (_ : string) -> ()) ?(config = default_config) () =
  let start = Sys.time () in
  let rng = Rng.create config.seed in
  let self_test = config.self_test in
  let self_test_rewrite = config.self_test_rewrite in
  let probes = ref 0 in
  let probe case =
    incr probes;
    probe_case ~self_test ~self_test_rewrite config case
  in
  let seen = Hashtbl.create 256 in
  let corpus = ref [] in
  let corpus_n = ref 0 in
  let last_new = ref 0 in
  let kept = [| 0; 0; 0 |] in
  let found = ref None in
  let iterations_done = ref 0 in
  let out_of_time () =
    match config.time_budget with
    | Some budget -> Sys.time () -. start > budget
    | None -> false
  in
  let record_found ~iteration case d =
    let shrunk = shrink ~probe ~config case d in
    (* the shrunk case may now diverge with a refined detail; re-probe for
       the message we serialize *)
    let final_d =
      match probe shrunk with
      | Ok { divergence = Some d'; _ } when d'.pass = d.pass -> d'
      | _ -> d
    in
    write_repro config.repro_file ~seed:config.seed ~iteration ~self_test ~self_test_rewrite
      shrunk final_d;
    let reproduced =
      match replay config config.repro_file with
      | Ok (_, { divergence = Some d'; _ }, _) -> d'.pass = d.pass
      | _ -> false
    in
    found :=
      Some
        {
          f_divergence = final_d;
          f_case = shrunk;
          f_tables = List.length shrunk.query.genes;
          f_iteration = iteration;
          f_repro_path = config.repro_file;
          f_reproduced = reproduced;
        }
  in
  let admit ~iteration ~level case =
    match probe case with
    | Error _ -> ()   (* invalid case: the mutator overstepped, skip it *)
    | Ok { divergence = Some d; _ } ->
        log (Printf.sprintf "iteration %d: divergence in pass %s — shrinking" iteration d.pass);
        record_found ~iteration case d
    | Ok { coverage; divergence = None } ->
        let key = coverage_key coverage in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          corpus := case :: !corpus;
          incr corpus_n;
          if iteration > 0 then last_new := iteration;
          kept.(level) <- kept.(level) + 1;
          Option.iter (fun dir -> save_corpus_case dir case) config.corpus_dir
        end
  in
  (* Seed the corpus: persisted cases first, then fresh random ones. *)
  let persisted = match config.corpus_dir with Some d -> load_corpus d | None -> [] in
  List.iter (fun c -> if !found = None then admit ~iteration:0 ~level:0 c) persisted;
  for _ = 1 to config.seed_corpus do
    if !found = None then admit ~iteration:0 ~level:0 (gen_case rng config)
  done;
  if !corpus = [] && !found = None then
    (* pathological but possible if every seed was invalid: retry once *)
    admit ~iteration:0 ~level:0 (gen_case rng config);
  (* Evolve. *)
  let stagnation = ref 0 in
  (try
     let i = ref 0 in
     while (config.iterations = 0 || !i < config.iterations) && !found = None do
       incr i;
       iterations_done := !i;
       if out_of_time () then raise Exit;
       let parents = Array.of_list !corpus in
       if Array.length parents = 0 then raise Exit;
       (* novelty bias: [corpus] is newest-first, and recent additions sit
          at the frontier of unseen behaviour — prefer them, but keep a
          uniform floor so old lineages are never starved *)
       let parent =
         if Rng.int rng 10 < 7 then parents.(Rng.int rng (min 24 (Array.length parents)))
         else Rng.pick rng parents
       in
       let level = pick_level rng ~stagnation:!stagnation in
       let child = mutate_case rng ~level config parent in
       let before = !corpus_n in
       admit ~iteration:!i ~level child;
       if !corpus_n > before then stagnation := 0 else incr stagnation;
       if !i mod 50 = 0 then
         log
           (Printf.sprintf "iteration %d: corpus %d, %d distinct pairs, escalation level %d" !i
              !corpus_n (Hashtbl.length seen) level)
     done
   with Exit -> ());
  (* The pure-random control: same probe machinery, same case evaluation
     count, no corpus and no steering. *)
  let baseline_pairs =
    if not config.baseline then None
    else begin
      let brng = Rng.create (config.seed + 1009) in
      let bseen = Hashtbl.create 256 in
      let n = config.seed_corpus + !iterations_done in
      for _ = 1 to n do
        if not (out_of_time ()) then begin
          let case = gen_case brng config in
          match probe_case ~self_test ~self_test_rewrite config case with
          | Ok { divergence = None; coverage } -> Hashtbl.replace bseen (coverage_key coverage) ()
          | Ok { divergence = Some d; _ } ->
              (* a divergence is a divergence, whoever finds it *)
              if !found = None then record_found ~iteration:0 case d
          | Error _ -> ()
        end
      done;
      Some (Hashtbl.length bseen)
    end
  in
  let pairs = Hashtbl.length seen in
  let caught_by prefix f =
    (* a clean catch: the divergence must surface in the targeted pass, not
       as a crash elsewhere — "crash:kernel" deliberately does not count *)
    let n = String.length prefix in
    String.length f.f_divergence.pass >= n
    && String.sub f.f_divergence.pass 0 n = prefix
    && f.f_tables <= 3 && f.f_reproduced
  in
  let ok =
    (* rewrite sabotage takes precedence when both self-tests are armed:
       the planted unsound rewrite fires on every case, so it is the one
       the run must catch first *)
    if self_test_rewrite then
      match !found with Some f -> caught_by "rewrite" f | None -> false
    else if self_test then
      match !found with Some f -> caught_by "kernel" f | None -> false
    else
      !found = None
      && (match config.late_after with None -> true | Some n -> !last_new > n)
      && match baseline_pairs with None -> true | Some b -> pairs > b
  in
  {
    r_iterations = !iterations_done;
    r_probes = !probes;
    r_corpus = !corpus_n;
    r_pairs = pairs;
    r_baseline_pairs = baseline_pairs;
    r_last_new_pair = !last_new;
    r_kept_by_level = (kept.(0), kept.(1), kept.(2));
    r_found = !found;
    r_self_test = self_test || self_test_rewrite;
    r_ok = ok;
    r_seconds = Sys.time () -. start;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let case_summary case =
  Printf.sprintf "%s/seed%d tables=[%s] shape=%s faults=[%s] mutations=[%s]%s"
    (workload_to_string case.workload)
    case.catalog_seed
    (String.concat ","
       (List.map
          (fun g -> Printf.sprintf "%s(%d atoms)" g.table (List.length g.atoms))
          case.query.genes))
    (shape_to_string case.query.shape)
    (String.concat "," (List.map Fault.injection_to_string case.faults))
    (String.concat "," (List.map Mutate.to_string case.mutations))
    (if case.vectorize then "" else " row-plane")

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "fuzz: %d iterations, %d probes, %.1fs%s" r.r_iterations r.r_probes r.r_seconds
    (if r.r_self_test then " (self-test)" else "");
  let k0, k1, k2 = r.r_kept_by_level in
  line "coverage: %d distinct (plan x tier) pairs, corpus %d (query/fault/data keeps %d/%d/%d), last new pair at iteration %d"
    r.r_pairs r.r_corpus k0 k1 k2 r.r_last_new_pair;
  (match r.r_baseline_pairs with
  | Some bp ->
      line "baseline: pure-random search reached %d pairs at equal probes (steered: %d) — %s" bp
        r.r_pairs
        (if r.r_pairs > bp then "steering wins" else "steering DID NOT win")
  | None -> ());
  (match r.r_found with
  | Some f ->
      line "DIVERGENCE in pass %s (iteration %d), shrunk to %d table(s):" f.f_divergence.pass
        f.f_iteration f.f_tables;
      line "  %s" (case_summary f.f_case);
      line "  detail: %s" f.f_divergence.detail;
      line "  repro: %s (replay %s)" f.f_repro_path
        (if f.f_reproduced then "reproduces" else "DOES NOT reproduce")
  | None -> line "no divergence found");
  line "verdict: %s" (if r.r_ok then "OK" else "FAIL");
  Buffer.contents b

let result_to_json r =
  let k0, k1, k2 = r.r_kept_by_level in
  Json.Obj
    [
      ("iterations", Json.Num (float_of_int r.r_iterations));
      ("probes", Json.Num (float_of_int r.r_probes));
      ("corpus", Json.Num (float_of_int r.r_corpus));
      ("pairs", Json.Num (float_of_int r.r_pairs));
      ( "baseline_pairs",
        match r.r_baseline_pairs with Some b -> Json.Num (float_of_int b) | None -> Json.Null );
      ("last_new_pair", Json.Num (float_of_int r.r_last_new_pair));
      ( "kept_by_level",
        Json.List [ Json.Num (float_of_int k0); Json.Num (float_of_int k1); Json.Num (float_of_int k2) ] );
      ( "divergence",
        match r.r_found with
        | None -> Json.Null
        | Some f ->
            Json.Obj
              [
                ("pass", Json.Str f.f_divergence.pass);
                ("iteration", Json.Num (float_of_int f.f_iteration));
                ("tables", Json.Num (float_of_int f.f_tables));
                ("repro", Json.Str f.f_repro_path);
                ("reproduced", Json.Bool f.f_reproduced);
              ] );
      ("self_test", Json.Bool r.r_self_test);
      ("ok", Json.Bool r.r_ok);
      ("seconds", Json.Num r.r_seconds);
    ]
