(** Batch workload evaluation: run a list of SQL queries under a
    robustness policy and report per-query and aggregate behaviour.

    This is the operational loop the paper's introduction motivates — a
    DBA asking "how predictable is my workload under this setting?" —
    packaged as a library call (and the CLI's [batch] command).  Each
    query is parsed, bound (hints honored), optimized, and executed on
    the cost-accounting engine; the report includes the oracle plan's
    time so regret is visible per query. *)

open Rq_storage

type query_report = {
  sql : string;
  plan : string;                  (** chosen plan, [Plan.describe] form *)
  threshold_percent : float;      (** after hint resolution *)
  estimated_seconds : float;
  simulated_seconds : float;
  oracle_seconds : float;         (** the exact-cardinality plan's time *)
  rows : int;
}

type report = {
  queries : query_report list;
  total_seconds : float;
  mean_seconds : float;
  std_dev_seconds : float;
  worst_regret : float;           (** max over queries of simulated/oracle *)
}

val run :
  ?setting:Rq_core.Confidence.setting ->
  ?sample_size:int ->
  ?seed:int ->
  ?scale:float ->
  Catalog.t ->
  string list ->
  (report, string) result
(** Statistics are built once (one draw) and shared by all queries, as a
    live system would.  The first SQL error aborts with its message. *)

val render : report -> string
