(** Estimation overhead (paper Sec. 6.1).

    The paper reports 30–40% more optimization time with sample-based
    estimation than with histograms.  This module measures wall-clock
    optimization time for both estimators over the three experiment
    templates (the Bechamel micro-benchmarks in bench/ cover the same
    comparison with proper statistical machinery). *)

type measurement = {
  query : string;
  histogram_ms : float;   (** mean per-optimization time, milliseconds *)
  robust_ms : float;
  degrading_ms : float;   (** the degradation chain over healthy statistics
                              — should track [robust_ms] (shared memo) *)
  ratio : float;          (** robust / histogram *)
}

type config = { seed : int; iterations : int; scale_factor : float; sample_size : int }

val default_config : config

val run : ?config:config -> unit -> measurement list
