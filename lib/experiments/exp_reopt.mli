(** Guard-rescue experiment: metered cost of a misestimated
    indexed-nested-loop plan run to completion, versus the same plan under
    cardinality guards with mid-query re-optimization, versus the oracle
    plan — plus the pure guard overhead when no guard fires.  Backs the
    EXPERIMENTS.md "guard rescue" entry and `robustopt experiment reopt`. *)

type config = {
  seed : int;
  customers : int;
  orders : int;
  lineitems : int;
  cutoffs : int list;
  threshold : float;
}

val default_config : config

type row = {
  cutoff : int;
  actual_rows : int;
  unguarded_s : float;
  guarded_s : float;
  wasted_s : float;
      (** simulated seconds of aborted attempt prefixes that the
          continuation could not reuse, attributed from recorder span
          deltas (guarded_s = useful work + wasted_s + guard overhead) *)
  oracle_s : float;
  fired : bool;
  replanned : bool;
}

type result = {
  rows : row list;
  overhead_plain_s : float;
  overhead_guarded_s : float;
}

val run : ?config:config -> unit -> result
val render : result -> string
