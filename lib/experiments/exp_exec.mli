(** Streaming-vs-materialized executor bench ([robustopt bench-exec]).

    Runs four fixed physical plans over the TPC-H-lite catalog under both
    execution engines: LIMIT-over-scan and LIMIT-over-join (streaming must
    charge strictly fewer pages), a mid-stream guard firing (streaming
    stops scanning at the first overflowing batch), and a full-drain join
    (every cost counter must be identical).  Also measures real wall time,
    allocation and GC peak live words per engine. *)

open Rq_exec

type config = { seed : int; scale_factor : float; repetitions : int }

val default_config : config
val small_config : config
(** CI-sized: smaller catalog, fewer repetitions. *)

type workload = { name : string; plan : Plan.t; early_exit : bool }

type arm = {
  snapshot : Cost.snapshot;
  rows : int;            (** rows produced (partial rows for a fired guard) *)
  fired : bool;
  wall_ms : float;       (** mean wall-clock per run *)
  allocated_mb : float;  (** mean bytes allocated per run *)
  peak_live_words : int; (** max live heap words seen during the runs *)
}

type comparison = {
  workload : workload;
  streaming : arm;
  materialized : arm;
  pages_saved : int;      (** pages materialized charged but streaming did not *)
  counters_equal : bool;  (** every integer cost counter identical *)
  wl_ok : bool;
}

type result = { config : config; comparisons : comparison list; ok : bool }

val run : ?config:config -> unit -> result
(** [ok] is false when an early-exit workload saved no pages or a
    full-drain workload's counters diverged. *)

val to_json : result -> Rq_obs.Json.t
val render : result -> string
