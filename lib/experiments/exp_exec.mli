(** Streaming-vs-materialized executor bench ([robustopt bench-exec]).

    Runs four fixed physical plans over the TPC-H-lite catalog under both
    execution engines: LIMIT-over-scan and LIMIT-over-join (streaming must
    charge strictly fewer pages), a mid-stream guard firing (streaming
    stops scanning at the first overflowing batch), and a full-drain join
    (every cost counter must be identical).  Also measures real wall time,
    allocation and GC peak live words per engine.

    The [domains] axis runs the morsel-parallel engine ({!Rq_exec.Parallel})
    over the same catalog: every point of the axis must reproduce the serial
    materialized engine's result tuples and cost counters exactly, the
    deterministic simulated makespan at [config.domains] must beat one
    domain by at least [config.min_scan_speedup] on the scan-morsel
    workload, and a guard tuned to fire mid-scan must recover via
    [Append [Materialized prefix; resume]]. *)

open Rq_exec

type config = {
  seed : int;
  scale_factor : float;
  repetitions : int;
  domains : int;              (** top of the morsel-parallel domains axis *)
  min_scan_speedup : float;
      (** gate: simulated scan-morsel speedup at [domains] over one domain *)
  min_vec_speedup : float;
      (** gate: wall-clock speedup of the vectorized data plane over the row
          plane (median of repetitions) on the gated vectorized workloads *)
  buffer_pool_pages : int;
      (** global buffer-pool capacity in 8 KiB pages; 0 keeps the process
          default.  Capping it well below the data size is how the bench
          demonstrates out-of-core execution. *)
  exact_compare : bool;
      (** compare parallel arms against the serial engine tuple-by-tuple;
          when false (bench scale), an order-insensitive streaming multiset
          digest is compared instead so both engines' result sets are never
          live at once *)
}

val default_config : config
val small_config : config
(** CI-sized: smaller catalog, fewer repetitions. *)

type workload = {
  name : string;
  plan : Plan.t;
  early_exit : bool;
  zone_skip : bool;
      (** the scan must skip whole chunks via zone maps: [pages_skipped > 0]
          and [seq_pages + pages_skipped] = the table's page count *)
}

type arm = {
  snapshot : Cost.snapshot;
  rows : int;            (** rows produced (partial rows for a fired guard) *)
  fired : bool;
  wall_ms : float;       (** mean wall-clock per run *)
  allocated_mb : float;  (** mean bytes allocated per run *)
  peak_live_words : int; (** max live heap words seen during the runs *)
}

type comparison = {
  workload : workload;
  streaming : arm;
  materialized : arm;
  pages_saved : int;      (** pages materialized charged but streaming did not *)
  counters_equal : bool;  (** every integer cost counter identical *)
  wl_ok : bool;
}

type parallel_arm = {
  p_domains : int;
  makespan_s : float;  (** deterministic simulated makespan on [p_domains] domains *)
  p_speedup : float;   (** makespan at 1 domain / makespan at [p_domains] *)
  p_wall_ms : float;   (** real wall time of the parallel run (informational) *)
}

type parallel_check = {
  p_name : string;
  morsels : int;
  identical : bool;
      (** result tuples and every cost counter identical to the serial
          materialized engine at every point of the axis *)
  recovered : bool;
      (** guard workload: fired mid-morsel and prefix + resume replayed to
          the full result *)
  arms : parallel_arm list;
  p_ok : bool;
}

type vec_arm = {
  v_snapshot : Cost.snapshot;
  v_rows : int;
  v_wall_ms : float;      (** median wall-clock per run *)
  v_allocated_mb : float; (** mean bytes allocated per run *)
}

type vec_comparison = {
  v_name : string;
  v_plan : Plan.t;
  v_vec : vec_arm;
  v_row : vec_arm;
  v_speedup : float;       (** row median wall / vec median wall *)
  v_counters_equal : bool; (** every cost counter byte-identical between planes *)
  v_rows_equal : bool;     (** result multiset digests equal *)
  v_gated : bool;          (** [min_vec_speedup] applies to this workload *)
  v_ok : bool;
}

type result = {
  config : config;
  comparisons : comparison list;
  parallel : parallel_check list;
  vectorized : vec_comparison list;
      (** the streaming engine against itself with the vectorized data plane
          on vs. off: counters must be byte-identical, result multisets
          equal, and the gated full-drain workloads faster by
          [min_vec_speedup] *)
  buffer_pool : Rq_storage.Buffer_pool.stats;
      (** global pool traffic over the bench queries (reset after catalog
          generation) — hits, misses, evictions, hit rate *)
  ok : bool;
}

val run : ?config:config -> unit -> result
(** [ok] is false when an early-exit workload saved no pages, a full-drain
    workload's counters diverged, the zone-skip workload skipped nothing
    (or its read + skipped pages missed the table's page count), a parallel
    run failed to reproduce the serial result exactly, the scan-morsel
    speedup gate missed, the parallel guard failed to recover, a vectorized
    workload's counters or result multiset diverged from the row plane, a
    gated vectorized workload missed [min_vec_speedup], or the buffer pool
    reported no traffic at all. *)

val to_json : result -> Rq_obs.Json.t
val render : result -> string
