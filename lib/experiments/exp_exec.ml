(* Streaming-vs-materialized executor bench.

   Four fixed physical plans over the TPC-H-lite catalog, each run under
   both engines with fresh meters: two early-exit shapes (LIMIT over a seq
   scan, LIMIT over a hash join's probe side) where streaming must charge
   strictly fewer pages, one mid-stream guard firing where streaming stops
   scanning at the first overflowing batch, and one full-drain join as the
   parity control where every cost counter must land identically.  Real
   wall time and allocation are measured over repeated runs alongside the
   simulated counters, plus the GC's peak live words (sampled at major
   collections) as the memory footprint of each engine. *)

open Rq_exec
open Rq_workload

type config = {
  seed : int;
  scale_factor : float;
  repetitions : int;
  domains : int;              (* top of the morsel-parallel domains axis *)
  min_scan_speedup : float;   (* gate: simulated scan-morsel speedup at [domains] *)
  min_vec_speedup : float;    (* gate: vectorized wall-clock speedup over the
                                 row plane on the gated vectorized workloads *)
  buffer_pool_pages : int;    (* global pool capacity in 8 KiB pages; 0 keeps
                                 the process default *)
  exact_compare : bool;       (* compare parallel arms against the serial
                                 engine tuple-by-tuple; off at bench scale,
                                 where holding both engines' result sets
                                 doubles peak memory and an order-insensitive
                                 multiset digest suffices *)
}

let default_config =
  {
    seed = 11;
    scale_factor = 0.01;
    repetitions = 5;
    domains = 4;
    min_scan_speedup = 2.5;
    min_vec_speedup = 1.5;
    buffer_pool_pages = 0;
    exact_compare = true;
  }

let small_config =
  {
    default_config with
    scale_factor = 0.003;
    repetitions = 2;
    (* The small catalog has only a handful of morsels per scan, so the
       schedule cannot reach the default gate; 4 domains must still beat 1
       comfortably. *)
    min_scan_speedup = 1.5;
  }

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

type workload = {
  name : string;
  plan : Plan.t;
  early_exit : bool;
      (* streaming is expected to charge strictly fewer pages; otherwise
         every counter must be identical *)
  zone_skip : bool;
      (* zone maps must skip whole chunks: pages_skipped > 0 and
         seq_pages + pages_skipped = the table's page count *)
}

let scan table = Plan.Scan { table; access = Plan.Seq_scan; pred = Pred.True }

(* lineitem is clustered on l_orderkey, so a narrow l_orderkey band makes
   most chunks' zone maps disprove the predicate outright — the
   chunk-skipping workload. *)
let zone_skip_pred catalog =
  let orders = Rq_storage.Catalog.find_table catalog "orders" in
  Pred.lt (Expr.col "l_orderkey")
    (Expr.int (max 1 (Rq_storage.Relation.row_count orders / 8)))

let workloads catalog =
  let join =
    Plan.Hash_join
      {
        build = scan "orders";
        probe = scan "lineitem";
        build_key = "orders.o_orderkey";
        probe_key = "lineitem.l_orderkey";
      }
  in
  let base = { name = ""; plan = Plan.Limit (join, 1); early_exit = false; zone_skip = false } in
  [
    { base with name = "limit-scan"; plan = Plan.Limit (scan "lineitem", 100); early_exit = true };
    { base with name = "limit-join"; plan = Plan.Limit (join, 50); early_exit = true };
    {
      base with
      name = "guard-fire";
      plan =
        Plan.Guard
          {
            input = scan "lineitem";
            expected_rows = 8.0;
            max_q_error = 2.0;
            label = "bench guard";
          };
      early_exit = true;
    };
    { base with name = "full-drain"; plan = join };
    {
      base with
      name = "zone-skip";
      plan =
        Plan.Scan
          { table = "lineitem"; access = Plan.Seq_scan; pred = zone_skip_pred catalog };
      zone_skip = true;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type arm = {
  snapshot : Cost.snapshot;
  rows : int;            (* rows produced (partial rows for a fired guard) *)
  fired : bool;
  wall_ms : float;       (* mean wall-clock per run *)
  allocated_mb : float;  (* mean bytes allocated per run *)
  peak_live_words : int; (* max live heap words seen during the runs *)
}

(* Peak live words via a GC alarm: sampled at the end of every major
   collection, plus once after the runs with the last result still live. *)
let with_gc_peak f =
  Gc.compact ();
  let peak = ref (Gc.stat ()).Gc.live_words in
  let sample () =
    let live = (Gc.stat ()).Gc.live_words in
    if live > !peak then peak := live
  in
  let alarm = Gc.create_alarm sample in
  let result = Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) f in
  sample ();
  (result, !peak)

let run_arm ~mode ~scale ~repetitions catalog plan =
  let execute () =
    let meter = Cost.create ~scale () in
    match Executor.run ~mode catalog meter plan with
    | res -> (Cost.snapshot meter, Array.length res.Executor.tuples, false)
    | exception Executor.Guard_violation v ->
        (Cost.snapshot meter, Array.length v.Executor.result.Executor.tuples, true)
  in
  let (run, wall_s, alloc_bytes), peak_live_words =
    with_gc_peak (fun () ->
        let a0 = Gc.allocated_bytes () in
        let t0 = Sys.time () in
        let out = ref (execute ()) in
        for _ = 2 to repetitions do
          out := execute ()
        done;
        let wall = Sys.time () -. t0 in
        let allocated = Gc.allocated_bytes () -. a0 in
        let reps = float_of_int (max 1 repetitions) in
        (!out, wall /. reps, allocated /. reps))
  in
  let snapshot, rows, fired = run in
  {
    snapshot;
    rows;
    fired;
    wall_ms = wall_s *. 1000.0;
    allocated_mb = alloc_bytes /. (1024.0 *. 1024.0);
    peak_live_words;
  }

(* ------------------------------------------------------------------ *)
(* The bench                                                           *)
(* ------------------------------------------------------------------ *)

type comparison = {
  workload : workload;
  streaming : arm;
  materialized : arm;
  pages_saved : int;      (* (seq + random) pages materialized charged but
                             streaming did not *)
  counters_equal : bool;  (* every integer counter identical *)
  wl_ok : bool;
}

let total_pages (s : Cost.snapshot) = s.Cost.seq_pages + s.Cost.random_pages

let counters_equal (a : Cost.snapshot) (b : Cost.snapshot) =
  a.Cost.seq_pages = b.Cost.seq_pages
  && a.Cost.random_pages = b.Cost.random_pages
  && a.Cost.pages_skipped = b.Cost.pages_skipped
  && a.Cost.cpu_tuples = b.Cost.cpu_tuples
  && a.Cost.index_probes = b.Cost.index_probes
  && a.Cost.index_entries = b.Cost.index_entries
  && a.Cost.hash_build = b.Cost.hash_build
  && a.Cost.hash_probe = b.Cost.hash_probe
  && a.Cost.merge_tuples = b.Cost.merge_tuples
  && a.Cost.sort_tuples = b.Cost.sort_tuples
  && a.Cost.output_tuples = b.Cost.output_tuples

(* ------------------------------------------------------------------ *)
(* Morsel-parallel domains axis                                        *)
(* ------------------------------------------------------------------ *)

type parallel_arm = {
  p_domains : int;
  makespan_s : float;  (* deterministic simulated makespan on p_domains domains *)
  p_speedup : float;   (* makespan at 1 domain / makespan at p_domains *)
  p_wall_ms : float;   (* real wall time of the parallel run (informational) *)
}

type parallel_check = {
  p_name : string;
  morsels : int;
  identical : bool;  (* result tuples byte-identical and every cost counter
                        equal to the serial materialized engine, at every
                        point of the axis *)
  recovered : bool;  (* guard workload: fired with a morsel in flight and
                        prefix + resume replayed to the full result *)
  arms : parallel_arm list;
  p_ok : bool;
}

(* Vectorized-vs-row data plane.  Both arms are the same streaming engine —
   only the data plane differs ({!Vectorize.enabled} on vs. off) — so cost
   counters must be byte-identical and the result multisets equal; the
   gated workloads must additionally show a real wall-clock win (median of
   repetitions, which a single outlier repetition cannot tilt). *)

type vec_arm = {
  v_snapshot : Cost.snapshot;
  v_rows : int;
  v_wall_ms : float;      (* median wall-clock per run *)
  v_allocated_mb : float; (* mean bytes allocated per run *)
}

type vec_comparison = {
  v_name : string;
  v_plan : Plan.t;
  v_vec : vec_arm;
  v_row : vec_arm;
  v_speedup : float;       (* row median wall / vec median wall *)
  v_counters_equal : bool;
  v_rows_equal : bool;     (* result multiset digests equal *)
  v_gated : bool;          (* the speedup gate applies to this workload *)
  v_ok : bool;
}

type result = {
  config : config;
  comparisons : comparison list;
  parallel : parallel_check list;
  vectorized : vec_comparison list;
  buffer_pool : Rq_storage.Buffer_pool.stats;
      (* global pool traffic over the whole bench (stats reset after the
         catalog is generated, so this is query-time behaviour) *)
  ok : bool;
}

let domains_axis domains = List.sort_uniq compare [ 1; 2; max 1 domains ]

(* One workload across the domains axis: every point must be byte-identical
   to the serial materialized engine (results and counters); the simulated
   makespan of the morsel schedule gives the deterministic speedup. *)
let run_parallel_check ~scale ~axis ?(min_speedup = 0.0) ~exact catalog name plan =
  let serial_meter = Cost.create ~scale () in
  (* The serial result's tuples survive this binding only under [exact]:
     at bench scale the row set dies here and every arm compares against
     the streaming multiset digest instead, so the two engines' results
     are never live at once. *)
  let serial_snap, serial_digest, serial_tuples =
    let res = Executor.run ~mode:Executor.Materialized catalog serial_meter plan in
    ( Cost.snapshot serial_meter,
      Exp_common.result_digest res,
      if exact then Some res.Executor.tuples else None )
  in
  let morsels = ref 0 in
  let all_identical = ref true in
  let arms =
    List.map
      (fun d ->
        let par = Parallel.create ~domains:d () in
        let meter = Cost.create ~scale () in
        let t0 = Sys.time () in
        let res, report =
          Fun.protect
            ~finally:(fun () -> Parallel.shutdown par)
            (fun () -> Parallel.run_report par catalog meter plan)
        in
        let wall = Sys.time () -. t0 in
        let snap = Cost.snapshot meter in
        let rows_match =
          match serial_tuples with
          | Some tuples -> res.Executor.tuples = tuples
          | None ->
              Exp_common.digests_equal (Exp_common.result_digest res) serial_digest
        in
        if not (rows_match && Exp_common.snapshots_equal snap serial_snap) then
          all_identical := false;
        morsels := max !morsels report.Parallel.morsels;
        let base = Parallel.makespan ~domains:1 report in
        let mk = Parallel.makespan ~domains:d report in
        {
          p_domains = d;
          makespan_s = mk;
          p_speedup = base /. Float.max 1e-12 mk;
          p_wall_ms = wall *. 1000.0;
        })
      axis
  in
  let top_speedup =
    List.fold_left (fun acc a -> Float.max acc a.p_speedup) 0.0 arms
  in
  {
    p_name = name;
    morsels = !morsels;
    identical = !all_identical;
    recovered = true;
    arms;
    p_ok = !all_identical && top_speedup >= min_speedup;
  }

(* The mid-stream robustness bar: a guard whose violating morsel is in
   flight on another domain must still fire with a contiguous reusable
   prefix, and [Materialized prefix; resume] must replay to exactly the
   full unguarded result. *)
let run_guard_recovery ~scale ~domains ~exact catalog name plan =
  let full_meter = Cost.create ~scale () in
  let full_digest, full_tuples =
    let full =
      Executor.run ~mode:Executor.Materialized catalog full_meter (Plan.strip_guards plan)
    in
    ( Exp_common.result_digest full,
      if exact then Some full.Executor.tuples else None )
  in
  let replay_matches (res : Executor.result) =
    match full_tuples with
    | Some tuples -> res.Executor.tuples = tuples
    | None -> Exp_common.digests_equal (Exp_common.result_digest res) full_digest
  in
  let par = Parallel.create ~domains () in
  let meter = Cost.create ~scale () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown par)
      (fun () ->
        match Parallel.run par catalog meter plan with
        | _ -> None
        | exception Executor.Guard_violation v -> Some v)
  in
  let recovered =
    match outcome with
    | None -> false (* the bench guard is tuned to fire *)
    | Some v -> (
        let prefix =
          Plan.Materialized
            {
              name = "prefix";
              schema = v.Executor.result.Executor.schema;
              tuples = v.Executor.result.Executor.tuples;
              refs = [];
            }
        in
        match v.Executor.resume with
        | Some resume ->
            let replay_meter = Cost.create ~scale () in
            let replay =
              Executor.run ~mode:Executor.Materialized catalog replay_meter
                (Plan.Append [ prefix; resume ])
            in
            (not v.Executor.complete) && replay_matches replay
        | None -> v.Executor.complete && replay_matches v.Executor.result)
  in
  {
    p_name = name;
    morsels = 0;
    identical = true;
    recovered;
    arms = [];
    p_ok = recovered;
  }

let run_parallel_section config catalog ~scale =
  let axis = domains_axis config.domains in
  let join =
    Plan.Hash_join
      {
        build = scan "orders";
        probe = scan "lineitem";
        build_key = "orders.o_orderkey";
        probe_key = "lineitem.l_orderkey";
      }
  in
  let exact = config.exact_compare in
  [
    run_parallel_check ~scale ~axis ~min_speedup:config.min_scan_speedup ~exact catalog
      "scan-morsel" (scan "lineitem");
    run_parallel_check ~scale ~axis ~exact catalog "join-morsel" join;
    (* Chunk-aligned morsels + zone maps: skipped-page counters must land
       identically however morsels are scheduled. *)
    run_parallel_check ~scale ~axis ~exact catalog "scan-skip-morsel"
      (Plan.Scan
         { table = "lineitem"; access = Plan.Seq_scan; pred = zone_skip_pred catalog });
    run_guard_recovery ~scale ~domains:(max 1 config.domains) ~exact catalog
      "guard-recovery"
      (Plan.Guard
         {
           input = scan "lineitem";
           expected_rows = 8.0;
           max_q_error = 2.0;
           label = "parallel bench guard";
         });
  ]

(* ------------------------------------------------------------------ *)
(* Vectorized-vs-row data plane                                        *)
(* ------------------------------------------------------------------ *)

let median walls =
  let b = Array.copy walls in
  Array.sort compare b;
  b.(Array.length b / 2)

let run_vec_arm ~vectorize ~scale ~repetitions catalog plan =
  Rq_exec.Vectorize.with_vectorize vectorize (fun () ->
      (* Level the heap before each arm: the earlier bench sections leave a
         large major heap whose collection costs would otherwise bleed
         unevenly into whichever arm runs first. *)
      Gc.compact ();
      let walls = Array.make (max 1 repetitions) 0.0 in
      let last = ref None in
      let a0 = Gc.allocated_bytes () in
      for i = 0 to Array.length walls - 1 do
        let meter = Cost.create ~scale () in
        let t0 = Unix.gettimeofday () in
        let res = Executor.run ~mode:Executor.Streaming catalog meter plan in
        walls.(i) <- Unix.gettimeofday () -. t0;
        last :=
          Some
            ( Cost.snapshot meter,
              Array.length res.Executor.tuples,
              Exp_common.result_digest res )
      done;
      let allocated =
        (Gc.allocated_bytes () -. a0) /. float_of_int (Array.length walls)
      in
      let snapshot, rows, digest = Option.get !last in
      ( {
          v_snapshot = snapshot;
          v_rows = rows;
          v_wall_ms = median walls *. 1000.0;
          v_allocated_mb = allocated /. (1024.0 *. 1024.0);
        },
        digest ))

(* Full-drain shapes where late materialization has something to save: the
   gated pair are a narrow projection over a full scan and a join with
   projections pushed to both inputs — in the vectorized plane the scans
   and projections are zero-copy and tuples exist only at the final output
   (and the join's build side).  The ungated pair (selective filter,
   grouped aggregation) are held to counter and result equality and
   reported for the record. *)
let vec_workloads () =
  let narrow =
    [ "lineitem.l_orderkey"; "lineitem.l_quantity"; "lineitem.l_extendedprice" ]
  in
  let pushed_join =
    Plan.Project
      ( Plan.Hash_join
          {
            build =
              Plan.Project (scan "orders", [ "orders.o_orderkey"; "orders.o_orderdate" ]);
            probe =
              Plan.Project
                (scan "lineitem", [ "lineitem.l_orderkey"; "lineitem.l_extendedprice" ]);
            build_key = "orders.o_orderkey";
            probe_key = "lineitem.l_orderkey";
          },
        [ "orders.o_orderdate"; "lineitem.l_extendedprice" ] )
  in
  [
    ("full-drain", Plan.Project (scan "lineitem", narrow), true);
    ("join", pushed_join, true);
    ( "filter-drain",
      Plan.Project
        ( Plan.Filter
            (scan "lineitem", Pred.lt (Expr.col "lineitem.l_quantity") (Expr.float 25.0)),
          narrow ),
      false );
    ( "agg-drain",
      Plan.Aggregate
        {
          input = scan "lineitem";
          group_by = [ "lineitem.l_partkey" ];
          aggs =
            [
              {
                Plan.fn = Plan.Sum (Expr.col "lineitem.l_extendedprice");
                output_name = "revenue";
              };
            ];
        },
      false );
  ]

let run_vectorized_section config catalog ~scale =
  (* Three repetitions minimum so the median is a real middle even when the
     configured repetition count is bench-scale-clamped to one. *)
  let repetitions = max 3 config.repetitions in
  List.map
    (fun (name, plan, gated) ->
      let vec, vec_digest = run_vec_arm ~vectorize:true ~scale ~repetitions catalog plan in
      let row, row_digest = run_vec_arm ~vectorize:false ~scale ~repetitions catalog plan in
      let speedup = row.v_wall_ms /. Float.max 1e-9 vec.v_wall_ms in
      let counters_equal = Exp_common.snapshots_equal vec.v_snapshot row.v_snapshot in
      let rows_equal =
        vec.v_rows = row.v_rows && Exp_common.digests_equal vec_digest row_digest
      in
      {
        v_name = name;
        v_plan = plan;
        v_vec = vec;
        v_row = row;
        v_speedup = speedup;
        v_counters_equal = counters_equal;
        v_rows_equal = rows_equal;
        v_gated = gated;
        v_ok =
          counters_equal && rows_equal
          && ((not gated) || speedup >= config.min_vec_speedup);
      })
    (vec_workloads ())

let run ?(config = default_config) () =
  if config.buffer_pool_pages > 0 then
    Rq_storage.Buffer_pool.configure ~capacity_pages:config.buffer_pool_pages;
  let rng = Rq_math.Rng.create config.seed in
  let params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let catalog = Tpch.generate rng ~params () in
  let scale = Tpch.cost_scale catalog in
  (* Pool traffic from generation and index builds is load noise; what the
     report cares about is the hit rate the bench queries see. *)
  Rq_storage.Buffer_pool.reset_stats Rq_storage.Buffer_pool.global;
  let lineitem_pages =
    Rq_storage.Relation.page_count (Rq_storage.Catalog.find_table catalog "lineitem")
  in
  let comparisons =
    List.map
      (fun workload ->
        let streaming =
          run_arm ~mode:Executor.Streaming ~scale ~repetitions:config.repetitions
            catalog workload.plan
        in
        let materialized =
          run_arm ~mode:Executor.Materialized ~scale ~repetitions:config.repetitions
            catalog workload.plan
        in
        let pages_saved =
          total_pages materialized.snapshot - total_pages streaming.snapshot
        in
        let counters_equal = counters_equal streaming.snapshot materialized.snapshot in
        let wl_ok =
          if workload.zone_skip then
            counters_equal
            && streaming.rows = materialized.rows
            && materialized.snapshot.Cost.pages_skipped > 0
            && materialized.snapshot.Cost.seq_pages
               + materialized.snapshot.Cost.pages_skipped
               = lineitem_pages
          else if workload.early_exit then pages_saved > 0
          else counters_equal && streaming.rows = materialized.rows
        in
        { workload; streaming; materialized; pages_saved; counters_equal; wl_ok })
      (workloads catalog)
  in
  let parallel = run_parallel_section config catalog ~scale in
  let vectorized = run_vectorized_section config catalog ~scale in
  let buffer_pool = Rq_storage.Buffer_pool.global_stats () in
  (* The chunk path is the only road to data: a bench that reports no pool
     traffic is not measuring the storage layer it claims to. *)
  let pool_ok = buffer_pool.Rq_storage.Buffer_pool.hits + buffer_pool.Rq_storage.Buffer_pool.misses > 0 in
  {
    config;
    comparisons;
    parallel;
    vectorized;
    buffer_pool;
    ok =
      List.for_all (fun c -> c.wl_ok) comparisons
      && List.for_all (fun p -> p.p_ok) parallel
      && List.for_all (fun v -> v.v_ok) vectorized
      && pool_ok;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let arm_to_json (a : arm) =
  Rq_obs.Json.Obj
    [
      ("simulated_seconds", Rq_obs.Json.Num a.snapshot.Cost.seconds);
      ("seq_pages", Rq_obs.Json.Num (float_of_int a.snapshot.Cost.seq_pages));
      ("random_pages", Rq_obs.Json.Num (float_of_int a.snapshot.Cost.random_pages));
      ("pages_skipped", Rq_obs.Json.Num (float_of_int a.snapshot.Cost.pages_skipped));
      ("cpu_tuples", Rq_obs.Json.Num (float_of_int a.snapshot.Cost.cpu_tuples));
      ("rows", Rq_obs.Json.Num (float_of_int a.rows));
      ("guard_fired", Rq_obs.Json.Bool a.fired);
      ("wall_ms", Rq_obs.Json.Num a.wall_ms);
      ("allocated_mb", Rq_obs.Json.Num a.allocated_mb);
      ("peak_live_words", Rq_obs.Json.Num (float_of_int a.peak_live_words));
    ]

let to_json r =
  Rq_obs.Json.Obj
    [
      ("experiment", Rq_obs.Json.Str "bench-exec");
      ("seed", Rq_obs.Json.Num (float_of_int r.config.seed));
      ("scale_factor", Rq_obs.Json.Num r.config.scale_factor);
      ("repetitions", Rq_obs.Json.Num (float_of_int r.config.repetitions));
      ( "workloads",
        Rq_obs.Json.List
          (List.map
             (fun c ->
               Rq_obs.Json.Obj
                 [
                   ("name", Rq_obs.Json.Str c.workload.name);
                   ("plan", Rq_obs.Json.Str (Plan.describe c.workload.plan));
                   ("early_exit", Rq_obs.Json.Bool c.workload.early_exit);
                   ("streaming", arm_to_json c.streaming);
                   ("materialized", arm_to_json c.materialized);
                   ("pages_saved", Rq_obs.Json.Num (float_of_int c.pages_saved));
                   ("counters_equal", Rq_obs.Json.Bool c.counters_equal);
                   ("ok", Rq_obs.Json.Bool c.wl_ok);
                 ])
             r.comparisons) );
      ("domains", Rq_obs.Json.Num (float_of_int r.config.domains));
      ("min_scan_speedup", Rq_obs.Json.Num r.config.min_scan_speedup);
      ( "parallel",
        Rq_obs.Json.List
          (List.map
             (fun p ->
               Rq_obs.Json.Obj
                 [
                   ("name", Rq_obs.Json.Str p.p_name);
                   ("morsels", Rq_obs.Json.Num (float_of_int p.morsels));
                   ("identical", Rq_obs.Json.Bool p.identical);
                   ("recovered", Rq_obs.Json.Bool p.recovered);
                   ( "arms",
                     Rq_obs.Json.List
                       (List.map
                          (fun a ->
                            Rq_obs.Json.Obj
                              [
                                ("domains", Rq_obs.Json.Num (float_of_int a.p_domains));
                                ("makespan_seconds", Rq_obs.Json.Num a.makespan_s);
                                ("speedup", Rq_obs.Json.Num a.p_speedup);
                                ("wall_ms", Rq_obs.Json.Num a.p_wall_ms);
                              ])
                          p.arms) );
                   ("ok", Rq_obs.Json.Bool p.p_ok);
                 ])
             r.parallel) );
      ("min_vec_speedup", Rq_obs.Json.Num r.config.min_vec_speedup);
      ( "vectorized",
        Rq_obs.Json.List
          (List.map
             (fun v ->
               let varm (a : vec_arm) =
                 Rq_obs.Json.Obj
                   [
                     ("wall_ms_median", Rq_obs.Json.Num a.v_wall_ms);
                     ("allocated_mb", Rq_obs.Json.Num a.v_allocated_mb);
                     ("rows", Rq_obs.Json.Num (float_of_int a.v_rows));
                     ( "cpu_tuples",
                       Rq_obs.Json.Num (float_of_int a.v_snapshot.Cost.cpu_tuples) );
                     ( "seq_pages",
                       Rq_obs.Json.Num (float_of_int a.v_snapshot.Cost.seq_pages) );
                     ( "output_tuples",
                       Rq_obs.Json.Num (float_of_int a.v_snapshot.Cost.output_tuples) );
                   ]
               in
               Rq_obs.Json.Obj
                 [
                   ("name", Rq_obs.Json.Str v.v_name);
                   ("plan", Rq_obs.Json.Str (Plan.describe v.v_plan));
                   ("vectorized", varm v.v_vec);
                   ("row", varm v.v_row);
                   ("speedup", Rq_obs.Json.Num v.v_speedup);
                   ("counters_equal", Rq_obs.Json.Bool v.v_counters_equal);
                   ("rows_equal", Rq_obs.Json.Bool v.v_rows_equal);
                   ("gated", Rq_obs.Json.Bool v.v_gated);
                   ("ok", Rq_obs.Json.Bool v.v_ok);
                 ])
             r.vectorized) );
      ("buffer_pool_pages", Rq_obs.Json.Num (float_of_int r.config.buffer_pool_pages));
      ( "buffer_pool",
        (let s = r.buffer_pool in
         Rq_obs.Json.Obj
           [
             ("hits", Rq_obs.Json.Num (float_of_int s.Rq_storage.Buffer_pool.hits));
             ("misses", Rq_obs.Json.Num (float_of_int s.Rq_storage.Buffer_pool.misses));
             ("evictions", Rq_obs.Json.Num (float_of_int s.Rq_storage.Buffer_pool.evictions));
             ("hit_rate", Rq_obs.Json.Num (Rq_storage.Buffer_pool.hit_rate s));
             ( "capacity_chunks",
               Rq_obs.Json.Num (float_of_int s.Rq_storage.Buffer_pool.capacity_chunks) );
             ( "resident_chunks",
               Rq_obs.Json.Num (float_of_int s.Rq_storage.Buffer_pool.resident_chunks) );
           ]) );
      ("ok", Rq_obs.Json.Bool r.ok);
    ]

let render r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "bench-exec: streaming vs. materialized (scale %.3f, %d reps)\n"
    r.config.scale_factor r.config.repetitions;
  add "%-12s %-13s %10s %8s %8s %10s %12s\n" "workload" "engine" "sim_s" "pages"
    "rows" "wall_ms" "peak_words";
  List.iter
    (fun c ->
      let arm_row engine (a : arm) =
        add "%-12s %-13s %10.4f %8d %8d %10.3f %12d\n" c.workload.name engine
          a.snapshot.Cost.seconds (total_pages a.snapshot) a.rows a.wall_ms
          a.peak_live_words
      in
      arm_row "streaming" c.streaming;
      arm_row "materialized" c.materialized;
      let verdict =
        if c.workload.zone_skip then
          if c.wl_ok then
            Printf.sprintf "zone maps skipped %d pages (read %d, zero charge on skips)"
              c.materialized.snapshot.Cost.pages_skipped
              c.materialized.snapshot.Cost.seq_pages
          else "ZONE MAPS SKIPPED NOTHING (or page accounting broke)"
        else if c.workload.early_exit then
          Printf.sprintf "%d pages saved%s" c.pages_saved
            (if c.streaming.fired then " (guard fired mid-stream)" else "")
        else if c.counters_equal then "all counters identical"
        else "COUNTER MISMATCH"
      in
      add "%-12s   -> %s%s\n" "" verdict (if c.wl_ok then "" else "  [FAIL]"))
    r.comparisons;
  add "morsel-parallel (domains axis, simulated makespan):\n";
  add "%-16s %8s %8s %12s %10s %10s\n" "workload" "domains" "morsels" "makespan_s"
    "speedup" "wall_ms";
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          add "%-16s %8d %8d %12.4f %9.2fx %10.3f\n" p.p_name a.p_domains p.morsels
            a.makespan_s a.p_speedup a.p_wall_ms)
        p.arms;
      let verdict =
        if p.arms = [] then
          if p.recovered then "guard fired mid-morsel; prefix + resume replayed exactly"
          else "GUARD DID NOT RECOVER"
        else if p.identical then "results and counters identical to serial"
        else "PARALLEL RESULT MISMATCH"
      in
      add "%-16s   -> %s%s\n" p.p_name verdict (if p.p_ok then "" else "  [FAIL]"))
    r.parallel;
  add "vectorized vs row data plane (median wall of %d+ reps):\n"
    (max 3 r.config.repetitions);
  add "%-14s %12s %12s %9s %10s %10s\n" "workload" "vec_ms" "row_ms" "speedup"
    "counters" "rows";
  List.iter
    (fun v ->
      add "%-14s %12.3f %12.3f %8.2fx %10s %10s%s\n" v.v_name v.v_vec.v_wall_ms
        v.v_row.v_wall_ms v.v_speedup
        (if v.v_counters_equal then "equal" else "MISMATCH")
        (if v.v_rows_equal then "equal" else "MISMATCH")
        (if v.v_ok then ""
         else if v.v_gated then
           Printf.sprintf "  [FAIL: need >= %.2fx]" r.config.min_vec_speedup
         else "  [FAIL]"))
    r.vectorized;
  let s = r.buffer_pool in
  add
    "buffer pool: %d hits / %d misses (hit rate %.3f), %d evictions, %d/%d chunks \
     resident\n"
    s.Rq_storage.Buffer_pool.hits s.Rq_storage.Buffer_pool.misses
    (Rq_storage.Buffer_pool.hit_rate s) s.Rq_storage.Buffer_pool.evictions
    s.Rq_storage.Buffer_pool.resident_chunks s.Rq_storage.Buffer_pool.capacity_chunks;
  add "bench-exec: %s\n" (if r.ok then "ok" else "FAILED");
  Buffer.contents b
