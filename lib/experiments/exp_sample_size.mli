(** Experiment 4: effect of the sample size (paper Sec. 6.2.4, Figure 12).

    The Experiment-1 scenario with the confidence threshold fixed at 50%
    and the synopsis size swept from 50 to 2500 tuples.  Expected shape:
    bigger samples improve both mean and variance with diminishing returns
    past ~500, and the 50-tuple sample exhibits the paper's
    "self-adjusting" anomaly — so spread-out a posterior that the scan is
    always chosen. *)

type config = {
  seed : int;
  repetitions : int;
  sample_sizes : int list;
  offsets : int list;
  scale_factor : float;
}

val default_config : config

type point = {
  sample_size : int;
  summary : Rq_math.Summary.t;          (** pooled over offsets x draws *)
  plans : (string * int) list;
}

val run : ?config:config -> unit -> point list
