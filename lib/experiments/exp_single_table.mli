(** Experiment 1: the single-table two-predicate lineitem query
    (paper Sec. 6.2.1, Figure 9).

    The template's "?" offset shifts the receipt-date window relative to
    the ship-date window, sweeping the joint selectivity over ~0–0.6% while
    both marginals stay constant.  The available plans are a sequential
    scan, single-index range scans, and the risky two-index intersection —
    the empirical twin of the Section-5 analytical model. *)

type config = {
  seed : int;
  repetitions : int;       (** independent sample draws; paper used 20 *)
  sample_size : int;       (** synopsis tuples; paper default 500 *)
  thresholds : float list;
  offsets : int list;      (** template free-parameter sweep *)
  scale_factor : float;    (** TPC-H-lite scale; 0.01 = 60k lineitem rows *)
}

val default_config : config

val run : ?config:config -> unit -> Exp_common.row list
(** One row per offset: measured selectivity and, per estimator, the times
    and plans across draws (Figure 9(a) series plus the histogram
    baseline). *)

val tradeoff : Exp_common.row list -> (string * Rq_math.Summary.t) list
(** Figure 9(b): mean/stddev per estimator pooled over the sweep. *)
