open Rq_workload

type config = {
  seed : int;
  repetitions : int;
  sample_size : int;
  thresholds : float list;
  offsets : int list;
  scale_factor : float;
}

let default_config =
  {
    seed = 42;
    repetitions = 12;
    sample_size = 500;
    thresholds = Exp_common.paper_thresholds;
    offsets = [ 30; 40; 50; 55; 60; 65; 70; 75; 80; 85; 90 ];
    scale_factor = 0.01;
  }

let run ?(config = default_config) () =
  let rng = Rq_math.Rng.create config.seed in
  let params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) ~params () in
  let scale = Tpch.cost_scale catalog in
  let cache = Exp_common.make_cache catalog ~scale in
  let stats_of_draw = Exp_common.make_stats_of_draw rng ~sample_size:config.sample_size catalog in
  let baseline_stats = stats_of_draw 0 in
  List.map
    (fun offset ->
      let query = Tpch.exp1_query ~offset in
      let robust_series =
        Exp_common.run_robust_series ~cache ~stats_of_draw ~repetitions:config.repetitions
          ~thresholds:config.thresholds ~scale query
      in
      let histogram_cell =
        Exp_common.run_histogram_cell ~cache ~stats:baseline_stats ~scale query
      in
      let oracle_cell = Exp_common.run_oracle_cell ~cache ~catalog ~scale query in
      {
        Exp_common.parameter = float_of_int offset;
        selectivity = Tpch.exp1_selectivity catalog ~offset;
        series = robust_series @ [ histogram_cell; oracle_cell ];
      })
    config.offsets

let tradeoff rows = Exp_common.summarize_series rows
