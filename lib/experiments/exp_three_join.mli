(** Experiment 2: the three-table join lineitem |><| orders |><| part
    (paper Sec. 6.2.2, Figure 10).

    The part-table predicate always selects one [p_bucket] (constant
    marginal selectivity), but higher buckets hold more popular parts, so
    the fraction of lineitem rows surviving the join — which decides
    between the indexed-nested-loop, hash-cascade and merge-first plans —
    sweeps across the low-selectivity crossover the paper focuses on. *)

type config = {
  seed : int;
  repetitions : int;
  sample_size : int;
  thresholds : float list;
  buckets : int list;     (** p_bucket values to sweep *)
  scale_factor : float;
}

val default_config : config

val run : ?config:config -> unit -> Exp_common.row list

val tradeoff : Exp_common.row list -> (string * Rq_math.Summary.t) list
