open Rq_exec
open Rq_optimizer

type query_report = {
  sql : string;
  plan : string;
  threshold_percent : float;
  estimated_seconds : float;
  simulated_seconds : float;
  oracle_seconds : float;
  rows : int;
}

type report = {
  queries : query_report list;
  total_seconds : float;
  mean_seconds : float;
  std_dev_seconds : float;
  worst_regret : float;
}

let ( let* ) = Result.bind

let run ?(setting = Rq_core.Confidence.default_setting) ?(sample_size = 500) ?(seed = 42)
    ?(scale = 1.0) catalog sqls =
  let rng = Rq_math.Rng.create seed in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size }
      catalog
  in
  let oracle_optimizer = Optimizer.create ~scale stats (Cardinality.oracle catalog) in
  let measure plan =
    let meter = Cost.create ~scale () in
    let result = Executor.run catalog meter plan in
    ((Cost.snapshot meter).Cost.seconds, Array.length result.Executor.tuples)
  in
  let run_one sql =
    let* bound = Rq_sql.Binder.compile catalog sql in
    let confidence =
      Rq_core.Confidence.resolve ?query_hint:bound.Rq_sql.Binder.confidence_hint setting
    in
    let opt = Optimizer.robust ~scale ~confidence stats in
    let* decision =
      Result.map_error (fun e -> Printf.sprintf "%S: %s" sql e)
        (Optimizer.optimize opt bound.Rq_sql.Binder.query)
    in
    let simulated_seconds, rows = measure decision.Optimizer.plan in
    let oracle_seconds =
      match Optimizer.optimize oracle_optimizer bound.Rq_sql.Binder.query with
      | Ok oracle_decision -> fst (measure oracle_decision.Optimizer.plan)
      | Error _ -> simulated_seconds
    in
    Ok
      {
        sql;
        plan = Plan.describe decision.Optimizer.plan;
        threshold_percent = Rq_core.Confidence.to_percent confidence;
        estimated_seconds = decision.Optimizer.estimated_cost;
        simulated_seconds;
        oracle_seconds;
        rows;
      }
  in
  let rec run_all acc = function
    | [] -> Ok (List.rev acc)
    | sql :: rest ->
        let* report = run_one sql in
        run_all (report :: acc) rest
  in
  let* queries = run_all [] sqls in
  if queries = [] then Error "empty workload"
  else begin
    let times = Array.of_list (List.map (fun q -> q.simulated_seconds) queries) in
    let summary = Rq_math.Summary.of_array times in
    let worst_regret =
      List.fold_left
        (fun acc q -> Float.max acc (q.simulated_seconds /. Float.max q.oracle_seconds 1e-9))
        1.0 queries
    in
    Ok
      {
        queries;
        total_seconds = Array.fold_left ( +. ) 0.0 times;
        mean_seconds = summary.Rq_math.Summary.mean;
        std_dev_seconds = summary.Rq_math.Summary.std_dev;
        worst_regret;
      }
  end

let render report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-44s %6s %10s %10s %10s %8s\n" "#" "plan" "T%" "est_s" "sim_s"
       "oracle_s" "rows");
  List.iteri
    (fun i q ->
      Buffer.add_string buf
        (Printf.sprintf "%-4d %-44s %6.0f %10.2f %10.2f %10.2f %8d\n" (i + 1) q.plan
           q.threshold_percent q.estimated_seconds q.simulated_seconds q.oracle_seconds q.rows))
    report.queries;
  Buffer.add_string buf
    (Printf.sprintf
       "total %.2f s over %d queries; mean %.2f s; stddev %.2f s; worst regret %.2fx\n"
       report.total_seconds (List.length report.queries) report.mean_seconds
       report.std_dev_seconds report.worst_regret);
  Buffer.contents buf
