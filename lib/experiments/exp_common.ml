open Rq_storage
open Rq_exec
open Rq_optimizer

exception Bench_error of { context : string; message : string }

let bench_error ~context fmt =
  Printf.ksprintf (fun message -> raise (Bench_error { context; message })) fmt

type cell = { times : float array; plans : (string * int) list }

let cell_mean cell = (Rq_math.Summary.of_array cell.times).Rq_math.Summary.mean
let cell_std cell = (Rq_math.Summary.of_array cell.times).Rq_math.Summary.std_dev

type row = {
  parameter : float;
  selectivity : float;
  series : (string * cell) list;
}

let paper_thresholds = [ 5.0; 20.0; 50.0; 80.0; 95.0 ]

(* Statistics draws are memoized so every threshold and parameter value
   sees the same [r]-th sample, matching the paper's averaging protocol. *)
let make_stats_of_draw rng ~sample_size catalog =
  let memo = Hashtbl.create 8 in
  fun r ->
    match Hashtbl.find_opt memo r with
    | Some stats -> stats
    | None ->
        let stats =
          Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
            ~config:{ Rq_stats.Stats_store.default_config with sample_size }
            catalog
        in
        Hashtbl.replace memo r stats;
        stats

let threshold_label t = Printf.sprintf "T=%g%%" t

let histogram_label = "histograms"

type executor_cache = {
  catalog : Catalog.t;
  scale : float;
  table : (string, float) Hashtbl.t;  (* Plan.describe + params digest -> seconds *)
}

let make_cache catalog ~scale = { catalog; scale; table = Hashtbl.create 32 }

(* Plans chosen for the same query at different thresholds often coincide;
   execution is deterministic, so key the memo on the full plan rendering. *)
let plan_digest plan = Format.asprintf "%a" Plan.pp plan

let measure cache plan =
  let key = plan_digest plan in
  match Hashtbl.find_opt cache.table key with
  | Some seconds -> seconds
  | None ->
      let meter = Cost.create ~scale:cache.scale () in
      let (_ : Executor.result) = Executor.run cache.catalog meter plan in
      let seconds = (Cost.snapshot meter).Cost.seconds in
      Hashtbl.replace cache.table key seconds;
      seconds

(* ------------------------------------------------------------------ *)
(* Differential result comparison (the plan-correctness oracle)        *)
(* ------------------------------------------------------------------ *)

(* Two plans for the same query must produce the same multiset of rows,
   but not the same presentation: join order permutes output columns, and
   unordered results can arrive in any row order.  Canonicalize both away
   before comparing; float cells get a relative tolerance because summing
   the same numbers in a different order is not bitwise-stable. *)

let column_order schema =
  List.mapi (fun i (c : Schema.column) -> (c.Schema.name, i)) (Schema.columns schema)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let canonical_rows (r : Executor.result) =
  let order = column_order r.Executor.schema in
  let render = function
    | Value.Float f -> Printf.sprintf "%.6g" f
    | v -> Value.to_string v
  in
  let rows =
    Array.map
      (fun tuple -> String.concat "|" (List.map (fun (_, i) -> render tuple.(i)) order))
      r.Executor.tuples
  in
  Array.sort String.compare rows;
  rows

let values_close ~tol a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.equal x y
      || Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.equal a b

let results_equal ?(tol = 1e-6) (a : Executor.result) (b : Executor.result) =
  let order_a = column_order a.Executor.schema in
  let order_b = column_order b.Executor.schema in
  List.map fst order_a = List.map fst order_b
  && Array.length a.Executor.tuples = Array.length b.Executor.tuples
  &&
  let reorder order (r : Executor.result) =
    let rows =
      Array.map (fun tuple -> List.map (fun (_, i) -> tuple.(i)) order) r.Executor.tuples
    in
    Array.sort (fun x y -> List.compare Value.compare x y) rows;
    rows
  in
  let rows_a = reorder order_a a and rows_b = reorder order_b b in
  Array.for_all2 (fun x y -> List.for_all2 (values_close ~tol) x y) rows_a rows_b

(* Order-insensitive streaming multiset digest of a result: each row hashes
   (FNV-1a over its canonical rendering) into a count / sum / xor triple, so
   two results with the same row multiset — in any order — digest equally,
   and neither result needs to stay live while the other is produced.  The
   commutative sum+xor pair is what makes the digest order-blind without
   sorting; a row-hash collision would need to defeat both at once. *)

type digest = { d_count : int; d_sum : int64; d_xor : int64 }

let empty_digest = { d_count = 0; d_sum = 0L; d_xor = 0L }

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let result_digest (r : Executor.result) =
  let order = column_order r.Executor.schema in
  let render = function
    | Value.Float f -> Printf.sprintf "%.6g" f
    | v -> Value.to_string v
  in
  Array.fold_left
    (fun acc tuple ->
      let h =
        fnv64 (String.concat "|" (List.map (fun (_, i) -> render tuple.(i)) order))
      in
      { d_count = acc.d_count + 1; d_sum = Int64.add acc.d_sum h; d_xor = Int64.logxor acc.d_xor h })
    empty_digest r.Executor.tuples

let digests_equal a b =
  a.d_count = b.d_count && Int64.equal a.d_sum b.d_sum && Int64.equal a.d_xor b.d_xor

(* Field-by-field cost-counter equality (floats under a 1e-9 tolerance):
   the engine-differential contract that streaming and materialized
   execution of the same plan move every counter identically. *)
let snapshots_equal (a : Cost.snapshot) (b : Cost.snapshot) =
  a.Cost.seq_pages = b.Cost.seq_pages
  && a.Cost.random_pages = b.Cost.random_pages
  && a.Cost.pages_skipped = b.Cost.pages_skipped
  && a.Cost.cpu_tuples = b.Cost.cpu_tuples
  && a.Cost.index_probes = b.Cost.index_probes
  && a.Cost.index_entries = b.Cost.index_entries
  && a.Cost.hash_build = b.Cost.hash_build
  && a.Cost.hash_probe = b.Cost.hash_probe
  && a.Cost.merge_tuples = b.Cost.merge_tuples
  && a.Cost.sort_tuples = b.Cost.sort_tuples
  && a.Cost.output_tuples = b.Cost.output_tuples
  && Float.abs (a.Cost.sort_units -. b.Cost.sort_units) <= 1e-9
  && Float.abs (a.Cost.extra_seconds -. b.Cost.extra_seconds) <= 1e-9
  && Float.abs (a.Cost.seconds -. b.Cost.seconds)
     <= 1e-9 *. Float.max 1.0 (Float.abs b.Cost.seconds)

let count_plans labels =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun l -> Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    labels;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let run_robust_series ~cache ~stats_of_draw ~repetitions ~thresholds ~scale query =
  List.map
    (fun t ->
      let confidence = Rq_core.Confidence.of_percent t in
      let times = Array.make repetitions 0.0 in
      let labels = ref [] in
      for r = 0 to repetitions - 1 do
        let stats = stats_of_draw r in
        let opt = Optimizer.robust ~scale ~confidence stats in
        let decision = Optimizer.optimize_exn opt query in
        times.(r) <- measure cache decision.Optimizer.plan;
        labels := Plan.describe decision.Optimizer.plan :: !labels
      done;
      (threshold_label t, { times; plans = count_plans !labels }))
    thresholds

let run_estimator_series ~cache ~stats_of_draw ~repetitions ~label ~make ~scale query =
  let times = Array.make repetitions 0.0 in
  let labels = ref [] in
  for r = 0 to repetitions - 1 do
    let stats = stats_of_draw r in
    let opt = Rq_optimizer.Optimizer.create ~scale stats (make stats) in
    let decision = Rq_optimizer.Optimizer.optimize_exn opt query in
    times.(r) <- measure cache decision.Rq_optimizer.Optimizer.plan;
    labels := Plan.describe decision.Rq_optimizer.Optimizer.plan :: !labels
  done;
  (label, { times; plans = count_plans !labels })

let run_histogram_cell ~cache ~stats ~scale query =
  let opt = Optimizer.baseline ~scale stats in
  let decision = Optimizer.optimize_exn opt query in
  let seconds = measure cache decision.Optimizer.plan in
  ( histogram_label,
    { times = [| seconds |]; plans = [ (Plan.describe decision.Optimizer.plan, 1) ] } )

let oracle_label = "oracle"

let run_oracle_cell ~cache ~catalog ~scale query =
  let stats =
    (* The oracle estimator never consults statistics, but the optimizer
       needs a store for its catalog handle. *)
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create 0)
      ~config:
        { Rq_stats.Stats_store.default_config with sample_size = 1; synopsis_roots = Some [] }
      catalog
  in
  let opt =
    Rq_optimizer.Optimizer.create ~scale stats (Rq_optimizer.Cardinality.oracle catalog)
  in
  let decision = Rq_optimizer.Optimizer.optimize_exn opt query in
  let seconds = measure cache decision.Rq_optimizer.Optimizer.plan in
  ( oracle_label,
    {
      times = [| seconds |];
      plans = [ (Plan.describe decision.Rq_optimizer.Optimizer.plan, 1) ];
    } )

let merge_cells cells =
  let times = Array.concat (List.map (fun c -> c.times) cells) in
  let labels =
    List.concat_map (fun c -> List.concat_map (fun (l, n) -> List.init n (fun _ -> l)) c.plans) cells
  in
  { times; plans = count_plans labels }

let summarize_series rows =
  match rows with
  | [] -> []
  | first :: _ ->
      List.map
        (fun (label, _) ->
          let cells = List.map (fun row -> List.assoc label row.series) rows in
          let merged = merge_cells cells in
          (label, Rq_math.Summary.of_array merged.times))
        first.series
