(* Optimizer hot-path bench: the bitset evidence kernel.

   Two layers, one world (TPC-H-lite).

   1. Evidence micro-bench: the distinct predicates of the Experiment-1/2
      template families are pushed through the lineitem-rooted covering
      synopsis three ways — kernel with bitmaps rebuilt every pass
      (cold), kernel with bitmaps retained (warm), and the reference
      row-scan path — reporting evidence queries per second for each and
      checking every (k, n) agrees bit for bit across paths.

   2. Plan bench: the three-join Experiment-2 workload is optimized
      repeatedly per estimator per confidence threshold.  Each pass uses
      a fresh estimator (fresh evidence memo — the plan-cache-miss
      situation the kernel exists for); synopsis bitmaps persist across
      passes in kernel mode and are absent in scan mode, so the
      cold-vs-warm gap isolates exactly the kernel's contribution.  The
      kernel and scan configurations of the robust estimator must choose
      identical plans (the differential guarantee: identical evidence ->
      identical costs -> identical argmin). *)

open Rq_exec
open Rq_optimizer
open Rq_workload

type config = {
  seed : int;
  scale_factor : float;
  sample_size : int;
  evidence_repeats : int;
  plan_passes : int;
  confidences : float list;
}

let default_config =
  {
    seed = 11;
    scale_factor = 0.01;
    sample_size = 500;
    evidence_repeats = 300;
    plan_passes = 20;
    confidences = [ 50.0; 80.0; 95.0 ];
  }

let small_config =
  {
    default_config with
    scale_factor = 0.004;
    evidence_repeats = 60;
    plan_passes = 8;
  }

(* ------------------------------------------------------------------ *)
(* World                                                               *)
(* ------------------------------------------------------------------ *)

let build_world config =
  let rng = Rq_math.Rng.create config.seed in
  let params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) ~params () in
  let stats_config =
    { Rq_stats.Stats_store.default_config with sample_size = config.sample_size }
  in
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) ~config:stats_config catalog in
  (catalog, stats)

let clear_kernels stats =
  List.iter
    (fun root ->
      match Rq_stats.Stats_store.synopsis stats ~root with
      | Some syn -> Rq_stats.Join_synopsis.clear_kernel syn
      | None -> ())
    (Rq_stats.Stats_store.synopsis_roots stats)

let qualified_query_pred (q : Logical.t) =
  Pred.conj
    (List.map
       (fun (r : Logical.table_ref) ->
         Pred.rename_columns (fun c -> r.Logical.table ^ "." ^ c) r.Logical.pred)
       q.Logical.tables)

(* The Experiment-1 family shares its base shipdate atom across offsets and
   the Experiment-2 family shares the join template: exactly the
   repeated-atom structure the kernel exploits. *)
let evidence_pool () =
  List.map (fun o -> qualified_query_pred (Tpch.exp1_query ~offset:o)) [ 30; 45; 60; 75; 90 ]
  @ List.map (fun b -> qualified_query_pred (Tpch.exp2_query ~bucket:b)) [ 0; 250; 500; 750; 999 ]

let three_join_workload () =
  List.map (fun b -> Tpch.exp2_query ~bucket:b) [ 0; 250; 500; 750; 999 ]

(* ------------------------------------------------------------------ *)
(* Evidence micro-bench                                                *)
(* ------------------------------------------------------------------ *)

type evidence_bench = {
  predicates : int;
  evidence_queries : int;       (* per arm *)
  cold_rate : float;            (* evidence queries/sec, bitmaps rebuilt *)
  warm_rate : float;            (* bitmaps retained *)
  scan_rate : float;            (* reference row-scan path *)
  warm_vs_scan : float;
  warm_vs_cold : float;
  counts_match : bool;          (* kernel (k, n) == scan (k, n), all preds *)
  kernel : Rq_obs.Metrics.kernel;
}

let run_evidence config stats =
  let syn =
    match Rq_stats.Stats_store.synopsis_for stats [ "lineitem"; "orders"; "part" ] with
    | Some syn -> syn
    | None ->
        Exp_common.bench_error ~context:"bench-optimizer"
          "no covering synopsis for the three-join expression"
  in
  let preds = evidence_pool () in
  let npreds = List.length preds in
  let reps = config.evidence_repeats in
  let time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let counts_match =
    List.for_all
      (fun p -> Rq_stats.Join_synopsis.evidence syn p = Rq_stats.Join_synopsis.evidence_scan syn p)
      preds
  in
  let cold_seconds =
    time (fun () ->
        for _ = 1 to reps do
          Rq_stats.Join_synopsis.clear_kernel syn;
          List.iter (fun p -> ignore (Rq_stats.Join_synopsis.evidence syn p)) preds
        done)
  in
  (* Prime once, then measure steady state. *)
  List.iter (fun p -> ignore (Rq_stats.Join_synopsis.evidence syn p)) preds;
  let warm_seconds =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun p -> ignore (Rq_stats.Join_synopsis.evidence syn p)) preds
        done)
  in
  let scan_seconds =
    time (fun () ->
        for _ = 1 to reps do
          List.iter (fun p -> ignore (Rq_stats.Join_synopsis.evidence_scan syn p)) preds
        done)
  in
  let queries = reps * npreds in
  let rate seconds = float_of_int queries /. Float.max 1e-9 seconds in
  let warm_rate = rate warm_seconds and cold_rate = rate cold_seconds in
  let scan_rate = rate scan_seconds in
  {
    predicates = npreds;
    evidence_queries = queries;
    cold_rate;
    warm_rate;
    scan_rate;
    warm_vs_scan = warm_rate /. Float.max 1e-9 scan_rate;
    warm_vs_cold = warm_rate /. Float.max 1e-9 cold_rate;
    counts_match;
    kernel = Rq_stats.Join_synopsis.kernel_stats syn;
  }

(* ------------------------------------------------------------------ *)
(* Plan bench                                                          *)
(* ------------------------------------------------------------------ *)

type plan_cell = {
  estimator : string;
  confidence : float;
  cold_seconds : float;         (* first pass: empty bitmaps, fresh memo *)
  warm_seconds : float;         (* passes 2..N: fresh memo each, bitmaps kept *)
  cold_plan_rate : float;       (* plans/sec *)
  warm_plan_rate : float;
  digests : string list;        (* chosen plan per workload query, pass 1 *)
}

let run_plan_cell config stats ~scale ~estimator ~confidence ~make_est =
  let workload = three_join_workload () in
  let nqueries = List.length workload in
  let optimize_pass () =
    (* A fresh estimator per pass: every pass pays memo misses, so what
       warms up across passes is the synopsis bitmaps alone. *)
    let opt = Optimizer.create ~scale stats (make_est ()) in
    List.map
      (fun q -> Exp_common.plan_digest (Optimizer.optimize_exn opt q).Optimizer.plan)
      workload
  in
  clear_kernels stats;
  let t0 = Sys.time () in
  let digests = optimize_pass () in
  let cold_seconds = Sys.time () -. t0 in
  let t1 = Sys.time () in
  for _ = 2 to config.plan_passes do
    ignore (optimize_pass ())
  done;
  let warm_seconds = Sys.time () -. t1 in
  let warm_plans = nqueries * (config.plan_passes - 1) in
  {
    estimator;
    confidence;
    cold_seconds;
    warm_seconds;
    cold_plan_rate = float_of_int nqueries /. Float.max 1e-9 cold_seconds;
    warm_plan_rate = float_of_int warm_plans /. Float.max 1e-9 warm_seconds;
    digests;
  }

let estimator_configs =
  [
    ("robust-kernel", fun stats est -> Cardinality.robust stats est);
    ("robust-scan", fun stats est -> Cardinality.robust ~kernel:false stats est);
    ("degrading", fun stats est -> Cardinality.degrading stats est);
    ("histogram-avi", fun stats _est -> Cardinality.histogram_avi stats);
  ]

let run_plans config stats ~scale =
  List.concat_map
    (fun confidence_percent ->
      let confidence = Rq_core.Confidence.of_percent confidence_percent in
      let est = Rq_core.Robust_estimator.create ~confidence () in
      List.map
        (fun (label, make) ->
          run_plan_cell config stats ~scale ~estimator:label ~confidence:confidence_percent
            ~make_est:(fun () -> make stats est))
        estimator_configs)
    config.confidences

(* ------------------------------------------------------------------ *)
(* The bench                                                           *)
(* ------------------------------------------------------------------ *)

type result = {
  config : config;
  evidence : evidence_bench;
  plans : plan_cell list;
  plans_match : bool;           (* robust-kernel == robust-scan digests *)
  e2e_kernel_seconds : float;   (* robust-kernel total, all confidences *)
  e2e_scan_seconds : float;     (* robust-scan total, all confidences *)
  e2e_improvement : float;      (* scan / kernel *)
  ok : bool;
}

let run ?(config = default_config) () =
  let catalog, stats = build_world config in
  let scale = Tpch.cost_scale catalog in
  let evidence = run_evidence config stats in
  let plans = run_plans config stats ~scale in
  let cells_of label = List.filter (fun c -> String.equal c.estimator label) plans in
  let plans_match =
    List.for_all2
      (fun k s -> k.confidence = s.confidence && k.digests = s.digests)
      (cells_of "robust-kernel") (cells_of "robust-scan")
  in
  let total cells =
    List.fold_left (fun acc c -> acc +. c.cold_seconds +. c.warm_seconds) 0.0 cells
  in
  let e2e_kernel_seconds = total (cells_of "robust-kernel") in
  let e2e_scan_seconds = total (cells_of "robust-scan") in
  let e2e_improvement = e2e_scan_seconds /. Float.max 1e-9 e2e_kernel_seconds in
  let ok =
    evidence.counts_match && plans_match
    && evidence.warm_vs_scan >= 5.0
    && evidence.warm_rate > evidence.cold_rate
    && e2e_improvement > 1.0
  in
  { config; evidence; plans; plans_match; e2e_kernel_seconds; e2e_scan_seconds; e2e_improvement; ok }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let to_json r =
  let open Rq_obs in
  let ev = r.evidence in
  Json.Obj
    [
      ("experiment", Json.Str "bench-optimizer");
      ("seed", Json.Num (float_of_int r.config.seed));
      ("sample_size", Json.Num (float_of_int r.config.sample_size));
      ( "evidence",
        Json.Obj
          [
            ("predicates", Json.Num (float_of_int ev.predicates));
            ("queries_per_arm", Json.Num (float_of_int ev.evidence_queries));
            ("cold_rate", Json.Num ev.cold_rate);
            ("warm_rate", Json.Num ev.warm_rate);
            ("scan_rate", Json.Num ev.scan_rate);
            ("warm_vs_scan", Json.Num ev.warm_vs_scan);
            ("warm_vs_cold", Json.Num ev.warm_vs_cold);
            ("counts_match", Json.Bool ev.counts_match);
            ("kernel", Metrics.kernel_to_json ev.kernel);
          ] );
      ( "plans",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("estimator", Json.Str c.estimator);
                   ("confidence", Json.Num c.confidence);
                   ("cold_seconds", Json.Num c.cold_seconds);
                   ("warm_seconds", Json.Num c.warm_seconds);
                   ("cold_plan_rate", Json.Num c.cold_plan_rate);
                   ("warm_plan_rate", Json.Num c.warm_plan_rate);
                 ])
             r.plans) );
      ("plans_match", Json.Bool r.plans_match);
      ("e2e_kernel_seconds", Json.Num r.e2e_kernel_seconds);
      ("e2e_scan_seconds", Json.Num r.e2e_scan_seconds);
      ("e2e_improvement", Json.Num r.e2e_improvement);
      ("ok", Json.Bool r.ok);
    ]

let render r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let ev = r.evidence in
  add "bench-optimizer: %d evidence predicates x %d repeats, %d plan passes\n"
    ev.predicates r.config.evidence_repeats r.config.plan_passes;
  add "evidence (queries/sec): cold %.0f  warm %.0f  scan %.0f  (warm %.1fx scan, %.1fx cold)\n"
    ev.cold_rate ev.warm_rate ev.scan_rate ev.warm_vs_scan ev.warm_vs_cold;
  add "evidence counts identical to scan: %b\n" ev.counts_match;
  add "kernel: %s\n" (Format.asprintf "%a" Rq_obs.Metrics.pp_kernel ev.kernel);
  add "%-15s %6s %12s %12s %12s\n" "estimator" "conf" "cold_ms" "warm_plans/s" "cold_plans/s";
  List.iter
    (fun c ->
      add "%-15s %5.0f%% %12.2f %12.1f %12.1f\n" c.estimator c.confidence
        (c.cold_seconds *. 1000.0) c.warm_plan_rate c.cold_plan_rate)
    r.plans;
  add "kernel vs scan plans identical: %b\n" r.plans_match;
  add "three-join end-to-end: kernel %.3fs vs scan %.3fs (%.2fx)\n" r.e2e_kernel_seconds
    r.e2e_scan_seconds r.e2e_improvement;
  add "ok: %b\n" r.ok;
  Buffer.contents b
