(** Experiment 3: the four-table star join (paper Sec. 6.2.3, Figure 11).

    Each parameter value regenerates the fact table with a different joint
    join fraction (0–10%) while every dimension's marginal join fraction
    stays 10% — so the histogram baseline, multiplying marginals under
    independence, always estimates 0.1%.  Candidate plans are the
    hash-join cascade, the full semijoin-intersection strategy, and the
    hybrid plans mixing the two. *)

type config = {
  seed : int;
  repetitions : int;
  sample_size : int;
  thresholds : float list;
  join_fractions : float list;  (** each in [0, 0.1] *)
  fact_rows : int;
  dim_rows : int;
}

val default_config : config

val run : ?config:config -> unit -> Exp_common.row list

val tradeoff : Exp_common.row list -> (string * Rq_math.Summary.t) list
