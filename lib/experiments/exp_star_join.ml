open Rq_workload

type config = {
  seed : int;
  repetitions : int;
  sample_size : int;
  thresholds : float list;
  join_fractions : float list;
  fact_rows : int;
  dim_rows : int;
}

let default_config =
  {
    seed = 44;
    repetitions = 12;
    sample_size = 500;
    thresholds = Exp_common.paper_thresholds;
    join_fractions = [ 0.0; 0.0025; 0.005; 0.01; 0.02; 0.04; 0.07; 0.1 ];
    fact_rows = 100_000;
    dim_rows = 1000;
  }

let run ?(config = default_config) () =
  let rng = Rq_math.Rng.create config.seed in
  let query = Star.query () in
  List.map
    (fun join_fraction ->
      (* Unlike Experiments 1-2, the sweep parameter changes the *data*:
         regenerate the fact table per point. *)
      let params = { Star.fact_rows = config.fact_rows; dim_rows = config.dim_rows; join_fraction } in
      let catalog = Star.generate (Rq_math.Rng.split rng) ~params () in
      let scale = Star.cost_scale catalog in
      let cache = Exp_common.make_cache catalog ~scale in
      let stats_of_draw =
        Exp_common.make_stats_of_draw rng ~sample_size:config.sample_size catalog
      in
      let robust_series =
        Exp_common.run_robust_series ~cache ~stats_of_draw ~repetitions:config.repetitions
          ~thresholds:config.thresholds ~scale query
      in
      let histogram_cell =
        Exp_common.run_histogram_cell ~cache ~stats:(stats_of_draw 0) ~scale query
      in
      let oracle_cell = Exp_common.run_oracle_cell ~cache ~catalog ~scale query in
      {
        Exp_common.parameter = join_fraction;
        selectivity = Star.true_selectivity catalog;
        series = robust_series @ [ histogram_cell; oracle_cell ];
      })
    config.join_fractions

let tradeoff rows = Exp_common.summarize_series rows
