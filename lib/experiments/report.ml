let buffered f =
  let buf = Buffer.create 512 in
  f buf;
  Buffer.contents buf

let rows_table rows =
  buffered (fun buf ->
      match rows with
      | [] -> ()
      | first :: _ ->
          let labels = List.map fst first.Exp_common.series in
          Buffer.add_string buf "parameter\tselectivity%\t";
          Buffer.add_string buf
            (String.concat "\t" (List.map (fun l -> l ^ "_mean\t" ^ l ^ "_std") labels));
          Buffer.add_char buf '\n';
          List.iter
            (fun row ->
              Buffer.add_string buf
                (Printf.sprintf "%g\t%.4f" row.Exp_common.parameter
                   (100.0 *. row.Exp_common.selectivity));
              List.iter
                (fun label ->
                  let cell = List.assoc label row.Exp_common.series in
                  Buffer.add_string buf
                    (Printf.sprintf "\t%.3f\t%.3f" (Exp_common.cell_mean cell)
                       (Exp_common.cell_std cell)))
                labels;
              Buffer.add_char buf '\n')
            rows)

let plan_mix rows =
  buffered (fun buf ->
      Buffer.add_string buf "# plans chosen (parameter -> series -> plan:count)\n";
      List.iter
        (fun row ->
          List.iter
            (fun (label, cell) ->
              let mix =
                String.concat ", "
                  (List.map
                     (fun (p, c) -> Printf.sprintf "%s:%d" p c)
                     cell.Exp_common.plans)
              in
              Buffer.add_string buf
                (Printf.sprintf "#   %g\t%s\t%s\n" row.Exp_common.parameter label mix))
            row.Exp_common.series)
        rows)

let tradeoff_table tradeoff =
  buffered (fun buf ->
      Buffer.add_string buf "series\tavg_time\tstd_dev\n";
      List.iter
        (fun (label, s) ->
          Buffer.add_string buf
            (Printf.sprintf "%s\t%.3f\t%.3f\n" label s.Rq_math.Summary.mean
               s.Rq_math.Summary.std_dev))
        tradeoff)

let sample_size_table points =
  buffered (fun buf ->
      Buffer.add_string buf "sample_size\tavg_time\tstd_dev\tplans\n";
      List.iter
        (fun { Exp_sample_size.sample_size; summary; plans } ->
          let mix =
            String.concat ", " (List.map (fun (p, c) -> Printf.sprintf "%s:%d" p c) plans)
          in
          Buffer.add_string buf
            (Printf.sprintf "%d\t%.3f\t%.3f\t%s\n" sample_size summary.Rq_math.Summary.mean
               summary.Rq_math.Summary.std_dev mix))
        points)

let overhead_table measurements =
  buffered (fun buf ->
      Buffer.add_string buf "query\thistogram_ms\trobust_ms\tdegrading_ms\tratio\n";
      List.iter
        (fun { Overhead.query; histogram_ms; robust_ms; degrading_ms; ratio } ->
          Buffer.add_string buf
            (Printf.sprintf "%s\t%.3f\t%.3f\t%.3f\t%.2fx\n" query histogram_ms robust_ms
               degrading_ms ratio))
        measurements)

let partial_stats_table rows =
  buffered (fun buf ->
      match rows with
      | [] -> ()
      | first :: _ ->
          let labels = List.map fst first.Exp_partial_stats.estimates in
          Buffer.add_string buf ("p_bucket\ttrue_rows\t" ^ String.concat "\t" labels ^ "\n");
          List.iter
            (fun row ->
              Buffer.add_string buf
                (Printf.sprintf "%d\t%d" row.Exp_partial_stats.bucket
                   row.Exp_partial_stats.true_rows);
              List.iter
                (fun (_, est) -> Buffer.add_string buf (Printf.sprintf "\t%.1f" est))
                row.Exp_partial_stats.estimates;
              Buffer.add_char buf '\n')
            rows)
