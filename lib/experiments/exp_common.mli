(** Shared machinery for the empirical experiments (paper Sec. 6).

    Every experiment follows the paper's protocol: fix a data set, sweep
    the template's free parameter (which moves the true selectivity while
    all marginals stay put), and for each confidence threshold repeat
    {i statistics-draw -> optimize -> execute} over several independent
    sample draws, reporting mean and standard deviation of the simulated
    execution time.  The histogram baseline is deterministic, so it runs
    once per parameter value. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

exception Bench_error of { context : string; message : string }
(** A bench run hit a non-recoverable input/configuration failure —
    e.g. a pool query the optimizer rejects, or statistics missing the
    synopsis a bench needs.  [context] names the failing query or bench
    stage so the CLI can report it and exit nonzero without a backtrace
    (satisfying "a failed bench run reports the query label"). *)

val bench_error : context:string -> ('a, unit, string, 'b) format4 -> 'a
(** [bench_error ~context fmt ...] raises {!Bench_error}. *)

type cell = {
  times : float array;          (** simulated seconds, one per sample draw *)
  plans : (string * int) list;  (** distinct chosen plans with pick counts *)
}

val cell_mean : cell -> float
val cell_std : cell -> float

type row = {
  parameter : float;       (** the template's free parameter *)
  selectivity : float;     (** measured true selectivity *)
  series : (string * cell) list;  (** per estimator label, e.g. "T=80%" *)
}

val paper_thresholds : float list
(** 5, 20, 50, 80, 95 — the percentages used in every experiment. *)

val threshold_label : float -> string

val make_stats_of_draw :
  Rq_math.Rng.t -> sample_size:int -> Catalog.t -> int -> Rq_stats.Stats_store.t
(** Memoized statistics builder: draw [r] always returns the same store, so
    every threshold is evaluated against the same sample draws. *)

val histogram_label : string
(** "histograms". *)

type executor_cache

val make_cache : Catalog.t -> scale:float -> executor_cache

val measure : executor_cache -> Plan.t -> float
(** Simulated execution time; memoized per plan shape, since execution is
    deterministic for a fixed data set. *)

val plan_digest : Plan.t -> string
(** The full plan rendering [measure] keys its memo on — also the cheap
    way to ask whether two decisions chose the same physical plan. *)

val canonical_rows : Executor.result -> string array
(** Order-insensitive rendering of a result: columns sorted by name,
    floats at 6 significant digits, rows sorted — two plans for the same
    query yield equal arrays.  For counterexample printing; equality
    checks should use {!results_equal} (tolerant where this rounds). *)

type digest = { d_count : int; d_sum : int64; d_xor : int64 }
(** Order-insensitive multiset digest of a result's rows (FNV-1a row hashes
    folded through a commutative count / sum / xor triple). *)

val empty_digest : digest

val result_digest : Executor.result -> digest
(** Streaming: consumes the result in one pass and keeps nothing live, so
    two engines' outputs can be compared at scale without ever holding both
    row sets in memory.  Uses {!canonical_rows}' rendering, so equal row
    multisets digest equally regardless of row order. *)

val digests_equal : digest -> digest -> bool

val snapshots_equal : Cost.snapshot -> Cost.snapshot -> bool
(** Field-by-field cost-counter equality (float fields under a 1e-9
    tolerance): the streaming-vs-materialized differential contract that
    both engines move every counter identically for the same plan. *)

val results_equal : ?tol:float -> Executor.result -> Executor.result -> bool
(** Multiset equality of results modulo column order, row order and
    float-summation noise ([tol] is relative, default 1e-6).  The
    differential plan-correctness oracle: every estimator's chosen plan —
    and every cached plan — must produce [results_equal] output for the
    same logical query. *)

val run_robust_series :
  cache:executor_cache ->
  stats_of_draw:(int -> Rq_stats.Stats_store.t) ->
  repetitions:int ->
  thresholds:float list ->
  scale:float ->
  Logical.t ->
  (string * cell) list
(** For each threshold: optimize the query under each of [repetitions]
    independent statistics draws and execute the chosen plans.
    [stats_of_draw r] must return the statistics built from draw [r]
    (memoized by the caller so every threshold sees the same draws, as in
    the paper). *)

val run_estimator_series :
  cache:executor_cache ->
  stats_of_draw:(int -> Rq_stats.Stats_store.t) ->
  repetitions:int ->
  label:string ->
  make:(Rq_stats.Stats_store.t -> Rq_optimizer.Cardinality.t) ->
  scale:float ->
  Logical.t ->
  string * cell
(** Like {!run_robust_series} but for an arbitrary estimator constructor
    (used by ablations: sample-ML, sample-AVI, ...). *)

val run_histogram_cell :
  cache:executor_cache ->
  stats:Rq_stats.Stats_store.t ->
  scale:float ->
  Logical.t ->
  string * cell
(** The baseline estimator's (deterministic) choice and time. *)

val oracle_label : string
(** "oracle". *)

val run_oracle_cell :
  cache:executor_cache -> catalog:Catalog.t -> scale:float -> Logical.t -> string * cell
(** Plan choice under exact cardinalities ({!Rq_optimizer.Cardinality.oracle}):
    the reference against which estimator regret is judged. *)

val merge_cells : cell list -> cell
(** Pools times and plan counts (for per-threshold summaries across a whole
    sweep, e.g. Figure 9(b)). *)

val summarize_series : row list -> (string * Rq_math.Summary.t) list
(** Per-series summary pooled over all parameter values and draws. *)
