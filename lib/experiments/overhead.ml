open Rq_workload
open Rq_optimizer

type measurement = {
  query : string;
  histogram_ms : float;
  robust_ms : float;
  degrading_ms : float;
  ratio : float;
}

type config = { seed : int; iterations : int; scale_factor : float; sample_size : int }

let default_config = { seed = 46; iterations = 50; scale_factor = 0.01; sample_size = 500 }

let time_per_call ~iterations f =
  (* Warm up once so synopsis lookups and index structures are hot, then
     time DISTINCT queries: optimizing the same text repeatedly would just
     measure the estimator's memo table. *)
  ignore (f 0);
  let t0 = Sys.time () in
  for i = 1 to iterations do
    ignore (f i)
  done;
  (Sys.time () -. t0) /. float_of_int iterations *. 1000.0

let run ?(config = default_config) () =
  let rng = Rq_math.Rng.create config.seed in
  let tpch_params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let tpch = Tpch.generate (Rq_math.Rng.split rng) ~params:tpch_params () in
  let star = Star.generate (Rq_math.Rng.split rng) () in
  let stats_config =
    { Rq_stats.Stats_store.default_config with sample_size = config.sample_size }
  in
  let measure_query name catalog scale query_of =
    let stats =
      Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) ~config:stats_config
        catalog
    in
    let robust_opt = Optimizer.robust ~scale stats in
    let baseline_opt = Optimizer.baseline ~scale stats in
    (* The degrading chain over healthy statistics should pay the same
       (memoized) per-request cost as the plain robust estimator — this
       column is the regression check for that claim. *)
    let est =
      Rq_core.Robust_estimator.create
        ~confidence:Rq_core.Confidence.(resolve default_setting) ()
    in
    let degrading_opt = Optimizer.create ~scale stats (Cardinality.degrading stats est) in
    let histogram_ms =
      time_per_call ~iterations:config.iterations (fun i ->
          Optimizer.optimize_exn baseline_opt (query_of i))
    in
    let robust_ms =
      time_per_call ~iterations:config.iterations (fun i ->
          Optimizer.optimize_exn robust_opt (query_of i))
    in
    let degrading_ms =
      time_per_call ~iterations:config.iterations (fun i ->
          Optimizer.optimize_exn degrading_opt (query_of i))
    in
    {
      query = name;
      histogram_ms;
      robust_ms;
      degrading_ms;
      ratio = robust_ms /. Float.max 1e-9 histogram_ms;
    }
  in
  [
    measure_query "exp1-single-table" tpch (Tpch.cost_scale tpch) (fun i ->
        Tpch.exp1_query ~offset:(30 + i));
    measure_query "exp2-three-join" tpch (Tpch.cost_scale tpch) (fun i ->
        Tpch.exp2_query ~bucket:(i mod 1000));
    measure_query "exp3-star-join" star (Star.cost_scale star) (fun i ->
        Star.query ~filter_value:(i mod 10) ());
  ]
