(** Section-3.5 ablation: estimation quality under degraded statistics.

    The paper sketches a graceful-degradation ladder for expressions whose
    covering join synopsis is missing: fall back to single-table samples
    combined under AVI + containment, and when even those are absent, to a
    "magic distribution" interpreted at the active confidence threshold.
    This experiment builds the same three-way-join workload under all
    three statistics tiers and reports each tier's cardinality estimates
    against the truth — showing the error staying confined to what the
    tier cannot see. *)

type tier = Full_synopses | Single_table_samples | No_statistics

val tier_label : tier -> string

type row = {
  bucket : int;             (** the Experiment-2 free parameter *)
  true_rows : int;
  estimates : (string * float) list;  (** per tier label, at T = 50% *)
}

type config = {
  seed : int;
  sample_size : int;
  scale_factor : float;
  buckets : int list;
}

val default_config : config

val run : ?config:config -> unit -> row list
