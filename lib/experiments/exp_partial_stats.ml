open Rq_workload
open Rq_optimizer

type tier = Full_synopses | Single_table_samples | No_statistics

let tier_label = function
  | Full_synopses -> "full-synopses"
  | Single_table_samples -> "single-table-samples"
  | No_statistics -> "no-statistics"

type row = {
  bucket : int;
  true_rows : int;
  estimates : (string * float) list;
}

type config = { seed : int; sample_size : int; scale_factor : float; buckets : int list }

let default_config =
  { seed = 47; sample_size = 500; scale_factor = 0.01; buckets = [ 0; 700; 900; 975; 999 ] }

let stats_config_of base = function
  | Full_synopses -> base
  | Single_table_samples -> { base with Rq_stats.Stats_store.follow_foreign_keys = false }
  | No_statistics -> { base with Rq_stats.Stats_store.synopsis_roots = Some [] }

let run ?(config = default_config) () =
  let rng = Rq_math.Rng.create config.seed in
  let params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) ~params () in
  let base =
    { Rq_stats.Stats_store.default_config with sample_size = config.sample_size }
  in
  let estimator = Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median () in
  let tiers = [ Full_synopses; Single_table_samples; No_statistics ] in
  let estimators =
    List.map
      (fun tier ->
        let stats =
          Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
            ~config:(stats_config_of base tier) catalog
        in
        (tier_label tier, Cardinality.robust stats estimator))
      tiers
  in
  List.map
    (fun bucket ->
      let refs = (Tpch.exp2_query ~bucket).Logical.tables in
      {
        bucket;
        true_rows = Naive.cardinality catalog refs;
        estimates =
          List.map
            (fun (label, est) -> (label, est.Cardinality.expression_cardinality refs))
            estimators;
      })
    config.buckets
