(* Batched query-throughput bench: the plan cache under a mixed workload.

   A replay sequence draws (with mild skew) from a fixed pool of distinct
   queries over two lanes — the TPC-H-lite catalog (Experiments 1 and 2
   templates) and the star catalog (Experiment 3) — with periodic
   statistics refreshes injected to force stats-versioned invalidation.
   The same sequence runs twice from an identical seed: once optimizing
   every query from scratch, once through {!Rq_optimizer.Plan_cache}.
   Reported: the optimize-vs-execute time split per arm, the cache's
   hit/miss/invalidation/eviction counters, and a differential check that
   every cached plan produced the same result multiset as the plan the
   uncached arm chose for the same step. *)

open Rq_storage
open Rq_exec
open Rq_optimizer
open Rq_workload

type config = {
  seed : int;
  scale_factor : float;
  fact_rows : int;
  sample_size : int;
  replays : int;
  cache_capacity : int;
  refresh_every : int;
  confidence_percent : float;
  domains : int;  (* concurrent replay drivers over a sharded plan cache *)
}

let default_config =
  {
    seed = 7;
    scale_factor = 0.01;
    fact_rows = 20_000;
    sample_size = 300;
    replays = 400;
    cache_capacity = 64;
    refresh_every = 160;
    confidence_percent = 80.0;
    domains = 4;
  }

let small_config =
  {
    default_config with
    scale_factor = 0.004;
    fact_rows = 5_000;
    sample_size = 200;
    replays = 120;
    refresh_every = 50;
  }

(* ------------------------------------------------------------------ *)
(* World: two lanes sharing one replay sequence                        *)
(* ------------------------------------------------------------------ *)

type lane = {
  lane_name : string;
  catalog : Catalog.t;
  scale : float;
  maintenance : Rq_stats.Maintenance.t;
  (* plan digest -> (simulated seconds, result); the data never mutates
     during the bench (refreshes only redraw statistics), so execution is
     deterministic per plan. *)
  exec_memo : (string, float * Executor.result) Hashtbl.t;
}

(* Both arms rebuild the world from the same seed: identical catalogs,
   identical maintenance RNG state, hence identical statistics draws at
   every refresh — any plan difference between the arms is attributable
   to the cache alone. *)
let build_lanes config =
  let rng = Rq_math.Rng.create config.seed in
  let stats_config =
    { Rq_stats.Stats_store.default_config with sample_size = config.sample_size }
  in
  let tpch_params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let tpch = Tpch.generate (Rq_math.Rng.split rng) ~params:tpch_params () in
  let star_params = { Star.default_params with fact_rows = config.fact_rows } in
  let star = Star.generate (Rq_math.Rng.split rng) ~params:star_params () in
  let make lane_name catalog scale =
    {
      lane_name;
      catalog;
      scale;
      maintenance =
        Rq_stats.Maintenance.create ~config:stats_config (Rq_math.Rng.split rng) catalog;
      exec_memo = Hashtbl.create 64;
    }
  in
  [| make "tpch" tpch (Tpch.cost_scale tpch); make "star" star (Star.cost_scale star) |]

(* The distinct-query pool: (lane index, label, query). *)
let query_pool () =
  let exp1 =
    List.map
      (fun o -> (0, Printf.sprintf "exp1 offset=%d" o, Tpch.exp1_query ~offset:o))
      [ 30; 45; 60; 75; 90 ]
  and exp2 =
    List.map
      (fun b -> (0, Printf.sprintf "exp2 bucket=%d" b, Tpch.exp2_query ~bucket:b))
      [ 0; 250; 500; 750; 999 ]
  and star =
    List.map
      (fun v -> (1, Printf.sprintf "star filter=%d" v, Star.query ~filter_value:v ()))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  (* Join-heavy templates first: the replay skew favors low indices, and
     the recurring hot set of a plan cache is exactly the expensive
     multi-join queries (cheap single-table plans barely profit). *)
  Array.of_list (star @ exp2 @ exp1)

(* Skewed replay: min of two uniform draws biases toward low pool indices,
   approximating the recurring-query traffic a plan cache exists for. *)
let make_steps config n =
  let rng = Rq_math.Rng.create (config.seed + 1) in
  Array.init config.replays (fun _ ->
      min (Rq_math.Rng.int rng n) (Rq_math.Rng.int rng n))

(* ------------------------------------------------------------------ *)
(* One arm of the bench                                                *)
(* ------------------------------------------------------------------ *)

type arm = {
  opt_seconds : float;      (* wall-clock spent optimizing (cached arm:
                               fingerprinting + lookup + any re-optimization) *)
  exec_seconds : float;     (* simulated execution seconds, summed *)
  optimizations : int;      (* actual Optimizer.optimize runs *)
  digests : string array;   (* chosen plan per step *)
  results : Executor.result array;
}

let measure_lane lane plan digest =
  match Hashtbl.find_opt lane.exec_memo digest with
  | Some entry -> entry
  | None ->
      let meter = Cost.create ~scale:lane.scale () in
      let result = Executor.run lane.catalog meter plan in
      let entry = ((Cost.snapshot meter).Cost.seconds, result) in
      Hashtbl.replace lane.exec_memo digest entry;
      entry

let run_arm ?obs config pool steps ~cache =
  let lanes = build_lanes config in
  let confidence = Rq_core.Confidence.of_percent config.confidence_percent in
  let n = Array.length steps in
  let digests = Array.make n "" in
  let results = Array.make n None in
  let opt_seconds = ref 0.0 and exec_seconds = ref 0.0 in
  let optimizations = ref 0 in
  Array.iteri
    (fun step idx ->
      if config.refresh_every > 0 && step > 0 && step mod config.refresh_every = 0 then
        Array.iter (fun l -> Rq_stats.Maintenance.refresh l.maintenance) lanes;
      let lane_idx, label, query = pool.(idx) in
      let lane = lanes.(lane_idx) in
      let stats = Rq_stats.Maintenance.stats lane.maintenance in
      let opt = Optimizer.robust ~scale:lane.scale ~confidence stats in
      let t0 = Sys.time () in
      let decision =
        match cache with
        | None -> (
            incr optimizations;
            match Optimizer.optimize opt query with
            | Ok d -> d
            | Error e -> Exp_common.bench_error ~context:label "%s" e)
        | Some cache -> (
            let fingerprint =
              Rq_sql.Fingerprint.to_key
                (Rq_sql.Fingerprint.of_logical
                   ~estimator:(Optimizer.estimator opt).Cardinality.name ~confidence query)
            in
            match Plan_cache.find_or_optimize ?obs cache opt ~fingerprint query with
            | Ok (d, outcome) ->
                if outcome <> Plan_cache.Hit then incr optimizations;
                d
            | Error e -> Exp_common.bench_error ~context:label "%s" e)
      in
      opt_seconds := !opt_seconds +. (Sys.time () -. t0);
      let digest = Exp_common.plan_digest decision.Optimizer.plan in
      let seconds, result = measure_lane lane decision.Optimizer.plan digest in
      digests.(step) <- digest;
      results.(step) <- Some result;
      exec_seconds := !exec_seconds +. seconds)
    steps;
  {
    opt_seconds = !opt_seconds;
    exec_seconds = !exec_seconds;
    optimizations = !optimizations;
    digests;
    results = Array.map Option.get results;
  }

(* ------------------------------------------------------------------ *)
(* Concurrent replay over a sharded cache                              *)
(* ------------------------------------------------------------------ *)

type parallel = {
  par_domains : int;
  shard_stats : Plan_cache.stats;    (* summed over all shards *)
  shard_lookups_ok : bool;           (* summed shard lookups = total replays *)
  par_divergences : int;   (* steps whose plan differs from the serial cached arm *)
  par_mismatches : int;    (* steps whose result multiset differs from it *)
  par_optimizations : int;
  exec_makespan : float;   (* max over domains of summed simulated exec seconds *)
  exec_speedup : float;    (* serial summed exec seconds / makespan *)
  par_ok : bool;
}

(* Every domain rebuilds the whole world from the same seed (identical
   catalogs, identical maintenance RNG), handles the global steps [s] with
   [s mod domains = d], and catches up on the refresh schedule before each
   of its steps — so the statistics versions it sees at step [s] are
   exactly the serial arm's.  Lookups go through the domain's private
   shard of a {!Plan_cache.Sharded}; digests and results land in disjoint
   slots of shared arrays, compared against the serial cached arm after
   the join.  No recorder crosses a domain boundary. *)
let run_parallel_replay config pool steps ~domains =
  let n = Array.length steps in
  let sharded =
    Plan_cache.Sharded.create ~capacity:config.cache_capacity ~shards:domains ()
  in
  let digests = Array.make n "" in
  let results : Executor.result option array = Array.make n None in
  let worker d () =
    let lanes = build_lanes config in
    let confidence = Rq_core.Confidence.of_percent config.confidence_percent in
    let shard = Plan_cache.Sharded.shard sharded d in
    let refreshes = ref 0 in
    let exec_seconds = ref 0.0 and optimizations = ref 0 in
    let step = ref d in
    while !step < n do
      let s = !step in
      if config.refresh_every > 0 then begin
        let due = s / config.refresh_every in
        while !refreshes < due do
          Array.iter (fun l -> Rq_stats.Maintenance.refresh l.maintenance) lanes;
          incr refreshes
        done
      end;
      let lane_idx, label, query = pool.(steps.(s)) in
      let lane = lanes.(lane_idx) in
      let stats = Rq_stats.Maintenance.stats lane.maintenance in
      let opt = Optimizer.robust ~scale:lane.scale ~confidence stats in
      let fingerprint =
        Rq_sql.Fingerprint.to_key
          (Rq_sql.Fingerprint.of_logical
             ~estimator:(Optimizer.estimator opt).Cardinality.name ~confidence query)
      in
      let decision =
        match Plan_cache.find_or_optimize shard opt ~fingerprint query with
        | Ok (d, outcome) ->
            if outcome <> Plan_cache.Hit then incr optimizations;
            d
        | Error e -> Exp_common.bench_error ~context:label "%s" e
      in
      let digest = Exp_common.plan_digest decision.Optimizer.plan in
      let seconds, result = measure_lane lane decision.Optimizer.plan digest in
      digests.(s) <- digest;
      results.(s) <- Some result;
      exec_seconds := !exec_seconds +. seconds;
      step := s + domains
    done;
    (!exec_seconds, !optimizations)
  in
  let handles = Array.init domains (fun d -> Domain.spawn (worker d)) in
  let per_domain = Array.map Domain.join handles in
  (sharded, digests, Array.map Option.get results, per_domain)

(* ------------------------------------------------------------------ *)
(* The bench                                                           *)
(* ------------------------------------------------------------------ *)

type result = {
  config : config;
  distinct_queries : int;
  uncached : arm;
  cached : arm;
  cache_stats : Plan_cache.stats;
  hit_rate : float;
  speedup : float;            (* uncached / cached optimization seconds *)
  plan_divergences : int;     (* steps where the arms chose different plans *)
  differential_failures : int;  (* divergent plans with unequal result multisets *)
  failure_labels : string list;
  parallel : parallel;
  ok : bool;
}

let run ?obs ?(config = default_config) () =
  let pool = query_pool () in
  let steps = make_steps config (Array.length pool) in
  let uncached = run_arm ?obs config pool steps ~cache:None in
  let cache = Plan_cache.create ~capacity:config.cache_capacity () in
  let cached = run_arm ?obs config pool steps ~cache:(Some cache) in
  (* The differential oracle: wherever the cached arm's plan differs from
     the uncached arm's, both plans must still answer the query with the
     same multiset of rows. *)
  let plan_divergences = ref 0 in
  let differential_failures = ref 0 in
  let failure_labels = ref [] in
  Array.iteri
    (fun step idx ->
      if not (String.equal uncached.digests.(step) cached.digests.(step)) then begin
        incr plan_divergences;
        if not (Exp_common.results_equal uncached.results.(step) cached.results.(step))
        then begin
          incr differential_failures;
          let _, label, _ = pool.(idx) in
          failure_labels := Printf.sprintf "step %d: %s" step label :: !failure_labels
        end
      end)
    steps;
  let cache_stats = Plan_cache.stats cache in
  (* The concurrent replay: the same step sequence fanned over [domains]
     drivers, each with a private shard and a private world.  Every step's
     result must match the serial cached arm's, merged shard counters must
     account for every replay, and the per-domain split of simulated
     execution seconds gives the throughput makespan. *)
  let domains = max 1 config.domains in
  let sharded, par_digests, par_results, per_domain =
    run_parallel_replay config pool steps ~domains
  in
  let par_divergences = ref 0 and par_mismatches = ref 0 in
  Array.iteri
    (fun step _ ->
      if not (String.equal cached.digests.(step) par_digests.(step)) then
        incr par_divergences;
      if not (Exp_common.results_equal cached.results.(step) par_results.(step)) then
        incr par_mismatches)
    steps;
  let shard_stats = Plan_cache.Sharded.stats sharded in
  let shard_lookups_ok = Plan_cache.lookups shard_stats = Array.length steps in
  let exec_makespan =
    Array.fold_left (fun acc (s, _) -> Float.max acc s) 0.0 per_domain
  in
  let par_optimizations = Array.fold_left (fun acc (_, o) -> acc + o) 0 per_domain in
  let parallel =
    {
      par_domains = domains;
      shard_stats;
      shard_lookups_ok;
      par_divergences = !par_divergences;
      par_mismatches = !par_mismatches;
      par_optimizations;
      exec_makespan;
      exec_speedup = cached.exec_seconds /. Float.max 1e-12 exec_makespan;
      par_ok = !par_mismatches = 0 && shard_lookups_ok;
    }
  in
  {
    config;
    distinct_queries = Array.length pool;
    uncached;
    cached;
    cache_stats;
    hit_rate = Plan_cache.hit_rate cache_stats;
    speedup = uncached.opt_seconds /. Float.max 1e-9 cached.opt_seconds;
    plan_divergences = !plan_divergences;
    differential_failures = !differential_failures;
    failure_labels = List.rev !failure_labels;
    parallel;
    ok = !differential_failures = 0 && parallel.par_ok;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let arm_to_json (a : arm) =
  Rq_obs.Json.Obj
    [
      ("optimize_seconds", Rq_obs.Json.Num a.opt_seconds);
      ("optimizations", Rq_obs.Json.Num (float_of_int a.optimizations));
      ("exec_simulated_seconds", Rq_obs.Json.Num a.exec_seconds);
      ("end_to_end_seconds", Rq_obs.Json.Num (a.opt_seconds +. a.exec_seconds));
    ]

let to_json r =
  Rq_obs.Json.Obj
    [
      ("experiment", Rq_obs.Json.Str "bench-throughput");
      ("seed", Rq_obs.Json.Num (float_of_int r.config.seed));
      ("replays", Rq_obs.Json.Num (float_of_int r.config.replays));
      ("distinct_queries", Rq_obs.Json.Num (float_of_int r.distinct_queries));
      ("refresh_every", Rq_obs.Json.Num (float_of_int r.config.refresh_every));
      ("cache_capacity", Rq_obs.Json.Num (float_of_int r.config.cache_capacity));
      ("uncached", arm_to_json r.uncached);
      ("cached", arm_to_json r.cached);
      ("cache", Plan_cache.stats_to_json r.cache_stats);
      ("hit_rate", Rq_obs.Json.Num r.hit_rate);
      ("optimization_speedup", Rq_obs.Json.Num r.speedup);
      ("plan_divergences", Rq_obs.Json.Num (float_of_int r.plan_divergences));
      ("differential_failures", Rq_obs.Json.Num (float_of_int r.differential_failures));
      ("domains", Rq_obs.Json.Num (float_of_int r.parallel.par_domains));
      ( "parallel",
        Rq_obs.Json.Obj
          [
            ("domains", Rq_obs.Json.Num (float_of_int r.parallel.par_domains));
            ("shards", Plan_cache.stats_to_json r.parallel.shard_stats);
            ("shard_lookups_ok", Rq_obs.Json.Bool r.parallel.shard_lookups_ok);
            ( "plan_divergences",
              Rq_obs.Json.Num (float_of_int r.parallel.par_divergences) );
            ( "result_mismatches",
              Rq_obs.Json.Num (float_of_int r.parallel.par_mismatches) );
            ( "optimizations",
              Rq_obs.Json.Num (float_of_int r.parallel.par_optimizations) );
            ("exec_makespan_seconds", Rq_obs.Json.Num r.parallel.exec_makespan);
            ("exec_speedup", Rq_obs.Json.Num r.parallel.exec_speedup);
            ("ok", Rq_obs.Json.Bool r.parallel.par_ok);
          ] );
      ("ok", Rq_obs.Json.Bool r.ok);
    ]

let render r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "bench-throughput: %d replays over %d distinct queries (tpch + star), refresh every %d\n"
    r.config.replays r.distinct_queries r.config.refresh_every;
  add "%-10s %12s %8s %14s %14s\n" "arm" "optimize_ms" "plans" "exec_sim_s" "end_to_end_s";
  let arm_row name (a : arm) =
    add "%-10s %12.2f %8d %14.3f %14.3f\n" name (a.opt_seconds *. 1000.0) a.optimizations
      a.exec_seconds (a.opt_seconds +. a.exec_seconds)
  in
  arm_row "uncached" r.uncached;
  arm_row "cached" r.cached;
  let s = r.cache_stats in
  add "cache: %.1f%% hit rate (%d hits, %d misses, %d invalidations, %d evictions)\n"
    (100.0 *. r.hit_rate) s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.invalidations
    s.Plan_cache.evictions;
  add "optimization speedup: %.1fx\n" r.speedup;
  add "differential oracle: %d plan divergences, %d failures\n" r.plan_divergences
    r.differential_failures;
  List.iter (fun l -> add "  FAIL %s\n" l) r.failure_labels;
  let p = r.parallel in
  let ps = p.shard_stats in
  add "parallel replay (%d domains, sharded cache): %d divergences, %d mismatches%s\n"
    p.par_domains p.par_divergences p.par_mismatches
    (if p.par_ok then "" else "  [FAIL]");
  add "  shards: %d hits, %d misses, %d invalidations, %d evictions (%s)\n"
    ps.Plan_cache.hits ps.Plan_cache.misses ps.Plan_cache.invalidations
    ps.Plan_cache.evictions
    (if p.shard_lookups_ok then "lookups reconcile with replays"
     else "LOOKUPS DO NOT RECONCILE");
  add "  exec makespan: %.3f s over %d domains (%.2fx vs serial %.3f s)\n"
    p.exec_makespan p.par_domains p.exec_speedup r.cached.exec_seconds;
  Buffer.contents b
