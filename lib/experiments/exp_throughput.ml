(* Batched query-throughput bench: the plan cache under a mixed workload.

   A replay sequence draws (with mild skew) from a fixed pool of distinct
   queries over two lanes — the TPC-H-lite catalog (Experiments 1 and 2
   templates) and the star catalog (Experiment 3) — with periodic
   statistics refreshes injected to force stats-versioned invalidation.
   The same sequence runs twice from an identical seed: once optimizing
   every query from scratch, once through {!Rq_optimizer.Plan_cache}.
   Reported: the optimize-vs-execute time split per arm, the cache's
   hit/miss/invalidation/eviction counters, and a differential check that
   every cached plan produced the same result multiset as the plan the
   uncached arm chose for the same step. *)

open Rq_storage
open Rq_exec
open Rq_optimizer
open Rq_workload

type config = {
  seed : int;
  scale_factor : float;
  fact_rows : int;
  sample_size : int;
  replays : int;
  cache_capacity : int;
  refresh_every : int;
  confidence_percent : float;
}

let default_config =
  {
    seed = 7;
    scale_factor = 0.01;
    fact_rows = 20_000;
    sample_size = 300;
    replays = 400;
    cache_capacity = 64;
    refresh_every = 160;
    confidence_percent = 80.0;
  }

let small_config =
  {
    default_config with
    scale_factor = 0.004;
    fact_rows = 5_000;
    sample_size = 200;
    replays = 120;
    refresh_every = 50;
  }

(* ------------------------------------------------------------------ *)
(* World: two lanes sharing one replay sequence                        *)
(* ------------------------------------------------------------------ *)

type lane = {
  lane_name : string;
  catalog : Catalog.t;
  scale : float;
  maintenance : Rq_stats.Maintenance.t;
  (* plan digest -> (simulated seconds, result); the data never mutates
     during the bench (refreshes only redraw statistics), so execution is
     deterministic per plan. *)
  exec_memo : (string, float * Executor.result) Hashtbl.t;
}

(* Both arms rebuild the world from the same seed: identical catalogs,
   identical maintenance RNG state, hence identical statistics draws at
   every refresh — any plan difference between the arms is attributable
   to the cache alone. *)
let build_lanes config =
  let rng = Rq_math.Rng.create config.seed in
  let stats_config =
    { Rq_stats.Stats_store.default_config with sample_size = config.sample_size }
  in
  let tpch_params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let tpch = Tpch.generate (Rq_math.Rng.split rng) ~params:tpch_params () in
  let star_params = { Star.default_params with fact_rows = config.fact_rows } in
  let star = Star.generate (Rq_math.Rng.split rng) ~params:star_params () in
  let make lane_name catalog scale =
    {
      lane_name;
      catalog;
      scale;
      maintenance =
        Rq_stats.Maintenance.create ~config:stats_config (Rq_math.Rng.split rng) catalog;
      exec_memo = Hashtbl.create 64;
    }
  in
  [| make "tpch" tpch (Tpch.cost_scale tpch); make "star" star (Star.cost_scale star) |]

(* The distinct-query pool: (lane index, label, query). *)
let query_pool () =
  let exp1 =
    List.map
      (fun o -> (0, Printf.sprintf "exp1 offset=%d" o, Tpch.exp1_query ~offset:o))
      [ 30; 45; 60; 75; 90 ]
  and exp2 =
    List.map
      (fun b -> (0, Printf.sprintf "exp2 bucket=%d" b, Tpch.exp2_query ~bucket:b))
      [ 0; 250; 500; 750; 999 ]
  and star =
    List.map
      (fun v -> (1, Printf.sprintf "star filter=%d" v, Star.query ~filter_value:v ()))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  (* Join-heavy templates first: the replay skew favors low indices, and
     the recurring hot set of a plan cache is exactly the expensive
     multi-join queries (cheap single-table plans barely profit). *)
  Array.of_list (star @ exp2 @ exp1)

(* Skewed replay: min of two uniform draws biases toward low pool indices,
   approximating the recurring-query traffic a plan cache exists for. *)
let make_steps config n =
  let rng = Rq_math.Rng.create (config.seed + 1) in
  Array.init config.replays (fun _ ->
      min (Rq_math.Rng.int rng n) (Rq_math.Rng.int rng n))

(* ------------------------------------------------------------------ *)
(* One arm of the bench                                                *)
(* ------------------------------------------------------------------ *)

type arm = {
  opt_seconds : float;      (* wall-clock spent optimizing (cached arm:
                               fingerprinting + lookup + any re-optimization) *)
  exec_seconds : float;     (* simulated execution seconds, summed *)
  optimizations : int;      (* actual Optimizer.optimize runs *)
  digests : string array;   (* chosen plan per step *)
  results : Executor.result array;
}

let measure_lane lane plan digest =
  match Hashtbl.find_opt lane.exec_memo digest with
  | Some entry -> entry
  | None ->
      let meter = Cost.create ~scale:lane.scale () in
      let result = Executor.run lane.catalog meter plan in
      let entry = ((Cost.snapshot meter).Cost.seconds, result) in
      Hashtbl.replace lane.exec_memo digest entry;
      entry

let run_arm ?obs config pool steps ~cache =
  let lanes = build_lanes config in
  let confidence = Rq_core.Confidence.of_percent config.confidence_percent in
  let n = Array.length steps in
  let digests = Array.make n "" in
  let results = Array.make n None in
  let opt_seconds = ref 0.0 and exec_seconds = ref 0.0 in
  let optimizations = ref 0 in
  Array.iteri
    (fun step idx ->
      if config.refresh_every > 0 && step > 0 && step mod config.refresh_every = 0 then
        Array.iter (fun l -> Rq_stats.Maintenance.refresh l.maintenance) lanes;
      let lane_idx, label, query = pool.(idx) in
      let lane = lanes.(lane_idx) in
      let stats = Rq_stats.Maintenance.stats lane.maintenance in
      let opt = Optimizer.robust ~scale:lane.scale ~confidence stats in
      let t0 = Sys.time () in
      let decision =
        match cache with
        | None -> (
            incr optimizations;
            match Optimizer.optimize opt query with
            | Ok d -> d
            | Error e -> failwith (Printf.sprintf "%s: %s" label e))
        | Some cache -> (
            let fingerprint =
              Rq_sql.Fingerprint.to_key
                (Rq_sql.Fingerprint.of_logical
                   ~estimator:(Optimizer.estimator opt).Cardinality.name ~confidence query)
            in
            match Plan_cache.find_or_optimize ?obs cache opt ~fingerprint query with
            | Ok (d, outcome) ->
                if outcome <> Plan_cache.Hit then incr optimizations;
                d
            | Error e -> failwith (Printf.sprintf "%s: %s" label e))
      in
      opt_seconds := !opt_seconds +. (Sys.time () -. t0);
      let digest = Exp_common.plan_digest decision.Optimizer.plan in
      let seconds, result = measure_lane lane decision.Optimizer.plan digest in
      digests.(step) <- digest;
      results.(step) <- Some result;
      exec_seconds := !exec_seconds +. seconds)
    steps;
  {
    opt_seconds = !opt_seconds;
    exec_seconds = !exec_seconds;
    optimizations = !optimizations;
    digests;
    results = Array.map Option.get results;
  }

(* ------------------------------------------------------------------ *)
(* The bench                                                           *)
(* ------------------------------------------------------------------ *)

type result = {
  config : config;
  distinct_queries : int;
  uncached : arm;
  cached : arm;
  cache_stats : Plan_cache.stats;
  hit_rate : float;
  speedup : float;            (* uncached / cached optimization seconds *)
  plan_divergences : int;     (* steps where the arms chose different plans *)
  differential_failures : int;  (* divergent plans with unequal result multisets *)
  failure_labels : string list;
}

let run ?obs ?(config = default_config) () =
  let pool = query_pool () in
  let steps = make_steps config (Array.length pool) in
  let uncached = run_arm ?obs config pool steps ~cache:None in
  let cache = Plan_cache.create ~capacity:config.cache_capacity () in
  let cached = run_arm ?obs config pool steps ~cache:(Some cache) in
  (* The differential oracle: wherever the cached arm's plan differs from
     the uncached arm's, both plans must still answer the query with the
     same multiset of rows. *)
  let plan_divergences = ref 0 in
  let differential_failures = ref 0 in
  let failure_labels = ref [] in
  Array.iteri
    (fun step idx ->
      if not (String.equal uncached.digests.(step) cached.digests.(step)) then begin
        incr plan_divergences;
        if not (Exp_common.results_equal uncached.results.(step) cached.results.(step))
        then begin
          incr differential_failures;
          let _, label, _ = pool.(idx) in
          failure_labels := Printf.sprintf "step %d: %s" step label :: !failure_labels
        end
      end)
    steps;
  let cache_stats = Plan_cache.stats cache in
  {
    config;
    distinct_queries = Array.length pool;
    uncached;
    cached;
    cache_stats;
    hit_rate = Plan_cache.hit_rate cache_stats;
    speedup = uncached.opt_seconds /. Float.max 1e-9 cached.opt_seconds;
    plan_divergences = !plan_divergences;
    differential_failures = !differential_failures;
    failure_labels = List.rev !failure_labels;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let arm_to_json (a : arm) =
  Rq_obs.Json.Obj
    [
      ("optimize_seconds", Rq_obs.Json.Num a.opt_seconds);
      ("optimizations", Rq_obs.Json.Num (float_of_int a.optimizations));
      ("exec_simulated_seconds", Rq_obs.Json.Num a.exec_seconds);
      ("end_to_end_seconds", Rq_obs.Json.Num (a.opt_seconds +. a.exec_seconds));
    ]

let to_json r =
  Rq_obs.Json.Obj
    [
      ("experiment", Rq_obs.Json.Str "bench-throughput");
      ("seed", Rq_obs.Json.Num (float_of_int r.config.seed));
      ("replays", Rq_obs.Json.Num (float_of_int r.config.replays));
      ("distinct_queries", Rq_obs.Json.Num (float_of_int r.distinct_queries));
      ("refresh_every", Rq_obs.Json.Num (float_of_int r.config.refresh_every));
      ("cache_capacity", Rq_obs.Json.Num (float_of_int r.config.cache_capacity));
      ("uncached", arm_to_json r.uncached);
      ("cached", arm_to_json r.cached);
      ("cache", Plan_cache.stats_to_json r.cache_stats);
      ("hit_rate", Rq_obs.Json.Num r.hit_rate);
      ("optimization_speedup", Rq_obs.Json.Num r.speedup);
      ("plan_divergences", Rq_obs.Json.Num (float_of_int r.plan_divergences));
      ("differential_failures", Rq_obs.Json.Num (float_of_int r.differential_failures));
    ]

let render r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "bench-throughput: %d replays over %d distinct queries (tpch + star), refresh every %d\n"
    r.config.replays r.distinct_queries r.config.refresh_every;
  add "%-10s %12s %8s %14s %14s\n" "arm" "optimize_ms" "plans" "exec_sim_s" "end_to_end_s";
  let arm_row name (a : arm) =
    add "%-10s %12.2f %8d %14.3f %14.3f\n" name (a.opt_seconds *. 1000.0) a.optimizations
      a.exec_seconds (a.opt_seconds +. a.exec_seconds)
  in
  arm_row "uncached" r.uncached;
  arm_row "cached" r.cached;
  let s = r.cache_stats in
  add "cache: %.1f%% hit rate (%d hits, %d misses, %d invalidations, %d evictions)\n"
    (100.0 *. r.hit_rate) s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.invalidations
    s.Plan_cache.evictions;
  add "optimization speedup: %.1fx\n" r.speedup;
  add "differential oracle: %d plan divergences, %d failures\n" r.plan_divergences
    r.differential_failures;
  List.iter (fun l -> add "  FAIL %s\n" l) r.failure_labels;
  Buffer.contents b
