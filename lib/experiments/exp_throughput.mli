(** Batched query-throughput bench for the plan cache.

    Replays a skewed sequence drawn from a fixed pool of distinct queries
    over two catalogs — TPC-H-lite (Experiment 1/2 templates) and the star
    schema (Experiment 3) — with periodic statistics refreshes injected so
    stats-versioned invalidation actually fires.  The same seeded sequence
    runs twice: optimizing from scratch every step, and through
    {!Rq_optimizer.Plan_cache}.  The report splits optimize vs execute
    time per arm, exposes the cache counters, and runs a differential
    oracle over every step where the two arms chose different plans.

    The [domains] axis then fans the same step sequence over that many
    concurrent replay drivers on OCaml domains, each owning a private
    shard of a {!Rq_optimizer.Plan_cache.Sharded} and a private world
    rebuilt from the same seed: every step's result must match the serial
    cached arm's, and the merged shard counters must account for every
    replay. *)

type config = {
  seed : int;
  scale_factor : float;        (** TPC-H lane scale (1.0 = 6M lineitem) *)
  fact_rows : int;             (** star lane fact-table rows *)
  sample_size : int;
  replays : int;               (** total queries in the replay sequence *)
  cache_capacity : int;
  refresh_every : int;         (** force a statistics refresh on both lanes
                                   every this many steps; 0 disables *)
  confidence_percent : float;
  domains : int;               (** concurrent replay drivers over the
                                   sharded plan cache *)
}

val default_config : config
(** 400 replays over ~18 distinct queries, refresh every 160. *)

val small_config : config
(** CI-sized: smaller catalogs, 120 replays, refresh every 50. *)

type arm = {
  opt_seconds : float;
  exec_seconds : float;
  optimizations : int;
  digests : string array;
  results : Rq_exec.Executor.result array;
}

type parallel = {
  par_domains : int;
  shard_stats : Rq_optimizer.Plan_cache.stats;  (** summed over all shards *)
  shard_lookups_ok : bool;  (** summed shard lookups = total replays *)
  par_divergences : int;    (** steps whose plan differs from the serial
                                cached arm *)
  par_mismatches : int;     (** steps whose result multiset differs from it *)
  par_optimizations : int;
  exec_makespan : float;    (** max over domains of summed simulated exec
                                seconds *)
  exec_speedup : float;     (** serial summed exec seconds / makespan *)
  par_ok : bool;
}

type result = {
  config : config;
  distinct_queries : int;
  uncached : arm;
  cached : arm;
  cache_stats : Rq_optimizer.Plan_cache.stats;
  hit_rate : float;
  speedup : float;
  plan_divergences : int;
  differential_failures : int;
  failure_labels : string list;
  parallel : parallel;
  ok : bool;  (** no differential failures and [parallel.par_ok] *)
}

val run : ?obs:Rq_obs.Recorder.t -> ?config:config -> unit -> result
(** Builds both worlds from [config.seed] (identical data and statistics
    draws in both arms), replays, and runs the differential oracle.  With
    [?obs], every cache lookup/insert/eviction emits a [Plan_cache] trace
    event. *)

val to_json : result -> Rq_obs.Json.t
(** The [BENCH_throughput.json] payload. *)

val render : result -> string
