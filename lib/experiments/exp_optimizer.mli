(** Optimizer hot-path bench for the bitset evidence kernel.

    Layer 1 — evidence micro-bench: the Experiment-1/2 predicate families
    against the covering TPC-H synopsis, three ways (kernel cold, kernel
    warm, reference row scan), with a bit-identity check on every (k, n).

    Layer 2 — plan bench: the three-join Experiment-2 workload optimized
    repeatedly per estimator per confidence threshold, a fresh evidence
    memo each pass so that the cold-vs-warm gap isolates the synopsis
    bitmaps.  Robust-kernel and robust-scan must choose identical plans.

    The bench fails ([ok = false], CLI exit 1) unless: evidence counts
    match the scan path exactly, kernel and scan plans are identical, the
    warm kernel is at least 5x the scan path in evidence queries/sec and
    faster than its own cold state, and the kernel improves end-to-end
    three-join optimization time. *)

type config = {
  seed : int;
  scale_factor : float;        (** TPC-H scale (1.0 = 6M lineitem) *)
  sample_size : int;           (** tuples per synopsis *)
  evidence_repeats : int;      (** passes over the predicate pool per arm *)
  plan_passes : int;           (** optimization passes per estimator cell *)
  confidences : float list;    (** confidence thresholds, percent *)
}

val default_config : config
val small_config : config
(** CI-sized: smaller catalog and fewer repeats. *)

type evidence_bench = {
  predicates : int;
  evidence_queries : int;
  cold_rate : float;
  warm_rate : float;
  scan_rate : float;
  warm_vs_scan : float;
  warm_vs_cold : float;
  counts_match : bool;
  kernel : Rq_obs.Metrics.kernel;
}

type plan_cell = {
  estimator : string;
  confidence : float;
  cold_seconds : float;
  warm_seconds : float;
  cold_plan_rate : float;
  warm_plan_rate : float;
  digests : string list;
}

type result = {
  config : config;
  evidence : evidence_bench;
  plans : plan_cell list;
  plans_match : bool;
  e2e_kernel_seconds : float;
  e2e_scan_seconds : float;
  e2e_improvement : float;
  ok : bool;
}

val run : ?config:config -> unit -> result

val to_json : result -> Rq_obs.Json.t
(** The [BENCH_optimizer.json] payload. *)

val render : result -> string
