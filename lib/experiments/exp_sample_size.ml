open Rq_workload

type config = {
  seed : int;
  repetitions : int;
  sample_sizes : int list;
  offsets : int list;
  scale_factor : float;
}

let default_config =
  {
    seed = 45;
    repetitions = 12;
    sample_sizes = [ 50; 100; 250; 500; 1000; 2500 ];
    offsets = Exp_single_table.default_config.Exp_single_table.offsets;
    scale_factor = 0.01;
  }

type point = {
  sample_size : int;
  summary : Rq_math.Summary.t;
  plans : (string * int) list;
}

let run ?(config = default_config) () =
  let rng = Rq_math.Rng.create config.seed in
  let params = { Tpch.default_params with scale_factor = config.scale_factor } in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) ~params () in
  let scale = Tpch.cost_scale catalog in
  let cache = Exp_common.make_cache catalog ~scale in
  List.map
    (fun sample_size ->
      let stats_of_draw = Exp_common.make_stats_of_draw rng ~sample_size catalog in
      let cells =
        List.map
          (fun offset ->
            let query = Tpch.exp1_query ~offset in
            let series =
              Exp_common.run_robust_series ~cache ~stats_of_draw
                ~repetitions:config.repetitions ~thresholds:[ 50.0 ] ~scale query
            in
            snd (List.hd series))
          config.offsets
      in
      let merged = Exp_common.merge_cells cells in
      {
        sample_size;
        summary = Rq_math.Summary.of_array merged.Exp_common.times;
        plans = merged.Exp_common.plans;
      })
    config.sample_sizes
