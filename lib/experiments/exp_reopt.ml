(* Guard-rescue experiment: how much of a misestimated plan's cost can
   mid-query re-optimization claw back, and what the guards cost when the
   estimates are good.

   Setup: a customers <- orders <- lineitems chain with indexes on the
   join keys.  A deliberately misestimating optimizer (fixed 0.05%
   selectivity) believes a filtered lineitems scan yields a handful of
   rows, so an indexed nested-loop join into orders looks cheap; in truth
   the filter keeps cutoff/50 of the table and every surviving row pays
   an index probe plus a random page fetch.  We sweep the filter cutoff
   and compare, on the same deterministic cost meter:

     unguarded  — the bad plan run to completion
     guarded    — cardinality guards + re-optimization (wasted prefix
                  and guard overhead included)
     oracle     — the plan a perfectly informed optimizer picks

   A final probe runs the guards under the oracle estimator (no firing)
   to measure pure guard overhead. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

type config = {
  seed : int;
  customers : int;
  orders : int;
  lineitems : int;
  cutoffs : int list;  (** l_qty <= cutoff, out of 1..50: selectivity = cutoff/50 *)
  threshold : float;  (** guard q-error threshold *)
}

let default_config =
  {
    seed = 47;
    customers = 40;
    orders = 400;
    lineitems = 4000;
    cutoffs = [ 1; 5; 15; 25; 40; 50 ];
    threshold = 4.0;
  }

type row = {
  cutoff : int;
  actual_rows : int;  (** rows actually surviving the filter *)
  unguarded_s : float;
  guarded_s : float;
  wasted_s : float;  (** cost of aborted attempt prefixes not reused downstream *)
  oracle_s : float;
  fired : bool;
  replanned : bool;
}

type result = {
  rows : row list;
  overhead_plain_s : float;  (** oracle plan, no guards *)
  overhead_guarded_s : float;  (** oracle plan, guards in place, none fire *)
}

let v_int i = Value.Int i

let build_catalog config =
  let rng = Rq_math.Rng.create config.seed in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"c_id"
    (Relation.create ~name:"customers"
       ~schema:
         (Schema.create
            [ { Schema.name = "c_id"; ty = Value.T_int }; { Schema.name = "c_tier"; ty = Value.T_int } ])
       (Array.init config.customers (fun i -> [| v_int i; v_int (i mod 4) |])));
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_cust"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init config.orders (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng config.customers); v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init config.lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng config.orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "orders"; from_column = "o_cust"; to_table = "customers"; to_column = "c_id" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_order";
  catalog

let lineitem_pred cutoff = Pred.le (Expr.col "l_qty") (Expr.int cutoff)

let query_of cutoff =
  Logical.query [ Logical.scan ~pred:(lineitem_pred cutoff) "lineitems"; Logical.scan "orders" ]

(* Wasted-prefix attribution from the recorder's span deltas.  Each aborted
   attempt root span covers everything that attempt charged; the deepest
   aborted span inside it is the fired guard, and the guard's *completed*
   children are the materialization the next attempt resumes from — reused,
   not wasted.  Wasted = attempt total - reused. *)
let wasted_seconds spans =
  let rec deepest_aborted (s : Rq_obs.Recorder.span) =
    match List.find_opt (fun (c : Rq_obs.Recorder.span) -> c.aborted) s.children with
    | Some c -> deepest_aborted c
    | None -> s
  in
  List.fold_left
    (fun acc (s : Rq_obs.Recorder.span) ->
      if not s.aborted then acc
      else
        let d = deepest_aborted s in
        let reused =
          List.fold_left
            (fun acc (c : Rq_obs.Recorder.span) ->
              if c.aborted then acc else acc +. c.total.Rq_obs.Metrics.seconds)
            0.0 d.children
        in
        acc +. (s.total.Rq_obs.Metrics.seconds -. reused))
    0.0 spans

let bad_plan cutoff =
  Plan.Indexed_nl_join
    {
      outer = Plan.Scan { table = "lineitems"; access = Plan.Seq_scan; pred = lineitem_pred cutoff };
      outer_key = "lineitems.l_order";
      inner_table = "orders";
      inner_key = "o_id";
      inner_pred = Pred.True;
    }

let run ?(config = default_config) () =
  let catalog = build_catalog config in
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create (config.seed + 1)) catalog in
  let misled = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in
  let oracle = Optimizer.create stats (Cardinality.oracle catalog) in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let rows =
    List.map
      (fun cutoff ->
        let query = query_of cutoff in
        let bad = bad_plan cutoff in
        let actual_rows =
          Relation.filter_count lineitems
            (Pred.compile (Relation.schema lineitems) (lineitem_pred cutoff))
        in
        let _, unguarded = Executor.run_timed catalog bad in
        let recorder = Rq_obs.Recorder.create () in
        let outcome =
          Reopt.execute_plan ~threshold:config.threshold ~obs:recorder misled query bad
        in
        let oracle_plan = (Optimizer.optimize_exn oracle query).Optimizer.plan in
        let _, oracle_snap = Executor.run_timed catalog oracle_plan in
        {
          cutoff;
          actual_rows;
          unguarded_s = unguarded.Cost.seconds;
          guarded_s = outcome.Reopt.snapshot.Cost.seconds;
          wasted_s = wasted_seconds (Rq_obs.Recorder.roots recorder);
          oracle_s = oracle_snap.Cost.seconds;
          fired = outcome.Reopt.events <> [];
          replanned = List.exists (fun (e : Reopt.event) -> e.Reopt.replanned) outcome.Reopt.events;
        })
      config.cutoffs
  in
  (* Guard overhead when the estimates are right: instrument the oracle's
     own plan under the oracle estimator — every guard passes. *)
  let probe_query = query_of 25 in
  let oracle_plan = (Optimizer.optimize_exn oracle probe_query).Optimizer.plan in
  let _, plain = Executor.run_timed catalog oracle_plan in
  let outcome = Reopt.execute_plan ~threshold:config.threshold oracle probe_query oracle_plan in
  {
    rows;
    overhead_plain_s = plain.Cost.seconds;
    overhead_guarded_s = outcome.Reopt.snapshot.Cost.seconds;
  }

let render result =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "guard rescue: misestimated INL plan vs. guarded re-optimization (simulated seconds)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-8s %10s %12s %12s %12s %12s %9s %s\n" "cutoff" "rows" "unguarded"
       "guarded" "wasted" "oracle" "rescue" "outcome");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %10d %12.4f %12.4f %12.4f %12.4f %8.1fx %s\n" r.cutoff
           r.actual_rows r.unguarded_s r.guarded_s r.wasted_s r.oracle_s
           (r.unguarded_s /. r.guarded_s)
           (if r.replanned then "replanned"
            else if r.fired then "fired, completed original"
            else "no guard fired")))
    result.rows;
  let overhead =
    100.0 *. (result.overhead_guarded_s -. result.overhead_plain_s) /. result.overhead_plain_s
  in
  Buffer.add_string buf
    (Printf.sprintf
       "guard overhead on a well-estimated plan: %.4fs -> %.4fs (%.2f%%)\n"
       result.overhead_plain_s result.overhead_guarded_s overhead);
  Buffer.contents buf
