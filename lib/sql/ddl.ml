open Rq_storage

type column_def = { name : string; ty : Value.ty; primary_key : bool }

type table_def = {
  table_name : string;
  columns : column_def list;
  foreign_keys : (string * string * string) list;
  clustered_by : string option;
}

type statement =
  | Create_table of table_def
  | Create_index of { table : string; column : string }

exception Ddl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ddl_error s)) fmt

type state = { tokens : Token.t array; mutable pos : int }

let peek state = state.tokens.(state.pos)
let advance state = state.pos <- state.pos + 1

let accept_keyword state kw =
  if Token.is_keyword (peek state) kw then begin
    advance state;
    true
  end
  else false

let expect_keyword state kw =
  if not (accept_keyword state kw) then
    fail "expected %s, found %s" kw (Format.asprintf "%a" Token.pp (peek state))

let accept_symbol state s =
  match peek state with
  | Token.Symbol s' when String.equal s s' ->
      advance state;
      true
  | _ -> false

let expect_symbol state s =
  if not (accept_symbol state s) then
    fail "expected %S, found %s" s (Format.asprintf "%a" Token.pp (peek state))

let expect_ident state what =
  match peek state with
  | Token.Ident name ->
      advance state;
      name
  | t -> fail "expected %s, found %s" what (Format.asprintf "%a" Token.pp t)

let type_of_name name =
  match String.lowercase_ascii name with
  | "int" | "integer" | "bigint" -> Some Value.T_int
  | "float" | "double" | "real" | "decimal" -> Some Value.T_float
  | "text" | "varchar" | "char" | "string" -> Some Value.T_string
  | "date" -> Some Value.T_date
  | "bool" | "boolean" -> Some Value.T_bool
  | _ -> None

let parse_create_table state =
  let table_name = expect_ident state "table name" in
  expect_symbol state "(";
  let columns = ref [] in
  let foreign_keys = ref [] in
  let continue = ref true in
  while !continue do
    if accept_keyword state "foreign" then begin
      expect_keyword state "key";
      expect_symbol state "(";
      let local = expect_ident state "foreign-key column" in
      expect_symbol state ")";
      expect_keyword state "references";
      let target_table = expect_ident state "referenced table" in
      expect_symbol state "(";
      let target_column = expect_ident state "referenced column" in
      expect_symbol state ")";
      foreign_keys := (local, target_table, target_column) :: !foreign_keys
    end
    else begin
      let name = expect_ident state "column name" in
      let type_name = expect_ident state "column type" in
      let ty =
        match type_of_name type_name with
        | Some ty -> ty
        | None -> fail "unknown type %s for column %s" type_name name
      in
      let primary_key =
        if accept_keyword state "primary" then begin
          expect_keyword state "key";
          true
        end
        else false
      in
      columns := { name; ty; primary_key } :: !columns
    end;
    if not (accept_symbol state ",") then begin
      expect_symbol state ")";
      continue := false
    end
  done;
  let clustered_by =
    if accept_keyword state "clustered" then begin
      expect_keyword state "by";
      expect_symbol state "(";
      let c = expect_ident state "clustering column" in
      expect_symbol state ")";
      Some c
    end
    else None
  in
  let columns = List.rev !columns in
  if columns = [] then fail "table %s has no columns" table_name;
  (match List.filter (fun c -> c.primary_key) columns with
  | [] | [ _ ] -> ()
  | _ -> fail "table %s declares more than one primary key" table_name);
  Create_table
    { table_name; columns; foreign_keys = List.rev !foreign_keys; clustered_by }

let parse_create_index state =
  expect_keyword state "on";
  let table = expect_ident state "table name" in
  expect_symbol state "(";
  let column = expect_ident state "indexed column" in
  expect_symbol state ")";
  Create_index { table; column }

let parse_script input =
  match Lexer.tokenize input with
  | Error msg -> Error ("lex error: " ^ msg)
  | Ok tokens -> (
      let state = { tokens = Array.of_list tokens; pos = 0 } in
      try
        let statements = ref [] in
        while not (Token.equal (peek state) Token.Eof) do
          expect_keyword state "create";
          let statement =
            if accept_keyword state "table" then parse_create_table state
            else if accept_keyword state "index" then parse_create_index state
            else fail "expected TABLE or INDEX after CREATE"
          in
          statements := statement :: !statements;
          (* Statements are ;-separated; the last one may omit it. *)
          if not (accept_symbol state ";") then
            if not (Token.equal (peek state) Token.Eof) then
              fail "expected ';' between statements"
        done;
        Ok (List.rev !statements)
      with Ddl_error msg -> Error ("DDL error: " ^ msg))

let schema_of_def def =
  Schema.create (List.map (fun { name; ty; _ } -> { Schema.name; ty }) def.columns)

let build_catalog ~statements ~relation_for =
  try
    let catalog = Catalog.create () in
    let tables =
      List.filter_map (function Create_table d -> Some d | Create_index _ -> None) statements
    in
    List.iter
      (fun def ->
        let schema = schema_of_def def in
        let rel =
          match relation_for ~table_name:def.table_name ~schema with
          | Ok rel -> rel
          | Error msg -> fail "loading %s: %s" def.table_name msg
        in
        let primary_key =
          List.find_opt (fun c -> c.primary_key) def.columns |> Option.map (fun c -> c.name)
        in
        Catalog.add_table catalog ?primary_key ?clustered_by:def.clustered_by rel)
      tables;
    List.iter
      (fun def ->
        List.iter
          (fun (local, target_table, target_column) ->
            Catalog.add_foreign_key catalog
              {
                from_table = def.table_name;
                from_column = local;
                to_table = target_table;
                to_column = target_column;
              })
          def.foreign_keys)
      tables;
    List.iter
      (function
        | Create_index { table; column } -> Catalog.build_index catalog ~table ~column
        | Create_table _ -> ())
      statements;
    Ok catalog
  with
  | Ddl_error msg -> Error msg
  | Invalid_argument msg -> Error msg
