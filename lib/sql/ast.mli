(** Abstract syntax for the supported SQL subset: single-block
    SELECT-FROM-WHERE-GROUP BY with aggregates, conjunctive/disjunctive
    predicates, BETWEEN, LIKE, arithmetic, date literals, ORDER BY/LIMIT,
    IN/EXISTS semijoin subqueries, scalar aggregate subqueries, and
    optimizer hints. *)

type column = { table : string option; name : string }

type expr =
  | Column of column
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Date_lit of int * int * int  (** year, month, day *)
  | Binop of binop * expr * expr

and binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_kind = Count_star | Sum | Avg | Min | Max

type condition =
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr
  | Like of expr * string  (** pattern with optional leading/trailing %% *)
  | And of condition list
  | Or of condition list
  | Not of condition
  | In_subquery of expr * subquery
      (** [expr IN (SELECT col FROM t [WHERE ...])]; item must be
          {!Sub_column} *)
  | Exists of subquery
      (** [EXISTS (SELECT * FROM t [WHERE ...])]; the correlation
          equality lives inside the subquery's WHERE *)
  | Cmp_scalar of cmp * expr * subquery
      (** [expr op (SELECT AGG(e) FROM t [WHERE ...])]; item must be
          {!Sub_agg} *)

and subquery = { sub_item : sub_item; sub_from : string; sub_where : condition option }

and sub_item =
  | Sub_star
  | Sub_column of column
  | Sub_agg of agg_kind * expr option

type select_item =
  | Star
  | Expr_item of expr * string option          (** expression, alias *)
  | Agg_item of agg_kind * expr option * string option

type order_item = { order_column : column; desc : bool }

type statement = {
  select : select_item list;
  from : string list;
  where : condition option;
  group_by : column list;
  order_by : order_item list;
  limit : int option;
  hints : string list;  (** raw hint comment bodies, in source order *)
}

val pp_expr : Format.formatter -> expr -> unit
val pp_condition : Format.formatter -> condition -> unit
