(** Semantic analysis: resolve a parsed statement against the catalog into
    a logical query plus the per-query confidence hint.

    Restrictions enforced here mirror the paper's query model (Sec. 3.2):
    joins must follow declared foreign-key edges.  Single-table WHERE
    conjuncts are attached to their table; cross-table conjuncts
    (including explicit FK equi-join predicates) land in the logical
    query's residual, where the rewrite layer pushes down or absorbs what
    it can.  [expr IN (SELECT col FROM t ...)] and correlated
    [EXISTS (SELECT * FROM t WHERE t.k = outer.k ...)] become semijoins;
    [expr op (SELECT AGG(e) FROM t ...)] becomes a scalar-subquery
    comparison folded by the rewrite pass.  NOT IN / NOT EXISTS
    (antijoins) are rejected.  String literals compared with date columns
    are coerced to dates ('YYYY-MM-DD' or 'MM/DD/YY'). *)

open Rq_storage
open Rq_optimizer

type bound = {
  query : Logical.t;
  confidence_hint : Rq_core.Confidence.t option;
}

val bind : Catalog.t -> Ast.statement -> (bound, string) result

val compile : Catalog.t -> string -> (bound, string) result
(** Parse then bind. *)
