(** Semantic analysis: resolve a parsed statement against the catalog into
    a logical query plus the per-query confidence hint.

    Restrictions enforced here mirror the paper's query model (Sec. 3.2):
    joins must follow declared foreign-key edges (explicit equi-join
    predicates that match an FK edge are accepted and absorbed; any other
    cross-table predicate is rejected), and every WHERE conjunct must
    reference a single table.  String literals compared with date columns
    are coerced to dates ('YYYY-MM-DD' or 'MM/DD/YY'). *)

open Rq_storage
open Rq_optimizer

type bound = {
  query : Logical.t;
  confidence_hint : Rq_core.Confidence.t option;
}

val bind : Catalog.t -> Ast.statement -> (bound, string) result

val compile : Catalog.t -> string -> (bound, string) result
(** Parse then bind. *)
