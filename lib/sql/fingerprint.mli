(** Canonical query fingerprints — the plan-cache key.

    A fingerprint is a normalized rendering of a bound {!Rq_optimizer.Logical.t}
    plus the identity of the estimator that will optimize it.  Two queries
    that can always share a plan fingerprint equally:

    - table order is normalized away (the join structure depends only on
      the table set and the catalog's FK edges);
    - predicate order is normalized away (conjuncts/disjuncts are
      flattened and sorted, and the operands of the commutative [=]/[<>]
      comparisons are ordered);
    - literals are rendered exactly and folded into the key (then hashed),
      so distinct constants — and hence potentially distinct best plans —
      never collide.

    Conversely, anything that can change the chosen plan is part of the
    key: grouping, aggregates, projection, ordering, limit, and the active
    estimator's identity (name and confidence threshold) — a conservative
    95%-confidence plan must not be served to an aggressive 50% query.

    Fingerprinting is pure: equal inputs yield equal keys across calls and
    processes (no session state, no randomness). *)

type t

val of_logical :
  ?estimator:string -> ?confidence:Rq_core.Confidence.t -> Rq_optimizer.Logical.t -> t
(** [estimator] defaults to [""] and [confidence] to absent — callers
    caching across estimator configurations must pass both. *)

val of_pred : Rq_exec.Pred.t -> t
(** Fingerprint of a bare predicate — atomic or compound — under the same
    normalization ({!Rq_exec.Pred.render}) the query fingerprint uses for
    its predicates.  This is the structural key the optimizer's evidence
    memo and the bitmap kernel share. *)

val to_key : t -> string
(** The full canonical key.  Cache lookups compare this string, so hash
    collisions can never serve a wrong plan. *)

val hash : t -> int
(** Stable FNV-1a digest of {!to_key} (same input, same hash, across
    processes — unlike [Hashtbl.hash] on boxed values). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
