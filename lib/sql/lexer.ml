let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error = ref None in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let fail msg = error := Some (Printf.sprintf "at offset %d: %s" !i msg) in
  while !error = None && !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* Line comment. *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && input.[!i + 1] = '*' then begin
      (* Block comment; /*+ ... */ is an optimizer hint. *)
      let is_hint = !i + 2 < n && input.[!i + 2] = '+' in
      let start = !i + if is_hint then 3 else 2 in
      let rec find_close j =
        if j + 1 >= n then None
        else if input.[j] = '*' && input.[j + 1] = '/' then Some j
        else find_close (j + 1)
      in
      match find_close start with
      | None -> fail "unterminated comment"
      | Some close ->
          if is_hint then emit (Token.Hint (String.sub input start (close - start)));
          i := close + 2
    end
    else if c = '\'' then begin
      (* String literal; '' escapes a quote. *)
      let buf = Buffer.create 16 in
      let rec scan j =
        if j >= n then (fail "unterminated string literal"; j)
        else if input.[j] = '\'' then
          if j + 1 < n && input.[j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            scan (j + 2)
          end
          else j + 1
        else begin
          Buffer.add_char buf input.[j];
          scan (j + 1)
        end
      in
      let next = scan (!i + 1) in
      if !error = None then emit (Token.String_lit (Buffer.contents buf));
      i := next
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float =
        !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        emit (Token.Float_lit (float_of_string (String.sub input start (!i - start))))
      end
      else emit (Token.Int_lit (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Token.Ident (String.sub input start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          emit (Token.Symbol (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | ';' ->
              emit (Token.Symbol (String.make 1 c));
              incr i
          | _ -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev (Token.Eof :: !tokens))
