(* Recursive descent over the token array with a mutable cursor.  A parse
   error raises [Parse_error], converted to [Error] at the entry point. *)

exception Parse_error of string

type state = { tokens : Token.t array; mutable pos : int; mutable hints : string list }

let fail state msg =
  raise
    (Parse_error
       (Format.asprintf "%s, found %a (token %d)" msg Token.pp state.tokens.(state.pos)
          state.pos))

(* Hints can appear anywhere a token can; collect them transparently. *)
let rec peek state =
  match state.tokens.(state.pos) with
  | Token.Hint h ->
      state.hints <- state.hints @ [ h ];
      state.pos <- state.pos + 1;
      peek state
  | t -> t

let advance state = state.pos <- state.pos + 1

let next state =
  let t = peek state in
  advance state;
  t

let accept_keyword state kw =
  if Token.is_keyword (peek state) kw then begin
    advance state;
    true
  end
  else false

let expect_keyword state kw =
  if not (accept_keyword state kw) then fail state (Printf.sprintf "expected %s" kw)

let accept_symbol state s =
  match peek state with
  | Token.Symbol s' when String.equal s s' ->
      advance state;
      true
  | _ -> false

let expect_symbol state s =
  if not (accept_symbol state s) then fail state (Printf.sprintf "expected %S" s)

let expect_ident state what =
  match next state with
  | Token.Ident name -> name
  | _ ->
      state.pos <- state.pos - 1;
      fail state (Printf.sprintf "expected %s" what)

let keywords =
  [ "select"; "from"; "where"; "group"; "by"; "and"; "or"; "not"; "between"; "like";
    "as"; "sum"; "avg"; "min"; "max"; "count"; "date"; "order"; "asc"; "desc"; "limit";
    "in"; "exists" ]

let is_reserved name = List.mem (String.lowercase_ascii name) keywords

let parse_date_string s =
  (* 'YYYY-MM-DD' or 'MM/DD/YY[YY]' (the paper's templates use the latter). *)
  let to_int part = int_of_string_opt (String.trim part) in
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (to_int y, to_int m, to_int d) with
      | Some y, Some m, Some d -> Some (y, m, d)
      | _ -> None)
  | _ -> (
      match String.split_on_char '/' s with
      | [ m; d; y ] -> (
          match (to_int y, to_int m, to_int d) with
          | Some y, Some m, Some d ->
              let y = if y < 100 then if y >= 70 then 1900 + y else 2000 + y else y in
              Some (y, m, d)
          | _ -> None)
      | _ -> None)

let parse_column state first =
  if accept_symbol state "." then
    let name = expect_ident state "column name after '.'" in
    { Ast.table = Some first; name }
  else { Ast.table = None; name = first }

let rec parse_expr state = parse_additive state

and parse_additive state =
  let lhs = ref (parse_multiplicative state) in
  let continue = ref true in
  while !continue do
    if accept_symbol state "+" then lhs := Ast.Binop (Ast.Add, !lhs, parse_multiplicative state)
    else if accept_symbol state "-" then lhs := Ast.Binop (Ast.Sub, !lhs, parse_multiplicative state)
    else continue := false
  done;
  !lhs

and parse_multiplicative state =
  let lhs = ref (parse_primary state) in
  let continue = ref true in
  while !continue do
    if accept_symbol state "*" then lhs := Ast.Binop (Ast.Mul, !lhs, parse_primary state)
    else if accept_symbol state "/" then lhs := Ast.Binop (Ast.Div, !lhs, parse_primary state)
    else continue := false
  done;
  !lhs

and parse_primary state =
  match next state with
  | Token.Int_lit i -> Ast.Int_lit i
  | Token.Float_lit f -> Ast.Float_lit f
  | Token.String_lit s -> Ast.String_lit s
  | Token.Symbol "(" ->
      let e = parse_expr state in
      expect_symbol state ")";
      e
  | Token.Symbol "-" -> (
      match next state with
      | Token.Int_lit i -> Ast.Int_lit (-i)
      | Token.Float_lit f -> Ast.Float_lit (-.f)
      | _ ->
          state.pos <- state.pos - 1;
          fail state "expected numeric literal after unary minus")
  | Token.Ident name when String.lowercase_ascii name = "date" -> (
      match next state with
      | Token.String_lit s -> (
          match parse_date_string s with
          | Some (y, m, d) -> Ast.Date_lit (y, m, d)
          | None ->
              state.pos <- state.pos - 1;
              fail state "malformed date literal")
      | _ ->
          state.pos <- state.pos - 1;
          fail state "expected string after DATE")
  | Token.Ident name when not (is_reserved name) -> Ast.Column (parse_column state name)
  | _ ->
      state.pos <- state.pos - 1;
      fail state "expected expression"

let cmp_of_symbol = function
  | "=" -> Some Ast.Eq
  | "<>" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let parse_agg_kind name =
  match String.lowercase_ascii name with
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | "count" -> Some Ast.Count_star
  | _ -> None

(* Is the cursor looking at "( select ..."?  Distinguishes a scalar
   subquery on the right of a comparison from arithmetic grouping. *)
let at_subquery state =
  Token.equal (peek state) (Token.Symbol "(")
  && Token.is_keyword state.tokens.(state.pos + 1) "select"

let rec parse_condition state = parse_or state

and parse_or state =
  let first = parse_and state in
  let rec loop acc =
    if accept_keyword state "or" then loop (parse_and state :: acc) else List.rev acc
  in
  match loop [ first ] with [ single ] -> single | several -> Ast.Or several

and parse_and state =
  let first = parse_atom state in
  let rec loop acc =
    if accept_keyword state "and" then loop (parse_atom state :: acc) else List.rev acc
  in
  match loop [ first ] with [ single ] -> single | several -> Ast.And several

and parse_atom state =
  if accept_keyword state "not" then Ast.Not (parse_atom state)
  else if accept_keyword state "exists" then Ast.Exists (parse_subquery state)
  else if
    (* A parenthesis opens either a nested condition or an arithmetic
       grouping; try the condition first and fall back on failure. *)
    Token.equal (peek state) (Token.Symbol "(")
  then begin
    let saved = state.pos in
    advance state;
    match
      let c = parse_condition state in
      expect_symbol state ")";
      c
    with
    | c -> c
    | exception Parse_error _ ->
        state.pos <- saved;
        parse_comparison state
  end
  else parse_comparison state

and parse_comparison state =
  let lhs = parse_expr state in
  if accept_keyword state "between" then begin
    let lo = parse_expr state in
    expect_keyword state "and";
    let hi = parse_expr state in
    Ast.Between (lhs, lo, hi)
  end
  else if accept_keyword state "like" then begin
    match next state with
    | Token.String_lit pattern -> Ast.Like (lhs, pattern)
    | _ ->
        state.pos <- state.pos - 1;
        fail state "expected pattern string after LIKE"
  end
  else if accept_keyword state "in" then Ast.In_subquery (lhs, parse_subquery state)
  else begin
    match peek state with
    | Token.Symbol s when cmp_of_symbol s <> None ->
        advance state;
        let op = Option.get (cmp_of_symbol s) in
        if at_subquery state then Ast.Cmp_scalar (op, lhs, parse_subquery state)
        else Ast.Cmp (op, lhs, parse_expr state)
    | _ -> fail state "expected comparison operator"
  end

(* "( SELECT item FROM table [WHERE cond] )" — single table, no nesting
   beyond the condition's own subqueries. *)
and parse_subquery state =
  expect_symbol state "(";
  expect_keyword state "select";
  let sub_item =
    if accept_symbol state "*" then Ast.Sub_star
    else begin
      match peek state with
      | Token.Ident name
        when parse_agg_kind name <> None
             && Token.equal state.tokens.(state.pos + 1) (Token.Symbol "(") ->
          advance state;
          advance state;
          let kind = Option.get (parse_agg_kind name) in
          let arg =
            if accept_symbol state "*" then begin
              if kind <> Ast.Count_star then fail state "only COUNT accepts *";
              None
            end
            else Some (parse_expr state)
          in
          expect_symbol state ")";
          let kind = if arg = None then Ast.Count_star else kind in
          Ast.Sub_agg (kind, arg)
      | _ ->
          let first = expect_ident state "subquery column" in
          Ast.Sub_column (parse_column state first)
    end
  in
  expect_keyword state "from";
  let sub_from = expect_ident state "subquery table name" in
  let sub_where =
    if accept_keyword state "where" then Some (parse_condition state) else None
  in
  expect_symbol state ")";
  { Ast.sub_item; sub_from; sub_where }

let parse_alias state =
  if accept_keyword state "as" then Some (expect_ident state "alias") else None

let parse_select_item state =
  if accept_symbol state "*" then Ast.Star
  else begin
    match peek state with
    | Token.Ident name when parse_agg_kind name <> None
                            && Token.equal state.tokens.(state.pos + 1) (Token.Symbol "(") ->
        advance state;
        advance state;
        let kind = Option.get (parse_agg_kind name) in
        let arg =
          if accept_symbol state "*" then begin
            if kind <> Ast.Count_star then fail state "only COUNT accepts *";
            None
          end
          else Some (parse_expr state)
        in
        expect_symbol state ")";
        let kind = if arg = None then Ast.Count_star else kind in
        Ast.Agg_item (kind, arg, parse_alias state)
    | _ ->
        let e = parse_expr state in
        Ast.Expr_item (e, parse_alias state)
  end

let parse_statement state =
  expect_keyword state "select";
  let rec select_list acc =
    let item = parse_select_item state in
    if accept_symbol state "," then select_list (item :: acc) else List.rev (item :: acc)
  in
  let select = select_list [] in
  expect_keyword state "from";
  let rec table_list acc =
    let t = expect_ident state "table name" in
    if accept_symbol state "," then table_list (t :: acc) else List.rev (t :: acc)
  in
  let from = table_list [] in
  let where = if accept_keyword state "where" then Some (parse_condition state) else None in
  let group_by =
    if accept_keyword state "group" then begin
      expect_keyword state "by";
      let rec columns acc =
        let first = expect_ident state "grouping column" in
        let col = parse_column state first in
        if accept_symbol state "," then columns (col :: acc) else List.rev (col :: acc)
      in
      columns []
    end
    else []
  in
  let order_by =
    if accept_keyword state "order" then begin
      expect_keyword state "by";
      let rec items acc =
        let first = expect_ident state "ordering column" in
        let order_column = parse_column state first in
        let desc =
          if accept_keyword state "desc" then true
          else begin
            ignore (accept_keyword state "asc");
            false
          end
        in
        let item = { Ast.order_column; desc } in
        if accept_symbol state "," then items (item :: acc) else List.rev (item :: acc)
      in
      items []
    end
    else []
  in
  let limit =
    if accept_keyword state "limit" then begin
      match next state with
      | Token.Int_lit n when n >= 0 -> Some n
      | _ ->
          state.pos <- state.pos - 1;
          fail state "expected a non-negative integer after LIMIT"
    end
    else None
  in
  ignore (accept_symbol state ";");
  (match peek state with
  | Token.Eof -> ()
  | _ -> fail state "trailing input after statement");
  { Ast.select; from; where; group_by; order_by; limit; hints = state.hints }

let parse input =
  match Lexer.tokenize input with
  | Error msg -> Error ("lex error: " ^ msg)
  | Ok tokens -> (
      let state = { tokens = Array.of_list tokens; pos = 0; hints = [] } in
      match parse_statement state with
      | statement -> Ok statement
      | exception Parse_error msg -> Error ("parse error: " ^ msg))
