open Rq_storage

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      Ok contents

let write_file path contents =
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc ->
      output_string oc contents;
      close_out oc;
      Ok ()

let ( let* ) = Result.bind

(* CSVs past this size build spilling relations: sealed chunks go to a
   temp file instead of the heap, so a TPC-H SF 1 load is constant-memory
   end to end (the fold below already keeps parsing O(row)). *)
let spill_threshold_bytes = 64 * 1024 * 1024

(* Rows stream from the channel into a chunk builder as each newline is
   read — the file is never slurped and no whole-table array exists. *)
let relation_of_csv ~table_name ~schema path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let spill = in_channel_length ic >= spill_threshold_bytes in
          let builder = Relation.Builder.create ~spill ~name:table_name ~schema () in
          let expected = List.map (fun c -> c.Schema.name) (Schema.columns schema) in
          (* [saw_header, data_rows_consumed] *)
          let* saw_header, _ =
            Csv.fold_rows ic ~init:(false, 0) (fun (saw_header, i) fields ->
                if not saw_header then
                  if fields <> expected then
                    Error
                      (Printf.sprintf "%s.csv header mismatch: expected [%s], got [%s]"
                         table_name (String.concat "; " expected)
                         (String.concat "; " fields))
                  else Ok (true, 0)
                else
                  match Csv.tuple_of_fields schema fields with
                  | Ok tuple ->
                      Relation.Builder.add_row builder tuple;
                      Ok (true, i + 1)
                  | Error msg ->
                      Error (Printf.sprintf "%s.csv row %d: %s" table_name (i + 2) msg))
          in
          if not saw_header then
            Error (Printf.sprintf "%s.csv is empty (a header row is required)" table_name)
          else Ok (Relation.Builder.finish builder))

let load_directory dir =
  let* schema_text = read_file (Filename.concat dir "schema.sql") in
  let* statements = Ddl.parse_script schema_text in
  Ddl.build_catalog ~statements ~relation_for:(fun ~table_name ~schema ->
      relation_of_csv ~table_name ~schema (Filename.concat dir (table_name ^ ".csv")))

let type_name = function
  | Value.T_int -> "INT"
  | Value.T_float -> "FLOAT"
  | Value.T_string -> "TEXT"
  | Value.T_date -> "DATE"
  | Value.T_bool -> "BOOL"

let schema_sql catalog =
  let buf = Buffer.create 512 in
  List.iter
    (fun table ->
      let rel = Catalog.find_table catalog table in
      let pk = Catalog.primary_key catalog table in
      Buffer.add_string buf (Printf.sprintf "CREATE TABLE %s (\n" table);
      let columns = Schema.columns (Relation.schema rel) in
      List.iteri
        (fun i { Schema.name; ty } ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s%s%s\n" name (type_name ty)
               (if pk = Some name then " PRIMARY KEY" else "")
               (if i < List.length columns - 1 || Catalog.foreign_keys_from catalog table <> []
                then ","
                else "")))
        columns;
      List.iteri
        (fun i (fk : Catalog.foreign_key) ->
          Buffer.add_string buf
            (Printf.sprintf "  FOREIGN KEY (%s) REFERENCES %s (%s)%s\n" fk.from_column
               fk.to_table fk.to_column
               (if i < List.length (Catalog.foreign_keys_from catalog table) - 1 then ","
                else "")))
        (Catalog.foreign_keys_from catalog table);
      (match Catalog.clustered_by catalog table with
      | Some c when Catalog.primary_key catalog table <> Some c ->
          Buffer.add_string buf (Printf.sprintf ") CLUSTERED BY (%s);\n" c)
      | _ -> Buffer.add_string buf ");\n");
      List.iter
        (fun idx ->
          Buffer.add_string buf
            (Printf.sprintf "CREATE INDEX ON %s (%s);\n" table (Index.column idx)))
        (Catalog.indexes_on catalog table))
    (Catalog.table_names catalog);
  Buffer.contents buf

let export_directory catalog dir =
  let* () = write_file (Filename.concat dir "schema.sql") (schema_sql catalog) in
  let rec export_tables = function
    | [] -> Ok ()
    | table :: rest ->
        let rel = Catalog.find_table catalog table in
        let header = List.map (fun c -> c.Schema.name) (Schema.columns (Relation.schema rel)) in
        let rows =
          Relation.fold (fun acc _ tup -> Csv.fields_of_tuple tup :: acc) [] rel |> List.rev
        in
        let* () =
          write_file (Filename.concat dir (table ^ ".csv")) (Csv.render (header :: rows))
        in
        export_tables rest
  in
  export_tables (Catalog.table_names catalog)
