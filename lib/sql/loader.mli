(** Loading a database from disk, and exporting one back.

    A data directory holds one [schema.sql] (the {!Ddl} dialect) plus one
    [<table>.csv] per declared table, with a header row naming the columns
    in schema order.  This is what lets the CLI run the optimizer against a
    user's own data rather than the built-in generators. *)

open Rq_storage

val load_directory : string -> (Catalog.t, string) result
(** Reads [dir/schema.sql], then each table's CSV; validates headers,
    types, primary-key/foreign-key declarations. *)

val export_directory : Catalog.t -> string -> (unit, string) result
(** Writes [schema.sql] and one CSV per table, such that
    [load_directory] reproduces the catalog (tables, keys, clustering,
    indexes, data). *)
