type column = { table : string option; name : string }

type expr =
  | Column of column
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Date_lit of int * int * int
  | Binop of binop * expr * expr

and binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_kind = Count_star | Sum | Avg | Min | Max

type condition =
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr
  | Like of expr * string
  | And of condition list
  | Or of condition list
  | Not of condition
  | In_subquery of expr * subquery
      (* expr IN (SELECT col FROM t [WHERE ...]); the subquery item must
         be a single column *)
  | Exists of subquery
      (* EXISTS (SELECT * FROM t [WHERE ...]); the correlation equality
         lives inside the subquery's WHERE *)
  | Cmp_scalar of cmp * expr * subquery
      (* expr op (SELECT AGG(e) FROM t [WHERE ...]); the subquery item
         must be an aggregate *)

and subquery = { sub_item : sub_item; sub_from : string; sub_where : condition option }

and sub_item =
  | Sub_star                          (* SELECT * — EXISTS only *)
  | Sub_column of column              (* SELECT col — IN only *)
  | Sub_agg of agg_kind * expr option (* SELECT AGG(e) — scalar comparison only *)

type select_item =
  | Star
  | Expr_item of expr * string option
  | Agg_item of agg_kind * expr option * string option

type order_item = { order_column : column; desc : bool }

type statement = {
  select : select_item list;
  from : string list;
  where : condition option;
  group_by : column list;
  order_by : order_item list;
  limit : int option;
  hints : string list;
}

let pp_column fmt { table; name } =
  match table with
  | Some t -> Format.fprintf fmt "%s.%s" t name
  | None -> Format.pp_print_string fmt name

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr fmt = function
  | Column c -> pp_column fmt c
  | Int_lit i -> Format.pp_print_int fmt i
  | Float_lit f -> Format.fprintf fmt "%g" f
  | String_lit s -> Format.fprintf fmt "'%s'" s
  | Date_lit (y, m, d) -> Format.fprintf fmt "DATE '%04d-%02d-%02d'" y m d
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let cmp_symbol = function Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_condition fmt = function
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a (cmp_symbol op) pp_expr b
  | Between (e, lo, hi) ->
      Format.fprintf fmt "%a BETWEEN %a AND %a" pp_expr e pp_expr lo pp_expr hi
  | Like (e, pattern) -> Format.fprintf fmt "%a LIKE '%s'" pp_expr e pattern
  | And cs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " AND ")
           pp_condition)
        cs
  | Or cs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " OR ")
           pp_condition)
        cs
  | Not c -> Format.fprintf fmt "NOT %a" pp_condition c
  | In_subquery (e, sub) -> Format.fprintf fmt "%a IN %a" pp_expr e pp_subquery sub
  | Exists sub -> Format.fprintf fmt "EXISTS %a" pp_subquery sub
  | Cmp_scalar (op, e, sub) ->
      Format.fprintf fmt "%a %s %a" pp_expr e (cmp_symbol op) pp_subquery sub

and pp_subquery fmt { sub_item; sub_from; sub_where } =
  let pp_item fmt = function
    | Sub_star -> Format.pp_print_string fmt "*"
    | Sub_column c -> pp_column fmt c
    | Sub_agg (kind, arg) ->
        let name =
          match kind with
          | Count_star -> "COUNT"
          | Sum -> "SUM"
          | Avg -> "AVG"
          | Min -> "MIN"
          | Max -> "MAX"
        in
        (match arg with
        | None -> Format.fprintf fmt "%s(*)" name
        | Some e -> Format.fprintf fmt "%s(%a)" name pp_expr e)
  in
  Format.fprintf fmt "(SELECT %a FROM %s" pp_item sub_item sub_from;
  (match sub_where with
  | Some c -> Format.fprintf fmt " WHERE %a" pp_condition c
  | None -> ());
  Format.pp_print_string fmt ")"
