(** SQL tokens. *)

type t =
  | Ident of string          (** identifier or keyword, original case *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string     (** contents of '...' *)
  | Symbol of string         (** punctuation and operators: ( ) , . * = <> < <= > >= + - / *)
  | Hint of string           (** contents of a /*+ ... *\/ comment *)
  | Eof

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val is_keyword : t -> string -> bool
(** Case-insensitive keyword test on [Ident]. *)
