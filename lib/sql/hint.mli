(** Optimizer hints: the paper's per-query override channel (Sec. 6.2.5).

    Two spellings are accepted inside [/*+ ... */]:
    - [CONFIDENCE(80)] — an explicit confidence-threshold percentage;
    - [ROBUSTNESS(conservative|moderate|aggressive)] — the named policy
      levels (95/80/50%). *)

val parse : string -> (Rq_core.Confidence.t option, string) result
(** [Ok None] when the hint body contains no recognized directive (hints
    for other subsystems are ignored, as commercial optimizers do). *)

val resolve :
  hints:string list -> setting:Rq_core.Confidence.setting ->
  (Rq_core.Confidence.t, string) result
(** Applies the last confidence-bearing hint over the system setting. *)
