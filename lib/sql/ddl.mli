(** Data definition: a small DDL dialect for building catalogs from text.

    Supported statements (semicolon-separated; case-insensitive keywords):
    {v
    CREATE TABLE part (
      p_partkey INT PRIMARY KEY,
      p_brand   TEXT,
      p_price   FLOAT,
      added_on  DATE,
      active    BOOL
    );
    CREATE TABLE lineitem (
      l_rowid    INT PRIMARY KEY,
      l_partkey  INT,
      FOREIGN KEY (l_partkey) REFERENCES part (p_partkey)
    ) CLUSTERED BY (l_orderkey);
    CREATE INDEX ON lineitem (l_shipdate);
    v} *)

open Rq_storage

type column_def = { name : string; ty : Value.ty; primary_key : bool }

type table_def = {
  table_name : string;
  columns : column_def list;
  foreign_keys : (string * string * string) list;
      (** (local column, referenced table, referenced column) *)
  clustered_by : string option;
}

type statement =
  | Create_table of table_def
  | Create_index of { table : string; column : string }

val parse_script : string -> (statement list, string) result

val build_catalog :
  statements:statement list ->
  relation_for:(table_name:string -> schema:Schema.t -> (Relation.t, string) result) ->
  (Catalog.t, string) result
(** Creates tables (fetching each table's relation through
    [relation_for], which may stream rows into a {!Relation.Builder}
    rather than materialize an array), then declares foreign keys, then
    builds indexes — so FK targets exist regardless of statement order
    among CREATE TABLEs. *)
