open Rq_exec
open Rq_optimizer

type t = { key : string; hash : int }

(* ------------------------------------------------------------------ *)
(* Canonical rendering                                                 *)
(* ------------------------------------------------------------------ *)

(* Canonical compact renderers: [Pred.pp]/[Expr.pp] are box-based pretty
   printers whose output depends on the formatter margin, which would make
   equal queries fingerprint differently at different lengths.
   [Expr.render]/[Pred.render] emit one unambiguous, normalized line; the
   optimizer's evidence memo keys on the same renderings, so a cache entry
   here and a bitmap combination there agree on predicate identity. *)

let render_expr = Expr.render
let render_pred = Pred.render

let render_agg_fn = function
  | Plan.Count_star -> "count(*)"
  | Plan.Count e -> "count(" ^ render_expr e ^ ")"
  | Plan.Sum e -> "sum(" ^ render_expr e ^ ")"
  | Plan.Avg e -> "avg(" ^ render_expr e ^ ")"
  | Plan.Min e -> "min(" ^ render_expr e ^ ")"
  | Plan.Max e -> "max(" ^ render_expr e ^ ")"

let render_agg (a : Plan.agg) = render_agg_fn a.Plan.fn ^ " as " ^ a.Plan.output_name

let render_sort_key (k : Plan.sort_key) =
  k.Plan.sort_column ^ if k.Plan.descending then " desc" else " asc"

(* ------------------------------------------------------------------ *)
(* Fingerprinting                                                      *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, folded to OCaml's 63-bit int.  The hash is a cheap bucket key;
   equality always compares full canonical keys, so collisions can never
   serve a wrong plan. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 1)

let render_semijoin (sj : Logical.semijoin) =
  Printf.sprintf "%s in %s(%s)[%s]" sj.Logical.outer_key sj.Logical.inner.Logical.table
    sj.Logical.inner_key
    (render_pred sj.Logical.inner.Logical.pred)

let render_scalar (s : Logical.scalar) =
  let cmp =
    match s.Logical.s_cmp with
    | Pred.Eq -> "="
    | Pred.Ne -> "<>"
    | Pred.Lt -> "<"
    | Pred.Le -> "<="
    | Pred.Gt -> ">"
    | Pred.Ge -> ">="
  in
  Printf.sprintf "%s %s %s:%s[%s]" (render_expr s.Logical.s_expr) cmp
    (render_agg_fn s.Logical.s_agg) s.Logical.s_table
    (render_pred s.Logical.s_pred)

let of_logical ?(estimator = "") ?confidence (q : Logical.t) =
  (* Canonicalize first (the pure rewrite rules): differently spelled but
     identical queries — folded constants, pushed-down filters, shadowed
     projections — share one cache key.  [index_order] is deliberately NOT
     part of the key: it is a physical-plan knob the rewrite layer sets,
     not query semantics, and cache keys are computed before the optimizer
     rewrites anyway. *)
  let q = Rewrite.canonical q in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Join structure is determined by the table *set* (the catalog's FK
     edges are fixed), so table order is normalized away. *)
  let tables =
    List.sort
      (fun (a : Logical.table_ref) b -> String.compare a.Logical.table b.Logical.table)
      q.Logical.tables
  in
  List.iter
    (fun (r : Logical.table_ref) ->
      add "t:%s[%s];" r.Logical.table (render_pred r.Logical.pred))
    tables;
  add "r:%s;" (render_pred q.Logical.residual);
  (* Semijoin order is irrelevant (they conjoin); scalar order is not
     normalized — scalar comparisons land in the residual after rewriting,
     and the canonicalizer cannot execute them, so identity stays
     spelling-faithful. *)
  add "s:%s;"
    (String.concat "," (List.sort String.compare (List.map render_semijoin q.Logical.semijoins)));
  add "q:%s;" (String.concat "," (List.map render_scalar q.Logical.scalars));
  (* Grouping/projection/order shape the output schema, so they stay
     verbatim (order significant). *)
  add "g:%s;" (String.concat "," q.Logical.group_by);
  add "a:%s;" (String.concat "," (List.map render_agg q.Logical.aggs));
  (match q.Logical.projection with
  | None -> add "p:*;"
  | Some cols -> add "p:%s;" (String.concat "," cols));
  add "o:%s;" (String.concat "," (List.map render_sort_key q.Logical.order_by));
  (match q.Logical.limit with None -> add "l:;" | Some n -> add "l:%d;" n);
  (* The estimator's identity: the same logical query optimized under a
     different estimator or confidence threshold is a different cache
     entry — their chosen plans legitimately differ. *)
  add "e:%s;" estimator;
  (match confidence with
  | None -> add "T:;"
  | Some c -> add "T:%.6g;" (Rq_core.Confidence.to_percent c));
  let key = Buffer.contents buf in
  { key; hash = fnv1a key }

(* Fingerprint of a bare (possibly atomic) predicate: the structural key
   the estimator's evidence memo uses in place of built strings.  Shares
   {!Pred.render}'s normalization, so a predicate and the same predicate
   inside a query fingerprint agree on identity. *)
let of_pred pred =
  let key = "pred:" ^ render_pred pred in
  { key; hash = fnv1a key }

let to_key t = t.key
let hash t = t.hash
let equal a b = String.equal a.key b.key
let compare a b = String.compare a.key b.key
let pp fmt t = Format.pp_print_string fmt t.key
