type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
  | Hint of string
  | Eof

let equal a b =
  match (a, b) with
  | Ident x, Ident y -> String.equal (String.lowercase_ascii x) (String.lowercase_ascii y)
  | Int_lit x, Int_lit y -> Int.equal x y
  | Float_lit x, Float_lit y -> Float.equal x y
  | String_lit x, String_lit y | Symbol x, Symbol y | Hint x, Hint y -> String.equal x y
  | Eof, Eof -> true
  | _ -> false

let pp fmt = function
  | Ident s -> Format.fprintf fmt "identifier %s" s
  | Int_lit i -> Format.fprintf fmt "integer %d" i
  | Float_lit f -> Format.fprintf fmt "float %g" f
  | String_lit s -> Format.fprintf fmt "string '%s'" s
  | Symbol s -> Format.fprintf fmt "symbol %s" s
  | Hint s -> Format.fprintf fmt "hint /*+%s*/" s
  | Eof -> Format.pp_print_string fmt "end of input"

let is_keyword t kw =
  match t with
  | Ident s -> String.equal (String.lowercase_ascii s) (String.lowercase_ascii kw)
  | _ -> false
