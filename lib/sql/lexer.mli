(** Hand-written SQL lexer.

    Recognizes identifiers, integer/float/string literals, punctuation,
    date literals in strings (left to the binder), [--] line comments,
    [/* ... */] block comments, and optimizer hints [/*+ ... */] — the
    paper's query-hint channel for per-query confidence thresholds. *)

val tokenize : string -> (Token.t list, string) result
(** The token list always ends with [Eof].  Errors report position and the
    offending character. *)
