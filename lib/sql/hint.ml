let strip s = String.trim s

(* Match NAME(ARG) case-insensitively against the hint body. *)
let directive body =
  let body = strip body in
  match String.index_opt body '(' with
  | None -> None
  | Some open_paren -> (
      match String.rindex_opt body ')' with
      | None -> None
      | Some close_paren when close_paren > open_paren ->
          let name = strip (String.sub body 0 open_paren) in
          let arg = strip (String.sub body (open_paren + 1) (close_paren - open_paren - 1)) in
          Some (String.lowercase_ascii name, arg)
      | Some _ -> None)

let parse body =
  match directive body with
  | Some ("confidence", arg) -> (
      match float_of_string_opt arg with
      | Some pct when pct > 0.0 && pct < 100.0 -> Ok (Some (Rq_core.Confidence.of_percent pct))
      | Some _ -> Error (Printf.sprintf "CONFIDENCE(%s): must be strictly between 0 and 100" arg)
      | None -> Error (Printf.sprintf "CONFIDENCE(%s): not a number" arg))
  | Some ("robustness", arg) -> (
      match Rq_core.Confidence.policy_of_string arg with
      | Ok policy -> Ok (Some (Rq_core.Confidence.of_policy policy))
      | Error msg -> Error msg)
  | _ -> Ok None

let resolve ~hints ~setting =
  let rec last_confidence acc = function
    | [] -> Ok acc
    | h :: rest -> (
        match parse h with
        | Ok (Some c) -> last_confidence (Some c) rest
        | Ok None -> last_confidence acc rest
        | Error _ as e -> e)
  in
  match last_confidence None hints with
  | Ok query_hint -> Ok (Rq_core.Confidence.resolve ?query_hint setting)
  | Error msg -> Error msg
