(** Recursive-descent parser for the SQL subset. *)

val parse : string -> (Ast.statement, string) result
(** Lexes and parses one SELECT statement; an optional trailing semicolon
    is accepted.  Errors carry the unexpected token. *)

val parse_date_string : string -> (int * int * int) option
(** ['YYYY-MM-DD'] or ['MM/DD/YY[YY]'] (two-digit years pivot at 70) to
    (year, month, day); shared with the binder's date coercion. *)
