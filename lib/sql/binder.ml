open Rq_storage
open Rq_exec
open Rq_optimizer

type bound = { query : Logical.t; confidence_hint : Rq_core.Confidence.t option }

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

let column_type catalog table column =
  let schema = Relation.schema (Catalog.find_table catalog table) in
  match Schema.find schema column with
  | Some { Schema.ty; _ } -> ty
  | None -> fail "column %s.%s does not exist" table column

(* Resolve an AST column to its owning table. *)
let resolve_column catalog tables { Ast.table; name } =
  match table with
  | Some t ->
      if not (List.mem t tables) then fail "table %s is not in FROM" t;
      ignore (column_type catalog t name);
      (t, name)
  | None -> (
      let owners =
        List.filter
          (fun t ->
            Schema.mem (Relation.schema (Catalog.find_table catalog t)) name)
          tables
      in
      match owners with
      | [ t ] -> (t, name)
      | [] -> fail "column %s not found in any FROM table" name
      | _ -> fail "column %s is ambiguous" name)

let date_value s =
  match Parser.parse_date_string s with
  | Some (year, month, day) -> Some (Value.date_of_ymd ~year ~month ~day)
  | None -> None

(* Convert an AST expression to an executable expression over qualified
   column names.  [want_date] requests date coercion of string literals and
   turns integer addition/subtraction into day arithmetic. *)
let rec convert_expr catalog tables ~want_date expr =
  match expr with
  | Ast.Column c ->
      let t, name = resolve_column catalog tables c in
      Expr.col (t ^ "." ^ name)
  | Ast.Int_lit i -> Expr.int i
  | Ast.Float_lit f -> Expr.float f
  | Ast.String_lit s -> (
      if want_date then
        match date_value s with
        | Some v -> Expr.Const v
        | None -> fail "expected a date literal, got '%s'" s
      else
        match date_value s with
        | Some v -> Expr.Const v  (* dates are never useful as raw strings *)
        | None -> Expr.str s)
  | Ast.Date_lit (year, month, day) -> Expr.date ~year ~month ~day
  | Ast.Binop (op, a, b) -> (
      match (op, want_date) with
      | Ast.Add, true -> (
          match (a, b) with
          | e, Ast.Int_lit days | Ast.Int_lit days, e ->
              Expr.Add_days (convert_expr catalog tables ~want_date:true e, days)
          | _ -> fail "date arithmetic must add an integer number of days")
      | Ast.Sub, true -> (
          match b with
          | Ast.Int_lit days ->
              Expr.Add_days (convert_expr catalog tables ~want_date:true a, -days)
          | _ -> fail "date arithmetic must subtract an integer number of days")
      | _ ->
          let f = convert_expr catalog tables ~want_date:false in
          let a = f a and b = f b in
          (match op with
          | Ast.Add -> Expr.Add (a, b)
          | Ast.Sub -> Expr.Sub (a, b)
          | Ast.Mul -> Expr.Mul (a, b)
          | Ast.Div -> Expr.Div (a, b)))

(* Whether an AST expression's column side is a date column: drives
   coercion of the opposite side. *)
let rec expr_is_date catalog tables = function
  | Ast.Column c ->
      let t, name = resolve_column catalog tables c in
      column_type catalog t name = Value.T_date
  | Ast.Date_lit _ -> true
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) ->
      expr_is_date catalog tables a || expr_is_date catalog tables b
  | Ast.String_lit s -> date_value s <> None
  | _ -> false

let convert_cmp = function
  | Ast.Eq -> Pred.Eq
  | Ast.Ne -> Pred.Ne
  | Ast.Lt -> Pred.Lt
  | Ast.Le -> Pred.Le
  | Ast.Gt -> Pred.Gt
  | Ast.Ge -> Pred.Ge

(* LIKE with leading/trailing % becomes a substring match; other patterns
   with % or _ in the middle are not supported. *)
let convert_like catalog tables e pattern =
  let stripped =
    let s = pattern in
    let s = if String.length s > 0 && s.[0] = '%' then String.sub s 1 (String.length s - 1) else s in
    if String.length s > 0 && s.[String.length s - 1] = '%' then String.sub s 0 (String.length s - 1)
    else s
  in
  if String.contains stripped '%' || String.contains stripped '_' then
    fail "only substring LIKE patterns ('%%text%%') are supported";
  let had_wildcards = not (String.equal stripped pattern) in
  let converted = convert_expr catalog tables ~want_date:false e in
  if had_wildcards then Pred.Contains (converted, stripped)
  else Pred.eq converted (Expr.str stripped)

let rec convert_condition catalog tables = function
  | Ast.Cmp (op, a, b) ->
      let want_date = expr_is_date catalog tables a || expr_is_date catalog tables b in
      Pred.Cmp
        ( convert_cmp op,
          convert_expr catalog tables ~want_date a,
          convert_expr catalog tables ~want_date b )
  | Ast.Between (e, lo, hi) ->
      let want_date = expr_is_date catalog tables e in
      Pred.Between
        ( convert_expr catalog tables ~want_date e,
          convert_expr catalog tables ~want_date lo,
          convert_expr catalog tables ~want_date hi )
  | Ast.Like (e, pattern) -> convert_like catalog tables e pattern
  | Ast.And cs -> Pred.conj (List.map (convert_condition catalog tables) cs)
  | Ast.Or cs -> Pred.Or (List.map (convert_condition catalog tables) cs)
  | Ast.Not c -> Pred.Not (convert_condition catalog tables c)

let owner_of_qualified c =
  match String.index_opt c '.' with
  | Some i -> String.sub c 0 i
  | None -> fail "internal: unqualified column %s escaped binding" c

let strip_qualifier table c =
  let prefix = table ^ "." in
  if String.length c > String.length prefix && String.sub c 0 (String.length prefix) = prefix
  then String.sub c (String.length prefix) (String.length c - String.length prefix)
  else c

(* An equality conjunct between two tables is accepted iff it matches a
   declared FK edge (the join is then implied; the conjunct is dropped). *)
let is_fk_join_conjunct catalog conjunct =
  match conjunct with
  | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) -> (
      let ta = owner_of_qualified a and tb = owner_of_qualified b in
      let matches x tx y ty =
        match Catalog.fk_edge catalog ~from_table:tx ~to_table:ty with
        | Some fk ->
            String.equal (strip_qualifier tx x) fk.Catalog.from_column
            && String.equal (strip_qualifier ty y) fk.Catalog.to_column
        | None -> false
      in
      (not (String.equal ta tb)) && (matches a ta b tb || matches b tb a ta))
  | _ -> false

let split_where catalog tables pred =
  let per_table = Hashtbl.create 8 in
  List.iter (fun t -> Hashtbl.replace per_table t []) tables;
  List.iter
    (fun conjunct ->
      if not (is_fk_join_conjunct catalog conjunct) then begin
        let owners =
          List.sort_uniq String.compare (List.map owner_of_qualified (Pred.columns conjunct))
        in
        match owners with
        | [] ->
            (* Constant conjunct: attach to the first table. *)
            let t = List.hd tables in
            Hashtbl.replace per_table t (conjunct :: Hashtbl.find per_table t)
        | [ t ] ->
            let local = Pred.rename_columns (strip_qualifier t) conjunct in
            Hashtbl.replace per_table t (local :: Hashtbl.find per_table t)
        | _ ->
            fail "predicate %s spans multiple tables and is not a foreign-key join"
              (Format.asprintf "%a" Pred.pp conjunct)
      end)
    (Pred.conjuncts pred);
  List.map
    (fun t -> { Logical.table = t; pred = Pred.conj (List.rev (Hashtbl.find per_table t)) })
    tables

let convert_agg catalog tables index (kind, arg, alias) =
  let output_name =
    match alias with
    | Some a -> a
    | None -> Printf.sprintf "agg_%d" index
  in
  let conv e = convert_expr catalog tables ~want_date:false e in
  let fn =
    match (kind, arg) with
    | Ast.Count_star, None -> Rq_exec.Plan.Count_star
    | Ast.Count_star, Some e -> Rq_exec.Plan.Count (conv e)
    | Ast.Sum, Some e -> Rq_exec.Plan.Sum (conv e)
    | Ast.Avg, Some e -> Rq_exec.Plan.Avg (conv e)
    | Ast.Min, Some e -> Rq_exec.Plan.Min (conv e)
    | Ast.Max, Some e -> Rq_exec.Plan.Max (conv e)
    | _, None -> fail "aggregate requires an argument"
  in
  { Rq_exec.Plan.fn; output_name }

let bind catalog (statement : Ast.statement) =
  try
    let tables = statement.Ast.from in
    List.iter
      (fun t ->
        if Catalog.find_table_opt catalog t = None then fail "unknown table %s" t)
      tables;
    let where =
      match statement.Ast.where with
      | None -> Pred.True
      | Some c -> convert_condition catalog tables c
    in
    let refs = split_where catalog tables where in
    let group_by =
      List.map
        (fun c ->
          let t, name = resolve_column catalog tables c in
          t ^ "." ^ name)
        statement.Ast.group_by
    in
    let aggs, projection =
      let agg_items =
        List.filter_map
          (function Ast.Agg_item (k, e, a) -> Some (k, e, a) | _ -> None)
          statement.Ast.select
      in
      let plain_columns =
        List.filter_map
          (function
            | Ast.Expr_item (Ast.Column c, _) ->
                let t, name = resolve_column catalog tables c in
                Some (t ^ "." ^ name)
            | Ast.Expr_item _ -> fail "non-column, non-aggregate SELECT items are not supported"
            | _ -> None)
          statement.Ast.select
      in
      if agg_items <> [] then begin
        List.iter
          (fun c ->
            if not (List.mem c group_by) then
              fail "SELECT column %s must appear in GROUP BY alongside aggregates" c)
          plain_columns;
        (List.mapi (fun i item -> convert_agg catalog tables i item) agg_items, None)
      end
      else if group_by <> [] then fail "GROUP BY without aggregates is not supported"
      else if List.mem Ast.Star statement.Ast.select then ([], None)
      else ([], Some plain_columns)
    in
    let output_columns =
      (* Names ORDER BY may reference: aggregate aliases, grouping columns,
         and (without aggregation) any qualified column of the join. *)
      match aggs with
      | [] -> None (* resolve against base tables *)
      | _ -> Some (group_by @ List.map (fun a -> a.Rq_exec.Plan.output_name) aggs)
    in
    let order_by =
      List.map
        (fun { Ast.order_column; desc } ->
          let sort_column =
            match output_columns with
            | None ->
                let t, name = resolve_column catalog tables order_column in
                t ^ "." ^ name
            | Some available -> (
                let bare = order_column.Ast.name in
                let qualified =
                  match order_column.Ast.table with
                  | Some t -> t ^ "." ^ bare
                  | None -> bare
                in
                if List.mem qualified available then qualified
                else
                  (* A grouping column may be referenced unqualified. *)
                  match
                    List.find_opt
                      (fun c ->
                        match String.index_opt c '.' with
                        | Some i ->
                            String.sub c (i + 1) (String.length c - i - 1) = bare
                        | None -> String.equal c bare)
                      available
                  with
                  | Some c -> c
                  | None -> fail "ORDER BY column %s is not in the output" qualified)
          in
          { Rq_exec.Plan.sort_column; descending = desc })
        statement.Ast.order_by
    in
    (match statement.Ast.limit with
    | Some n when n < 0 -> fail "LIMIT must be non-negative"
    | _ -> ());
    let query =
      Logical.query ~group_by ~aggs ?projection ~order_by ?limit:statement.Ast.limit refs
    in
    (match Logical.validate catalog query with
    | Ok () -> ()
    | Error msg -> fail "%s" msg);
    let confidence_hint =
      match
        Hint.resolve ~hints:statement.Ast.hints
          ~setting:{ Rq_core.Confidence.system_default = Rq_core.Confidence.median }
      with
      | Ok _ -> (
          (* resolve validated the hints; recover the raw override *)
          let rec last acc = function
            | [] -> acc
            | h :: rest -> (
                match Hint.parse h with
                | Ok (Some c) -> last (Some c) rest
                | _ -> last acc rest)
          in
          last None statement.Ast.hints)
      | Error msg -> fail "%s" msg
    in
    Ok { query; confidence_hint }
  with Bind_error msg -> Error msg

let compile catalog input =
  match Parser.parse input with
  | Error _ as e -> e
  | Ok statement -> bind catalog statement
