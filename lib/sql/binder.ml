open Rq_storage
open Rq_exec
open Rq_optimizer

type bound = { query : Logical.t; confidence_hint : Rq_core.Confidence.t option }

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

let column_type catalog table column =
  let schema = Relation.schema (Catalog.find_table catalog table) in
  match Schema.find schema column with
  | Some { Schema.ty; _ } -> ty
  | None -> fail "column %s.%s does not exist" table column

(* Resolve an AST column to its owning table. *)
let resolve_column catalog tables { Ast.table; name } =
  match table with
  | Some t ->
      if not (List.mem t tables) then fail "table %s is not in FROM" t;
      ignore (column_type catalog t name);
      (t, name)
  | None -> (
      let owners =
        List.filter
          (fun t ->
            Schema.mem (Relation.schema (Catalog.find_table catalog t)) name)
          tables
      in
      match owners with
      | [ t ] -> (t, name)
      | [] -> fail "column %s not found in any FROM table" name
      | _ -> fail "column %s is ambiguous" name)

let date_value s =
  match Parser.parse_date_string s with
  | Some (year, month, day) -> Some (Value.date_of_ymd ~year ~month ~day)
  | None -> None

(* Convert an AST expression to an executable expression over qualified
   column names.  [want_date] requests date coercion of string literals and
   turns integer addition/subtraction into day arithmetic. *)
let rec convert_expr catalog tables ~want_date expr =
  match expr with
  | Ast.Column c ->
      let t, name = resolve_column catalog tables c in
      Expr.col (t ^ "." ^ name)
  | Ast.Int_lit i -> Expr.int i
  | Ast.Float_lit f -> Expr.float f
  | Ast.String_lit s -> (
      if want_date then
        match date_value s with
        | Some v -> Expr.Const v
        | None -> fail "expected a date literal, got '%s'" s
      else
        match date_value s with
        | Some v -> Expr.Const v  (* dates are never useful as raw strings *)
        | None -> Expr.str s)
  | Ast.Date_lit (year, month, day) -> Expr.date ~year ~month ~day
  | Ast.Binop (op, a, b) -> (
      match (op, want_date) with
      | Ast.Add, true -> (
          match (a, b) with
          | e, Ast.Int_lit days | Ast.Int_lit days, e ->
              Expr.Add_days (convert_expr catalog tables ~want_date:true e, days)
          | _ -> fail "date arithmetic must add an integer number of days")
      | Ast.Sub, true -> (
          match b with
          | Ast.Int_lit days ->
              Expr.Add_days (convert_expr catalog tables ~want_date:true a, -days)
          | _ -> fail "date arithmetic must subtract an integer number of days")
      | _ ->
          let f = convert_expr catalog tables ~want_date:false in
          let a = f a and b = f b in
          (match op with
          | Ast.Add -> Expr.Add (a, b)
          | Ast.Sub -> Expr.Sub (a, b)
          | Ast.Mul -> Expr.Mul (a, b)
          | Ast.Div -> Expr.Div (a, b)))

(* Whether an AST expression's column side is a date column: drives
   coercion of the opposite side. *)
let rec expr_is_date catalog tables = function
  | Ast.Column c ->
      let t, name = resolve_column catalog tables c in
      column_type catalog t name = Value.T_date
  | Ast.Date_lit _ -> true
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) ->
      expr_is_date catalog tables a || expr_is_date catalog tables b
  | Ast.String_lit s -> date_value s <> None
  | _ -> false

let convert_cmp = function
  | Ast.Eq -> Pred.Eq
  | Ast.Ne -> Pred.Ne
  | Ast.Lt -> Pred.Lt
  | Ast.Le -> Pred.Le
  | Ast.Gt -> Pred.Gt
  | Ast.Ge -> Pred.Ge

(* LIKE with leading/trailing % becomes a substring match; other patterns
   with % or _ in the middle are not supported. *)
let convert_like catalog tables e pattern =
  let stripped =
    let s = pattern in
    let s = if String.length s > 0 && s.[0] = '%' then String.sub s 1 (String.length s - 1) else s in
    if String.length s > 0 && s.[String.length s - 1] = '%' then String.sub s 0 (String.length s - 1)
    else s
  in
  if String.contains stripped '%' || String.contains stripped '_' then
    fail "only substring LIKE patterns ('%%text%%') are supported";
  let had_wildcards = not (String.equal stripped pattern) in
  let converted = convert_expr catalog tables ~want_date:false e in
  if had_wildcards then Pred.Contains (converted, stripped)
  else Pred.eq converted (Expr.str stripped)

let rec convert_condition catalog tables = function
  | Ast.Cmp (op, a, b) ->
      let want_date = expr_is_date catalog tables a || expr_is_date catalog tables b in
      Pred.Cmp
        ( convert_cmp op,
          convert_expr catalog tables ~want_date a,
          convert_expr catalog tables ~want_date b )
  | Ast.Between (e, lo, hi) ->
      let want_date = expr_is_date catalog tables e in
      Pred.Between
        ( convert_expr catalog tables ~want_date e,
          convert_expr catalog tables ~want_date lo,
          convert_expr catalog tables ~want_date hi )
  | Ast.Like (e, pattern) -> convert_like catalog tables e pattern
  | Ast.And cs -> Pred.conj (List.map (convert_condition catalog tables) cs)
  | Ast.Or cs -> Pred.Or (List.map (convert_condition catalog tables) cs)
  | Ast.Not c -> Pred.Not (convert_condition catalog tables c)
  | Ast.In_subquery _ | Ast.Exists _ | Ast.Cmp_scalar _ ->
      fail "subqueries are only supported as top-level WHERE conjuncts"

let owner_of_qualified c =
  match String.index_opt c '.' with
  | Some i -> String.sub c 0 i
  | None -> fail "internal: unqualified column %s escaped binding" c

let strip_qualifier table c =
  let prefix = table ^ "." in
  if String.length c > String.length prefix && String.sub c 0 (String.length prefix) = prefix
  then String.sub c (String.length prefix) (String.length c - String.length prefix)
  else c

(* Single-table conjuncts attach to their table (unqualified); anything
   spanning several tables — explicit FK join equalities included — lands
   in the residual, where the rewrite layer absorbs FK equalities and
   pushes down whatever later simplification makes single-table. *)
let split_where tables pred =
  let per_table = Hashtbl.create 8 in
  let residual = ref [] in
  List.iter (fun t -> Hashtbl.replace per_table t []) tables;
  List.iter
    (fun conjunct ->
      let owners =
        List.sort_uniq String.compare (List.map owner_of_qualified (Pred.columns conjunct))
      in
      match owners with
      | [] ->
          (* Constant conjunct: attach to the first table. *)
          let t = List.hd tables in
          Hashtbl.replace per_table t (conjunct :: Hashtbl.find per_table t)
      | [ t ] ->
          let local = Pred.rename_columns (strip_qualifier t) conjunct in
          Hashtbl.replace per_table t (local :: Hashtbl.find per_table t)
      | _ -> residual := conjunct :: !residual)
    (Pred.conjuncts pred);
  let refs =
    List.map
      (fun t -> { Logical.table = t; pred = Pred.conj (List.rev (Hashtbl.find per_table t)) })
      tables
  in
  (refs, Pred.conj (List.rev !residual))

(* ------------------------------------------------------------------ *)
(* Subquery binding                                                    *)
(* ------------------------------------------------------------------ *)

let rec top_conjuncts = function
  | Ast.And cs -> List.concat_map top_conjuncts cs
  | c -> [ c ]

let require_table catalog name =
  if Catalog.find_table_opt catalog name = None then fail "unknown table %s" name

let bind_inner_pred catalog sub_from sub_where =
  match sub_where with
  | None -> Pred.True
  | Some c ->
      Pred.rename_columns (strip_qualifier sub_from)
        (convert_condition catalog [ sub_from ] c)

let bind_in_subquery catalog tables lhs (sub : Ast.subquery) =
  require_table catalog sub.Ast.sub_from;
  let outer_key =
    match lhs with
    | Ast.Column c ->
        let t, n = resolve_column catalog tables c in
        t ^ "." ^ n
    | _ -> fail "IN requires a plain column on the left"
  in
  let inner_key =
    match sub.Ast.sub_item with
    | Ast.Sub_column { Ast.table; name } ->
        (match table with
        | Some t when not (String.equal t sub.Ast.sub_from) ->
            fail "subquery selects a column of %s, not its FROM table" t
        | _ -> ());
        ignore (column_type catalog sub.Ast.sub_from name);
        name
    | _ -> fail "IN subquery must select a single column"
  in
  {
    Logical.outer_key;
    inner =
      {
        Logical.table = sub.Ast.sub_from;
        pred = bind_inner_pred catalog sub.Ast.sub_from sub.Ast.sub_where;
      };
    inner_key;
  }

(* EXISTS correlates through exactly one equality conjunct between the
   subquery table and an outer column; the remaining conjuncts must be
   local to the subquery table.  The result is the same semijoin IN
   produces — the two spellings are deliberately indistinguishable
   downstream. *)
let bind_exists catalog tables (sub : Ast.subquery) =
  (match sub.Ast.sub_item with
  | Ast.Sub_star -> ()
  | _ -> fail "EXISTS subquery must select *");
  require_table catalog sub.Ast.sub_from;
  let inner = sub.Ast.sub_from in
  let classify c =
    match c with
    | Ast.Cmp (Ast.Eq, Ast.Column a, Ast.Column b) -> (
        let ta, na = resolve_column catalog (inner :: tables) a in
        let tb, nb = resolve_column catalog (inner :: tables) b in
        if String.equal ta inner && List.mem tb tables then Either.Left (tb ^ "." ^ nb, na)
        else if String.equal tb inner && List.mem ta tables then
          Either.Left (ta ^ "." ^ na, nb)
        else Either.Right c)
    | c -> Either.Right c
  in
  let correlations, local =
    List.partition_map classify
      (match sub.Ast.sub_where with None -> [] | Some c -> top_conjuncts c)
  in
  match correlations with
  | [ (outer_key, inner_key) ] ->
      let pred_ast = match local with [] -> None | cs -> Some (Ast.And cs) in
      {
        Logical.outer_key;
        inner = { Logical.table = inner; pred = bind_inner_pred catalog inner pred_ast };
        inner_key;
      }
  | [] -> fail "EXISTS subquery must correlate with an outer column (%s.k = outer.k)" inner
  | _ -> fail "EXISTS supports exactly one correlation equality"

let bind_scalar catalog tables op lhs (sub : Ast.subquery) =
  require_table catalog sub.Ast.sub_from;
  let kind, arg =
    match sub.Ast.sub_item with
    | Ast.Sub_agg (k, a) -> (k, a)
    | _ -> fail "a comparison subquery must select a single aggregate"
  in
  let conv_inner e = convert_expr catalog [ sub.Ast.sub_from ] ~want_date:false e in
  let s_agg =
    match (kind, arg) with
    | Ast.Count_star, None -> Rq_exec.Plan.Count_star
    | Ast.Count_star, Some e -> Rq_exec.Plan.Count (conv_inner e)
    | Ast.Sum, Some e -> Rq_exec.Plan.Sum (conv_inner e)
    | Ast.Avg, Some e -> Rq_exec.Plan.Avg (conv_inner e)
    | Ast.Min, Some e -> Rq_exec.Plan.Min (conv_inner e)
    | Ast.Max, Some e -> Rq_exec.Plan.Max (conv_inner e)
    | _, None -> fail "aggregate requires an argument"
  in
  let want_date = expr_is_date catalog tables lhs in
  {
    Logical.s_expr = convert_expr catalog tables ~want_date lhs;
    s_cmp = convert_cmp op;
    s_agg;
    s_table = sub.Ast.sub_from;
    s_pred = bind_inner_pred catalog sub.Ast.sub_from sub.Ast.sub_where;
  }

let convert_agg catalog tables index (kind, arg, alias) =
  let output_name =
    match alias with
    | Some a -> a
    | None -> Printf.sprintf "agg_%d" index
  in
  let conv e = convert_expr catalog tables ~want_date:false e in
  let fn =
    match (kind, arg) with
    | Ast.Count_star, None -> Rq_exec.Plan.Count_star
    | Ast.Count_star, Some e -> Rq_exec.Plan.Count (conv e)
    | Ast.Sum, Some e -> Rq_exec.Plan.Sum (conv e)
    | Ast.Avg, Some e -> Rq_exec.Plan.Avg (conv e)
    | Ast.Min, Some e -> Rq_exec.Plan.Min (conv e)
    | Ast.Max, Some e -> Rq_exec.Plan.Max (conv e)
    | _, None -> fail "aggregate requires an argument"
  in
  { Rq_exec.Plan.fn; output_name }

let bind catalog (statement : Ast.statement) =
  try
    let tables = statement.Ast.from in
    List.iter
      (fun t ->
        if Catalog.find_table_opt catalog t = None then fail "unknown table %s" t)
      tables;
    let plain, semijoins, scalars =
      let conjuncts =
        match statement.Ast.where with None -> [] | Some c -> top_conjuncts c
      in
      List.fold_left
        (fun (plain, sjs, scs) c ->
          match c with
          | Ast.In_subquery (lhs, sub) ->
              (plain, bind_in_subquery catalog tables lhs sub :: sjs, scs)
          | Ast.Exists sub -> (plain, bind_exists catalog tables sub :: sjs, scs)
          | Ast.Cmp_scalar (op, lhs, sub) ->
              (plain, sjs, bind_scalar catalog tables op lhs sub :: scs)
          | Ast.Not (Ast.In_subquery _ | Ast.Exists _) ->
              fail "NOT IN / NOT EXISTS (antijoins) are not supported"
          | c -> (c :: plain, sjs, scs))
        ([], [], []) conjuncts
    in
    let semijoins = List.rev semijoins and scalars = List.rev scalars in
    let where =
      Pred.conj (List.rev_map (convert_condition catalog tables) plain)
    in
    let refs, residual = split_where tables where in
    let group_by =
      List.map
        (fun c ->
          let t, name = resolve_column catalog tables c in
          t ^ "." ^ name)
        statement.Ast.group_by
    in
    let aggs, projection =
      let agg_items =
        List.filter_map
          (function Ast.Agg_item (k, e, a) -> Some (k, e, a) | _ -> None)
          statement.Ast.select
      in
      let plain_columns =
        List.filter_map
          (function
            | Ast.Expr_item (Ast.Column c, _) ->
                let t, name = resolve_column catalog tables c in
                Some (t ^ "." ^ name)
            | Ast.Expr_item _ -> fail "non-column, non-aggregate SELECT items are not supported"
            | _ -> None)
          statement.Ast.select
      in
      if agg_items <> [] then begin
        List.iter
          (fun c ->
            if not (List.mem c group_by) then
              fail "SELECT column %s must appear in GROUP BY alongside aggregates" c)
          plain_columns;
        (List.mapi (fun i item -> convert_agg catalog tables i item) agg_items, None)
      end
      else if group_by <> [] then fail "GROUP BY without aggregates is not supported"
      else if List.mem Ast.Star statement.Ast.select then ([], None)
      else ([], Some plain_columns)
    in
    let output_columns =
      (* Names ORDER BY may reference: aggregate aliases, grouping columns,
         and (without aggregation) any qualified column of the join. *)
      match aggs with
      | [] -> None (* resolve against base tables *)
      | _ -> Some (group_by @ List.map (fun a -> a.Rq_exec.Plan.output_name) aggs)
    in
    let order_by =
      List.map
        (fun { Ast.order_column; desc } ->
          let sort_column =
            match output_columns with
            | None ->
                let t, name = resolve_column catalog tables order_column in
                t ^ "." ^ name
            | Some available -> (
                let bare = order_column.Ast.name in
                let qualified =
                  match order_column.Ast.table with
                  | Some t -> t ^ "." ^ bare
                  | None -> bare
                in
                if List.mem qualified available then qualified
                else
                  (* A grouping column may be referenced unqualified. *)
                  match
                    List.find_opt
                      (fun c ->
                        match String.index_opt c '.' with
                        | Some i ->
                            String.sub c (i + 1) (String.length c - i - 1) = bare
                        | None -> String.equal c bare)
                      available
                  with
                  | Some c -> c
                  | None -> fail "ORDER BY column %s is not in the output" qualified)
          in
          { Rq_exec.Plan.sort_column; descending = desc })
        statement.Ast.order_by
    in
    (match statement.Ast.limit with
    | Some n when n < 0 -> fail "LIMIT must be non-negative"
    | _ -> ());
    let query =
      Logical.query ~residual ~semijoins ~scalars ~group_by ~aggs ?projection ~order_by
        ?limit:statement.Ast.limit refs
    in
    (match Logical.validate catalog query with
    | Ok () -> ()
    | Error msg -> fail "%s" msg);
    let confidence_hint =
      match
        Hint.resolve ~hints:statement.Ast.hints
          ~setting:{ Rq_core.Confidence.system_default = Rq_core.Confidence.median }
      with
      | Ok _ -> (
          (* resolve validated the hints; recover the raw override *)
          let rec last acc = function
            | [] -> acc
            | h :: rest -> (
                match Hint.parse h with
                | Ok (Some c) -> last (Some c) rest
                | _ -> last acc rest)
          in
          last None statement.Ast.hints)
      | Error msg -> fail "%s" msg
    in
    Ok { query; confidence_hint }
  with Bind_error msg -> Error msg

let compile catalog input =
  match Parser.parse input with
  | Error _ as e -> e
  | Ok statement -> bind catalog statement
