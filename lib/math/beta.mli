(** The Beta distribution.

    The posterior distribution of a selectivity inferred from a random sample
    is a Beta distribution (paper Sec. 3.3): observing [k] of [n] sample
    tuples satisfying a predicate under a Beta(a,b) prior yields
    Beta(k + a, n - k + b). *)

type t = private { alpha : float; beta : float }
(** Shape parameters; both strictly positive. *)

val create : alpha:float -> beta:float -> t
(** Raises [Invalid_argument] unless both shapes are positive and finite. *)

val posterior : prior:t -> successes:int -> trials:int -> t
(** [posterior ~prior ~successes:k ~trials:n] is the Bayesian update of a
    Beta prior with binomial evidence: Beta(k + a, n - k + b).
    Requires [0 <= k <= n]. *)

val mean : t -> float
val variance : t -> float
val std_dev : t -> float

val mode : t -> float option
(** Interior mode, defined when both shapes exceed 1. *)

val pdf : t -> float -> float
val log_pdf : t -> float -> float

val cdf : t -> float -> float
(** Regularized incomplete beta I_x(alpha, beta). *)

val quantile : t -> float -> float
(** [quantile t p] = cdf{^-1}(p): the selectivity value s such that
    Pr[selectivity <= s] = p.  This is the paper's confidence-threshold
    lookup.  Requires [p] in [0,1]. *)

val credible_interval : t -> float -> float * float
(** [credible_interval t mass] is the equal-tailed interval containing
    [mass] posterior probability. *)

val pp : Format.formatter -> t -> unit
