(** The binomial distribution.

    The Section-5 analytical model computes expected plan outcomes exactly by
    summing over the binomially-distributed number of sample tuples that
    satisfy the query predicate. *)

val log_pmf : n:int -> p:float -> int -> float
(** [log_pmf ~n ~p k] is log Pr[K = k] for K ~ Binomial(n, p).
    Requires [0 <= k <= n] and [p] in [0,1]. *)

val pmf : n:int -> p:float -> int -> float

val cdf : n:int -> p:float -> int -> float
(** Pr[K <= k], via the regularized incomplete beta identity. *)

val mean : n:int -> p:float -> float
val variance : n:int -> p:float -> float

val fold_support : n:int -> p:float -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
(** [fold_support ~n ~p ~init ~f] folds [f acc k (pmf k)] over k = 0..n,
    skipping terms with negligible probability (< 1e-18) once both tails are
    passed, so sweeps with n in the thousands stay cheap while the retained
    mass is 1 - O(1e-15). *)

val expectation : n:int -> p:float -> (int -> float) -> float
(** [expectation ~n ~p g] = E[g(K)]. *)
