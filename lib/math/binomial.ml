let check ~n ~p =
  if n < 0 then invalid_arg "Binomial: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial: p outside [0,1]"

let log_pmf ~n ~p k =
  check ~n ~p;
  if k < 0 || k > n then invalid_arg "Binomial.log_pmf: k outside support";
  if p = 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else if p = 1.0 then (if k = n then 0.0 else neg_infinity)
  else
    Special.log_choose n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1.0 -. p))

let pmf ~n ~p k = exp (log_pmf ~n ~p k)

let cdf ~n ~p k =
  check ~n ~p;
  if k < 0 then 0.0
  else if k >= n then 1.0
  else
    (* Pr[K <= k] = I_{1-p}(n-k, k+1). *)
    Special.betainc ~alpha:(float_of_int (n - k)) ~beta:(float_of_int (k + 1)) (1.0 -. p)

let mean ~n ~p =
  check ~n ~p;
  float_of_int n *. p

let variance ~n ~p =
  check ~n ~p;
  float_of_int n *. p *. (1.0 -. p)

let fold_support ~n ~p ~init ~f =
  check ~n ~p;
  let negligible = 1e-18 in
  (* Walk outward from the mode so we can stop once each tail has decayed. *)
  let mode = int_of_float (Float.round (float_of_int n *. p)) in
  let mode = max 0 (min n mode) in
  let acc = ref init in
  (* Upward from the mode (inclusive). *)
  let k = ref mode in
  let continue = ref true in
  while !continue && !k <= n do
    let w = pmf ~n ~p !k in
    if w < negligible && !k > mode then continue := false
    else begin
      acc := f !acc !k w;
      incr k
    end
  done;
  (* Downward from mode - 1. *)
  let k = ref (mode - 1) in
  let continue = ref true in
  while !continue && !k >= 0 do
    let w = pmf ~n ~p !k in
    if w < negligible then continue := false
    else begin
      acc := f !acc !k w;
      decr k
    end
  done;
  !acc

let expectation ~n ~p g =
  fold_support ~n ~p ~init:0.0 ~f:(fun acc k w -> acc +. (w *. g k))
