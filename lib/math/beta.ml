type t = { alpha : float; beta : float }

let create ~alpha ~beta =
  let ok x = Float.is_finite x && x > 0.0 in
  if not (ok alpha && ok beta) then
    invalid_arg "Beta.create: shapes must be positive and finite";
  { alpha; beta }

let posterior ~prior ~successes ~trials =
  if successes < 0 || successes > trials then
    invalid_arg "Beta.posterior: need 0 <= successes <= trials";
  create
    ~alpha:(prior.alpha +. float_of_int successes)
    ~beta:(prior.beta +. float_of_int (trials - successes))

let mean { alpha; beta } = alpha /. (alpha +. beta)

let variance { alpha; beta } =
  let s = alpha +. beta in
  alpha *. beta /. (s *. s *. (s +. 1.0))

let std_dev t = sqrt (variance t)

let mode { alpha; beta } =
  if alpha > 1.0 && beta > 1.0 then Some ((alpha -. 1.0) /. (alpha +. beta -. 2.0))
  else None

let log_pdf { alpha; beta } x =
  if x < 0.0 || x > 1.0 then neg_infinity
  else if x = 0.0 then (if alpha < 1.0 then infinity else if alpha = 1.0 then (beta -. 1.0) *. log 1.0 -. Special.log_beta alpha beta else neg_infinity)
  else if x = 1.0 then (if beta < 1.0 then infinity else if beta = 1.0 then (alpha -. 1.0) *. log 1.0 -. Special.log_beta alpha beta else neg_infinity)
  else
    ((alpha -. 1.0) *. log x)
    +. ((beta -. 1.0) *. log (1.0 -. x))
    -. Special.log_beta alpha beta

let pdf t x = exp (log_pdf t x)

let cdf { alpha; beta } x =
  if x <= 0.0 then 0.0 else if x >= 1.0 then 1.0 else Special.betainc ~alpha ~beta x

let quantile { alpha; beta } p = Special.betainc_inv ~alpha ~beta p

let credible_interval t mass =
  if mass < 0.0 || mass > 1.0 then invalid_arg "Beta.credible_interval";
  let tail = (1.0 -. mass) /. 2.0 in
  (quantile t tail, quantile t (1.0 -. tail))

let pp fmt { alpha; beta } = Format.fprintf fmt "Beta(%g, %g)" alpha beta
