(* Lanczos approximation with g = 7, n = 9 coefficients (Boost/GSL choice). *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection keeps the Lanczos sum in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let log_choose n k =
  if k < 0 || k > n then invalid_arg "Special.log_choose"
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

(* Continued fraction for the incomplete beta function (Lentz's method), as
   in Numerical Recipes betacf.  Converges fast for x < (a+1)/(a+b+2). *)
let beta_continued_fraction ~alpha:a ~beta:b x =
  let max_iterations = 300 in
  let epsilon = 3e-16 in
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m <= max_iterations do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    (* Even step. *)
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    (* Odd step. *)
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < epsilon then converged := true;
    incr m
  done;
  !h

let betainc ~alpha ~beta x =
  if alpha <= 0.0 || beta <= 0.0 then invalid_arg "Special.betainc: shape <= 0";
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let log_front =
      (alpha *. log x) +. (beta *. log (1.0 -. x)) -. log_beta alpha beta
    in
    let front = exp log_front in
    if x < (alpha +. 1.0) /. (alpha +. beta +. 2.0) then
      front *. beta_continued_fraction ~alpha ~beta x /. alpha
    else
      1.0 -. (front *. beta_continued_fraction ~alpha:beta ~beta:alpha (1.0 -. x) /. beta)
  end

let betainc_inv ~alpha ~beta p =
  if alpha <= 0.0 || beta <= 0.0 then invalid_arg "Special.betainc_inv: shape <= 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Special.betainc_inv: p outside [0,1]";
  if p = 0.0 then 0.0
  else if p = 1.0 then 1.0
  else begin
    (* Newton iteration on F(x) - p with bisection bracketing for safety. *)
    let lo = ref 0.0 and hi = ref 1.0 in
    let x = ref (alpha /. (alpha +. beta)) in
    let log_beta_ab = log_beta alpha beta in
    let pdf x =
      if x <= 0.0 || x >= 1.0 then 0.0
      else exp (((alpha -. 1.0) *. log x) +. ((beta -. 1.0) *. log (1.0 -. x)) -. log_beta_ab)
    in
    (try
       for _ = 1 to 200 do
         let f = betainc ~alpha ~beta !x -. p in
         if f > 0.0 then hi := !x else lo := !x;
         if Float.abs f < 1e-14 then raise Exit;
         let d = pdf !x in
         let next = if d > 0.0 then !x -. (f /. d) else nan in
         let next =
           if Float.is_nan next || next <= !lo || next >= !hi then
             0.5 *. (!lo +. !hi)
           else next
         in
         if Float.abs (next -. !x) < 1e-15 *. (Float.abs !x +. 1e-15) then begin
           x := next;
           raise Exit
         end;
         x := next
       done
     with Exit -> ());
    !x
  end
