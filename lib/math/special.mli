(** Special functions needed for Bayesian selectivity inference.

    All functions operate in log space where overflow is a concern, so they
    stay accurate for the sample sizes the estimator uses (tens to a few
    thousand tuples) and far beyond. *)

val log_gamma : float -> float
(** Natural log of the gamma function, for positive arguments.
    Lanczos approximation, |relative error| < 1e-13 over [0.5, 1e6]. *)

val log_beta : float -> float -> float
(** [log_beta a b] = log B(a,b) = log_gamma a + log_gamma b - log_gamma (a+b). *)

val log_choose : int -> int -> float
(** [log_choose n k] = log (n choose k).  Requires [0 <= k <= n]. *)

val betainc : alpha:float -> beta:float -> float -> float
(** [betainc ~alpha ~beta x] is the regularized incomplete beta function
    I_x(alpha, beta) for [x] in [0,1] — the cdf of the Beta(alpha, beta)
    distribution.  Continued-fraction evaluation (Lentz). *)

val betainc_inv : alpha:float -> beta:float -> float -> float
(** [betainc_inv ~alpha ~beta p] returns x such that I_x(alpha,beta) = p,
    for [p] in [0,1].  Newton iteration with bisection safeguarding;
    accurate to ~1e-12. *)
