type t = {
  count : int;
  mean : float;
  variance : float;
  std_dev : float;
  min : float;
  max : float;
}

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  (* Welford's online algorithm. *)
  let mean = ref 0.0 and m2 = ref 0.0 in
  let mn = ref xs.(0) and mx = ref xs.(0) in
  Array.iteri
    (fun i x ->
      let delta = x -. !mean in
      mean := !mean +. (delta /. float_of_int (i + 1));
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    xs;
  let variance = !m2 /. float_of_int n in
  { count = n; mean = !mean; variance; std_dev = sqrt variance; min = !mn; max = !mx }

let of_list xs = of_array (Array.of_list xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = max 0 (min (n - 1) (int_of_float h)) in
  let hi = min (n - 1) (lo + 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let weighted pairs =
  let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total_weight <= 0.0 then invalid_arg "Summary.weighted: weights must sum > 0";
  List.iter (fun (_, w) -> if w < 0.0 then invalid_arg "Summary.weighted: negative weight") pairs;
  let mean =
    List.fold_left (fun acc (x, w) -> acc +. (x *. w)) 0.0 pairs /. total_weight
  in
  let variance =
    List.fold_left (fun acc (x, w) -> acc +. (w *. (x -. mean) *. (x -. mean))) 0.0 pairs
    /. total_weight
  in
  let values = List.map fst pairs in
  let mn = List.fold_left Float.min infinity values in
  let mx = List.fold_left Float.max neg_infinity values in
  {
    count = List.length pairs;
    mean;
    variance;
    std_dev = sqrt variance;
    min = mn;
    max = mx;
  }

let pp fmt t =
  Format.fprintf fmt "{n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g}" t.count t.mean
    t.std_dev t.min t.max
