(** Deterministic pseudo-random number generation.

    The library never touches the global [Random] state: every source of
    randomness is an explicit [Rng.t], so experiments are reproducible from a
    seed.  The generator is xoshiro256++ seeded through splitmix64, which has
    a 256-bit state and passes BigCrush; determinism across runs and
    platforms is what the experiment harness relies on. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams from
    repeated splits are statistically independent; used to give each
    experiment repetition its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); [bound] must be positive.
    Unbiased (rejection sampling). *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x).  Uses 53 random bits. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0, n), in random order.  Requires [0 <= k <= n].  Uses Floyd's
    algorithm, O(k) expected. *)

val sample_with_replacement : t -> int -> int -> int array
(** [sample_with_replacement t k n] draws [k] independent uniform indices
    from [0, n). *)
