(** Summary statistics over samples of floats.

    Used by the experiment harness to report the paper's two evaluation
    metrics: average query execution time and its standard deviation across
    the queries of a scenario (paper Sec. 5.2). *)

type t = {
  count : int;
  mean : float;
  variance : float;  (** population variance (divides by n) *)
  std_dev : float;
  min : float;
  max : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array.  Single-pass Welford
    accumulation, numerically stable. *)

val of_list : float list -> t

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,1]: linear interpolation between order
    statistics (type-7 quantile).  Does not mutate the input. *)

val weighted : (float * float) list -> t
(** [weighted pairs] where each pair is [(value, weight)]; weights must be
    non-negative and sum to a positive total.  [count] reports the number of
    pairs.  Used by the analytical model, which mixes plan costs with
    binomial weights. *)

val pp : Format.formatter -> t -> unit
