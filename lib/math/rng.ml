(* xoshiro256++ with splitmix64 seeding.  See Blackman & Vigna,
   "Scrambled linear pseudorandom number generators" (2021). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh splitmix chain from the parent stream: derived streams are
     decorrelated from the parent's subsequent output. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

(* Top 62 bits as a non-negative OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the largest multiple of [bound] below 2^62. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t x =
  (* 53 high bits -> uniform in [0,1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  u *. (1.0 /. 9007199254740992.0) *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) draws, then shuffle for random order. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    if Hashtbl.mem chosen v then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen v ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun v () ->
      out.(!i) <- v;
      incr i)
    chosen;
  shuffle_in_place t out;
  out

let sample_with_replacement t k n =
  if k < 0 || n <= 0 then invalid_arg "Rng.sample_with_replacement";
  Array.init k (fun _ -> int t n)
