.PHONY: all test test-parallel test-rewrite fault-test differential fuzz-smoke \
        fuzz-soak fuzz-self-test fuzz-self-test-rewrite bench bench-quick \
        bench-throughput bench-exec bench-optimizer storage-gate examples trace-demo clean

all:
	dune build @all

test: all
	dune runtest

# Only the morsel-parallel suite: domain-pool claiming discipline,
# parallel-vs-serial parity across plan families, the mid-flight guard's
# resumable prefix, and the sharded plan cache hammered from N domains.
test-parallel: all
	dune exec test/test_parallel.exe

# Only the logical-rewrite suite: qcheck soundness laws for every rule,
# fixpoint idempotence, rule-order insensitivity on commuting pairs, the
# LIMIT-pushdown page-drop assertion, and fingerprint key stability.
test-rewrite: all
	dune exec test/test_rewrite.exe

# Only the robustness suite: fault injection, degradation chain,
# optimization budget, and guard-driven re-optimization.
fault-test: all
	dune exec test/test_robustness.exe

# Differential plan-correctness oracle under three generator seeds (the
# same matrix CI runs).
differential: all
	DIFF_SEED=42 dune exec test/test_differential.exe
	DIFF_SEED=7 dune exec test/test_differential.exe
	DIFF_SEED=1234 dune exec test/test_differential.exe

# Bounded feedback-guided fuzz (the CI gate): fixed seed, the
# pure-random control alongside, fails on any divergence, on steered
# coverage not beating random, or on the corpus stagnating before
# iteration 50.
fuzz-smoke: all
	dune exec bin/robustopt.exe -- experiment fuzz \
	  --iterations 200 --seed 5 --baseline --require-new-after 50

# Unbounded soak with a persistent corpus: Ctrl-C to stop, rerun to
# resume from the saved cases.  Exits nonzero on the first divergence,
# leaving a replayable .fuzz-repro behind.
fuzz-soak: all
	dune exec bin/robustopt.exe -- experiment fuzz \
	  --iterations 0 --corpus-dir _fuzz_corpus

# Prove the harness can actually catch a bug: perturb one estimator and
# require the fuzzer to find, shrink, and replay the planted divergence.
fuzz-self-test: all
	dune exec bin/robustopt.exe -- experiment fuzz --self-test --seed 5

# Same proof for the logical rewrite layer: plant an unsound rewrite and
# require the rewrite pass to catch, shrink, and replay it.
fuzz-self-test-rewrite: all
	dune exec bin/robustopt.exe -- experiment fuzz --self-test-rewrite --seed 5

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- quick

# Plan-cache throughput bench; writes BENCH_throughput.json.
bench-throughput: all
	dune exec bin/robustopt.exe -- bench-throughput

# Streaming-vs-materialized executor bench (early-exit page savings +
# full-drain counter parity + GC peak); writes BENCH_exec.json.
bench-exec: all
	dune exec bin/robustopt.exe -- bench-exec

# Bitset evidence-kernel bench: cold/warm/scan evidence throughput plus
# plans/sec per estimator arm; writes BENCH_optimizer.json and exits
# nonzero unless the kernel is bit-identical to the scan path AND warm
# evidence beats both cold and the row scan.
bench-optimizer: all
	dune exec bin/robustopt.exe -- bench-optimizer

# Paged-storage gate (the CI `storage` job): bench-exec --small with a
# 256-page buffer pool under a 2 GiB virtual-memory cap.  The bench exits
# nonzero unless zone-skip page accounting balances and the pool reports
# hit/miss traffic; the ulimit proves the chunked heap keeps the resident
# set bounded.  Runs the prebuilt binary so the cap applies to the bench,
# not the compiler.
storage-gate:
	dune build bin/robustopt.exe
	bash -c 'ulimit -v 2097152; \
	  ./_build/default/bin/robustopt.exe bench-exec --small \
	    --buffer-pool-pages 256 --out -' > /dev/null

examples:
	dune exec examples/quickstart.exe
	dune exec examples/exploratory_vs_dashboard.exe
	dune exec examples/star_join.exe
	dune exec examples/sql_hints.exe
	dune exec examples/workload_prior.exe
	dune exec examples/guarded_reopt.exe

# One guarded, re-optimized query with the full observability surface:
# trace-event log, per-operator span tree, and the EXPLAIN ANALYZE table
# from the same single instrumented execution.
trace-demo: all
	dune exec bin/robustopt.exe -- run --trace --reopt-threshold 4 \
	  "SELECT COUNT(*) FROM lineitem, orders, part WHERE p_bucket = 975"
	dune exec bin/robustopt.exe -- explain --analyze --trace \
	  "SELECT COUNT(*) FROM lineitem, orders, part WHERE p_bucket = 975"

clean:
	dune clean
