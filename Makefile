.PHONY: all test bench bench-quick examples clean

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/exploratory_vs_dashboard.exe
	dune exec examples/star_join.exe
	dune exec examples/sql_hints.exe
	dune exec examples/workload_prior.exe

clean:
	dune clean
