.PHONY: all test fault-test bench bench-quick examples clean

all:
	dune build @all

test: all
	dune runtest

# Only the robustness suite: fault injection, degradation chain,
# optimization budget, and guard-driven re-optimization.
fault-test: all
	dune exec test/test_robustness.exe

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/exploratory_vs_dashboard.exe
	dune exec examples/star_join.exe
	dune exec examples/sql_hints.exe
	dune exec examples/workload_prior.exe
	dune exec examples/guarded_reopt.exe

clean:
	dune clean
